// hero_loadgen — load generator and latency harness for hero_serve
// (docs/SERVING.md §Load testing).
//
// Socket mode (default): N simulated clients, each on its own ThreadPool
// worker with its own unix-socket connection and its own LaneWorld, drive
// real episodes through the server — features come from
// fill_request_from_world, returned commands step the world. Arrivals are
// open-loop Poisson at --rate requests/sec per client (0 = closed loop).
// Every response is matched to its request; a missing or mismatched response
// is a dropped request and fails the run.
//
//   hero_loadgen --socket /tmp/hero_serve.sock [--clients 8] [--requests 200]
//                [--window 1] [--rate 0] [--synthetic] [--explore] [--seed 7]
//                [--reload-every 0 --reload-dir ckpt/]   (hot reload under load)
//                [--shutdown]                            (stop the server after)
//
// In-process mode (--in-process): no sockets — the same PolicyEngine the
// server runs is driven directly, C concurrent sessions per scheduling tick,
// once with cross-request batching (one act_batch of C) and once batch-size-1
// (C act_batch calls), same worlds, same tick count. This isolates the fused
// pass from transport noise and produces the BENCH_serve.json gate numbers:
//
//   hero_loadgen --in-process --ckpt ckpt/ [--clients 16] [--ticks 200]
//                [--warmup 20] [--bench-out BENCH_serve.json]
//                [--min-speedup 2.0]
//
// Both modes accept the observability flags (--metrics-out/--metrics-every/
// --telemetry-out) with the same rejection rules as every other tool.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "hero/checkpoint.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/policy_engine.h"
#include "serve/request_builder.h"
#include "sim/lane_world.h"
#include "sim/scenario.h"

using namespace hero;

namespace {

const obs::HistogramOptions kClientLatencyHist{/*lo=*/1.0, /*hi=*/1e7,
                                               /*buckets=*/64,
                                               /*log_scale=*/true};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct LatencySummary {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

LatencySummary summarize(std::vector<double>& latencies) {
  LatencySummary s;
  if (latencies.empty()) return s;
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (double v : latencies) sum += v;
  s.mean_us = sum / static_cast<double>(latencies.size());
  s.p50_us = percentile(latencies, 0.50);
  s.p99_us = percentile(latencies, 0.99);
  return s;
}

void observe_latencies(const std::vector<double>& latencies) {
  if (!obs::metrics_enabled()) return;
  auto& hist = obs::Registry::instance().histogram("serve.client_latency_us",
                                                   kClientLatencyHist);
  for (double v : latencies) hist.observe(v);
}

// --- socket mode -----------------------------------------------------------

struct ClientResult {
  std::vector<double> latencies_us;
  long responses = 0;
  long resets = 0;
  std::string error;  // non-empty = the client aborted (dropped requests)
};

struct SocketRun {
  std::string socket_path;
  int clients = 8;
  int requests = 200;
  int window = 1;     // in-flight requests per client (1 = closed loop)
  double rate = 0.0;  // per-client requests/sec; 0 = as fast as the window allows
  bool synthetic = false;  // replay one fixed observation; skip sim stepping
  bool explore = false;
  unsigned seed = 7;
  int reload_every = 0;  // client 0 reloads after every N of its requests
  std::string reload_dir;
  int learners = 3;
};

void run_client(const SocketRun& run, int idx, ClientResult* out) {
  try {
    serve::ServeClient client(run.socket_path);
    Rng rng(run.seed + 1000u * static_cast<unsigned>(idx + 1));
    auto scenario = sim::cooperative_lane_change(run.learners);
    sim::LaneWorld world(scenario.config);

    serve::Hello hello;
    hello.learners = static_cast<std::uint32_t>(world.num_learners());
    hello.hl_dim = static_cast<std::uint32_t>(world.high_level_obs_dim());
    hello.ll_dim = static_cast<std::uint32_t>(world.low_level_obs_dim());
    hello.num_lanes = static_cast<std::uint32_t>(world.track().num_lanes());
    hello.explore = run.explore ? 1 : 0;
    hello.seed = run.seed + 7919u * static_cast<unsigned>(idx + 1);
    client.hello(hello);

    out->latencies_us.reserve(static_cast<std::size_t>(run.requests));
    world.reset(rng);
    bool fresh = true;
    serve::ActRequest req;
    std::vector<sim::TwistCmd> cmds(
        static_cast<std::size_t>(world.num_learners()));
    std::vector<double> send_us(static_cast<std::size_t>(run.requests), 0.0);
    const int window = std::max(1, run.window);

    // Bounded-lag async control loop: up to `window` requests in flight; the
    // world steps with the most recently received commands. window=1 is the
    // classic closed loop (each observation waits for its command). With
    // --rate, sends follow an open-loop Poisson schedule — it advances
    // regardless of service time, so a slow server accumulates backlog
    // instead of silently throttling the offered load.
    double next_send_us = obs::now_us();
    int sent = 0;
    int received = 0;
    while (received < run.requests) {
      while (sent < run.requests && sent - received < window) {
        if (run.rate > 0.0) {
          const double u = std::max(rng.uniform(), 1e-12);
          next_send_us += -std::log(u) / run.rate * 1e6;
          const double ahead_us = next_send_us - obs::now_us();
          if (ahead_us > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(static_cast<long long>(ahead_us)));
          }
        }
        if (!run.synthetic || sent == 0) {
          // --synthetic replays the first observation for every request
          // (episode-start semantics each time): client-side cost collapses
          // to encode+syscalls, so the measurement stresses the server, not
          // the client's physics. Standard fixed-query loadgen practice.
          serve::fill_request_from_world(world, fresh, &req);
        }
        req.reset = run.synthetic ? 1 : req.reset;
        req.request_id = static_cast<std::uint64_t>(sent) + 1;
        send_us[static_cast<std::size_t>(sent)] = obs::now_us();
        client.queue_act(req);
        // Rate-paced sends must hit the wire on schedule; unpaced bursts
        // coalesce into one write() after the loop.
        if (run.rate > 0.0) client.flush();
        fresh = false;
        ++sent;
      }
      client.flush();

      const serve::ActResponse resp = client.recv_act();
      if (resp.request_id < 1 ||
          resp.request_id > static_cast<std::uint64_t>(sent)) {
        out->error = "response id out of range";
        return;
      }
      out->latencies_us.push_back(
          obs::now_us() - send_us[static_cast<std::size_t>(resp.request_id - 1)]);
      ++out->responses;
      ++received;

      if (!run.synthetic) {
        for (std::size_t k = 0; k < cmds.size(); ++k) {
          cmds[k].linear = resp.linear[k];
          cmds[k].angular = resp.angular[k];
        }
        world.step(cmds, rng);
        if (world.done()) {
          world.reset(rng);
          fresh = true;
          ++out->resets;
        }
      }

      if (idx == 0 && run.reload_every > 0 && received % run.reload_every == 0 &&
          received < run.requests) {
        // Drain the window first: the server answers frames in order, so a
        // Reload sent with acts still in flight would interleave their
        // responses before the ReloadAck.
        while (received < sent) {
          const serve::ActResponse drain = client.recv_act();
          out->latencies_us.push_back(
              obs::now_us() -
              send_us[static_cast<std::size_t>(drain.request_id - 1)]);
          ++out->responses;
          ++received;
        }
        const serve::ReloadAck ack = client.reload(run.reload_dir);
        if (!ack.ok) {
          out->error = "reload rejected: " + ack.message;
          return;
        }
      }
    }
  } catch (const std::exception& e) {
    out->error = e.what();
  }
}

int run_socket_mode(const SocketRun& run, bool shutdown_after) {
  runtime::ThreadPool pool(static_cast<std::size_t>(run.clients));
  std::vector<ClientResult> results(static_cast<std::size_t>(run.clients));

  const double t0 = obs::now_us();
  pool.parallel_for(static_cast<std::size_t>(run.clients),
                    [&](std::size_t i) { run_client(run, static_cast<int>(i), &results[i]); });
  const double wall_s = (obs::now_us() - t0) * 1e-6;

  long responses = 0;
  long resets = 0;
  long dropped = 0;
  std::vector<double> latencies;
  for (const auto& res : results) {
    responses += res.responses;
    resets += res.resets;
    dropped += run.requests - res.responses;
    latencies.insert(latencies.end(), res.latencies_us.begin(),
                     res.latencies_us.end());
    if (!res.error.empty()) {
      std::fprintf(stderr, "hero_loadgen: client failed: %s\n",
                   res.error.c_str());
    }
  }
  observe_latencies(latencies);
  const LatencySummary lat = summarize(latencies);
  const long expected = static_cast<long>(run.clients) * run.requests;
  const double qps = wall_s > 0.0 ? static_cast<double>(responses) / wall_s : 0.0;

  std::printf(
      "hero_loadgen: %d clients x %d requests (%s, window %d, rate "
      "%.1f/s/client)\n",
      run.clients, run.requests, run.explore ? "explore" : "greedy",
      std::max(1, run.window), run.rate);
  std::printf("  responses   %ld / %ld (%ld dropped), %ld episode resets\n",
              responses, expected, dropped, resets);
  std::printf("  wall time   %.3f s   qps %.1f\n", wall_s, qps);
  std::printf("  latency us  p50 %.1f   p99 %.1f   mean %.1f\n", lat.p50_us,
              lat.p99_us, lat.mean_us);

  if (shutdown_after) {
    try {
      serve::ServeClient admin(run.socket_path);
      admin.shutdown_server();
      std::printf("  shutdown sent\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hero_loadgen: shutdown failed: %s\n", e.what());
      return 1;
    }
  }
  return dropped == 0 ? 0 : 1;
}

// --- in-process mode -------------------------------------------------------

struct BenchResult {
  double qps = 0.0;
  LatencySummary lat;
};

// Drives `clients` concurrent sessions for `ticks` scheduling ticks.
// `batch_size` is the cross-request batch the engine sees: clients (one fused
// pass per tick) or 1 (each request served alone — the no-batching baseline).
BenchResult run_in_process(serve::PolicyEngine& engine, int clients, int ticks,
                           int warmup, unsigned seed, std::size_t batch_size) {
  const int n = engine.learners();
  std::vector<std::uint32_t> sessions;
  std::vector<sim::LaneWorld> worlds;
  std::vector<Rng> rngs;
  std::vector<serve::ActRequest> reqs(static_cast<std::size_t>(clients));
  std::vector<bool> fresh(static_cast<std::size_t>(clients), true);
  auto scenario = sim::cooperative_lane_change(n);
  for (int c = 0; c < clients; ++c) {
    sessions.push_back(engine.open_session(seed + static_cast<unsigned>(c),
                                           /*explore=*/false));
    worlds.emplace_back(scenario.config);
    rngs.emplace_back(seed + 31u * static_cast<unsigned>(c + 1));
    worlds.back().reset(rngs.back());
  }

  std::vector<std::uint32_t> batch_sessions;
  std::vector<const serve::ActRequest*> batch_reqs;
  std::vector<serve::ActResponse> responses;
  std::vector<sim::TwistCmd> cmds(static_cast<std::size_t>(n));

  BenchResult out;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(clients) *
                    static_cast<std::size_t>(ticks));
  double busy_us = 0.0;
  long served = 0;

  for (int t = 0; t < warmup + ticks; ++t) {
    const bool measured = t >= warmup;
    for (int c = 0; c < clients; ++c) {
      serve::fill_request_from_world(worlds[static_cast<std::size_t>(c)],
                                     fresh[static_cast<std::size_t>(c)],
                                     &reqs[static_cast<std::size_t>(c)]);
      reqs[static_cast<std::size_t>(c)].request_id =
          static_cast<std::uint64_t>(t) * static_cast<std::uint64_t>(clients) +
          static_cast<std::uint64_t>(c) + 1;
      fresh[static_cast<std::size_t>(c)] = false;
    }
    // One scheduling tick: the queue holds `clients` requests; serve it in
    // groups of batch_size fused passes.
    for (int base = 0; base < clients;
         base += static_cast<int>(batch_size)) {
      const int count =
          std::min(clients - base, static_cast<int>(batch_size));
      batch_sessions.clear();
      batch_reqs.clear();
      for (int c = base; c < base + count; ++c) {
        batch_sessions.push_back(sessions[static_cast<std::size_t>(c)]);
        batch_reqs.push_back(&reqs[static_cast<std::size_t>(c)]);
      }
      const double t0 = obs::now_us();
      engine.act_batch(batch_sessions, batch_reqs, &responses);
      const double dt_us = obs::now_us() - t0;
      if (measured) {
        busy_us += dt_us;
        served += count;
        for (int c = 0; c < count; ++c) latencies.push_back(dt_us);
      }
      for (int c = 0; c < count; ++c) {
        const auto& resp = responses[static_cast<std::size_t>(c)];
        const int w = base + c;
        for (std::size_t k = 0; k < cmds.size(); ++k) {
          cmds[k].linear = resp.linear[k];
          cmds[k].angular = resp.angular[k];
        }
        worlds[static_cast<std::size_t>(w)].step(
            cmds, rngs[static_cast<std::size_t>(w)]);
        if (worlds[static_cast<std::size_t>(w)].done()) {
          worlds[static_cast<std::size_t>(w)].reset(
              rngs[static_cast<std::size_t>(w)]);
          fresh[static_cast<std::size_t>(w)] = true;
        }
      }
    }
  }

  for (std::uint32_t s : sessions) engine.close_session(s);
  observe_latencies(latencies);
  out.lat = summarize(latencies);
  out.qps = busy_us > 0.0 ? static_cast<double>(served) / (busy_us * 1e-6) : 0.0;
  return out;
}

int run_in_process_mode(const std::string& ckpt, int clients, int ticks,
                        int warmup, unsigned seed, const std::string& bench_out,
                        double min_speedup) {
  core::HeroConfig cfg;
  core::CheckpointManifest peek;
  int learners = 3;
  if (core::read_manifest(ckpt, &peek)) learners = peek.learners;
  auto scenario = sim::cooperative_lane_change(learners);
  serve::PolicyEngine engine(scenario, cfg, ckpt);
  if (engine.legacy_checkpoint()) {
    std::printf("warning: %s/ has no checkpoint.json manifest (legacy "
                "checkpoint, loaded unvalidated)\n",
                ckpt.c_str());
  }

  const BenchResult batched = run_in_process(
      engine, clients, ticks, warmup, seed, static_cast<std::size_t>(clients));
  const BenchResult single =
      run_in_process(engine, clients, ticks, warmup, seed, 1);
  const double speedup =
      single.qps > 0.0 ? batched.qps / single.qps : 0.0;

  std::printf("hero_loadgen --in-process: %d clients, %d ticks (+%d warmup)\n",
              clients, ticks, warmup);
  std::printf("  batched (b%d)  qps %10.1f   p50 %8.2f us   p99 %8.2f us\n",
              clients, batched.qps, batched.lat.p50_us, batched.lat.p99_us);
  std::printf("  single  (b1)   qps %10.1f   p50 %8.2f us   p99 %8.2f us\n",
              single.qps, single.lat.p50_us, single.lat.p99_us);
  std::printf("  cross-request batching speedup: %.2fx\n", speedup);

  if (!bench_out.empty()) {
    std::FILE* f = std::fopen(bench_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "hero_loadgen: cannot write %s\n",
                   bench_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\"benchmarks\": [\n");
    std::fprintf(f, "  {\"name\": \"ServeQps/b%d\", \"qps\": %.2f},\n", clients,
                 batched.qps);
    std::fprintf(f, "  {\"name\": \"ServeQps/b1\", \"qps\": %.2f},\n",
                 single.qps);
    std::fprintf(f, "  {\"name\": \"ServeLatencyP50/b%d\", \"us\": %.3f},\n",
                 clients, batched.lat.p50_us);
    std::fprintf(f, "  {\"name\": \"ServeLatencyP99/b%d\", \"us\": %.3f}\n",
                 clients, batched.lat.p99_us);
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("  bench written to %s\n", bench_out.c_str());
  }

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "hero_loadgen: batching speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool in_process = flags.get_bool("in-process", false);
  const std::string ckpt = flags.get_string("ckpt", "hero_ckpt");
  const std::string socket_path =
      flags.get_string("socket", "/tmp/hero_serve.sock");
  const int clients = flags.get_int("clients", in_process ? 16 : 8);
  const int requests = flags.get_int("requests", 200);
  const int window = flags.get_int("window", 1);
  const int ticks = flags.get_int("ticks", 200);
  const int warmup = flags.get_int("warmup", 20);
  const double rate = flags.get_double("rate", 0.0);
  const bool synthetic = flags.get_bool("synthetic", false);
  const bool explore = flags.get_bool("explore", false);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 7));
  const int reload_every = flags.get_int("reload-every", 0);
  const std::string reload_dir = flags.get_string("reload-dir", ckpt);
  const bool shutdown_after = flags.get_bool("shutdown", false);
  const std::string bench_out = flags.get_string("bench-out", "");
  const double min_speedup = flags.get_double("min-speedup", 0.0);
  const int learners = flags.get_int("learners", 3);
  const obs::Outputs obs_out = obs::configure(flags);
  flags.check_unknown();

  if (clients < 1 || requests < 0 || ticks < 1 || warmup < 0) {
    std::fprintf(stderr, "hero_loadgen: invalid --clients/--requests/--ticks\n");
    return 2;
  }

  {
    std::string canonical;
    for (int i = 1; i < argc; ++i) {
      canonical += argv[i];
      canonical += ' ';
    }
    obs::RunManifest manifest = obs::default_manifest("hero_loadgen");
    manifest.seed = static_cast<long long>(seed);
    manifest.config_digest = obs::config_digest(canonical);
    obs::set_run_manifest(manifest);
  }

  int rc = 0;
  try {
    if (in_process) {
      rc = run_in_process_mode(ckpt, clients, ticks, warmup, seed, bench_out,
                               min_speedup);
    } else {
      SocketRun run;
      run.socket_path = socket_path;
      run.clients = clients;
      run.requests = requests;
      run.window = window;
      run.rate = rate;
      run.synthetic = synthetic;
      run.explore = explore;
      run.seed = seed;
      run.reload_every = reload_every;
      run.reload_dir = reload_dir;
      run.learners = learners;
      rc = run_socket_mode(run, shutdown_after);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hero_loadgen: %s\n", e.what());
    rc = 1;
  }
  obs::finalize(obs_out);
  return rc;
}
