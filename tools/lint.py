#!/usr/bin/env python3
"""Repo-specific lint rules the generic tools cannot express.

Rules (docs/CORRECTNESS.md):

  R1  no-libc-rand      std::rand / srand / rand() and time(nullptr)-style
                        seeding are forbidden outside src/common/rng.* —
                        every random stream must go through hero::Rng so runs
                        are seed-deterministic (tools/check_determinism.sh).
  R2  no-alloc-in-into  functions named *_into are the zero-allocation hot
                        path (docs/PERFORMANCE.md); their bodies must not
                        contain allocation-prone constructs (new, make_unique,
                        std::vector<...> locals, std::string construction,
                        push_back/emplace_back/reserve, malloc).
  R3  no-bare-printf    library code under src/ must not print to
                        stdout/stderr directly (printf/fprintf/std::cout/
                        std::cerr) — use common/logging.h. snprintf into a
                        buffer is fine. src/common/logging.cpp is the one
                        sanctioned sink.
  R4  pragma-once       every header under src/ starts its include guard
                        with #pragma once.
  R5  no-raw-thread     std::thread / std::jthread / std::async are forbidden
                        outside src/runtime — all concurrency goes through
                        runtime::ThreadPool so worker counts, RNG streams, and
                        shutdown stay centralized (docs/PARALLELISM.md).
  R6  no-growth-in-batch-step
                        BatchLaneWorld::step* bodies are the batch-first sim
                        hot path (docs/BATCHING.md); per-element container
                        growth (push_back/emplace_back) is forbidden there —
                        all step scratch is sized at construction, mirroring
                        R2's no-alloc contract for *_into kernels.
  R7  no-raw-clock      std::chrono::steady_clock (and the other std::chrono
                        clocks) are forbidden outside src/obs — trainer and
                        rollout code times itself through obs::now_us() /
                        OBS_PHASE so phase attribution sees every clock read
                        and the determinism gate knows which fields are
                        wall-clock derived. src/common/logging.cpp (which
                        obs itself depends on) keeps its own timestamp clock.

Exit status is the number of violation kinds found (0 = clean). Run:

    python3 tools/lint.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# R1 ----------------------------------------------------------------------
RAND_PATTERNS = [
    (re.compile(r"\bstd::rand\b"), "std::rand"),
    (re.compile(r"(?<!\w)(?:std::)?srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:.])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time(nullptr) seeding"),
]
RAND_ALLOWED = {"src/common/rng.h", "src/common/rng.cpp"}

# R2 ----------------------------------------------------------------------
ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b(?!\w)"), "operator new"),
    (re.compile(r"\bmake_unique\b"), "make_unique"),
    (re.compile(r"\bmake_shared\b"), "make_shared"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
    (re.compile(r"\bstd::vector\s*<"), "std::vector local"),
    (re.compile(r"\bstd::string\b(?!\s*[&*])"), "std::string construction"),
    (re.compile(r"\.(push_back|emplace_back|reserve)\s*\("), "container growth"),
]
INTO_DEF = re.compile(r"^\s*(?:[\w:<>&*,\s]+?)\b(\w+_into)\s*\(", re.MULTILINE)

# R6 ----------------------------------------------------------------------
GROWTH_PATTERNS = [
    (re.compile(r"\.(push_back|emplace_back)\s*\("), "per-element growth"),
]
BATCH_STEP_DEF = re.compile(r"\bBatchLaneWorld::(step\w*)\s*\(")

# R7 ----------------------------------------------------------------------
CLOCK_PATTERNS = [
    (re.compile(r"\bstd::chrono::(steady_clock|high_resolution_clock|system_clock)\b"),
     "std::chrono clock"),
]
CLOCK_ALLOWED_PREFIXES = ("src/obs/", "src/common/")

# R5 ----------------------------------------------------------------------
THREAD_PATTERNS = [
    (re.compile(r"\bstd::thread\b"), "std::thread"),
    (re.compile(r"\bstd::jthread\b"), "std::jthread"),
    (re.compile(r"\bstd::async\b"), "std::async"),
]

# R3 ----------------------------------------------------------------------
PRINT_PATTERNS = [
    (re.compile(r"(?<![\w:])(?:std::)?printf\s*\("), "printf"),
    (re.compile(r"(?<![\w:])(?:std::)?fprintf\s*\("), "fprintf"),
    (re.compile(r"\bstd::cout\b"), "std::cout"),
    (re.compile(r"\bstd::cerr\b"), "std::cerr"),
]
PRINT_ALLOWED = {"src/common/logging.cpp"}

COMMENT_OR_STRING = re.compile(
    r"//.*?$|/\*.*?\*/|\"(?:[^\"\\]|\\.)*\"|'(?:[^'\\]|\\.)*'",
    re.DOTALL | re.MULTILINE,
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments/strings but preserves line structure for line numbers."""

    def repl(m: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    return COMMENT_OR_STRING.sub(repl, text)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def function_bodies(text: str, def_re: re.Pattern[str]):
    """Yields (name, start_offset, body_text) per definition; group 1 = name."""
    for m in def_re.finditer(text):
        # Find the opening brace of the definition (skip declarations ending ';').
        i = m.end()
        depth = 0
        while i < len(text) and text[i] not in "{;":
            i += 1
        if i >= len(text) or text[i] == ";":
            continue
        start = i
        depth = 1
        i += 1
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        yield m.group(1), start, text[start:i]


def into_function_bodies(text: str):
    """Yields (name, start_offset, body_text) for each *_into definition."""
    yield from function_bodies(text, INTO_DEF)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent)
    args = ap.parse_args()
    root: Path = args.root
    src = root / "src"

    violations: dict[str, list[str]] = {
        "R1": [], "R2": [], "R3": [], "R4": [], "R5": [], "R6": [], "R7": []
    }

    for path in sorted(src.rglob("*")):
        if path.suffix not in {".h", ".cpp"}:
            continue
        rel = path.relative_to(root).as_posix()
        raw = path.read_text(encoding="utf-8")
        code = strip_comments_and_strings(raw)

        if rel not in RAND_ALLOWED:
            for pat, what in RAND_PATTERNS:
                for m in pat.finditer(code):
                    violations["R1"].append(f"{rel}:{line_of(code, m.start())}: {what}")

        for name, start, body in into_function_bodies(code):
            for pat, what in ALLOC_PATTERNS:
                for m in pat.finditer(body):
                    violations["R2"].append(
                        f"{rel}:{line_of(code, start + m.start())}: "
                        f"{what} inside {name}()"
                    )

        if rel not in PRINT_ALLOWED:
            for pat, what in PRINT_PATTERNS:
                for m in pat.finditer(code):
                    # snprintf/vsnprintf are buffer formatting, not output.
                    ctx = code[max(0, m.start() - 2) : m.end()]
                    if "snprintf" in ctx:
                        continue
                    violations["R3"].append(f"{rel}:{line_of(code, m.start())}: {what}")

        if path.suffix == ".h" and "#pragma once" not in raw:
            violations["R4"].append(f"{rel}: missing #pragma once")

        if not rel.startswith("src/runtime/"):
            for pat, what in THREAD_PATTERNS:
                for m in pat.finditer(code):
                    violations["R5"].append(f"{rel}:{line_of(code, m.start())}: {what}")

        for name, start, body in function_bodies(code, BATCH_STEP_DEF):
            for pat, what in GROWTH_PATTERNS:
                for m in pat.finditer(body):
                    violations["R6"].append(
                        f"{rel}:{line_of(code, start + m.start())}: "
                        f"{what} inside BatchLaneWorld::{name}()"
                    )

        if not rel.startswith(CLOCK_ALLOWED_PREFIXES):
            for pat, what in CLOCK_PATTERNS:
                for m in pat.finditer(code):
                    violations["R7"].append(f"{rel}:{line_of(code, m.start())}: {what}")

    failed = 0
    names = {
        "R1": "no-libc-rand",
        "R2": "no-alloc-in-into",
        "R3": "no-bare-printf",
        "R4": "pragma-once",
        "R5": "no-raw-thread",
        "R6": "no-growth-in-batch-step",
        "R7": "no-raw-clock",
    }
    for rule, items in violations.items():
        if not items:
            print(f"ok   {rule} {names[rule]}")
            continue
        failed += 1
        print(f"FAIL {rule} {names[rule]} ({len(items)} violation(s)):")
        for item in items:
            print(f"     {item}")
    return failed


if __name__ == "__main__":
    sys.exit(main())
