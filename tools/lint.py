#!/usr/bin/env python3
"""Repo-specific lint rules the generic tools cannot express.

This is a small rule *framework*, not a pile of regexes: every rule is a
Rule subclass with an id, a name and a check() method; every rule has a
passing and a violating fixture under tests/lint_fixtures/ and
`lint.py --self-test` verifies each rule still fires on its fail fixture
and stays quiet on its pass fixture (run as ctest `lint_selftest`), so a
regex regression cannot silently disable a rule.

Rules (docs/CORRECTNESS.md):

  R1  no-libc-rand      std::rand / srand / rand() and time(nullptr)-style
                        seeding are forbidden outside src/common/rng.* —
                        every random stream must go through hero::Rng so runs
                        are seed-deterministic (tools/check_determinism.sh).
  R2  no-alloc-in-into  functions named *_into are the zero-allocation hot
                        path (docs/PERFORMANCE.md); their bodies must not
                        contain allocation-prone constructs (new, make_unique,
                        std::vector<...> locals, std::string construction,
                        push_back/emplace_back/reserve, malloc).
  R3  no-bare-printf    library code under src/ must not print to
                        stdout/stderr directly (printf/fprintf/std::cout/
                        std::cerr) — use common/logging.h. snprintf into a
                        buffer is fine. src/common/logging.cpp is the one
                        sanctioned sink.
  R4  pragma-once       every header under src/ starts its include guard
                        with #pragma once.
  R5  no-raw-thread     std::thread / std::jthread / std::async are forbidden
                        outside src/runtime — all concurrency goes through
                        runtime::ThreadPool so worker counts, RNG streams, and
                        shutdown stay centralized (docs/PARALLELISM.md).
  R6  no-growth-in-batch-step
                        BatchLaneWorld::step* bodies are the batch-first sim
                        hot path (docs/BATCHING.md); per-element container
                        growth (push_back/emplace_back) is forbidden there —
                        all step scratch is sized at construction, mirroring
                        R2's no-alloc contract for *_into kernels. The shared
                        sensing kernels ride the same contract:
                        SpatialIndex::build/query, BatchLaneWorld::ensure_index
                        and LaneWorld::ensure_scene run inside every step and
                        obs call (docs/PERFORMANCE.md, "Spatial neighbor
                        index").
  R7  no-raw-clock      std::chrono::steady_clock (and the other std::chrono
                        clocks) are forbidden outside src/obs — trainer and
                        rollout code times itself through obs::now_us() /
                        OBS_PHASE so phase attribution sees every clock read
                        and the determinism gate knows which fields are
                        wall-clock derived. src/common/logging.cpp (which
                        obs itself depends on) keeps its own timestamp clock.
  R8  no-raw-mutex      std::mutex / std::condition_variable / std::lock_guard
                        / std::unique_lock / std::scoped_lock (and friends)
                        are forbidden outside src/common/sync.h — all locking
                        goes through hero::Mutex / hero::MutexLock /
                        hero::CondVar, which carry the Clang thread-safety
                        capability annotations the -Wthread-safety CI gate
                        checks (docs/CORRECTNESS.md).
  R9  no-unordered-iteration-in-deterministic-paths
                        range-for over std::unordered_map / std::unordered_set
                        is forbidden in result-affecting code under src/hero,
                        src/algos, src/rl, src/sim — iteration order depends
                        on hashing/libstdc++ internals, leaks into results and
                        breaks the (seed, num_envs) determinism key. Iterate a
                        sorted container (std::map) or sort keys first.

A violation on a line whose source carries a `lint-allow(Rn): reason`
comment is waived; the reason is mandatory by convention and reviewed like
any NOLINT.

Exit status: 0 when clean, 1 when any rule found violations (counts are
printed, never encoded in the exit code). Run:

    python3 tools/lint.py [--root REPO_ROOT]
    python3 tools/lint.py --self-test   # fixture round-trip for every rule
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# ------------------------------------------------------------ framework ---

COMMENT_OR_STRING = re.compile(
    r"//.*?$|/\*.*?\*/|\"(?:[^\"\\]|\\.)*\"|'(?:[^'\\]|\\.)*'",
    re.DOTALL | re.MULTILINE,
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments/strings but preserves line structure for line numbers."""

    def repl(m: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    return COMMENT_OR_STRING.sub(repl, text)


@dataclass
class SourceFile:
    """One file under analysis, addressed by its repo-relative posix path."""

    rel: str
    raw: str
    code: str = field(default="")
    raw_lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.code:
            self.code = strip_comments_and_strings(self.raw)
        self.raw_lines = self.raw.splitlines()

    def line_of(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1


@dataclass
class Violation:
    rel: str
    line: int  # 0 = whole-file finding
    what: str

    def __str__(self) -> str:
        loc = f"{self.rel}:{self.line}" if self.line else self.rel
        return f"{loc}: {self.what}"


class Rule:
    """One lint rule. Subclasses set rid/name/doc and implement check().

    collect() runs over every file before any check() call — rules that need
    cross-file state (R9's declared-name table) accumulate it in `ctx`, a
    per-run dict keyed by rule id.
    """

    rid: str = ""
    name: str = ""

    def collect(self, f: SourceFile, ctx: dict) -> None:
        del f, ctx

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        raise NotImplementedError


def function_bodies(text: str, def_re: re.Pattern[str]):
    """Yields (name, start_offset, body_text) per definition; group 1 = name."""
    for m in def_re.finditer(text):
        # Find the opening brace of the definition (skip declarations ending ';').
        i = m.end()
        while i < len(text) and text[i] not in "{;":
            i += 1
        if i >= len(text) or text[i] == ";":
            continue
        start = i
        depth = 1
        i += 1
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        yield m.group(1), start, text[start:i]


def pattern_rule_hits(f: SourceFile, patterns) -> list[Violation]:
    out = []
    for pat, what in patterns:
        for m in pat.finditer(f.code):
            out.append(Violation(f.rel, f.line_of(m.start()), what))
    return out


# ---------------------------------------------------------------- rules ---


class NoLibcRand(Rule):
    rid, name = "R1", "no-libc-rand"
    PATTERNS = [
        (re.compile(r"\bstd::rand\b"), "std::rand"),
        (re.compile(r"(?<!\w)(?:std::)?srand\s*\("), "srand()"),
        (re.compile(r"(?<![\w:.])rand\s*\(\s*\)"), "rand()"),
        (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time(nullptr) seeding"),
    ]
    ALLOWED = {"src/common/rng.h", "src/common/rng.cpp"}

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        if f.rel in self.ALLOWED:
            return []
        return pattern_rule_hits(f, self.PATTERNS)


class NoAllocInInto(Rule):
    rid, name = "R2", "no-alloc-in-into"
    PATTERNS = [
        (re.compile(r"\bnew\b(?!\w)"), "operator new"),
        (re.compile(r"\bmake_unique\b"), "make_unique"),
        (re.compile(r"\bmake_shared\b"), "make_shared"),
        (re.compile(r"\bmalloc\s*\("), "malloc"),
        (re.compile(r"\bstd::vector\s*<"), "std::vector local"),
        (re.compile(r"\bstd::string\b(?!\s*[&*])"), "std::string construction"),
        (re.compile(r"\.(push_back|emplace_back|reserve)\s*\("), "container growth"),
    ]
    # Just name-then-paren: function_bodies() skips matches that reach ';'
    # before '{', which filters out declarations and expression-statement
    # call sites (a trailing-return or init-list between ')' and '{' would
    # be mis-scoped, but the codebase doesn't use those on _into kernels).
    INTO_DEF = re.compile(r"\b(\w+_into)\s*\(")

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        out = []
        for fn, start, body in function_bodies(f.code, self.INTO_DEF):
            for pat, what in self.PATTERNS:
                for m in pat.finditer(body):
                    out.append(
                        Violation(f.rel, f.line_of(start + m.start()),
                                  f"{what} inside {fn}()"))
        return out


class NoBarePrintf(Rule):
    rid, name = "R3", "no-bare-printf"
    PATTERNS = [
        (re.compile(r"(?<![\w:])(?:std::)?printf\s*\("), "printf"),
        (re.compile(r"(?<![\w:])(?:std::)?fprintf\s*\("), "fprintf"),
        (re.compile(r"\bstd::cout\b"), "std::cout"),
        (re.compile(r"\bstd::cerr\b"), "std::cerr"),
    ]
    ALLOWED = {"src/common/logging.cpp"}

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        if f.rel in self.ALLOWED:
            return []
        out = []
        for pat, what in self.PATTERNS:
            for m in pat.finditer(f.code):
                # snprintf/vsnprintf are buffer formatting, not output.
                if "snprintf" in f.code[max(0, m.start() - 2):m.end()]:
                    continue
                out.append(Violation(f.rel, f.line_of(m.start()), what))
        return out


class PragmaOnce(Rule):
    rid, name = "R4", "pragma-once"

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        if not f.rel.endswith(".h"):
            return []
        if "#pragma once" in f.raw:
            return []
        return [Violation(f.rel, 0, "missing #pragma once")]


class NoRawThread(Rule):
    rid, name = "R5", "no-raw-thread"
    PATTERNS = [
        (re.compile(r"\bstd::thread\b"), "std::thread"),
        (re.compile(r"\bstd::jthread\b"), "std::jthread"),
        (re.compile(r"\bstd::async\b"), "std::async"),
    ]
    ALLOWED_PREFIXES = ("src/runtime/",)

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        if f.rel.startswith(self.ALLOWED_PREFIXES):
            return []
        return pattern_rule_hits(f, self.PATTERNS)


class NoGrowthInBatchStep(Rule):
    rid, name = "R6", "no-growth-in-batch-step"
    PATTERNS = [
        (re.compile(r"\.(push_back|emplace_back)\s*\("), "per-element growth"),
    ]
    # step* phases plus the shared sensing kernels that run inside them:
    # the per-step index rebuild / window queries and the serial world's
    # scene-mirror refresh must stay growth-free too. (The serial
    # detect_collisions is excluded on purpose: it fills the caller's
    # StepResult::collided, which is per-call output, not step scratch.)
    STEP_DEF = re.compile(
        r"\b((?:BatchLaneWorld::(?:step\w*|ensure_index)|"
        r"SpatialIndex::(?:build|query\w*)|"
        r"LaneWorld::ensure_scene))\s*\(")

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        out = []
        for fn, start, body in function_bodies(f.code, self.STEP_DEF):
            for pat, what in self.PATTERNS:
                for m in pat.finditer(body):
                    out.append(
                        Violation(f.rel, f.line_of(start + m.start()),
                                  f"{what} inside {fn}()"))
        return out


class NoRawClock(Rule):
    rid, name = "R7", "no-raw-clock"
    PATTERNS = [
        (re.compile(
            r"\bstd::chrono::(steady_clock|high_resolution_clock|system_clock)\b"),
         "std::chrono clock"),
    ]
    ALLOWED_PREFIXES = ("src/obs/", "src/common/")

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        if f.rel.startswith(self.ALLOWED_PREFIXES):
            return []
        return pattern_rule_hits(f, self.PATTERNS)


class NoRawMutex(Rule):
    rid, name = "R8", "no-raw-mutex"
    PATTERNS = [
        (re.compile(r"\bstd::(recursive_|timed_|recursive_timed_|shared_)?mutex\b"),
         "std::mutex family"),
        (re.compile(r"\bstd::condition_variable(_any)?\b"), "std::condition_variable"),
        (re.compile(r"\bstd::lock_guard\b"), "std::lock_guard"),
        (re.compile(r"\bstd::unique_lock\b"), "std::unique_lock"),
        (re.compile(r"\bstd::scoped_lock\b"), "std::scoped_lock"),
        (re.compile(r"\bstd::shared_lock\b"), "std::shared_lock"),
    ]
    # The wrappers themselves are built on the std primitives.
    ALLOWED = {"src/common/sync.h"}

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        if f.rel in self.ALLOWED:
            return []
        out = pattern_rule_hits(f, self.PATTERNS)
        for v in out:
            v.what += (" — use hero::Mutex / hero::MutexLock / hero::CondVar "
                       "(common/sync.h) so the thread-safety analysis sees it")
        return out


class NoUnorderedIteration(Rule):
    rid, name = "R9", "no-unordered-iteration-in-deterministic-paths"
    # Result-affecting subsystems keyed by the (seed, num_envs) determinism
    # contract. obs/, viz/, serve/ and tooling may iterate unordered
    # containers (their output is either unordered-by-design or sorted at
    # the exporter).
    DET_PREFIXES = ("src/hero/", "src/algos/", "src/rl/", "src/sim/")
    DECL = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
    RANGE_FOR = re.compile(r"\bfor\s*\(")

    @staticmethod
    def _match_angle(text: str, start: int) -> int:
        """Offset just past the matching '>' for the '<' at `start`."""
        depth = 0
        i = start
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif text[i] in ";{}":
                break  # malformed / macro soup: bail
            i += 1
        return -1

    def _declared_names(self, f: SourceFile):
        """Yields (name, line) for identifiers declared with an unordered type."""
        for m in self.DECL.finditer(f.code):
            open_angle = f.code.index("<", m.start())
            end = self._match_angle(f.code, open_angle)
            if end < 0:
                continue
            nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", f.code[end:])
            if nm:
                yield nm.group(1), f.line_of(m.start())

    def collect(self, f: SourceFile, ctx: dict) -> None:
        # Cross-file table: members declared unordered in a header under a
        # deterministic path are flagged when iterated from the matching .cpp.
        if not f.rel.startswith(self.DET_PREFIXES):
            return
        names = ctx.setdefault(self.rid, set())
        for name, _ in self._declared_names(f):
            names.add(name)

    def check(self, f: SourceFile, ctx: dict) -> list[Violation]:
        if not f.rel.startswith(self.DET_PREFIXES):
            return []
        names: set = ctx.get(self.rid, set())
        out = []
        for m in self.RANGE_FOR.finditer(f.code):
            # Grab the parenthesized head, then the expression after the
            # first top-level ':' (absent for classic three-clause fors).
            depth, i = 0, m.end() - 1
            colon = -1
            while i < len(f.code):
                c = f.code[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif c == ":" and depth == 1 and f.code[i - 1] != ":" \
                        and f.code[i + 1:i + 2] != ":":
                    colon = i
                i += 1
            if colon < 0 or i >= len(f.code):
                continue
            expr = f.code[colon + 1:i]
            direct = "unordered_map" in expr or "unordered_set" in expr
            by_name = any(
                re.search(rf"\b{re.escape(n)}\b", expr) for n in names)
            if direct or by_name:
                out.append(Violation(
                    f.rel, f.line_of(m.start()),
                    "range-for over an unordered container in a "
                    "deterministic path — iteration order leaks into results; "
                    "iterate a sorted view instead"))
        return out


RULES: list[Rule] = [
    NoLibcRand(), NoAllocInInto(), NoBarePrintf(), PragmaOnce(),
    NoRawThread(), NoGrowthInBatchStep(), NoRawClock(), NoRawMutex(),
    NoUnorderedIteration(),
]

ALLOW_RE = re.compile(r"lint-allow\((R\d+)\)")


def apply_waivers(f: SourceFile, violations: list[Violation], rid: str):
    """Drops violations whose raw source line carries lint-allow(<rid>)."""
    kept = []
    for v in violations:
        if 1 <= v.line <= len(f.raw_lines):
            allows = set(ALLOW_RE.findall(f.raw_lines[v.line - 1]))
            if rid in allows:
                continue
        kept.append(v)
    return kept


def scan_files(root: Path):
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".h", ".cpp"}:
            continue
        rel = path.relative_to(root).as_posix()
        yield SourceFile(rel, path.read_text(encoding="utf-8"))


def run_lint(root: Path) -> int:
    files = list(scan_files(root))
    ctx: dict = {}
    for rule in RULES:
        for f in files:
            rule.collect(f, ctx)

    total = 0
    failed_rules = 0
    for rule in RULES:
        violations = []
        for f in files:
            violations += apply_waivers(f, rule.check(f, ctx), rule.rid)
        if not violations:
            print(f"ok   {rule.rid} {rule.name}")
            continue
        failed_rules += 1
        total += len(violations)
        print(f"FAIL {rule.rid} {rule.name} ({len(violations)} violation(s)):")
        for v in violations:
            print(f"     {v}")
    print(f"lint: {len(RULES)} rules, {failed_rules} failed, "
          f"{total} violation(s)")
    # Exit status is strictly 0/1 — counts above; an exit code equal to the
    # violation count would wrap mod 256 and could report success.
    return 0 if total == 0 else 1


# ------------------------------------------------------------- self-test ---

FIXTURE_PATH_RE = re.compile(r"^//\s*lint-fixture-path:\s*(\S+)\s*$", re.MULTILINE)


def load_fixture(path: Path) -> SourceFile:
    raw = path.read_text(encoding="utf-8")
    m = FIXTURE_PATH_RE.search(raw)
    if not m:
        raise SystemExit(
            f"self-test: {path} lacks a '// lint-fixture-path: src/...' header")
    return SourceFile(m.group(1), raw)


def run_rule(rule: Rule, f: SourceFile) -> list[Violation]:
    ctx: dict = {}
    rule.collect(f, ctx)
    return apply_waivers(f, rule.check(f, ctx), rule.rid)


def run_self_test(fixture_dir: Path) -> int:
    """Every rule must stay quiet on its *_pass fixture and fire on *_fail."""
    ok = True
    for rule in RULES:
        cases = sorted(fixture_dir.glob(f"{rule.rid}_*"))
        if not any("pass" in c.stem for c in cases) or \
           not any("fail" in c.stem for c in cases):
            print(f"SELF-TEST FAIL {rule.rid}: needs both a *_pass and a "
                  f"*_fail fixture in {fixture_dir}")
            ok = False
            continue
        for case in cases:
            f = load_fixture(case)
            violations = run_rule(rule, f)
            want_clean = "pass" in case.stem
            if want_clean and violations:
                print(f"SELF-TEST FAIL {rule.rid} {case.name}: expected clean, got:")
                for v in violations:
                    print(f"     {v}")
                ok = False
            elif not want_clean and not violations:
                print(f"SELF-TEST FAIL {rule.rid} {case.name}: expected >=1 "
                      f"violation, rule stayed quiet (regex regression?)")
                ok = False
            else:
                verdict = "clean" if want_clean else f"{len(violations)} hit(s)"
                print(f"ok   {rule.rid} {case.name}: {verdict}")
    print("self-test:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--self-test", action="store_true",
                    help="run every rule against its tests/lint_fixtures/ pair")
    args = ap.parse_args()
    if args.self_test:
        return run_self_test(args.root / "tests" / "lint_fixtures")
    return run_lint(args.root)


if __name__ == "__main__":
    sys.exit(main())
