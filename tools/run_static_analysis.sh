#!/usr/bin/env sh
# Static-analysis gate: clang-tidy (curated .clang-tidy check set), cppcheck
# and Clang thread-safety analysis over src/, plus an optional clang-format
# conformance pass.
#
#   tools/run_static_analysis.sh [build_dir] [--tidy] [--cppcheck] \
#                                [--thread-safety] [--format]
#
# With no selector flags, runs every analysis whose tool is installed and
# *fails* only on findings — a missing tool is reported and skipped so the
# script is usable in minimal containers (CI installs pinned versions and
# exports HERO_REQUIRE_TOOLS=1, which turns a missing tool into a failure).
# The thread-safety pass additionally skips when the available compiler is
# not clang (GCC does not implement -Wthread-safety); the annotations in
# common/sync.h compile away there, so only clang can check them.
#
# Outputs:
#   <build_dir>/analysis/clang-tidy.log
#   <build_dir>/analysis/cppcheck.log
#   <build_dir>/analysis/thread-safety.log  (uploaded as CI artifacts)
#
# Requires compile_commands.json in the build dir (the top-level CMakeLists
# sets CMAKE_EXPORT_COMPILE_COMMANDS ON).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
run_tidy=0 run_cppcheck=0 run_threadsafety=0 run_format=0 any_selected=0

for arg in "$@"; do
    case "$arg" in
        --tidy)          run_tidy=1; any_selected=1 ;;
        --cppcheck)      run_cppcheck=1; any_selected=1 ;;
        --thread-safety) run_threadsafety=1; any_selected=1 ;;
        --format)        run_format=1; any_selected=1 ;;
        -*)              echo "unknown flag: $arg" >&2; exit 2 ;;
        *)               build_dir="$arg" ;;
    esac
done
if [ "$any_selected" = "0" ]; then
    run_tidy=1; run_cppcheck=1; run_threadsafety=1; run_format=1
fi

require_tools=${HERO_REQUIRE_TOOLS:-0}
out_dir="$build_dir/analysis"
mkdir -p "$out_dir"
status=0

missing() {
    if [ "$require_tools" = "1" ]; then
        echo "ERROR: $1 not found (HERO_REQUIRE_TOOLS=1)" >&2
        return 1
    fi
    echo "-- $1 not installed; skipping (set HERO_REQUIRE_TOOLS=1 to fail instead)"
    return 0
}

# Sources under the gate: the library proper. tools/, bench/ and examples/
# are driver code held to the compiler-warning bar only.
src_files=$(find "$repo_root/src" -name '*.cpp' | sort)

if [ "$run_tidy" = "1" ]; then
    tidy_bin=${CLANG_TIDY:-clang-tidy}
    if ! command -v "$tidy_bin" > /dev/null 2>&1; then
        missing "$tidy_bin" || status=1
    else
        if [ ! -f "$build_dir/compile_commands.json" ]; then
            echo "configuring $build_dir for compile_commands.json"
            cmake -B "$build_dir" -S "$repo_root" > /dev/null
        fi
        echo "== clang-tidy ($("$tidy_bin" --version | head -n 1)) =="
        # shellcheck disable=SC2086
        if "$tidy_bin" -p "$build_dir" --quiet $src_files \
                > "$out_dir/clang-tidy.log" 2>&1; then
            echo "clang-tidy: clean"
        else
            echo "clang-tidy: FINDINGS (see $out_dir/clang-tidy.log)"
            grep -E "(warning|error):" "$out_dir/clang-tidy.log" | head -n 50 || true
            status=1
        fi
    fi
fi

if [ "$run_cppcheck" = "1" ]; then
    cppcheck_bin=${CPPCHECK:-cppcheck}
    if ! command -v "$cppcheck_bin" > /dev/null 2>&1; then
        missing "$cppcheck_bin" || status=1
    else
        echo "== cppcheck ($("$cppcheck_bin" --version)) =="
        if "$cppcheck_bin" \
                --enable=warning,performance,portability \
                --inline-suppr \
                --suppressions-list="$repo_root/.cppcheck-suppressions" \
                --error-exitcode=1 \
                --std=c++20 --language=c++ \
                -I "$repo_root/src" \
                "$repo_root/src" > "$out_dir/cppcheck.log" 2>&1; then
            echo "cppcheck: clean"
        else
            echo "cppcheck: FINDINGS (see $out_dir/cppcheck.log)"
            tail -n 50 "$out_dir/cppcheck.log" || true
            status=1
        fi
    fi
fi

if [ "$run_threadsafety" = "1" ]; then
    # Compile-time lock checking (docs/CORRECTNESS.md): every translation
    # unit must be clean under -Wthread-safety given the capability
    # annotations on hero::Mutex/MutexLock/CondVar (common/sync.h) and the
    # HERO_GUARDED_BY/HERO_REQUIRES contracts on guarded state. Syntax-only:
    # no objects are produced, so this runs without a configured build.
    cxx_bin=${CLANG_CXX:-clang++}
    if ! command -v "$cxx_bin" > /dev/null 2>&1; then
        missing "$cxx_bin" || status=1
    elif ! "$cxx_bin" --version 2> /dev/null | grep -qi clang; then
        # Only clang implements -Wthread-safety; under GCC the annotations
        # compile away and there is nothing to check.
        missing "clang ($cxx_bin is not clang)" || status=1
    else
        echo "== thread-safety ($("$cxx_bin" --version | head -n 1)) =="
        : > "$out_dir/thread-safety.log"
        ts_bad=0
        for f in $src_files; do
            if ! "$cxx_bin" -fsyntax-only -std=c++20 -I "$repo_root/src" \
                    -Wthread-safety -Werror=thread-safety-analysis \
                    "$f" >> "$out_dir/thread-safety.log" 2>&1; then
                ts_bad=$((ts_bad + 1))
            fi
        done
        if [ "$ts_bad" = "0" ]; then
            echo "thread-safety: clean"
        else
            echo "thread-safety: $ts_bad file(s) with FINDINGS (see $out_dir/thread-safety.log)"
            grep -E "(warning|error):" "$out_dir/thread-safety.log" | head -n 50 || true
            status=1
        fi
    fi
fi

if [ "$run_format" = "1" ]; then
    fmt_bin=${CLANG_FORMAT:-clang-format}
    if ! command -v "$fmt_bin" > /dev/null 2>&1; then
        missing "$fmt_bin" || status=1
    else
        echo "== clang-format ($("$fmt_bin" --version)) =="
        # Conformance is advisory for pre-existing files; new files should be
        # clean. --dry-run -Werror reports but we do not gate the whole tree
        # retroactively — CI treats format drift as a warning.
        drift=0
        for f in $src_files; do
            "$fmt_bin" --dry-run -Werror "$f" > /dev/null 2>&1 || drift=$((drift + 1))
        done
        echo "clang-format: $drift file(s) differ from .clang-format (advisory)"
    fi
fi

exit "$status"
