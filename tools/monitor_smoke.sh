#!/usr/bin/env sh
# Run-health smoke gate: proves the monitoring pipeline end to end.
#
#   tools/monitor_smoke.sh [build_dir]
#
#   1. healthy pass — a tiny instrumented hero_train run with rolling
#      snapshots (--metrics-every) must leave a parseable snapshot, and
#      `hero_monitor --once` over its artifacts must exit 0.
#   2. flag parity — hero_train and hero_eval must both reject
#      --metrics-every without --metrics-out (usage error, exit 2).
#   3. sick fail — an injected-alert telemetry fixture must make
#      `hero_monitor --once` exit 1 and name the offending rule; acking
#      that rule must bring it back to exit 0.
#
# docs/OBSERVABILITY.md ("Run health") describes the layer under test.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" --target hero_train hero_eval hero_monitor \
    -j"$(nproc 2>/dev/null || echo 1)" > /dev/null

work=$(mktemp -d "${TMPDIR:-/tmp}/hero_monitor_smoke.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

train="$build_dir/tools/hero_train"
eval_bin="$build_dir/tools/hero_eval"
monitor="$build_dir/tools/hero_monitor"

# --- 1. healthy pass ------------------------------------------------------
echo "monitor-smoke: instrumented 2-episode run..."
"$train" --out "$work/ckpt" --seed 5 \
    --skill-episodes 1 --episodes 2 --hl-warmup 8 --hl-batch 8 \
    --metrics-out "$work/m.json" --metrics-every 1 \
    --telemetry-out "$work/run.jsonl" > "$work/train.log"

test -s "$work/m.json" || { echo "FAIL: no metrics snapshot written"; exit 1; }
grep -q '"phases"' "$work/m.json" \
    || { echo "FAIL: snapshot carries no phase tree"; exit 1; }
grep -q '"manifest"' "$work/m.json" \
    || { echo "FAIL: snapshot carries no run manifest"; exit 1; }
grep -q '"event": "run_start"' "$work/run.jsonl" \
    || { echo "FAIL: telemetry carries no run_start manifest"; exit 1; }

if ! "$monitor" --metrics "$work/m.json" --telemetry "$work/run.jsonl" --once \
        > "$work/monitor_healthy.log"; then
    echo "FAIL: hero_monitor flagged a healthy run:"
    cat "$work/monitor_healthy.log"
    exit 1
fi
echo "ok: healthy run monitors clean"

# --- 2. flag parity -------------------------------------------------------
for bin in "$train" "$eval_bin"; do
    if "$bin" --metrics-every 2 > "$work/parity.log" 2>&1; then
        echo "FAIL: $(basename "$bin") accepted --metrics-every without --metrics-out"
        exit 1
    fi
    grep -q "metrics-out" "$work/parity.log" \
        || { echo "FAIL: $(basename "$bin") error does not mention --metrics-out"; exit 1; }
done
echo "ok: both tools reject --metrics-every without --metrics-out"

# --- 3. sick fail ---------------------------------------------------------
cat > "$work/sick.jsonl" <<'EOF'
{"event": "run_start", "t_s": 0.0, "tool": "hero_train", "seed": 5, "seq": 0}
{"event": "stage2/episode", "t_s": 1.0, "episode": 0, "reward": -3.0, "steps": 40, "seq": 1}
{"event": "alert", "t_s": 2.0, "rule": "nan_loss", "episode": 1, "value": 0.0, "threshold": 0.0, "message": "critic loss is NaN", "wallclock": false, "seq": 2}
EOF

set +e
"$monitor" --telemetry "$work/sick.jsonl" --once > "$work/monitor_sick.log"
sick_status=$?
set -e
if [ "$sick_status" -ne 1 ]; then
    echo "FAIL: expected exit 1 on injected alert, got $sick_status"
    cat "$work/monitor_sick.log"
    exit 1
fi
grep -q "nan_loss" "$work/monitor_sick.log" \
    || { echo "FAIL: sick verdict does not name the firing rule"; exit 1; }
echo "ok: injected alert fails the monitor and names nan_loss"

"$monitor" --telemetry "$work/sick.jsonl" --once --ack nan_loss > /dev/null \
    || { echo "FAIL: --ack nan_loss did not clear the verdict"; exit 1; }
echo "ok: acknowledged alert passes"

echo "monitor-smoke PASSED"
