// hero_eval — load a hero_train checkpoint and evaluate it greedily, on the
// clean simulator and/or the domain-shifted "real-world" configuration.
//
//   hero_eval --ckpt ckpt/ [--episodes 50] [--learners 3] [--seed 9]
//             [--scenario cfg.json] [--scenario-vehicles N]
//             [--real-world] [--svg episode.svg]
//             [--metrics-out m.json] [--trace-out t.json]
//             [--telemetry-out run.jsonl]
//
// `--svg` renders the first evaluation episode's trajectories. The three
// `--*-out` flags enable the observability layer (docs/OBSERVABILITY.md).
// `--scenario` evaluates on a declarative scenario config (must match the
// geometry the checkpoint was trained on); --learners is then ignored.
#include <cstdio>
#include <exception>

#include "common/flags.h"
#include "hero/checkpoint.h"
#include "hero/hero_trainer.h"
#include "obs/obs.h"
#include "rl/evaluation.h"
#include "sim/scenario.h"
#include "viz/trajectory.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string ckpt = flags.get_string("ckpt", "hero_ckpt");
  const int episodes = flags.get_int("episodes", 50);
  const int learners = flags.get_int("learners", 3);
  const std::string scenario_path = flags.get_string("scenario", "");
  const int scenario_vehicles = flags.get_int("scenario-vehicles", 0);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 9));
  const bool real_world = flags.get_bool("real-world", false);
  const std::string svg = flags.get_string("svg", "");
  const obs::Outputs obs_out = obs::configure(flags);
  flags.check_unknown();

  Rng rng(seed);
  sim::Scenario scenario;
  if (!scenario_path.empty()) {
    try {
      scenario = sim::load_scenario(scenario_path, scenario_vehicles);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hero_eval: %s\n", e.what());
      return 1;
    }
  } else {
    scenario = sim::cooperative_lane_change(learners);
  }
  core::HeroConfig cfg;
  try {
    // Checkpoints are self-describing: adopt the manifest's network widths
    // so --hidden checkpoints evaluate without extra geometry flags.
    core::CheckpointManifest peek;
    if (core::read_manifest(ckpt, &peek)) {
      core::apply_manifest_geometry(peek, &cfg);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hero_eval: %s\n", e.what());
    return 1;
  }
  core::HeroTrainer trainer(scenario, cfg, rng);

  {
    std::string canonical;
    for (int i = 1; i < argc; ++i) {
      canonical += argv[i];
      canonical += ' ';
    }
    obs::RunManifest manifest = obs::default_manifest("hero_eval");
    manifest.seed = static_cast<long long>(seed);
    manifest.config_digest = obs::config_digest(canonical);
    obs::set_run_manifest(manifest);
  }

  bool legacy = false;
  try {
    core::load_checkpoint(trainer, ckpt, &legacy);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hero_eval: %s\n", e.what());
    return 1;
  }
  if (legacy) {
    std::printf("warning: %s/ has no checkpoint.json manifest (legacy "
                "checkpoint, loaded unvalidated)\n",
                ckpt.c_str());
  }
  std::printf("loaded checkpoint from %s/\n", ckpt.c_str());

  auto world_cfg =
      real_world ? sim::with_real_world_shift(scenario.config) : scenario.config;
  sim::LaneWorld world(world_cfg);

  if (!svg.empty()) {
    world.reset(rng);
    trainer.begin_episode(world);
    viz::TrajectoryRecorder rec;
    rec.start(world);
    while (!world.done()) {
      auto cmds = trainer.act(world, rng, /*explore=*/false);
      auto r = world.step(cmds, rng);
      rec.record(world, r.collision);
    }
    rec.render_svg(svg, world.track());
    std::printf("trajectory rendered to %s (%s)\n", svg.c_str(),
                rec.had_collision() ? "collision" : "clean");
  }

  auto summary = rl::evaluate(world, trainer, rng, episodes, scenario.merger_index,
                              scenario.merger_target_lane);
  std::printf("%s evaluation over %d episodes:\n",
              real_world ? "real-world (domain-shifted)" : "simulation", episodes);
  std::printf("  mean episode reward  %8.3f\n", summary.mean_reward);
  std::printf("  collision rate       %8.3f\n", summary.collision_rate);
  std::printf("  merge success rate   %8.3f\n", summary.success_rate);
  std::printf("  mean speed           %8.4f m/s\n", summary.mean_speed);
  obs::finalize(obs_out);
  return 0;
}
