#!/usr/bin/env sh
# Regression gate for bench_json snapshots.
#
#   tools/bench_gate.sh NEW SEED METRIC_KEY DIRECTION [THRESHOLD_PCT]
#   tools/bench_gate.sh --self-test
#
# NEW / SEED are bench_json snapshots ({"benchmarks": [{"name": ..,
# "<METRIC_KEY>": ..}, ...]}). DIRECTION makes the comparison semantics
# explicit instead of baked into the metric name:
#
#   higher_is_worse   latency-style metrics (real_time_ns): the gate fails
#                     when NEW is more than THRESHOLD_PCT *above* SEED.
#   lower_is_worse    throughput-style metrics (steps_per_sec): the gate
#                     fails when NEW is more than THRESHOLD_PCT *below* SEED.
#
# THRESHOLD_PCT defaults to 25 (QEMU/shared-runner timings swing by ±20%).
# Benchmarks present in only one snapshot are reported and skipped, so newly
# added cases never fail the gate before their baseline lands.
#
# --self-test exercises both directions against synthetic fixtures and exits
# non-zero if the gate ever misclassifies a regression or an improvement.
# It runs in CI (ctest: bench_gate_selftest) so the gate itself is tested.
set -eu

usage() {
    echo "usage: $0 NEW SEED METRIC_KEY {higher_is_worse|lower_is_worse} [THRESHOLD_PCT]" >&2
    echo "       $0 --self-test" >&2
    exit 2
}

# gate NEW SEED KEY DIRECTION THRESHOLD — prints a per-benchmark table,
# returns 1 if any benchmark regressed beyond the threshold.
gate() {
    new=$1 seed=$2 key=$3 dir=$4 pct=$5
    if [ ! -f "$seed" ]; then
        echo "no seed snapshot $seed — skipping"
        return 0
    fi
    awk -v pct="$pct" -v key="$key" -v dir="$dir" '
        BEGIN { FS = "\"" }
        $2 == "name" && $6 == key {
            v = $7
            sub(/^: */, "", v)
            sub(/[,}].*/, "", v)
            if (NR == FNR) seedval[$4] = v + 0
            else { newval[$4] = v + 0; order[++n] = $4 }
        }
        END {
            bad = 0
            nreg = 0
            for (i = 1; i <= n; ++i) {
                name = order[i]
                if (!(name in seedval) || seedval[name] <= 0) {
                    printf "  %-36s (no seed baseline — skipped)\n", name
                    continue
                }
                ratio = newval[name] / seedval[name]
                worse = (dir == "higher_is_worse") ? (ratio - 1) * 100 : (1 - ratio) * 100
                flag = ""
                if (worse > pct) { flag = "  << REGRESSION"; bad = 1; reg[++nreg] = name }
                printf "  %-36s seed %14.1f  new %14.1f  %+6.1f%%%s\n", \
                       name, seedval[name], newval[name], (ratio - 1) * 100, flag
            }
            if (bad) {
                # Failure recap: only the regressed entries, old -> new, so CI
                # logs surface the offenders without re-reading the table.
                printf "\n  regression recap (%s, threshold %.0f%%):\n", dir, pct
                for (i = 1; i <= nreg; ++i) {
                    name = reg[i]
                    printf "    %s: %.1f -> %.1f (%+.1f%%)\n", \
                           name, seedval[name], newval[name], \
                           (newval[name] / seedval[name] - 1) * 100
                }
            }
            exit bad
        }
    ' "$seed" "$new"
}

self_test() {
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT INT TERM
    fails=0

    snapshot() {  # snapshot FILE KEY NAME=VALUE...
        f=$1 k=$2
        shift 2
        {
            printf '{\n  "kind": "self_test",\n  "benchmarks": [\n'
            count=$# i=0
            for pair in "$@"; do
                i=$((i + 1))
                comma=","
                [ "$i" -eq "$count" ] && comma=""
                printf '    {"name": "%s", "%s": %s}%s\n' \
                    "${pair%%=*}" "$k" "${pair#*=}" "$comma"
            done
            printf '  ]\n}\n'
        } > "$f"
    }

    expect() {  # expect LABEL WANT_STATUS gate-args...
        label=$1 want=$2
        shift 2
        got=0
        gate "$@" > /dev/null 2>&1 || got=$?
        if [ "$got" -ne "$want" ]; then
            echo "self-test FAIL: $label (want exit $want, got $got)" >&2
            fails=$((fails + 1))
        else
            echo "self-test ok:   $label"
        fi
    }

    # Throughput metric (steps/sec): lower is worse.
    snapshot "$tmp/tp_seed.json" steps_per_sec base=1000 other=500
    snapshot "$tmp/tp_drop.json" steps_per_sec base=700  other=500   # −30%
    snapshot "$tmp/tp_gain.json" steps_per_sec base=1400 other=500   # +40%
    snapshot "$tmp/tp_near.json" steps_per_sec base=900  other=500   # −10%
    snapshot "$tmp/tp_new.json"  steps_per_sec base=1000 fresh=42
    expect "throughput drop beyond threshold fails" 1 \
        "$tmp/tp_drop.json" "$tmp/tp_seed.json" steps_per_sec lower_is_worse 25
    expect "throughput gain passes" 0 \
        "$tmp/tp_gain.json" "$tmp/tp_seed.json" steps_per_sec lower_is_worse 25
    expect "throughput drop within threshold passes" 0 \
        "$tmp/tp_near.json" "$tmp/tp_seed.json" steps_per_sec lower_is_worse 25
    expect "unseeded benchmark is skipped" 0 \
        "$tmp/tp_new.json" "$tmp/tp_seed.json" steps_per_sec lower_is_worse 25
    expect "missing seed file is skipped" 0 \
        "$tmp/tp_new.json" "$tmp/absent.json" steps_per_sec lower_is_worse 25

    # Latency metric (ns/iter): higher is worse — the opposite polarity.
    snapshot "$tmp/ns_seed.json" real_time_ns op=100
    snapshot "$tmp/ns_rise.json" real_time_ns op=140   # +40%
    snapshot "$tmp/ns_fall.json" real_time_ns op=60    # −40%
    expect "latency rise beyond threshold fails" 1 \
        "$tmp/ns_rise.json" "$tmp/ns_seed.json" real_time_ns higher_is_worse 25
    expect "latency fall passes" 0 \
        "$tmp/ns_fall.json" "$tmp/ns_seed.json" real_time_ns higher_is_worse 25

    # A 40% throughput gain must FAIL under the wrong direction — guards
    # against ever wiring steps_per_sec through higher_is_worse again.
    expect "direction polarity is honoured" 1 \
        "$tmp/tp_gain.json" "$tmp/tp_seed.json" steps_per_sec higher_is_worse 25

    # A failing gate must end with a recap that names each regressed entry
    # with its old -> new values; a passing gate must not print one.
    out=$(gate "$tmp/tp_drop.json" "$tmp/tp_seed.json" steps_per_sec lower_is_worse 25 2>&1) || true
    case "$out" in
        *"regression recap"*"base: 1000.0 -> 700.0"*)
            echo "self-test ok:   failure recap lists regressed entries" ;;
        *)
            echo "self-test FAIL: failure recap missing or malformed" >&2
            fails=$((fails + 1)) ;;
    esac
    out=$(gate "$tmp/tp_gain.json" "$tmp/tp_seed.json" steps_per_sec lower_is_worse 25 2>&1) || true
    case "$out" in
        *"regression recap"*)
            echo "self-test FAIL: recap printed on a passing gate" >&2
            fails=$((fails + 1)) ;;
        *)
            echo "self-test ok:   no recap on a passing gate" ;;
    esac

    [ "$fails" -eq 0 ] || exit 1
    echo "bench_gate self-test: all checks passed"
}

case "${1:-}" in
    --self-test)
        self_test
        exit 0
        ;;
    ""|-h|--help)
        usage
        ;;
esac

[ $# -ge 4 ] || usage
case "$4" in
    higher_is_worse|lower_is_worse) ;;
    *) echo "bench_gate.sh: unknown direction '$4'" >&2; usage ;;
esac

gate "$1" "$2" "$3" "$4" "${5:-25}"
