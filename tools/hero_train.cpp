// hero_train — train the full HERO model on the cooperative lane-change
// scenario and write a checkpoint directory deployable with hero_eval.
//
//   hero_train --out ckpt/ [--skill-episodes 400] [--episodes 2000]
//              [--learners 3] [--seed 1] [--no-opponent-model]
//              [--scenario cfg.json] [--scenario-vehicles N]
//              [--synchronous-termination] [--curves prefix]
//              [--hl-warmup N] [--hl-batch N]
//              [--num-workers N] [--num-envs N] [--batch-envs N]
//              [--metrics-out m.json] [--trace-out t.json]
//              [--telemetry-out run.jsonl]
//
// `--hl-warmup` / `--hl-batch` override the high-level replay warmup and
// batch size (smoke runs shrink them so gradient updates happen within a
// couple of episodes).
//
// `--num-workers N` collects stage-2 episodes on N worker threads (and runs
// stage-1 skill training on the same pool); `--num-envs` sets how many
// environment instances a round spans (default: one per worker). Results
// are keyed to (seed, num_envs) and invariant to the worker count — see
// docs/PARALLELISM.md for the determinism contract.
//
// `--batch-envs N` switches stage 2 to the single-threaded batch-first
// rollout engine instead: N episodes step in lockstep through a vectorized
// world with batched network evaluation (docs/BATCHING.md). Takes
// precedence over --num-workers; results are keyed to (seed, batch_envs).
//
// `--scenario cfg.json` trains on a declarative scenario config (e.g.
// scenarios/dense_traffic.json) instead of the built-in cooperative
// lane-change; --learners is ignored. `--scenario-vehicles N` overrides the
// config's traffic.num_vehicles (the V ∈ {64, 128, 256} density sweep).
//
// `--curves prefix` additionally writes <prefix>_reward.svg /
// <prefix>_collision.svg / <prefix>_success.svg learning-curve plots.
// The three `--*-out` flags enable the observability layer
// (docs/OBSERVABILITY.md): a metrics snapshot, a Chrome trace, and the
// structured per-episode telemetry stream.
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "common/stats.h"
#include "hero/hero_trainer.h"
#include "obs/obs.h"
#include "sim/scenario.h"
#include "viz/plot.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string out = flags.get_string("out", "hero_ckpt");
  const int skill_episodes = flags.get_int("skill-episodes", 400);
  const int episodes = flags.get_int("episodes", 2000);
  const int learners = flags.get_int("learners", 3);
  const std::string scenario_path = flags.get_string("scenario", "");
  const int scenario_vehicles = flags.get_int("scenario-vehicles", 0);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  const bool use_opp = flags.get_bool("opponent-model", true);
  const bool sync_term = flags.get_bool("synchronous-termination", false);
  const std::string curves = flags.get_string("curves", "");
  const int hl_warmup = flags.get_int("hl-warmup", -1);
  const int hl_batch = flags.get_int("hl-batch", -1);
  const int num_workers = flags.get_int("num-workers", 1);
  const int num_envs = flags.get_int("num-envs", 0);
  const int batch_envs = flags.get_int("batch-envs", 0);
  const int hidden = flags.get_int("hidden", 0);
  const obs::Outputs obs_out = obs::configure(flags);
  flags.check_unknown();

  Rng rng(seed);
  sim::Scenario scenario;
  if (!scenario_path.empty()) {
    try {
      scenario = sim::load_scenario(scenario_path, scenario_vehicles);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else {
    scenario = sim::cooperative_lane_change(learners);
  }
  core::HeroConfig cfg;
  cfg.high.use_opponent_model = use_opp;
  cfg.skill.termination.synchronous = sync_term;
  if (hl_warmup >= 0) cfg.high.warmup_transitions = static_cast<std::size_t>(hl_warmup);
  if (hl_batch > 0) cfg.high.batch = static_cast<std::size_t>(hl_batch);
  cfg.num_workers = std::max(1, num_workers);
  cfg.num_envs = std::max(0, num_envs);
  cfg.batch_envs = std::max(0, batch_envs);
  if (hidden > 0) {
    // Serving-scale networks (docs/SERVING.md): one knob widens every net.
    // The checkpoint manifest records the widths, so downstream tools adapt
    // without repeating this flag.
    const auto h = static_cast<std::size_t>(hidden);
    cfg.high.hidden = {h, h};
    cfg.skill.sac.hidden = {h, h};
    cfg.opponent.hidden = {h};
  }
  core::HeroTrainer trainer(scenario, cfg, rng);

  {
    std::string canonical;
    for (int i = 1; i < argc; ++i) {
      canonical += argv[i];
      canonical += ' ';
    }
    obs::RunManifest manifest = obs::default_manifest("hero_train");
    manifest.seed = static_cast<long long>(seed);
    manifest.num_workers = cfg.num_workers;
    manifest.num_envs = cfg.num_envs;
    manifest.batch_envs = cfg.batch_envs;
    manifest.config_digest = obs::config_digest(canonical);
    obs::set_run_manifest(manifest);
  }

  std::printf("stage 1: training %d skills x %d episodes...\n", 3, skill_episodes);
  trainer.train_skills(skill_episodes, rng, [&](core::Option o, int ep, double r) {
    if ((ep + 1) % std::max(1, skill_episodes / 4) == 0) {
      std::printf("  [%s] ep %d  reward %.2f\n", core::option_name(o), ep + 1, r);
    }
  });

  std::printf("stage 2: cooperative training, %d episodes...\n", episodes);
  std::vector<rl::EpisodeStats> stats;
  MovingAverage rew(100), col(100), suc(100);
  trainer.train(episodes, rng, [&](int ep, const rl::EpisodeStats& s) {
    stats.push_back(s);
    rew.add(s.team_reward);
    col.add(s.collision ? 1.0 : 0.0);
    suc.add(s.success ? 1.0 : 0.0);
    if ((ep + 1) % std::max(1, episodes / 10) == 0) {
      std::printf("  ep %5d  reward %7.2f  collision %.2f  success %.2f\n", ep + 1,
                  rew.value(), col.value(), suc.value());
    }
  });

  std::filesystem::create_directories(out);
  trainer.save(out);
  std::printf("checkpoint written to %s/\n", out.c_str());

  if (!curves.empty()) {
    auto metric_plot = [&](const char* metric, const char* ylabel, auto extract) {
      std::vector<double> series;
      MovingAverage ma(100);
      for (const auto& s : stats) series.push_back(ma.add(extract(s)));
      viz::PlotOptions opts;
      opts.title = std::string("HERO training: ") + ylabel;
      opts.y_label = ylabel;
      const std::string path = curves + "_" + metric + ".svg";
      viz::plot_series({{"hero", series}}, opts, path);
      std::printf("curve written to %s\n", path.c_str());
    };
    metric_plot("reward", "episode reward",
                [](const rl::EpisodeStats& s) { return s.team_reward; });
    metric_plot("collision", "collision rate",
                [](const rl::EpisodeStats& s) { return s.collision ? 1.0 : 0.0; });
    metric_plot("success", "merge success rate",
                [](const rl::EpisodeStats& s) { return s.success ? 1.0 : 0.0; });
  }
  obs::finalize(obs_out);
  return 0;
}
