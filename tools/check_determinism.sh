#!/usr/bin/env sh
# Seed-determinism gate: runs hero_train twice with the same seed and fails
# unless the two runs are bitwise identical in everything that matters —
# the saved checkpoint directory and the telemetry JSONL stream (normalized:
# wall-clock fields stripped, lines canonically sorted because stage-1 skill
# threads interleave their writes nondeterministically while the *content*
# of every line is deterministic per-thread).
#
#   tools/check_determinism.sh [build_dir]
#
# Knobs:
#   DET_SEED            seed passed to both runs       (default 7)
#   DET_EPISODES        stage-2 episodes               (default 2)
#   DET_SKILL_EPISODES  stage-1 episodes per skill     (default 2)
#   DET_WORKERS         --num-workers for both runs    (default 1)
#   DET_ENVS            --num-envs for both runs       (default 0 = workers)
#   DET_BATCH_ENVS      --batch-envs for both runs     (default 0 = off)
#   DET_SCENARIO        --scenario config for both runs (default "" = off)
#   DET_SCENARIO_VEHICLES  --scenario-vehicles override (default 0 = config)
#
# With DET_WORKERS > 1 the gate checks the parallel runtime's same-seed
# self-consistency: episode RNG streams are keyed to (seed, num_envs), so
# two identically-seeded multi-worker runs must still agree bitwise
# (docs/PARALLELISM.md). CI runs the gate at 1 and 4 workers.
#
# With DET_BATCH_ENVS > 0 the batch-first rollout engine collects stage 2
# (docs/BATCHING.md): results are keyed to (seed, batch_envs), so two
# identically-seeded runs at the same width must agree bitwise. CI runs
# the gate at widths 1 and 16.
#
# With DET_SCENARIO set the gate trains on a declarative scenario config
# instead of the built-in cooperative lane-change — CI uses this to pin
# the dense-traffic spatial-index paths (scenarios/dense_traffic.json at
# V=64) to the same bitwise contract.
#
# A diff here means a hidden entropy source crept in (an unseeded RNG,
# iteration over pointer-keyed containers, uninitialized reads feeding
# control flow) — exactly what lint rule R1 and docs/CORRECTNESS.md exist
# to keep out.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

seed=${DET_SEED:-7}
episodes=${DET_EPISODES:-2}
skill_episodes=${DET_SKILL_EPISODES:-2}
workers=${DET_WORKERS:-1}
envs=${DET_ENVS:-0}
batch_envs=${DET_BATCH_ENVS:-0}
scenario=${DET_SCENARIO:-}
scenario_vehicles=${DET_SCENARIO_VEHICLES:-0}

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" --target hero_train -j"$(nproc 2>/dev/null || echo 1)" \
    > /dev/null

work=$(mktemp -d "${TMPDIR:-/tmp}/hero_determinism.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

run() {
    out_dir="$work/run$1"
    mkdir -p "$out_dir"
    "$build_dir/tools/hero_train" \
        --out "$out_dir/ckpt" \
        --seed "$seed" \
        --skill-episodes "$skill_episodes" \
        --episodes "$episodes" \
        --hl-warmup 8 --hl-batch 8 \
        --num-workers "$workers" --num-envs "$envs" \
        --batch-envs "$batch_envs" \
        ${scenario:+--scenario "$scenario"} \
        ${scenario:+--scenario-vehicles "$scenario_vehicles"} \
        --telemetry-out "$out_dir/telemetry.jsonl" \
        > "$out_dir/stdout.log"
}

echo "run 1/2 (seed $seed, $skill_episodes skill episodes, $episodes episodes, $workers workers, batch $batch_envs${scenario:+, scenario $scenario})..."
run 1
echo "run 2/2..."
run 2

# Strip wall-clock-derived fields (t_s timestamps, steps_per_sec throughput)
# and write-order fields (seq), re-serialize each event with sorted keys,
# then sort lines: thread interleaving cannot perturb the result, any payload
# difference still fails.
normalize() {
    python3 - "$1" "$2" <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
lines = []
with open(src) as f:
    for raw in f:
        raw = raw.strip()
        if not raw:
            continue
        event = json.loads(raw)
        # Alerts flagged wallclock (e.g. throughput_collapse) depend on
        # machine speed, not the seed; the run_end verdict/alert count can
        # inherit that dependence, so both are excluded from the diff.
        if event.get("event") == "alert" and event.get("wallclock"):
            continue
        if event.get("event") == "run_end":
            event.pop("verdict", None)
            event.pop("alerts", None)
        # The manifest digest hashes the full command line; the two runs
        # here differ only in --out / --telemetry-out paths, so it must
        # not participate in the diff.
        if event.get("event") == "run_start":
            event.pop("config_digest", None)
        event.pop("t_s", None)
        event.pop("seq", None)
        event.pop("steps_per_sec", None)
        lines.append(json.dumps(event, sort_keys=True))
lines.sort()
with open(dst, "w") as f:
    f.write("\n".join(lines) + "\n")
EOF
}

normalize "$work/run1/telemetry.jsonl" "$work/run1/telemetry.norm"
normalize "$work/run2/telemetry.jsonl" "$work/run2/telemetry.norm"

status=0
if ! diff -u "$work/run1/telemetry.norm" "$work/run2/telemetry.norm" \
        > "$work/telemetry.diff" 2>&1; then
    echo "FAIL: telemetry streams differ between identically-seeded runs:"
    head -n 40 "$work/telemetry.diff"
    status=1
else
    echo "ok: telemetry identical ($(wc -l < "$work/run1/telemetry.norm") events)"
fi

if ! diff -r "$work/run1/ckpt" "$work/run2/ckpt" > "$work/ckpt.diff" 2>&1; then
    echo "FAIL: checkpoint directories differ between identically-seeded runs:"
    head -n 40 "$work/ckpt.diff"
    status=1
else
    echo "ok: checkpoints bitwise identical"
fi

if [ "$status" -ne 0 ]; then
    echo "seed-determinism check FAILED (seed $seed)"
fi
exit "$status"
