#!/usr/bin/env sh
# Builds the bench_json harness and regenerates the perf-trajectory
# snapshots (BENCH_nn.json, BENCH_train.json) at the repo root.
#
#   tools/run_benchmarks.sh [build_dir]
#
# Pass extra knobs through BENCH_FLAGS, e.g.
#   BENCH_FLAGS="--min-time 1.0 --train-episodes 16" tools/run_benchmarks.sh
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" --target bench_json -j"$(nproc 2>/dev/null || echo 1)"

"$build_dir/bench/bench_json" \
    --nn-out "$repo_root/BENCH_nn.json" \
    --train-out "$repo_root/BENCH_train.json" \
    ${BENCH_FLAGS:-}

echo "wrote $repo_root/BENCH_nn.json"
echo "wrote $repo_root/BENCH_train.json"
