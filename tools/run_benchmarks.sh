#!/usr/bin/env sh
# Builds the bench_json harness, regenerates the perf-trajectory snapshots
# (BENCH_nn.json, BENCH_train.json, BENCH_serve.json) at the repo root, then
# diffs them against the committed *.seed.json baselines and fails on
# regressions.
#
#   tools/run_benchmarks.sh [build_dir]
#
# Pass extra knobs through BENCH_FLAGS, e.g.
#   BENCH_FLAGS="--min-time 1.0 --train-episodes 16" tools/run_benchmarks.sh
#
# Regression gate knobs:
#   BENCH_REGRESSION_PCT   allowed slowdown per benchmark, percent (default 25
#                          — generous because QEMU/shared-runner timings swing
#                          by ±20%)
#   BENCH_SKIP_CHECK=1     regenerate snapshots without gating
#
# Only benchmarks present in both the fresh snapshot and the seed are
# compared, so newly added cases never fail the gate before their baseline
# lands.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" > /dev/null

# Refuse to regenerate the perf baselines from an instrumented build: debug
# invariant checks and sanitizers slow the hot path by integer factors, and a
# BENCH_*.json written from such a build would poison every later regression
# comparison (docs/CORRECTNESS.md).
cache="$build_dir/CMakeCache.txt"
if [ -f "$cache" ]; then
    if grep -q '^HERO_DEBUG_CHECKS:BOOL=ON' "$cache"; then
        echo "ERROR: $build_dir was configured with HERO_DEBUG_CHECKS=ON —" >&2
        echo "       refusing to write BENCH_*.json from an instrumented build." >&2
        echo "       Re-run against a build dir configured with the default" >&2
        echo "       (HERO_DEBUG_CHECKS=OFF) settings." >&2
        exit 2
    fi
    if grep -E '^CMAKE_(CXX_FLAGS|EXE_LINKER_FLAGS)[^=]*=.*-fsanitize' "$cache" \
            > /dev/null; then
        echo "ERROR: $build_dir carries -fsanitize flags —" >&2
        echo "       refusing to write BENCH_*.json from a sanitizer build." >&2
        exit 2
    fi
fi

cmake --build "$build_dir" --target bench_json -j"$(nproc 2>/dev/null || echo 1)"

"$build_dir/bench/bench_json" \
    --nn-out "$repo_root/BENCH_nn.json" \
    --train-out "$repo_root/BENCH_train.json" \
    --dense-scenario "$repo_root/scenarios/dense_traffic.json" \
    ${BENCH_FLAGS:-}

echo "wrote $repo_root/BENCH_nn.json"
echo "wrote $repo_root/BENCH_train.json"

# --- serving snapshot (docs/SERVING.md §Throughput) ------------------------
# In-process entries (ServeQps/*, ServeLatency*) come straight from
# hero_loadgen --in-process: transport-free fused-pass numbers, stable enough
# to gate. The socket A/B entries (ServeSocketQps/*) measure the whole
# server — poll loop, framing, micro-batcher — and swing with machine load,
# so they are recorded under their own metric key, which the gate below does
# not compare.
cmake --build "$build_dir" --target hero_train hero_serve hero_loadgen \
    -j"$(nproc 2>/dev/null || echo 1)"

serve_work=$(mktemp -d "${TMPDIR:-/tmp}/hero_bench_serve.XXXXXX")
trap 'rm -rf "$serve_work"' EXIT INT TERM

"$build_dir/tools/hero_train" --out "$serve_work/ckpt" --seed 5 \
    --skill-episodes 1 --episodes 2 --hl-warmup 8 --hl-batch 8 \
    > "$serve_work/train.log"

"$build_dir/tools/hero_loadgen" --in-process --ckpt "$serve_work/ckpt" \
    --clients 16 --ticks 400 --warmup 40 \
    --bench-out "$repo_root/BENCH_serve.json" > "$serve_work/inproc.log"

# Socket A/B: best-of-3 interleaved pairs of the same synthetic closed-loop
# workload against --max-batch 16 then --max-batch 1.
sock="$serve_work/serve.sock"
socket_qps() {  # $1 = max-batch; prints qps
    "$build_dir/tools/hero_serve" --ckpt "$serve_work/ckpt" --socket "$sock" \
        --max-batch "$1" > "$serve_work/server.log" 2>&1 &
    server_pid=$!
    i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        [ "$i" -le 100 ] || { echo "server never listened" >&2; exit 1; }
        sleep 0.1
    done
    "$build_dir/tools/hero_loadgen" --socket "$sock" --clients 48 \
        --requests 100 --window 16 --synthetic --shutdown \
        > "$serve_work/ab.log"
    wait "$server_pid"
    awk '/qps/ {print $NF}' "$serve_work/ab.log"
}

best_mb16=0; best_mb1=0
for pair in 1 2 3; do
    q16=$(socket_qps 16)
    q1=$(socket_qps 1)
    best_mb16=$(awk "BEGIN {print ($q16 > $best_mb16) ? $q16 : $best_mb16}")
    best_mb1=$(awk "BEGIN {print ($q1 > $best_mb1) ? $q1 : $best_mb1}")
done
# Splice the socket entries into the snapshot, keeping the one-entry-per-line
# format tools/bench_gate.sh parses.
awk -v q16="$best_mb16" -v q1="$best_mb1" '
    $0 == "]}" {
        if (held != "") print held ","
        printf "  {\"name\": \"ServeSocketQps/mb16\", \"socket_qps\": %s},\n", q16
        printf "  {\"name\": \"ServeSocketQps/mb1\", \"socket_qps\": %s}\n", q1
        print "]}"
        held = ""
        next
    }
    { if (held != "") print held; held = $0 }
    END { if (held != "") print held }
' "$repo_root/BENCH_serve.json" > "$repo_root/BENCH_serve.json.tmp"
mv "$repo_root/BENCH_serve.json.tmp" "$repo_root/BENCH_serve.json"
ratio=$(awk "BEGIN {print ($best_mb1 > 0) ? $best_mb16 / $best_mb1 : 0}")
echo "serve socket A/B: mb16 $best_mb16 qps vs mb1 $best_mb1 qps (${ratio}x)"
echo "wrote $repo_root/BENCH_serve.json"

if [ "${BENCH_SKIP_CHECK:-0}" = "1" ]; then
    echo "BENCH_SKIP_CHECK=1 — skipping regression check"
    exit 0
fi

threshold=${BENCH_REGRESSION_PCT:-25}

# The comparison itself lives in tools/bench_gate.sh, which takes the metric
# direction explicitly (higher_is_worse for ns/iter, lower_is_worse for
# steps/sec) and carries its own polarity self-test.
status=0
echo "== regression check vs seed snapshots (threshold ${threshold}%) =="
echo "BENCH_nn.json vs BENCH_nn.seed.json (ns/iter, higher is worse):"
"$repo_root/tools/bench_gate.sh" \
    "$repo_root/BENCH_nn.json" "$repo_root/BENCH_nn.seed.json" \
    real_time_ns higher_is_worse "$threshold" || status=1
echo "BENCH_train.json vs BENCH_train.seed.json (steps/sec, lower is worse):"
"$repo_root/tools/bench_gate.sh" \
    "$repo_root/BENCH_train.json" "$repo_root/BENCH_train.seed.json" \
    steps_per_sec lower_is_worse "$threshold" || status=1
# Only the in-process serving entries are gated (keys qps / us); the
# ServeSocketQps entries carry the ungated socket_qps key on purpose —
# whole-server throughput swings too much with machine load to hard-gate.
echo "BENCH_serve.json vs BENCH_serve.seed.json (qps, lower is worse):"
"$repo_root/tools/bench_gate.sh" \
    "$repo_root/BENCH_serve.json" "$repo_root/BENCH_serve.seed.json" \
    qps lower_is_worse "$threshold" || status=1
echo "BENCH_serve.json vs BENCH_serve.seed.json (latency us, higher is worse):"
"$repo_root/tools/bench_gate.sh" \
    "$repo_root/BENCH_serve.json" "$repo_root/BENCH_serve.seed.json" \
    us higher_is_worse "$threshold" || status=1
# Flags-off instrumentation overhead: the whole bench run executes with the
# obs layer disabled (no --metrics-out), so the gate above already proves the
# dormant OBS_PHASE sites left the nn/train numbers inside the regression
# threshold. Additionally pin the per-site cost itself: a disabled scope is
# one relaxed atomic load and must stay in the noise floor.
python3 - "$repo_root/BENCH_nn.json" <<'PYEOF' || status=1
import json, sys

doc = json.load(open(sys.argv[1]))
entries = {e["name"]: e["real_time_ns"] for e in doc["benchmarks"]}
ns = entries.get("BM_PhaseScope/off")
if ns is None:
    sys.exit("BM_PhaseScope/off missing from BENCH_nn.json")
LIMIT_NS = 50.0  # generous for QEMU/shared runners; native cost is ~1-2 ns
if ns > LIMIT_NS:
    sys.exit(f"disabled OBS_PHASE scope costs {ns:.1f} ns/iter (limit {LIMIT_NS})")
print(f"ok: disabled OBS_PHASE scope {ns:.2f} ns/iter (limit {LIMIT_NS})")
PYEOF

# Spatial-index speedup gate (docs/PERFORMANCE.md §Spatial index): both sides
# are measured in this same run, so the ratio is immune to machine-speed
# drift. The shared index must keep dense-traffic stepping at least 4x the
# all-pairs baseline at V=128.
python3 - "$repo_root/BENCH_train.json" <<'PYEOF' || status=1
import json, sys

doc = json.load(open(sys.argv[1]))
entries = {e["name"]: e["steps_per_sec"] for e in doc["benchmarks"]}
indexed = entries.get("BM_BatchStep/V128")
allpairs = entries.get("BM_BatchStep/V128_allpairs")
if indexed is None or allpairs is None:
    sys.exit("BM_BatchStep/V128 or BM_BatchStep/V128_allpairs missing from "
             "BENCH_train.json")
MIN_RATIO = 4.0
ratio = indexed / allpairs if allpairs > 0 else 0.0
if ratio < MIN_RATIO:
    sys.exit(f"spatial index speedup at V=128 is {ratio:.2f}x "
             f"(need >= {MIN_RATIO}x): indexed {indexed:.0f} steps/s vs "
             f"all-pairs {allpairs:.0f} steps/s")
print(f"ok: spatial index speedup at V=128 is {ratio:.2f}x "
      f"(need >= {MIN_RATIO}x)")
PYEOF

if [ "$status" -ne 0 ]; then
    echo "benchmark regression beyond ${threshold}% — failing (BENCH_SKIP_CHECK=1 to override)"
fi
exit "$status"
