#!/usr/bin/env sh
# Policy-server smoke gate: proves the hero_serve stack end to end.
#
#   tools/serve_smoke.sh [build_dir]
#
#   1. flag parity     — hero_serve and hero_loadgen must both reject
#                        --metrics-every without --metrics-out (exit 2).
#   2. version gate    — a checkpoint whose manifest declares a future
#                        format version must be rejected at startup with a
#                        message naming the mismatch.
#   3. reload-under-load — a socket run with periodic hot reloads must
#                        complete with zero dropped requests (hero_loadgen
#                        exits nonzero on any drop), and the server's metrics
#                        snapshot must carry the serving histograms with p99.
#   4. batching wins   — interleaved A/B pairs (--max-batch 16 vs
#                        --max-batch 1, same clients/window) must show
#                        cross-request batching beating batch-size-1 serving.
#                        The floor asserted here (>= 1.5x best-of-N) is
#                        deliberately below the ~2x the reference box
#                        measures (docs/SERVING.md §Throughput): this smoke
#                        runs on noisy shared CI hardware. BENCH_serve.json
#                        (tools/run_benchmarks.sh) records the real numbers.
#   5. in-process gate — hero_loadgen --in-process must report a fused-pass
#                        speedup >= 1.1x (transport-free lower bound).
#
# docs/SERVING.md describes the layer under test.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" --target hero_train hero_serve hero_loadgen \
    -j"$(nproc 2>/dev/null || echo 1)" > /dev/null

work=$(mktemp -d "${TMPDIR:-/tmp}/hero_serve_smoke.XXXXXX")
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

train="$build_dir/tools/hero_train"
serve="$build_dir/tools/hero_serve"
loadgen="$build_dir/tools/hero_loadgen"
sock="$work/serve.sock"

# Starts hero_serve in the background ($1 = ckpt dir, $2 = max-batch,
# rest = extra flags) and waits for the socket to accept.
start_server() {
    ckpt_dir=$1; mb=$2; shift 2
    "$serve" --ckpt "$ckpt_dir" --socket "$sock" --max-batch "$mb" "$@" \
        > "$work/server.log" 2>&1 &
    server_pid=$!
    i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: server did not open $sock"; cat "$work/server.log"
            exit 1
        fi
        kill -0 "$server_pid" 2>/dev/null || {
            echo "FAIL: server exited before listening"; cat "$work/server.log"
            exit 1
        }
        sleep 0.1
    done
}

# Waits for the background server to exit and checks it exited 0.
stop_server_clean() {
    set +e
    wait "$server_pid"
    status=$?
    set -e
    server_pid=""
    if [ "$status" -ne 0 ]; then
        echo "FAIL: hero_serve exited $status"; cat "$work/server.log"
        exit 1
    fi
}

echo "serve-smoke: training throwaway checkpoint..."
"$train" --out "$work/ckpt" --seed 5 \
    --skill-episodes 1 --episodes 2 --hl-warmup 8 --hl-batch 8 \
    > "$work/train.log"
test -s "$work/ckpt/checkpoint.json" \
    || { echo "FAIL: training left no checkpoint manifest"; exit 1; }

# --- 1. flag parity -------------------------------------------------------
for bin in "$serve" "$loadgen"; do
    if "$bin" --metrics-every 2 > "$work/parity.log" 2>&1; then
        echo "FAIL: $(basename "$bin") accepted --metrics-every without --metrics-out"
        exit 1
    fi
    grep -q "metrics-out" "$work/parity.log" \
        || { echo "FAIL: $(basename "$bin") error does not mention --metrics-out"; exit 1; }
done
echo "ok: both tools reject --metrics-every without --metrics-out"

# --- 2. checkpoint version gate -------------------------------------------
cp -r "$work/ckpt" "$work/ckpt_future"
sed 's/"checkpoint_format": [0-9]*/"checkpoint_format": 99/' \
    "$work/ckpt/checkpoint.json" > "$work/ckpt_future/checkpoint.json"
if "$serve" --ckpt "$work/ckpt_future" --socket "$sock" \
        > "$work/future.log" 2>&1; then
    echo "FAIL: hero_serve accepted a format-version-99 checkpoint"
    exit 1
fi
grep -qi "format" "$work/future.log" \
    || { echo "FAIL: version rejection does not name the format mismatch"; exit 1; }
echo "ok: future-format checkpoint rejected at startup"

# --- 3. hot reload under load, zero drops ---------------------------------
echo "serve-smoke: reload-under-load run..."
start_server "$work/ckpt" 16 --metrics-out "$work/serve_m.json"
"$loadgen" --socket "$sock" --clients 8 --requests 100 --window 4 \
    --reload-every 50 --reload-dir "$work/ckpt" --shutdown \
    > "$work/reload.log" \
    || { echo "FAIL: drops during hot reload"; cat "$work/reload.log"; exit 1; }
grep -q "(0 dropped)" "$work/reload.log" \
    || { echo "FAIL: loadgen did not report zero drops"; cat "$work/reload.log"; exit 1; }
stop_server_clean
grep -q "serve.latency_us" "$work/serve_m.json" \
    || { echo "FAIL: snapshot carries no serve.latency_us histogram"; exit 1; }
grep -q "serve.batch_size" "$work/serve_m.json" \
    || { echo "FAIL: snapshot carries no serve.batch_size histogram"; exit 1; }
grep -q '"p99"' "$work/serve_m.json" \
    || { echo "FAIL: snapshot histograms carry no p99"; exit 1; }
echo "ok: hot reload under load, zero drops, histograms snapshotted"

# --- 4. cross-request batching beats batch-size-1 serving -----------------
# One A/B pair = the same synthetic closed-loop workload against
# --max-batch 16 then --max-batch 1. Pairs are interleaved so machine-load
# drift hits both sides; the gate takes the best ratio of the pairs.
run_socket_qps() {  # $1 = max-batch; prints qps
    start_server "$work/ckpt" "$1" --max-wait-us 1000
    "$loadgen" --socket "$sock" --clients 48 --requests 100 --window 16 \
        --synthetic --shutdown > "$work/ab.log" \
        || { echo "FAIL: loadgen dropped requests in A/B run" >&2
             cat "$work/ab.log" >&2; exit 1; }
    stop_server_clean
    awk '/qps/ {print $NF}' "$work/ab.log"
}

echo "serve-smoke: batched-vs-single A/B (3 interleaved pairs)..."
best_ratio=0
pair=1
while [ "$pair" -le 3 ]; do
    qps_b=$(run_socket_qps 16)
    qps_s=$(run_socket_qps 1)
    ratio=$(awk "BEGIN {print ($qps_s > 0) ? $qps_b / $qps_s : 0}")
    echo "  pair $pair: batched $qps_b qps, single $qps_s qps, ratio $ratio"
    best_ratio=$(awk "BEGIN {print ($ratio > $best_ratio) ? $ratio : $best_ratio}")
    pair=$((pair + 1))
done
if [ "$(awk "BEGIN {print ($best_ratio >= 1.5) ? 1 : 0}")" -ne 1 ]; then
    echo "FAIL: best batched/single ratio $best_ratio < 1.5"
    exit 1
fi
echo "ok: cross-request batching up to ${best_ratio}x over batch-size-1"

# --- 5. in-process fused-pass gate ----------------------------------------
"$loadgen" --in-process --ckpt "$work/ckpt" --clients 16 --ticks 200 \
    --warmup 20 --min-speedup 1.1 --bench-out "$work/BENCH_serve.json" \
    > "$work/inproc.log" \
    || { echo "FAIL: in-process speedup below 1.1x"; cat "$work/inproc.log"; exit 1; }
grep -q '"ServeQps/b16"' "$work/BENCH_serve.json" \
    || { echo "FAIL: BENCH_serve.json carries no ServeQps entries"; exit 1; }
echo "ok: in-process fused pass >= 1.1x, bench entries written"

echo "serve-smoke PASSED"
