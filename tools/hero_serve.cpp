// hero_serve — batched low-latency policy server (docs/SERVING.md).
//
// Loads a frozen hero_train checkpoint and serves act requests from N
// concurrent clients over a unix-domain socket, cross-request micro-batched
// so each scheduling tick runs ONE fused inference pass regardless of how
// many clients contributed observations.
//
//   hero_serve --ckpt ckpt/ [--socket /tmp/hero_serve.sock]
//              [--learners 0]        (0 = read from checkpoint.json)
//              [--max-batch 16] [--max-wait-us 1000] [--max-clients 64]
//              [--metrics-out m.json] [--metrics-every N]
//              [--telemetry-out run.jsonl]
//
// The server validates the checkpoint manifest at startup (incompatible
// checkpoints are rejected with a description of every mismatch) and again
// on every Reload frame — a failed hot reload leaves the active model
// untouched. Runs until a client sends Shutdown (hero_loadgen --shutdown, or
// any ServeClient::shutdown_server()).
#include <cstdio>
#include <exception>

#include "common/flags.h"
#include "hero/checkpoint.h"
#include "obs/obs.h"
#include "serve/policy_engine.h"
#include "serve/server.h"
#include "sim/scenario.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string ckpt = flags.get_string("ckpt", "hero_ckpt");
  const std::string socket_path =
      flags.get_string("socket", "/tmp/hero_serve.sock");
  int learners = flags.get_int("learners", 0);
  const int max_batch = flags.get_int("max-batch", 16);
  const int max_wait_us = flags.get_int("max-wait-us", 1000);
  const int max_clients = flags.get_int("max-clients", 64);
  const obs::Outputs obs_out = obs::configure(flags);
  flags.check_unknown();

  if (max_batch < 1 || max_wait_us < 0 || max_clients < 1) {
    std::fprintf(stderr,
                 "hero_serve: --max-batch/--max-clients must be >= 1 and "
                 "--max-wait-us >= 0\n");
    return 2;
  }

  {
    std::string canonical;
    for (int i = 1; i < argc; ++i) {
      canonical += argv[i];
      canonical += ' ';
    }
    obs::RunManifest manifest = obs::default_manifest("hero_serve");
    manifest.config_digest = obs::config_digest(canonical);
    obs::set_run_manifest(manifest);
  }

  // --learners 0 means "whatever the checkpoint was trained with": peek at
  // the manifest so operators don't have to repeat training geometry.
  if (learners <= 0) {
    core::CheckpointManifest peek;
    learners = 3;
    try {
      if (core::read_manifest(ckpt, &peek)) learners = peek.learners;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hero_serve: %s\n", e.what());
      return 1;
    }
  }

  const auto scenario = sim::cooperative_lane_change(learners);
  core::HeroConfig cfg;
  try {
    serve::PolicyEngine engine(scenario, cfg, ckpt);
    if (engine.legacy_checkpoint()) {
      std::printf(
          "warning: %s/ has no checkpoint.json manifest (legacy checkpoint, "
          "loaded unvalidated)\n",
          ckpt.c_str());
    }
    serve::ServerConfig server_cfg;
    server_cfg.socket_path = socket_path;
    server_cfg.batcher.max_batch = static_cast<std::size_t>(max_batch);
    server_cfg.batcher.max_wait_us = static_cast<long long>(max_wait_us);
    server_cfg.max_clients = static_cast<std::size_t>(max_clients);
    serve::ServeServer server(engine, server_cfg);
    std::printf(
        "hero_serve: %s/ (%d learners, %d lanes) on %s  "
        "[max-batch %d, max-wait %dus]\n",
        ckpt.c_str(), engine.learners(), engine.num_lanes(),
        socket_path.c_str(), max_batch, max_wait_us);
    std::fflush(stdout);
    server.run();
    std::printf("hero_serve: shutdown after %ld requests / %ld responses, "
                "%ld reloads\n",
                server.requests_received(), server.responses_sent(),
                engine.reloads());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hero_serve: %s\n", e.what());
    obs::finalize(obs_out);
    return 1;
  }
  obs::finalize(obs_out);
  return 0;
}
