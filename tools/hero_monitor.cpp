// hero_monitor — run-health console for hero_train / hero_eval artifacts.
//
//   hero_monitor --metrics m.json [--telemetry run.jsonl]
//                [--once] [--interval-ms 1000] [--ack rule1,rule2]
//
// Reads the (atomically-rewritten) metrics snapshot and/or tails the
// telemetry JSONL stream and renders a one-screen health report: manifest,
// episode progress, throughput, gradient norms, the merged phase-time tree
// with per-phase share, and any alerts the run's AlertEngine raised
// (docs/OBSERVABILITY.md, "Run health").
//
// `--once` renders a single report and exits — the CI mode. Without it the
// monitor re-renders every --interval-ms until the telemetry stream carries
// a "run_end" event (or forever when only --metrics is given; Ctrl-C).
//
// Exit status:
//   0  healthy (no alerts, or every alert rule listed in --ack)
//   1  at least one unacknowledged alert (each offending rule is printed)
//   2  I/O or parse error (missing file, torn/invalid JSON after retry)
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/json.h"

using hero::obs::JsonValue;

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::set<std::string> split_csv(const std::string& csv) {
  std::set<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.insert(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.insert(cur);
  return out;
}

// Latest state distilled from the artifacts; refreshed each render.
struct RunView {
  bool have_snapshot = false;
  JsonValue snapshot;

  // From telemetry (when given): the last stage2/episode style event, the
  // run_start manifest, alert events, and whether run_end was seen.
  bool have_last_episode = false;
  JsonValue last_episode;
  std::vector<JsonValue> alerts;  // telemetry alert events
  bool run_ended = false;
  JsonValue run_end;
  long long telemetry_lines = 0;
};

bool load_snapshot(const std::string& path, RunView& view, std::string& err) {
  std::string text;
  if (!read_file(path, text)) {
    err = "cannot read " + path;
    return false;
  }
  // The writer replaces the file atomically (tmp + rename), so a parse
  // failure means a genuinely corrupt document, not a torn write. Still
  // retry once in case we raced the very first creation.
  if (!JsonValue::parse(text, view.snapshot, &err)) {
    usleep(50 * 1000);
    if (!read_file(path, text) || !JsonValue::parse(text, view.snapshot, &err)) {
      err = path + ": " + err;
      return false;
    }
  }
  view.have_snapshot = true;
  return true;
}

bool load_telemetry(const std::string& path, RunView& view, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot read " + path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue ev;
    // A live writer may have flushed a partial final line; skip quietly.
    if (!JsonValue::parse(line, ev, nullptr)) continue;
    ++view.telemetry_lines;
    const std::string name = ev.get_string("event", "");
    if (name == "alert") {
      view.alerts.push_back(ev);
    } else if (name == "run_end") {
      view.run_ended = true;
      view.run_end = ev;
    } else if (ev.find("reward") != nullptr && ev.find("episode") != nullptr) {
      view.last_episode = ev;
      view.have_last_episode = true;
    }
  }
  return true;
}

double subtree_total_us(const JsonValue& node) {
  return node.get_number("total_us", 0.0);
}

void print_phase_node(const std::string& name, const JsonValue& node, int depth,
                      double parent_us) {
  const double us = subtree_total_us(node);
  const double count = node.get_number("count", 0.0);
  const double share = parent_us > 0.0 ? 100.0 * us / parent_us : 100.0;
  std::printf("  %*s%-*s %10.1f ms  %6.1f%%  x%.0f\n", depth * 2, "",
              24 - depth * 2, name.c_str(), us / 1000.0, share, count);
  const JsonValue* children = node.find("children");
  if (!children || !children->is_object()) return;
  for (const auto& [cname, cnode] : children->members) {
    print_phase_node(cname, cnode, depth + 1, us);
  }
}

// Fraction of a root phase's time attributed to its (direct) children —
// the "accounted" share the ISSUE's >=90% acceptance criterion refers to.
double child_coverage(const JsonValue& node) {
  const double us = subtree_total_us(node);
  const JsonValue* children = node.find("children");
  if (us <= 0.0 || !children || !children->is_object()) return 0.0;
  double sum = 0.0;
  for (const auto& [cname, cnode] : children->members) {
    (void)cname;
    sum += subtree_total_us(cnode);
  }
  return sum / us;
}

void render(const RunView& view) {
  std::printf("==== hero_monitor ====\n");
  if (view.have_snapshot) {
    const JsonValue* man = view.snapshot.find("manifest");
    if (man) {
      std::printf("run: %s  sha %s  seed %lld  workers %d  batch_envs %d  cfg %s\n",
                  man->get_string("tool", "?").c_str(),
                  man->get_string("git_sha", "?").c_str(),
                  static_cast<long long>(man->get_number("seed", 0)),
                  static_cast<int>(man->get_number("num_workers", 1)),
                  static_cast<int>(man->get_number("batch_envs", 0)),
                  man->get_string("config_digest", "-").c_str());
    }
    const JsonValue* counters = view.snapshot.find("counters");
    if (counters) {
      const double eps = counters->get_number("hero.stage2.episodes", 0.0);
      const double steps = counters->get_number("hero.stage2.steps", 0.0);
      if (eps > 0.0) std::printf("stage2: %.0f episodes, %.0f steps\n", eps, steps);
    }
    const JsonValue* gauges = view.snapshot.find("gauges");
    if (gauges) {
      const JsonValue* acc = gauges->find("hero.stage2.opponent_accuracy");
      if (acc) std::printf("opponent accuracy: %.3f\n", acc->number_or(0.0));
      const double dropped = gauges->get_number("obs.trace.dropped", 0.0);
      const double werr = gauges->get_number("obs.telemetry.write_errors", 0.0);
      if (dropped > 0.0) {
        std::printf("WARNING: %.0f trace events dropped (ring full)\n", dropped);
      }
      if (werr > 0.0) {
        std::printf("WARNING: %.0f telemetry write failures\n", werr);
      }
    }
  }
  if (view.have_last_episode) {
    const JsonValue& e = view.last_episode;
    std::printf("last episode %lld: reward %.2f",
                static_cast<long long>(e.get_number("episode", -1)),
                e.get_number("reward", 0.0));
    if (e.find("steps_per_sec")) {
      std::printf("  %.0f steps/s", e.get_number("steps_per_sec", 0.0));
    }
    if (e.find("critic_grad_norm")) {
      std::printf("  |g_c| %.3f  |g_a| %.3f", e.get_number("critic_grad_norm", 0.0),
                  e.get_number("actor_grad_norm", 0.0));
    }
    std::printf("\n");
  }
  if (view.have_snapshot) {
    const JsonValue* phases = view.snapshot.find("phases");
    if (phases && phases->is_object() && !phases->members.empty()) {
      std::printf("phase breakdown:\n");
      for (const auto& [name, node] : phases->members) {
        print_phase_node(name, node, 0, 0.0);
        const double cov = child_coverage(node);
        if (cov > 0.0) {
          std::printf("  %-24s accounted by children: %.1f%%\n", name.c_str(),
                      100.0 * cov);
        }
      }
    }
  }
  if (view.run_ended) {
    std::printf("run ended: verdict=%s episodes=%lld alerts=%lld\n",
                view.run_end.get_string("verdict", "?").c_str(),
                static_cast<long long>(view.run_end.get_number("episodes", 0)),
                static_cast<long long>(view.run_end.get_number("alerts", 0)));
  }
}

// Union of alert rules from the snapshot's health block and the telemetry
// stream; prints each alert once.
std::set<std::string> collect_alert_rules(const RunView& view) {
  std::set<std::string> rules;
  auto show = [&](const JsonValue& a) {
    const std::string rule = a.get_string("rule", "?");
    if (rules.insert(rule).second) {
      std::printf("ALERT [%s] ep %lld: %s\n", rule.c_str(),
                  static_cast<long long>(a.get_number("episode", -1)),
                  a.get_string("message", "").c_str());
    }
  };
  if (view.have_snapshot) {
    const JsonValue* health = view.snapshot.find("health");
    if (health) {
      const JsonValue* alerts = health->find("alerts");
      if (alerts && alerts->is_array()) {
        for (const auto& a : alerts->items) show(a);
      }
    }
  }
  for (const auto& a : view.alerts) show(a);
  return rules;
}

}  // namespace

int main(int argc, char** argv) {
  hero::Flags flags(argc, argv);
  const std::string metrics = flags.get_string("metrics", "");
  const std::string telemetry = flags.get_string("telemetry", "");
  const bool once = flags.get_bool("once", false);
  const int interval_ms = flags.get_int("interval-ms", 1000);
  const std::set<std::string> acked = split_csv(flags.get_string("ack", ""));
  flags.check_unknown();

  if (metrics.empty() && telemetry.empty()) {
    std::fprintf(stderr,
                 "hero_monitor: need --metrics <snapshot.json> and/or "
                 "--telemetry <run.jsonl>\n");
    return 2;
  }

  for (;;) {
    RunView view;
    std::string err;
    if (!metrics.empty() && !load_snapshot(metrics, view, err)) {
      std::fprintf(stderr, "hero_monitor: %s\n", err.c_str());
      return 2;
    }
    if (!telemetry.empty() && !load_telemetry(telemetry, view, err)) {
      std::fprintf(stderr, "hero_monitor: %s\n", err.c_str());
      return 2;
    }

    render(view);
    const std::set<std::string> rules = collect_alert_rules(view);

    if (once || view.run_ended) {
      std::vector<std::string> unacked;
      for (const auto& r : rules) {
        if (!acked.count(r)) unacked.push_back(r);
      }
      if (!unacked.empty()) {
        for (const auto& r : unacked) {
          std::printf("unacknowledged alert: %s\n", r.c_str());
        }
        std::printf("verdict: sick\n");
        return 1;
      }
      std::printf("verdict: healthy\n");
      return 0;
    }
    usleep(static_cast<useconds_t>(interval_ms) * 1000);
  }
}
