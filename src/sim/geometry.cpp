#include "sim/geometry.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace hero::sim {

double wrap_angle(double a) {
  while (a > M_PI) a -= 2.0 * M_PI;
  while (a <= -M_PI) a += 2.0 * M_PI;
  return a;
}

std::array<Vec2, 4> Obb::corners() const {
  const Vec2 ax = Vec2{1.0, 0.0}.rotated(heading) * half_len;
  const Vec2 ay = Vec2{0.0, 1.0}.rotated(heading) * half_wid;
  return {center + ax + ay, center + ax - ay, center - ax - ay, center - ax + ay};
}

namespace {
// Projects box corners onto `axis` and returns [min, max].
std::pair<double, double> project(const Obb& box, const Vec2& axis) {
  auto cs = box.corners();
  double lo = cs[0].dot(axis), hi = lo;
  for (int i = 1; i < 4; ++i) {
    double p = cs[i].dot(axis);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  return {lo, hi};
}

bool separated_on(const Obb& a, const Obb& b, const Vec2& axis) {
  auto [alo, ahi] = project(a, axis);
  auto [blo, bhi] = project(b, axis);
  return ahi < blo || bhi < alo;
}
}  // namespace

bool obb_overlap(const Obb& a, const Obb& b) {
  HERO_DCHECK_MSG(a.half_len >= 0.0 && a.half_wid >= 0.0 && b.half_len >= 0.0 &&
                      b.half_wid >= 0.0,
                  "obb_overlap: negative half-extent");
  HERO_DCHECK_MSG(std::isfinite(a.center.x) && std::isfinite(a.center.y) &&
                      std::isfinite(b.center.x) && std::isfinite(b.center.y),
                  "obb_overlap: non-finite box centre");
  const Vec2 axes[4] = {
      Vec2{1.0, 0.0}.rotated(a.heading), Vec2{0.0, 1.0}.rotated(a.heading),
      Vec2{1.0, 0.0}.rotated(b.heading), Vec2{0.0, 1.0}.rotated(b.heading)};
  for (const Vec2& ax : axes) {
    if (separated_on(a, b, ax)) return false;
  }
  return true;
}

namespace {
// Slab test against an axis-aligned box of the given half-extents, with the
// ray already expressed in the box frame.
std::optional<double> slab_hit(const Vec2& rel, const Vec2& d, const Obb& box) {
  double tmin = 0.0;
  double tmax = std::numeric_limits<double>::infinity();
  const double lo[2] = {-box.half_len, -box.half_wid};
  const double hi[2] = {box.half_len, box.half_wid};
  const double o[2] = {rel.x, rel.y};
  const double dd[2] = {d.x, d.y};
  for (int i = 0; i < 2; ++i) {
    if (std::abs(dd[i]) < 1e-12) {
      if (o[i] < lo[i] || o[i] > hi[i]) return std::nullopt;
      continue;
    }
    double t1 = (lo[i] - o[i]) / dd[i];
    double t2 = (hi[i] - o[i]) / dd[i];
    if (t1 > t2) std::swap(t1, t2);
    tmin = std::max(tmin, t1);
    tmax = std::min(tmax, t2);
    if (tmin > tmax) return std::nullopt;
  }
  return tmin;
}
}  // namespace

std::optional<double> ray_obb(const Vec2& origin, const Vec2& dir, const Obb& box) {
  // Transform the ray into the box frame, then slab test.
  const Vec2 rel = (origin - box.center).rotated(-box.heading);
  const Vec2 d = dir.rotated(-box.heading);
  return slab_hit(rel, d, box);
}

std::optional<double> ray_obb_prerot(const Vec2& origin, const Vec2& dir,
                                     const Obb& box, double rot_cos,
                                     double rot_sin) {
  // Same cast with cos(-heading)/sin(-heading) hoisted by the caller. The
  // rotation expressions mirror Vec2::rotated term for term, so the result
  // is bit-identical to ray_obb for rot_cos = cos(-heading),
  // rot_sin = sin(-heading).
  const Vec2 diff = origin - box.center;
  const Vec2 rel{rot_cos * diff.x - rot_sin * diff.y,
                 rot_sin * diff.x + rot_cos * diff.y};
  const Vec2 d{rot_cos * dir.x - rot_sin * dir.y,
               rot_sin * dir.x + rot_cos * dir.y};
  return slab_hit(rel, d, box);
}

std::optional<double> ray_circle(const Vec2& origin, const Vec2& dir, const Vec2& center,
                                 double radius) {
  const Vec2 oc = origin - center;
  const double b = oc.dot(dir);
  const double c = oc.dot(oc) - radius * radius;
  if (c <= 0.0) return 0.0;  // origin inside the circle
  const double disc = b * b - c;
  if (disc < 0.0) return std::nullopt;
  const double t = -b - std::sqrt(disc);
  if (t < 0.0) return std::nullopt;
  return t;
}

}  // namespace hero::sim
