// LaneCamera: the low-level perception substitute.
//
// The paper feeds the raw on-board camera image through a CNN whose job is
// to recover lane-relative geometry (where am I in the lane, how tilted,
// what is ahead). We expose those quantities directly as a compact feature
// vector — see DESIGN.md §2 for why this preserves the control problem.
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/vehicle.h"

namespace hero::sim {

class SpatialIndex;

struct LaneCameraConfig {
  double lead_range = 2.0;    // how far ahead the camera can resolve a leader
  double noise_stddev = 0.0;  // feature noise (real-world mode)
};

// Feature layout (all roughly in [-1, 1]):
//   [0] lateral offset from the *reference lane* centre, / lane width
//   [1] sin(heading)
//   [2] cos(heading)
//   [3] forward gap to the nearest vehicle in the ego's current lane, / range
//   [4] that leader's speed relative to ego, / max_speed
//   [5] signed lateral offset to the reference lane centre from the *other*
//       lane's centre, / lane width (tells a lane-change policy how far the
//       manoeuvre still has to go)
// The reference lane is the ego's current lane for in-lane skills and the
// target lane during a lane change.
constexpr std::size_t kLaneCameraDim = 6;

class LaneCamera {
 public:
  explicit LaneCamera(const LaneCameraConfig& cfg = {});

  std::vector<double> features(const Vehicle& ego, const std::vector<Vehicle>& all,
                               std::size_t ego_index, const Track& track,
                               int reference_lane, Rng* noise_rng = nullptr) const;

  // Zero-allocation feature core over raw per-vehicle state arrays (the SoA
  // views of the batched world). `xs`/`ys`/`speeds` hold all `n` vehicles of
  // the scene including the ego at `ego_index`; writes kLaneCameraDim
  // doubles to `out`. features() delegates here so batched features stay
  // bitwise equal to serial ones.
  void features_into(const VehicleState& ego, double ego_max_speed,
                     const double* xs, const double* ys, const double* speeds,
                     std::size_t n, std::size_t ego_index, const Track& track,
                     int reference_lane, Rng* noise_rng, double* out) const;

  // Index-staged variant: when `index` is non-null the lead search only
  // visits vehicles the index reports inside the forward window
  // [ego.x, ego.x + lead_range] — a conservative superset of every possible
  // leader, visited in the same ascending-id order as the full scan, so the
  // features are bitwise identical to the all-pairs path (`index == nullptr`
  // falls back to it).
  void features_into(const VehicleState& ego, double ego_max_speed,
                     const double* xs, const double* ys, const double* speeds,
                     std::size_t n, std::size_t ego_index, const Track& track,
                     int reference_lane, Rng* noise_rng,
                     const SpatialIndex* index, double* out) const;

  const LaneCameraConfig& config() const { return cfg_; }

 private:
  LaneCameraConfig cfg_;
};

}  // namespace hero::sim
