#include "sim/batch_lane_world.h"

#include <algorithm>
#include <cmath>

#include "obs/phase.h"
#include "obs/metrics.h"

namespace hero::sim {

BatchLaneWorld::BatchLaneWorld(const LaneWorldConfig& cfg, int num_envs)
    : cfg_(cfg),
      track_(cfg.track),
      lidar_(cfg.lidar),
      camera_(cfg.camera),
      E_(num_envs),
      V_(static_cast<int>(cfg.specs.size())) {
  HERO_CHECK_MSG(!cfg_.specs.empty(), "BatchLaneWorld needs at least one vehicle spec");
  HERO_CHECK(cfg_.dt > 0.0 && cfg_.max_steps > 0);
  HERO_CHECK_MSG(E_ > 0, "BatchLaneWorld needs at least one environment");
  for (std::size_t i = 0; i < cfg_.specs.size(); ++i) {
    if (!cfg_.specs[i].scripted) learners_.push_back(static_cast<int>(i));
  }
  reach_ = std::hypot(0.5 * cfg_.vehicle.length, 0.5 * cfg_.vehicle.width);

  const std::size_t total =
      static_cast<std::size_t>(E_) * static_cast<std::size_t>(V_);
  x_.assign(total, 0.0);
  y_.assign(total, 0.0);
  heading_.assign(total, 0.0);
  speed_.assign(total, 0.0);
  yaw_.assign(total, 0.0);
  total_travel_.assign(total, 0.0);
  speed_gain_.assign(total, 1.0);
  heading_drift_.assign(total, 0.0);
  steps_.assign(static_cast<std::size_t>(E_), 0);
  done_.assign(static_cast<std::size_t>(E_), 0);
  had_collision_.assign(static_cast<std::size_t>(E_), 0);

  lat_cap_ = std::max(cfg_.actuation_latency, 1);
  lat_buf_.assign(total * static_cast<std::size_t>(lat_cap_), TwistCmd{});
  lat_head_.assign(total, 0);
  lat_count_.assign(total, 0);

  exec_.assign(total, TwistCmd{});
  hit_.assign(total, 0);
  order_.assign(static_cast<std::size_t>(V_), 0);
  obs_boxes_.assign(static_cast<std::size_t>(V_), Obb{});
  indices_.resize(static_cast<std::size_t>(E_));
  idx_dirty_.assign(static_cast<std::size_t>(E_), 1);

  // Match the serial constructor: every env starts in the dummy-reset state.
  for (int e = 0; e < E_; ++e) {
    Rng dummy(0);
    reset_env(e, dummy);
  }
}

void BatchLaneWorld::reset_env(int e, Rng& rng) {
  steps_[static_cast<std::size_t>(e)] = 0;
  done_[static_cast<std::size_t>(e)] = 0;
  had_collision_[static_cast<std::size_t>(e)] = 0;
  idx_dirty_[static_cast<std::size_t>(e)] = 1;

  for (int i = 0; i < V_; ++i) {
    const std::size_t idx = flat(e, i);
    const VehicleSpec& sp = cfg_.specs[static_cast<std::size_t>(i)];
    total_travel_[idx] = 0.0;
    lat_head_[idx] = 0;
    lat_count_[idx] = 0;
    speed_gain_[idx] = 1.0;
    heading_drift_[idx] = 0.0;
    hit_[idx] = 0;

    // Same draw order as LaneWorld::reset: start jitter, then (real-world
    // mode only) the per-episode dynamics perturbation pair.
    x_[idx] = track_.wrap_x(sp.start_x +
                            rng.uniform(-sp.start_x_jitter, sp.start_x_jitter));
    y_[idx] = track_.lane_center(sp.start_lane);
    heading_[idx] = 0.0;
    speed_[idx] = sp.scripted ? sp.scripted_speed : sp.start_speed;
    yaw_[idx] = 0.0;
    if (cfg_.param_jitter > 0.0) {
      speed_gain_[idx] = std::max(0.5, 1.0 + rng.normal(0.0, cfg_.param_jitter));
      heading_drift_[idx] = rng.normal(0.0, cfg_.param_jitter * 0.2);
    }
  }
}

void BatchLaneWorld::step_all(const TwistCmd* cmds, Rng* const* rngs,
                              const std::uint8_t* active, BatchStepResult& out) {
  OBS_PHASE("sim_step");
  const std::size_t n = learners_.size();
  // assign() reuses capacity, so after the first step this is zero-alloc.
  out.reward.assign(static_cast<std::size_t>(E_) * n, 0.0);
  out.travel.assign(x_.size(), 0.0);
  out.collision.assign(static_cast<std::size_t>(E_), 0);
  out.done.assign(static_cast<std::size_t>(E_), 0);

  long stepped = 0;
  for (int e = 0; e < E_; ++e) {
    if (!active[e]) continue;
    HERO_CHECK_MSG(done_[static_cast<std::size_t>(e)] == 0,
                   "step_all() on finished env " << e << "; call reset_env()");
    ++stepped;
  }

  step_resolve(cmds, rngs, active);
  step_integrate(active, out);
  for (int e = 0; e < E_; ++e) {
    if (active[e]) ++steps_[static_cast<std::size_t>(e)];
  }
#if HERO_DEBUG_CHECKS_ENABLED
  // Same post-integration invariants as the serial world, per live env.
  for (int e = 0; e < E_; ++e) {
    if (!active[e]) continue;
    for (int i = 0; i < V_; ++i) {
      const std::size_t idx = flat(e, i);
      HERO_DCHECK_MSG(std::isfinite(x_[idx]) && std::isfinite(y_[idx]) &&
                          std::isfinite(heading_[idx]) && std::isfinite(speed_[idx]),
                      "BatchLaneWorld env " << e << " vehicle " << i
                                            << " non-finite state");
      HERO_DCHECK_MSG(x_[idx] >= 0.0 && x_[idx] < track_.circumference(),
                      "BatchLaneWorld env " << e << " vehicle " << i
                                            << " arc-length " << x_[idx]
                                            << " outside [0, "
                                            << track_.circumference() << ")");
      HERO_DCHECK_MSG(speed_[idx] >= cfg_.vehicle.min_speed - 1e-9 &&
                          speed_[idx] <= cfg_.vehicle.max_speed + 1e-9,
                      "BatchLaneWorld env " << e << " vehicle " << i << " speed "
                                            << speed_[idx] << " outside envelope");
    }
  }
#endif
  step_collide(active, out);
  step_rewards(active, out);

  if (obs::metrics_enabled()) {
    static obs::Counter& steps = obs::Registry::instance().counter("sim.steps");
    static obs::Counter& collisions =
        obs::Registry::instance().counter("sim.collisions");
    steps.inc(stepped);
    for (int e = 0; e < E_; ++e) {
      if (active[e] && out.collision[static_cast<std::size_t>(e)]) collisions.inc();
    }
  }
}

void BatchLaneWorld::step_resolve(const TwistCmd* cmds, Rng* const* rngs,
                                  const std::uint8_t* active) {
  const std::size_t n = learners_.size();
  for (int e = 0; e < E_; ++e) {
    if (!active[e]) continue;
    Rng& rng = *rngs[e];
    for (std::size_t k = 0; k < n; ++k) {
      const int vi = learners_[k];
      const std::size_t idx = flat(e, vi);
      TwistCmd cmd = cmds[static_cast<std::size_t>(e) * n + k];
      if (cfg_.actuation_latency > 0) {
        // Fixed-capacity ring replicating the serial push-then-pop-front
        // queue: while filling, hold the pre-step speed with no steering;
        // once full, execute the oldest command and reuse its slot.
        const std::size_t base = idx * static_cast<std::size_t>(lat_cap_);
        if (lat_count_[idx] < lat_cap_) {
          const int slot = (lat_head_[idx] + lat_count_[idx]) % lat_cap_;
          lat_buf_[base + static_cast<std::size_t>(slot)] = cmd;
          ++lat_count_[idx];
          cmd = {speed_[idx], 0.0};
        } else {
          const std::size_t slot = base + static_cast<std::size_t>(lat_head_[idx]);
          const TwistCmd oldest = lat_buf_[slot];
          lat_buf_[slot] = cmd;
          lat_head_[idx] = (lat_head_[idx] + 1) % lat_cap_;
          cmd = oldest;
        }
      }
      // LaneWorld::perturbed(): miscalibration always applies, noise draws
      // only in real-world mode — draw order matches the serial path.
      cmd.linear *= speed_gain_[idx];
      cmd.angular += heading_drift_[idx];
      if (cfg_.actuation_noise > 0.0) {
        cmd.linear *= std::max(0.0, 1.0 + rng.normal(0.0, cfg_.actuation_noise));
        cmd.angular += rng.normal(0.0, cfg_.actuation_noise * 0.25);
      }
      exec_[idx] = cmd;
    }
    for (int i = 0; i < V_; ++i) {
      const VehicleSpec& sp = cfg_.specs[static_cast<std::size_t>(i)];
      if (sp.scripted) exec_[flat(e, i)] = {sp.scripted_speed, 0.0};
    }
  }
}

void BatchLaneWorld::step_integrate(const std::uint8_t* active,
                                    BatchStepResult& out) {
  for (int e = 0; e < E_; ++e) {
    if (!active[e]) continue;
    for (int i = 0; i < V_; ++i) {
      const std::size_t idx = flat(e, i);
      const VehicleState s{x_[idx], y_[idx], heading_[idx], speed_[idx], yaw_[idx]};
      const VehicleState ns =
          integrate_unicycle(cfg_.vehicle, s, exec_[idx], cfg_.dt, track_);
      x_[idx] = ns.x;
      y_[idx] = ns.y;
      heading_[idx] = ns.heading;
      speed_[idx] = ns.speed;
      yaw_[idx] = ns.yaw_rate;
      const double dx = track_.signed_dx(s.x, ns.x);
      out.travel[idx] = dx;
      total_travel_[idx] += dx;
    }
  }
}

void BatchLaneWorld::step_collide(const std::uint8_t* active,
                                  BatchStepResult& out) {
  const double near = 2.0 * reach_ + 1e-9;
  const double circ = track_.circumference();
  for (int e = 0; e < E_; ++e) {
    if (!active[e]) continue;
    const std::size_t base = flat(e, 0);
    for (int i = 0; i < V_; ++i) hit_[base + static_cast<std::size_t>(i)] = 0;

    // Broad-phase: sort vehicles by wrapped arc length, then sweep each
    // vehicle's cyclic successors until the ring gap exceeds 2·reach —
    // beyond that no footprint pair can overlap, so the narrow-phase SAT
    // set is identical to the serial all-pairs loop. With the spatial index
    // enabled the sorted order is the per-env SpatialIndex, built here once
    // and reused by every obs call of this step; otherwise a local
    // insertion sort (V is small in the paper scenarios) reproduces the
    // same (position, id) order.
    const int* ord = nullptr;
    if (cfg_.use_spatial_index) {
      SpatialIndex& idx = indices_[static_cast<std::size_t>(e)];
      idx.build(&x_[base], V_, circ);
      idx_dirty_[static_cast<std::size_t>(e)] = 0;
      ord = idx.ids();
    } else {
      for (int i = 0; i < V_; ++i) order_[static_cast<std::size_t>(i)] = i;
      for (int i = 1; i < V_; ++i) {
        const int v = order_[static_cast<std::size_t>(i)];
        int j = i - 1;
        while (j >= 0 &&
               x_[base + static_cast<std::size_t>(order_[static_cast<std::size_t>(j)])] >
                   x_[base + static_cast<std::size_t>(v)]) {
          order_[static_cast<std::size_t>(j + 1)] = order_[static_cast<std::size_t>(j)];
          --j;
        }
        order_[static_cast<std::size_t>(j + 1)] = v;
      }
      ord = order_.data();
    }

    for (int a = 0; a < V_; ++a) {
      const int ia = ord[static_cast<std::size_t>(a)];
      const double xa = x_[base + static_cast<std::size_t>(ia)];
      for (int t = 1; t < V_; ++t) {
        const int b = (a + t) % V_;
        const int ib = ord[static_cast<std::size_t>(b)];
        double gap = x_[base + static_cast<std::size_t>(ib)] - xa;
        if (b < a) gap += circ;  // cyclic successor wrapped past the seam
        if (gap > near) break;   // sorted ⇒ later successors are farther

        // Narrow phase: exactly the serial pair test, reference = lower id.
        const std::size_t pi = base + static_cast<std::size_t>(std::min(ia, ib));
        const std::size_t pj = base + static_cast<std::size_t>(std::max(ia, ib));
        Obb oa{{x_[pi], y_[pi]}, heading_[pi], 0.5 * cfg_.vehicle.length,
               0.5 * cfg_.vehicle.width};
        Obb ob{{x_[pj], y_[pj]}, heading_[pj], 0.5 * cfg_.vehicle.length,
               0.5 * cfg_.vehicle.width};
        ob.center.x = oa.center.x + track_.signed_dx(oa.center.x, ob.center.x);
        HERO_DCHECK_MSG(obb_overlap(oa, ob) == obb_overlap(ob, oa),
                        "obb_overlap asymmetry in env " << e);
        if (obb_overlap(oa, ob)) {
          hit_[pi] = 1;
          hit_[pj] = 1;
        }
      }
      if (cfg_.offroad_is_collision &&
          !track_.on_road(y_[base + static_cast<std::size_t>(ia)])) {
        hit_[base + static_cast<std::size_t>(ia)] = 1;
      }
    }

    std::uint8_t any = 0;
    for (int i = 0; i < V_; ++i) any |= hit_[base + static_cast<std::size_t>(i)];
    out.collision[static_cast<std::size_t>(e)] = any;
  }
}

void BatchLaneWorld::step_rewards(const std::uint8_t* active,
                                  BatchStepResult& out) {
  const std::size_t n = learners_.size();
  // Same reward shape as LaneWorld::step (paper Sec. IV-B).
  const double travel_norm = 0.2 * cfg_.dt;  // 0.2 m/s is the top RL speed bound
  for (int e = 0; e < E_; ++e) {
    if (!active[e]) continue;
    const std::size_t se = static_cast<std::size_t>(e);

    double team_travel = 0.0;
    for (int vi : learners_) team_travel += out.travel[flat(e, vi)];
    team_travel /= static_cast<double>(std::max<std::size_t>(1, n));

    for (std::size_t k = 0; k < n; ++k) {
      const double travel =
          cfg_.shared_travel ? team_travel : out.travel[flat(e, learners_[k])];
      const double r_col =
          out.collision[se] ? cfg_.collision_penalty : 0.0;
      out.reward[se * n + k] =
          cfg_.alpha * r_col + (1.0 - cfg_.alpha) * (travel / travel_norm);
    }

    if (out.collision[se]) had_collision_[se] = 1;
    done_[se] = (out.collision[se] || steps_[se] >= cfg_.max_steps) ? 1 : 0;
    out.done[se] = done_[se];
  }
}

const SpatialIndex& BatchLaneWorld::ensure_index(int e) const {
  SpatialIndex& idx = indices_[static_cast<std::size_t>(e)];
  if (idx_dirty_[static_cast<std::size_t>(e)] || !idx.built()) {
    idx.build(&x_[flat(e, 0)], V_, track_.circumference());
    idx_dirty_[static_cast<std::size_t>(e)] = 0;
  }
  return idx;
}

void BatchLaneWorld::high_level_obs_into(int e, int vehicle, double* out,
                                         Rng* noise_rng) const {
  const std::size_t base = flat(e, 0);
  const std::size_t ego = base + static_cast<std::size_t>(vehicle);
  // Stage the other footprints ego-relative through the wrapped metric,
  // pruning boxes whose nearest point lies beyond lidar range — they cannot
  // lower any beam's minimum, so the scan is bit-identical to unpruned.
  // Squared-distance form of `hypot(dx, dy) ≤ max_range + reach`: the same
  // conservative predicate (1e-9 of slack dwarfs the rounding difference)
  // without the libm call.
  const double thr = cfg_.lidar.max_range + reach_ + 1e-9;
  std::size_t nb = 0;
  if (cfg_.use_spatial_index) {
    // Arc-window query first: |signed_dx| ≤ hypot(dx, dy), so the window of
    // half-width thr is a superset of everything the fine prune keeps.
    const int* ids = nullptr;
    // Rank-order candidates: the scan reduces each beam to a minimum over
    // ray casts, so staging order cannot change the output.
    const int k =
        ensure_index(e).query_unordered(x_[ego], thr, thr, vehicle, &ids);
    for (int c = 0; c < k; ++c) {
      const std::size_t idx = base + static_cast<std::size_t>(ids[c]);
      const double dx = track_.signed_dx(x_[ego], x_[idx]);
      const double dy = y_[idx] - y_[ego];
      if (dx * dx + dy * dy > thr * thr) continue;
      obs_boxes_[nb] = Obb{{x_[ego] + dx, y_[idx]}, heading_[idx],
                           0.5 * cfg_.vehicle.length, 0.5 * cfg_.vehicle.width};
      ++nb;
    }
    lidar_.scan_into(x_[ego], y_[ego], heading_[ego], obs_boxes_.data(), nb,
                     noise_rng, out);
  } else {
    for (int i = 0; i < V_; ++i) {
      if (i == vehicle) continue;
      const std::size_t idx = base + static_cast<std::size_t>(i);
      const double dx = track_.signed_dx(x_[ego], x_[idx]);
      const double dy = y_[idx] - y_[ego];
      if (dx * dx + dy * dy > thr * thr) continue;
      obs_boxes_[nb] = Obb{{x_[ego] + dx, y_[idx]}, heading_[idx],
                           0.5 * cfg_.vehicle.length, 0.5 * cfg_.vehicle.width};
      ++nb;
    }
    lidar_.scan_into_allpairs(x_[ego], y_[ego], heading_[ego],
                              obs_boxes_.data(), nb, noise_rng, out);
  }
  const std::size_t beams = static_cast<std::size_t>(cfg_.lidar.num_beams);
  out[beams] = speed_[ego] / cfg_.vehicle.max_speed;
  out[beams + 1] = static_cast<double>(track_.lane_of(y_[ego]));
}

void BatchLaneWorld::low_level_obs_into(int e, int vehicle, int reference_lane,
                                        double* out, Rng* noise_rng) const {
  const std::size_t base = flat(e, 0);
  const std::size_t ego = base + static_cast<std::size_t>(vehicle);
  const VehicleState s{x_[ego], y_[ego], heading_[ego], speed_[ego], yaw_[ego]};
  camera_.features_into(s, cfg_.vehicle.max_speed, &x_[base], &y_[base],
                        &speed_[base], static_cast<std::size_t>(V_),
                        static_cast<std::size_t>(vehicle), track_, reference_lane,
                        noise_rng,
                        cfg_.use_spatial_index ? &ensure_index(e) : nullptr, out);
  out[kLaneCameraDim] = speed_[ego] / cfg_.vehicle.max_speed;
  out[kLaneCameraDim + 1] = static_cast<double>(track_.lane_of(y_[ego]));
}

VehicleState BatchLaneWorld::state(int e, int i) const {
  const std::size_t idx = flat(e, i);
  return VehicleState{x_[idx], y_[idx], heading_[idx], speed_[idx], yaw_[idx]};
}

void BatchLaneWorld::set_state(int e, int i, const VehicleState& s) {
  idx_dirty_[static_cast<std::size_t>(e)] = 1;
  const std::size_t idx = flat(e, i);
  x_[idx] = s.x;
  y_[idx] = s.y;
  heading_[idx] = s.heading;
  speed_[idx] = s.speed;
  yaw_[idx] = s.yaw_rate;
}

double BatchLaneWorld::mean_speed(int e, int i) const {
  const std::size_t se = static_cast<std::size_t>(e);
  if (steps_[se] == 0) return speed_[flat(e, i)];
  return total_travel_[flat(e, i)] / (static_cast<double>(steps_[se]) * cfg_.dt);
}

}  // namespace hero::sim
