// Two-lane ring track.
//
// The paper's Gazebo world and physical testbed are closed two-lane tracks;
// we model the road in curvilinear coordinates: `x` is arc length along the
// ring (wraps at the circumference) and `y` is the signed lateral offset.
// For the straight-segment kinematics used here the mapping is exact.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace hero::sim {

struct TrackConfig {
  double circumference = 8.0;  // metres of arc length; x wraps at this value
  double lane_width = 0.35;    // metres
  int num_lanes = 2;
};

class Track {
 public:
  explicit Track(const TrackConfig& cfg = {});

  double circumference() const { return cfg_.circumference; }
  double lane_width() const { return cfg_.lane_width; }
  int num_lanes() const { return cfg_.num_lanes; }

  // Lateral centre of lane `id` (lane 0 centred at y = 0).
  double lane_center(int id) const;

  // Lane containing lateral offset y (clamped to valid lanes).
  int lane_of(double y) const;

  // True if y is within the drivable road (half a lane width beyond the
  // outermost lane centres).
  bool on_road(double y) const;

  // Wraps arc-length coordinate into [0, circumference).
  double wrap_x(double x) const;

  // Signed shortest arc-length from `from` to `to` (positive = ahead),
  // in (-C/2, C/2].
  double signed_dx(double from, double to) const;

  // Forward gap from `from` to `to` in [0, C): arc length driving forward.
  double forward_gap(double from, double to) const;

 private:
  TrackConfig cfg_;
};

}  // namespace hero::sim
