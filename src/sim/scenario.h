// Scenario builders reproducing the paper's evaluation setups.
//
//  * cooperative_lane_change — Fig. 6 / Fig. 9: a two-lane ring where the
//    lead vehicle in lane 0 plods (simulated congestion), the vehicle behind
//    it must merge into lane 1, and the lane-1 vehicles must cooperate to
//    open a gap.
//  * skill_training_world — single-vehicle worlds used for stage-1 low-level
//    skill learning (Sec. V-C), optionally with a slow leader.
#pragma once

#include <string>

#include "sim/lane_world.h"

namespace hero::sim {

struct Scenario {
  LaneWorldConfig config;
  int merger_index = 1;        // the vehicle that must change lane ("vehicle 2")
  int merger_target_lane = 1;  // where a successful merge ends up
};

// `num_learners` controls scalability experiments; the paper uses 3 learners
// plus one scripted plodding vehicle.
Scenario cooperative_lane_change(int num_learners = 3);

// Single learner on an otherwise empty (or one-leader) ring, for low-level
// skill training with intrinsic rewards.
LaneWorldConfig skill_training_world(bool with_leader = false);

// A harder cooperative workload on the same substrate: slow scripted
// vehicles block BOTH lanes at staggered positions, so the learners must
// repeatedly weave between lanes and negotiate passing order. Success is
// judged on the first learner clearing the leading blocker.
Scenario overtaking_gauntlet(int num_learners = 2);

// Loads a declarative scenario config from a JSON file (see
// scenarios/dense_traffic.json and the README quickstart). The file sets
// track geometry, episode knobs and either an explicit "vehicles" list or a
// parameterized "traffic" generator block (num_vehicles, plodder cadence,
// start speeds) that lays vehicles out evenly across the lanes with
// staggered arc offsets. `num_vehicles_override`, when > 0, replaces the
// generator's num_vehicles — how the bench / determinism gates sweep
// V ∈ {64, 128, 256} from one config. Throws std::runtime_error with a
// descriptive message on unreadable files, malformed JSON, or invalid
// values.
Scenario load_scenario(const std::string& path, int num_vehicles_override = 0);

}  // namespace hero::sim
