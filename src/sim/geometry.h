// 2-D geometry primitives for the lane-world simulator: vectors, oriented
// bounding boxes with separating-axis overlap tests, and ray casts used by
// the lidar model.
#pragma once

#include <array>
#include <cmath>
#include <optional>

namespace hero::sim {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::sqrt(x * x + y * y); }
  Vec2 rotated(double angle) const {
    const double c = std::cos(angle), s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
};

// Wraps an angle into (-pi, pi].
double wrap_angle(double a);

// Oriented bounding box: centre, heading, half-extents along the local axes.
struct Obb {
  Vec2 center;
  double heading = 0.0;  // radians, local +x axis direction
  double half_len = 0.0; // half extent along heading
  double half_wid = 0.0; // half extent perpendicular

  std::array<Vec2, 4> corners() const;
};

// Separating-axis overlap test for two OBBs (touching counts as overlap).
bool obb_overlap(const Obb& a, const Obb& b);

// Distance from `origin` along unit `dir` to the first intersection with the
// box, or nullopt if the ray misses. origin outside the box assumed; if the
// origin is inside, returns 0.
std::optional<double> ray_obb(const Vec2& origin, const Vec2& dir, const Obb& box);

// ray_obb with the box-frame rotation hoisted: callers that test one box
// against several beams pass rot_cos = cos(-box.heading) and
// rot_sin = sin(-box.heading) once instead of paying two sincos pairs per
// cast. Bit-identical to ray_obb (the rotation arithmetic matches
// Vec2::rotated term for term); the lidar narrow phase relies on that.
std::optional<double> ray_obb_prerot(const Vec2& origin, const Vec2& dir,
                                     const Obb& box, double rot_cos,
                                     double rot_sin);

// Distance along the ray to a circle, or nullopt on miss.
std::optional<double> ray_circle(const Vec2& origin, const Vec2& dir, const Vec2& center,
                                 double radius);

}  // namespace hero::sim
