#include "sim/vehicle.h"

#include <algorithm>
#include <cmath>

namespace hero::sim {

void Vehicle::step(const TwistCmd& cmd, double dt, const Track& track) {
  state_ = integrate_unicycle(params_, state_, cmd, dt, track);
}

Obb Vehicle::footprint() const {
  return Obb{{state_.x, state_.y}, state_.heading, 0.5 * params_.length,
             0.5 * params_.width};
}

}  // namespace hero::sim
