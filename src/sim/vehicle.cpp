#include "sim/vehicle.h"

#include <algorithm>
#include <cmath>

namespace hero::sim {

void Vehicle::step(const TwistCmd& cmd, double dt, const Track& track) {
  const double v = std::clamp(cmd.linear, params_.min_speed, params_.max_speed);
  const double w = std::clamp(cmd.angular, -params_.max_yaw_rate, params_.max_yaw_rate);

  // Mid-point heading integration keeps trajectories rotation-consistent at
  // the coarse control rate used here.
  const double h0 = state_.heading;
  double h1 = std::clamp(wrap_angle(h0 + w * dt), -params_.max_heading,
                         params_.max_heading);
  const double hm = 0.5 * (h0 + h1);

  state_.x = track.wrap_x(state_.x + v * std::cos(hm) * dt);
  state_.y += v * std::sin(hm) * dt;
  state_.heading = h1;
  state_.speed = v;
  state_.yaw_rate = w;
}

Obb Vehicle::footprint() const {
  return Obb{{state_.x, state_.y}, state_.heading, 0.5 * params_.length,
             0.5 * params_.width};
}

}  // namespace hero::sim
