// SpatialIndex: shared per-step neighbor index over wrapped arc length.
//
// One build per (env, step) sorts the vehicles by wrapped arc-length
// position; every consumer of "who is near x?" — collision broad-phase,
// lidar box staging, LaneCamera's lead search — then answers with a
// binary-search range query over the ring metric instead of scanning all V
// vehicles. Candidate sets shrink from V to the k vehicles inside the sensor
// window, which is what lets the sim hold hundreds of vehicles per scene
// (docs/PERFORMANCE.md, "Spatial neighbor index").
//
// Equivalence contract: the index is a *conservative* pruner. A window query
// of half-widths (behind, ahead) returns every vehicle whose wrapped
// position lies in [x0 − behind, x0 + ahead] — a superset of any predicate
// on the Euclidean or forward-gap metric with the same reach, because
// |signed_dx| and forward_gap are lower-bounded by window membership.
// Consumers re-apply their exact fine-grained predicate to the candidates,
// so sensing output stays bitwise identical to the all-pairs path
// (tests/test_spatial_index.cpp enforces this on randomized scenes).
//
// query() returns candidate ids in ascending vehicle id — the same visit
// order as the all-pairs loops they replace, so order-sensitive consumers
// (the camera's first-minimal-gap lead search) keep their tie behavior.
// query_unordered() skips that final sort for consumers whose reduction is
// order-invariant (the lidar per-beam minimum).
//
// Thread-safety: thread-confined like the worlds that own it; query() uses
// mutable scratch.
#pragma once

#include <vector>

namespace hero::sim {

class SpatialIndex {
 public:
  // Sorts vehicle ids 0..n-1 by (position, id). Positions must already be
  // wrapped into [0, circumference). Grows internal storage only when `n`
  // exceeds every earlier build — steady-state rebuilds are allocation-free.
  // Rebuilds at an unchanged `n` insertion-sort the previous build's order,
  // which one sim step leaves nearly sorted, so the per-step re-sort is
  // effectively linear; the resulting order is identical either way because
  // (position, id) keys are unique.
  void build(const double* xs, int n, double circumference);

  bool built() const { return n_ > 0; }
  void invalidate() { n_ = 0; }
  int size() const { return n_; }

  // Sorted-order accessors for sweep consumers (collision broad-phase).
  // ids()[rank] is the vehicle at the given arc-length rank; ties are broken
  // by ascending id, matching a stable sort of the all-pairs order.
  const int* ids() const { return order_.data(); }
  int id(int rank) const { return order_[static_cast<std::size_t>(rank)]; }
  double pos(int rank) const { return sx_[static_cast<std::size_t>(rank)]; }

  // Writes the ids of every vehicle (except `exclude`) whose position lies
  // in the wrapped window [x0 − behind, x0 + ahead] — endpoints inclusive —
  // to internal scratch, ascending by id, and points *out_ids at it. Returns
  // the candidate count. A window spanning the whole ring returns everyone.
  // Preconditions: built(), x0 ∈ [0, circumference), behind/ahead ≥ 0.
  int query(double x0, double behind, double ahead, int exclude,
            const int** out_ids) const;

  // As query(), but candidates arrive in arc-length rank order instead of
  // ascending id. Only valid for consumers that reduce over the candidate
  // set in an order-invariant way (min/any/count); the lidar box staging
  // qualifies because the per-beam best is a minimum over ray casts.
  int query_unordered(double x0, double behind, double ahead, int exclude,
                      const int** out_ids) const;

 private:
  // Shared window walk: writes candidates to cand_ in rank order and
  // returns the count.
  int query_collect(double x0, double behind, double ahead, int exclude) const;

  int n_ = 0;
  double circ_ = 0.0;
  std::vector<int> order_;       // vehicle id per arc-length rank
  std::vector<double> sx_;       // wrapped position per rank (ascending)
  mutable std::vector<int> cand_;  // query scratch
};

}  // namespace hero::sim
