// 360° lidar model: N evenly-spaced beams raycast from the ego vehicle
// against the other vehicles' footprints, range-clipped and normalized.
// This is the paper's `s_lidar` component of the high-level state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/vehicle.h"

namespace hero::sim {

// Octant-reduced polynomial atan2 used by the beam cull to locate a box's
// centre direction without a libm call. Its absolute error is below
// kLidarAtanApproxMaxErr everywhere (enforced by a dense sweep in
// tests/test_spatial_index.cpp); the cull widens its angular interval by
// that bound, so the approximation can only admit extra beams — never skip
// one that could hit. Requires (x, y) != (0, 0).
double approx_atan2(double y, double x);
inline constexpr double kLidarAtanApproxMaxErr = 0.004;  // radians

struct LidarConfig {
  int num_beams = 24;  // 15° spacing keeps a car-sized target ≥1 beam wide at 1 m
  double max_range = 2.0;     // metres
  double noise_stddev = 0.0;  // additive Gaussian range noise (real-world mode)
};

class LidarSensor {
 public:
  explicit LidarSensor(const LidarConfig& cfg = {});

  // Returns num_beams ranges normalized to [0, 1] (1 = nothing within
  // max_range). Beam 0 points along the ego heading; beams sweep CCW.
  // Other vehicles are re-positioned relative to the ego through the track's
  // wrap-around metric so the ring topology is respected.
  std::vector<double> scan(const Vehicle& ego, const std::vector<Vehicle>& all,
                           std::size_t ego_index, const Track& track,
                           Rng* noise_rng = nullptr) const;

  // Zero-allocation scan core: raycasts the beams from pose (x, y, heading)
  // against `num_boxes` pre-placed footprints (already re-centred relative
  // to the ego through the track's wrapped metric) and writes num_beams
  // normalized ranges to `out`. scan() and the SoA worlds delegate here so
  // batched scans stay bitwise equal to serial ones.
  // Noise draws (when enabled) are per beam, independent of the box set.
  //
  // Narrow phase: per staged box, only the beams inside the angular interval
  // subtended by the box's circumcircle (± a safety margin) are raycast —
  // beams outside it provably miss, so the per-beam minima (and therefore
  // the output) are bitwise identical to testing every beam against every
  // box (scan_into_allpairs, enforced by tests/test_spatial_index.cpp).
  void scan_into(double x, double y, double heading, const Obb* boxes,
                 std::size_t num_boxes, Rng* noise_rng, double* out) const;

  // Reference narrow phase: every beam against every staged box. Kept as
  // the equivalence baseline for the angular cull and as the measured
  // all-pairs path of the dense-traffic benchmark.
  void scan_into_allpairs(double x, double y, double heading, const Obb* boxes,
                          std::size_t num_boxes, Rng* noise_rng,
                          double* out) const;

  const LidarConfig& config() const { return cfg_; }

 private:
  LidarConfig cfg_;
  // Per-scan scratch, sized at construction. Mutable: a sensor instance is
  // thread-confined like the world that owns it (docs/PARALLELISM.md).
  mutable std::vector<double> best_;        // per-beam running minimum
  mutable std::vector<Vec2> dirs_;          // per-beam direction cache
  mutable std::vector<std::uint8_t> dir_ok_;  // which dirs_ entries are live
};

}  // namespace hero::sim
