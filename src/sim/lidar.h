// 360° lidar model: N evenly-spaced beams raycast from the ego vehicle
// against the other vehicles' footprints, range-clipped and normalized.
// This is the paper's `s_lidar` component of the high-level state.
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/vehicle.h"

namespace hero::sim {

struct LidarConfig {
  int num_beams = 24;  // 15° spacing keeps a car-sized target ≥1 beam wide at 1 m
  double max_range = 2.0;     // metres
  double noise_stddev = 0.0;  // additive Gaussian range noise (real-world mode)
};

class LidarSensor {
 public:
  explicit LidarSensor(const LidarConfig& cfg = {});

  // Returns num_beams ranges normalized to [0, 1] (1 = nothing within
  // max_range). Beam 0 points along the ego heading; beams sweep CCW.
  // Other vehicles are re-positioned relative to the ego through the track's
  // wrap-around metric so the ring topology is respected.
  std::vector<double> scan(const Vehicle& ego, const std::vector<Vehicle>& all,
                           std::size_t ego_index, const Track& track,
                           Rng* noise_rng = nullptr) const;

  // Zero-allocation scan core: raycasts the beams from pose (x, y, heading)
  // against `num_boxes` pre-placed footprints (already re-centred relative
  // to the ego through the track's wrapped metric) and writes num_beams
  // normalized ranges to `out`. scan() and the batched SoA world both
  // delegate here so batched scans stay bitwise equal to serial ones.
  // Noise draws (when enabled) are per beam, independent of the box set.
  void scan_into(double x, double y, double heading, const Obb* boxes,
                 std::size_t num_boxes, Rng* noise_rng, double* out) const;

  const LidarConfig& config() const { return cfg_; }

 private:
  LidarConfig cfg_;
};

}  // namespace hero::sim
