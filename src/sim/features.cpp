#include "sim/features.h"

#include <algorithm>
#include <cmath>

#include "sim/spatial_index.h"

namespace hero::sim {

LaneCamera::LaneCamera(const LaneCameraConfig& cfg) : cfg_(cfg) {
  HERO_CHECK(cfg_.lead_range > 0.0);
}

std::vector<double> LaneCamera::features(const Vehicle& ego,
                                         const std::vector<Vehicle>& all,
                                         std::size_t ego_index, const Track& track,
                                         int reference_lane, Rng* noise_rng) const {
  // Stage the scene as parallel state arrays and run the shared core.
  std::vector<double> xs(all.size()), ys(all.size()), speeds(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    xs[i] = all[i].state().x;
    ys[i] = all[i].state().y;
    speeds[i] = all[i].state().speed;
  }
  std::vector<double> f(kLaneCameraDim);
  features_into(ego.state(), ego.params().max_speed, xs.data(), ys.data(),
                speeds.data(), all.size(), ego_index, track, reference_lane,
                noise_rng, f.data());
  return f;
}

void LaneCamera::features_into(const VehicleState& s, double ego_max_speed,
                               const double* xs, const double* ys,
                               const double* speeds, std::size_t n,
                               std::size_t ego_index, const Track& track,
                               int reference_lane, Rng* noise_rng,
                               double* out) const {
  features_into(s, ego_max_speed, xs, ys, speeds, n, ego_index, track,
                reference_lane, noise_rng, /*index=*/nullptr, out);
}

void LaneCamera::features_into(const VehicleState& s, double ego_max_speed,
                               const double* xs, const double* ys,
                               const double* speeds, std::size_t n,
                               std::size_t ego_index, const Track& track,
                               int reference_lane, Rng* noise_rng,
                               const SpatialIndex* index, double* out) const {
  const double w = track.lane_width();
  const double ref_c = track.lane_center(reference_lane);
  const int ego_lane = track.lane_of(s.y);

  // Nearest vehicle ahead in the ego's current lane. Any winner of the
  // strict `d < gap` test has forward_gap < lead_range, so the index's
  // inclusive forward window [s.x, s.x + lead_range] is a superset of every
  // possible leader; candidates arrive ascending by id, the full scan's
  // visit order, so ties resolve to the same vehicle.
  double gap = cfg_.lead_range;
  double lead_rel_speed = 0.0;
  if (index) {
    const int* ids = nullptr;
    const int k = index->query(s.x, 0.0, cfg_.lead_range,
                               static_cast<int>(ego_index), &ids);
    for (int c = 0; c < k; ++c) {
      const std::size_t i = static_cast<std::size_t>(ids[c]);
      if (track.lane_of(ys[i]) != ego_lane) continue;
      const double d = track.forward_gap(s.x, xs[i]);
      if (d < gap) {
        gap = d;
        lead_rel_speed = speeds[i] - s.speed;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == ego_index) continue;
      if (track.lane_of(ys[i]) != ego_lane) continue;
      const double d = track.forward_gap(s.x, xs[i]);
      if (d < gap) {
        gap = d;
        lead_rel_speed = speeds[i] - s.speed;
      }
    }
  }

  out[0] = (s.y - ref_c) / w;
  out[1] = std::sin(s.heading);
  out[2] = std::cos(s.heading);
  out[3] = gap / cfg_.lead_range;
  out[4] = lead_rel_speed / ego_max_speed;
  const int other_lane = reference_lane == 0 ? std::min(1, track.num_lanes() - 1) : 0;
  out[5] = (track.lane_center(other_lane) - ref_c) / w;

  if (noise_rng && cfg_.noise_stddev > 0.0) {
    for (std::size_t i = 0; i < kLaneCameraDim; ++i) {
      out[i] += noise_rng->normal(0.0, cfg_.noise_stddev);
    }
  }
}

}  // namespace hero::sim
