#include "sim/features.h"

#include <algorithm>
#include <cmath>

namespace hero::sim {

LaneCamera::LaneCamera(const LaneCameraConfig& cfg) : cfg_(cfg) {
  HERO_CHECK(cfg_.lead_range > 0.0);
}

std::vector<double> LaneCamera::features(const Vehicle& ego,
                                         const std::vector<Vehicle>& all,
                                         std::size_t ego_index, const Track& track,
                                         int reference_lane, Rng* noise_rng) const {
  const VehicleState& s = ego.state();
  const double w = track.lane_width();
  const double ref_c = track.lane_center(reference_lane);
  const int ego_lane = track.lane_of(s.y);

  // Nearest vehicle ahead in the ego's current lane.
  double gap = cfg_.lead_range;
  double lead_rel_speed = 0.0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i == ego_index) continue;
    if (track.lane_of(all[i].state().y) != ego_lane) continue;
    const double d = track.forward_gap(s.x, all[i].state().x);
    if (d < gap) {
      gap = d;
      lead_rel_speed = all[i].state().speed - s.speed;
    }
  }

  std::vector<double> f(kLaneCameraDim);
  f[0] = (s.y - ref_c) / w;
  f[1] = std::sin(s.heading);
  f[2] = std::cos(s.heading);
  f[3] = gap / cfg_.lead_range;
  f[4] = lead_rel_speed / ego.params().max_speed;
  const int other_lane = reference_lane == 0 ? std::min(1, track.num_lanes() - 1) : 0;
  f[5] = (track.lane_center(other_lane) - ref_c) / w;

  if (noise_rng && cfg_.noise_stddev > 0.0) {
    for (double& v : f) v += noise_rng->normal(0.0, cfg_.noise_stddev);
  }
  return f;
}

}  // namespace hero::sim
