#include "sim/scenario.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace hero::sim {

Scenario cooperative_lane_change(int num_learners) {
  HERO_CHECK_MSG(num_learners >= 1, "need at least one learner");
  Scenario sc;
  LaneWorldConfig& cfg = sc.config;
  cfg.track.circumference = 8.0;
  cfg.track.lane_width = 0.35;
  cfg.track.num_lanes = 2;
  cfg.dt = 0.5;
  cfg.max_steps = 30;
  // Team-mean travel: at the episode budgets of the single-core benches the
  // fully-shared reward learns collision avoidance far more reliably than
  // the per-vehicle form (see EXPERIMENTS.md, calibration note 2).
  cfg.shared_travel = true;

  // Geometry calibrated to the paper's Fig. 9 testbed, where vehicles keep
  // one-to-several car lengths of headway: the merge is comfortably feasible
  // when the lane-1 vehicles cooperate (yield), marginal when they keep
  // accelerating, and impossible to avoid a rear-end (within the episode)
  // for a merger that simply drives on.

  // Learner "vehicle 2": blocked behind the plodder in lane 0, must merge.
  VehicleSpec merger;
  merger.start_lane = 0;
  merger.start_x = 1.2;
  merger.start_x_jitter = 0.15;
  merger.start_speed = 0.10;

  // Learner "vehicle 1": lane 1, behind the merge point — the one that has
  // to yield while the merger crosses.
  VehicleSpec yielder;
  yielder.start_lane = 1;
  yielder.start_x = 0.9;
  yielder.start_x_jitter = 0.15;
  yielder.start_speed = 0.10;

  // Learner "vehicle 3": lane 1, further upstream.
  VehicleSpec follower;
  follower.start_lane = 1;
  follower.start_x = -0.5;
  follower.start_x_jitter = 0.15;
  follower.start_speed = 0.10;

  // Scripted "vehicle 4": plodding congestion in lane 0.
  VehicleSpec plodder;
  plodder.start_lane = 0;
  plodder.start_x = 2.5;
  plodder.start_x_jitter = 0.05;
  plodder.scripted = true;
  plodder.scripted_speed = 0.04;

  // Order: [yielder, merger, follower, extra..., plodder]; merger_index = 1
  // mirrors the paper's "vehicle 2". A single-learner scenario keeps only
  // the merger (it becomes index 0).
  if (num_learners >= 2) cfg.specs.push_back(yielder);
  cfg.specs.push_back(merger);
  if (num_learners >= 3) cfg.specs.push_back(follower);
  // Additional learners (scalability studies) spread upstream in lane 1.
  for (int extra = 3; extra < num_learners; ++extra) {
    VehicleSpec v = follower;
    v.start_x = follower.start_x - 0.9 * static_cast<double>(extra - 2);
    cfg.specs.push_back(v);
  }
  cfg.specs.push_back(plodder);

  sc.merger_index = num_learners >= 2 ? 1 : 0;
  sc.merger_target_lane = 1;
  return sc;
}

Scenario overtaking_gauntlet(int num_learners) {
  HERO_CHECK_MSG(num_learners >= 1, "need at least one learner");
  Scenario sc;
  LaneWorldConfig& cfg = sc.config;
  cfg.track.circumference = 10.0;
  cfg.track.lane_width = 0.35;
  cfg.track.num_lanes = 2;
  cfg.dt = 0.5;
  cfg.max_steps = 40;  // weaving needs more room than the single merge
  cfg.shared_travel = true;

  // Learners start bunched in lane 0.
  for (int i = 0; i < num_learners; ++i) {
    VehicleSpec v;
    v.start_lane = 0;
    v.start_x = 0.0 - 0.8 * static_cast<double>(i);
    v.start_x_jitter = 0.2;
    v.start_speed = 0.10;
    cfg.specs.push_back(v);
  }

  // Staggered blockers: lane 0 ahead, lane 1 further ahead — passing one
  // blocker puts the learner behind the next in the other lane.
  VehicleSpec blocker0;
  blocker0.start_lane = 0;
  blocker0.start_x = 1.6;
  blocker0.start_x_jitter = 0.1;
  blocker0.scripted = true;
  blocker0.scripted_speed = 0.04;
  cfg.specs.push_back(blocker0);

  VehicleSpec blocker1 = blocker0;
  blocker1.start_lane = 1;
  blocker1.start_x = 3.4;
  cfg.specs.push_back(blocker1);

  sc.merger_index = 0;        // the lead learner must clear lane 0's blocker
  sc.merger_target_lane = 1;  // first manoeuvre: move to lane 1
  return sc;
}

namespace {

[[noreturn]] void scenario_error(const std::string& path, const std::string& what) {
  throw std::runtime_error("load_scenario(" + path + "): " + what);
}

double require_positive(const std::string& path, const char* key, double v) {
  if (!(v > 0.0)) {
    std::ostringstream os;
    os << key << " must be > 0, got " << v;
    scenario_error(path, os.str());
  }
  return v;
}

}  // namespace

Scenario load_scenario(const std::string& path, int num_vehicles_override) {
  std::ifstream in(path);
  if (!in) scenario_error(path, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();

  obs::JsonValue doc;
  std::string err;
  if (!obs::JsonValue::parse(buf.str(), doc, &err)) {
    scenario_error(path, "malformed JSON: " + err);
  }
  if (!doc.is_object()) scenario_error(path, "top-level value must be an object");

  Scenario sc;
  LaneWorldConfig& cfg = sc.config;

  if (const obs::JsonValue* track = doc.find("track")) {
    cfg.track.circumference = require_positive(
        path, "track.circumference",
        track->get_number("circumference", cfg.track.circumference));
    cfg.track.lane_width = require_positive(
        path, "track.lane_width",
        track->get_number("lane_width", cfg.track.lane_width));
    cfg.track.num_lanes =
        static_cast<int>(track->get_number("num_lanes", cfg.track.num_lanes));
    if (cfg.track.num_lanes < 1) scenario_error(path, "track.num_lanes must be >= 1");
  }
  cfg.dt = require_positive(path, "dt", doc.get_number("dt", cfg.dt));
  cfg.max_steps = static_cast<int>(doc.get_number("max_steps", cfg.max_steps));
  if (cfg.max_steps < 1) scenario_error(path, "max_steps must be >= 1");
  cfg.alpha = doc.get_number("alpha", cfg.alpha);
  cfg.collision_penalty =
      doc.get_number("collision_penalty", cfg.collision_penalty);
  if (const obs::JsonValue* v = doc.find("shared_travel")) {
    cfg.shared_travel = v->bool_or(cfg.shared_travel);
  }
  if (const obs::JsonValue* v = doc.find("use_spatial_index")) {
    cfg.use_spatial_index = v->bool_or(cfg.use_spatial_index);
  }

  const obs::JsonValue* vehicles = doc.find("vehicles");
  const obs::JsonValue* traffic = doc.find("traffic");
  if ((vehicles != nullptr) == (traffic != nullptr)) {
    scenario_error(path, "exactly one of \"vehicles\" or \"traffic\" is required");
  }

  if (vehicles) {
    if (!vehicles->is_array() || vehicles->items.empty()) {
      scenario_error(path, "\"vehicles\" must be a non-empty array");
    }
    if (num_vehicles_override > 0) {
      scenario_error(path, "num_vehicles override needs a \"traffic\" block");
    }
    for (const obs::JsonValue& v : vehicles->items) {
      VehicleSpec sp;
      sp.start_lane = static_cast<int>(v.get_number("lane", 0));
      sp.start_x = v.get_number("x", 0.0);
      sp.start_x_jitter = v.get_number("x_jitter", 0.0);
      sp.start_speed = v.get_number("speed", sp.start_speed);
      if (const obs::JsonValue* s = v.find("scripted")) {
        sp.scripted = s->bool_or(false);
      }
      sp.scripted_speed = v.get_number("scripted_speed", sp.scripted_speed);
      if (sp.start_lane < 0 || sp.start_lane >= cfg.track.num_lanes) {
        scenario_error(path, "vehicle lane outside the track");
      }
      cfg.specs.push_back(sp);
    }
  } else {
    // Parameterized dense-traffic generator: num_vehicles spread round-robin
    // across the lanes, evenly spaced along each lane's arc with a per-lane
    // stagger so adjacent lanes do not start as side-by-side walls; every
    // plodder_every-th vehicle is a scripted plodder (mixed congestion).
    int num_vehicles =
        static_cast<int>(traffic->get_number("num_vehicles", 0));
    if (num_vehicles_override > 0) num_vehicles = num_vehicles_override;
    if (num_vehicles < 1) scenario_error(path, "traffic.num_vehicles must be >= 1");
    const int plodder_every =
        static_cast<int>(traffic->get_number("plodder_every", 0));
    const double start_speed = traffic->get_number("start_speed", 0.10);
    const double plodder_speed = traffic->get_number("plodder_speed", 0.04);
    const double jitter = traffic->get_number("start_x_jitter", 0.0);

    const int lanes = cfg.track.num_lanes;
    for (int i = 0; i < num_vehicles; ++i) {
      const int lane = i % lanes;
      const int slot = i / lanes;
      // Vehicles this lane receives under round-robin assignment.
      const int lane_count = (num_vehicles - 1 - lane) / lanes + 1;
      const double spacing = cfg.track.circumference / lane_count;
      if (spacing <= cfg.vehicle.length + 2.0 * jitter) {
        std::ostringstream os;
        os << "lane " << lane << " is oversubscribed: spacing " << spacing
           << " m cannot hold a " << cfg.vehicle.length
           << " m vehicle with ±" << jitter << " m jitter";
        scenario_error(path, os.str());
      }
      VehicleSpec sp;
      sp.start_lane = lane;
      sp.start_x = static_cast<double>(slot) * spacing +
                   static_cast<double>(lane) * spacing /
                       static_cast<double>(lanes);
      sp.start_x_jitter = jitter;
      sp.start_speed = start_speed;
      if (plodder_every > 0 && (i % plodder_every) == plodder_every - 1) {
        sp.scripted = true;
        sp.scripted_speed = plodder_speed;
      }
      cfg.specs.push_back(sp);
    }
  }

  bool any_learner = false;
  for (const VehicleSpec& sp : cfg.specs) any_learner |= !sp.scripted;
  if (!any_learner) scenario_error(path, "scenario has no learner vehicles");

  sc.merger_index = static_cast<int>(doc.get_number("merger_index", 0));
  sc.merger_target_lane =
      static_cast<int>(doc.get_number("merger_target_lane", 1));
  if (sc.merger_index < 0 ||
      sc.merger_index >= static_cast<int>(cfg.specs.size()) ||
      cfg.specs[static_cast<std::size_t>(sc.merger_index)].scripted) {
    scenario_error(path, "merger_index must name a learner vehicle");
  }
  if (sc.merger_target_lane < 0 || sc.merger_target_lane >= cfg.track.num_lanes) {
    scenario_error(path, "merger_target_lane outside the track");
  }
  return sc;
}

LaneWorldConfig skill_training_world(bool with_leader) {
  LaneWorldConfig cfg;
  cfg.track.circumference = 8.0;
  cfg.track.lane_width = 0.35;
  cfg.track.num_lanes = 2;
  cfg.dt = 0.5;
  cfg.max_steps = 30;

  VehicleSpec learner;
  learner.start_lane = 0;
  learner.start_x = 0.0;
  learner.start_x_jitter = 0.5;
  learner.start_speed = 0.10;
  cfg.specs.push_back(learner);

  if (with_leader) {
    VehicleSpec leader;
    leader.start_lane = 0;
    leader.start_x = 1.5;
    leader.start_x_jitter = 0.3;
    leader.scripted = true;
    leader.scripted_speed = 0.05;
    cfg.specs.push_back(leader);
  }
  return cfg;
}

}  // namespace hero::sim
