#include "sim/scenario.h"

namespace hero::sim {

Scenario cooperative_lane_change(int num_learners) {
  HERO_CHECK_MSG(num_learners >= 1, "need at least one learner");
  Scenario sc;
  LaneWorldConfig& cfg = sc.config;
  cfg.track.circumference = 8.0;
  cfg.track.lane_width = 0.35;
  cfg.track.num_lanes = 2;
  cfg.dt = 0.5;
  cfg.max_steps = 30;
  // Team-mean travel: at the episode budgets of the single-core benches the
  // fully-shared reward learns collision avoidance far more reliably than
  // the per-vehicle form (see EXPERIMENTS.md, calibration note 2).
  cfg.shared_travel = true;

  // Geometry calibrated to the paper's Fig. 9 testbed, where vehicles keep
  // one-to-several car lengths of headway: the merge is comfortably feasible
  // when the lane-1 vehicles cooperate (yield), marginal when they keep
  // accelerating, and impossible to avoid a rear-end (within the episode)
  // for a merger that simply drives on.

  // Learner "vehicle 2": blocked behind the plodder in lane 0, must merge.
  VehicleSpec merger;
  merger.start_lane = 0;
  merger.start_x = 1.2;
  merger.start_x_jitter = 0.15;
  merger.start_speed = 0.10;

  // Learner "vehicle 1": lane 1, behind the merge point — the one that has
  // to yield while the merger crosses.
  VehicleSpec yielder;
  yielder.start_lane = 1;
  yielder.start_x = 0.9;
  yielder.start_x_jitter = 0.15;
  yielder.start_speed = 0.10;

  // Learner "vehicle 3": lane 1, further upstream.
  VehicleSpec follower;
  follower.start_lane = 1;
  follower.start_x = -0.5;
  follower.start_x_jitter = 0.15;
  follower.start_speed = 0.10;

  // Scripted "vehicle 4": plodding congestion in lane 0.
  VehicleSpec plodder;
  plodder.start_lane = 0;
  plodder.start_x = 2.5;
  plodder.start_x_jitter = 0.05;
  plodder.scripted = true;
  plodder.scripted_speed = 0.04;

  // Order: [yielder, merger, follower, extra..., plodder]; merger_index = 1
  // mirrors the paper's "vehicle 2". A single-learner scenario keeps only
  // the merger (it becomes index 0).
  if (num_learners >= 2) cfg.specs.push_back(yielder);
  cfg.specs.push_back(merger);
  if (num_learners >= 3) cfg.specs.push_back(follower);
  // Additional learners (scalability studies) spread upstream in lane 1.
  for (int extra = 3; extra < num_learners; ++extra) {
    VehicleSpec v = follower;
    v.start_x = follower.start_x - 0.9 * static_cast<double>(extra - 2);
    cfg.specs.push_back(v);
  }
  cfg.specs.push_back(plodder);

  sc.merger_index = num_learners >= 2 ? 1 : 0;
  sc.merger_target_lane = 1;
  return sc;
}

Scenario overtaking_gauntlet(int num_learners) {
  HERO_CHECK_MSG(num_learners >= 1, "need at least one learner");
  Scenario sc;
  LaneWorldConfig& cfg = sc.config;
  cfg.track.circumference = 10.0;
  cfg.track.lane_width = 0.35;
  cfg.track.num_lanes = 2;
  cfg.dt = 0.5;
  cfg.max_steps = 40;  // weaving needs more room than the single merge
  cfg.shared_travel = true;

  // Learners start bunched in lane 0.
  for (int i = 0; i < num_learners; ++i) {
    VehicleSpec v;
    v.start_lane = 0;
    v.start_x = 0.0 - 0.8 * static_cast<double>(i);
    v.start_x_jitter = 0.2;
    v.start_speed = 0.10;
    cfg.specs.push_back(v);
  }

  // Staggered blockers: lane 0 ahead, lane 1 further ahead — passing one
  // blocker puts the learner behind the next in the other lane.
  VehicleSpec blocker0;
  blocker0.start_lane = 0;
  blocker0.start_x = 1.6;
  blocker0.start_x_jitter = 0.1;
  blocker0.scripted = true;
  blocker0.scripted_speed = 0.04;
  cfg.specs.push_back(blocker0);

  VehicleSpec blocker1 = blocker0;
  blocker1.start_lane = 1;
  blocker1.start_x = 3.4;
  cfg.specs.push_back(blocker1);

  sc.merger_index = 0;        // the lead learner must clear lane 0's blocker
  sc.merger_target_lane = 1;  // first manoeuvre: move to lane 1
  return sc;
}

LaneWorldConfig skill_training_world(bool with_leader) {
  LaneWorldConfig cfg;
  cfg.track.circumference = 8.0;
  cfg.track.lane_width = 0.35;
  cfg.track.num_lanes = 2;
  cfg.dt = 0.5;
  cfg.max_steps = 30;

  VehicleSpec learner;
  learner.start_lane = 0;
  learner.start_x = 0.0;
  learner.start_x_jitter = 0.5;
  learner.start_speed = 0.10;
  cfg.specs.push_back(learner);

  if (with_leader) {
    VehicleSpec leader;
    leader.start_lane = 0;
    leader.start_x = 1.5;
    leader.start_x_jitter = 0.3;
    leader.scripted = true;
    leader.scripted_speed = 0.05;
    cfg.specs.push_back(leader);
  }
  return cfg;
}

}  // namespace hero::sim
