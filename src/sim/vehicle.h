// Kinematic vehicle model.
//
// The testbed robots are differential-drive platforms commanded with a
// (linear speed, angular speed) twist — exactly the paper's low-level action
// space — so a unicycle integrator is the faithful dynamics model.
#pragma once

#include "sim/geometry.h"
#include "sim/track.h"

namespace hero::sim {

struct VehicleParams {
  double length = 0.30;        // metres
  double width = 0.18;
  double max_speed = 0.25;     // hard actuator limits (beyond the RL bounds)
  double min_speed = 0.0;
  double max_yaw_rate = 0.6;
  double max_heading = 1.0;    // |heading| clamp vs the road axis (radians)
};

struct VehicleState {
  double x = 0.0;        // arc length along the track (wraps)
  double y = 0.0;        // lateral offset
  double heading = 0.0;  // relative to the road axis
  double speed = 0.0;    // last commanded linear speed
  double yaw_rate = 0.0; // last commanded angular speed
};

struct TwistCmd {
  double linear = 0.0;
  double angular = 0.0;
};

class Vehicle {
 public:
  Vehicle() = default;
  Vehicle(const VehicleParams& params, const VehicleState& initial)
      : params_(params), state_(initial) {}

  // Integrates one control period. Commands are clamped to actuator limits;
  // heading is clamped so a vehicle can never drive perpendicular to the
  // road (matching the bounded-steering testbed).
  void step(const TwistCmd& cmd, double dt, const Track& track);

  const VehicleState& state() const { return state_; }
  VehicleState& mutable_state() { return state_; }
  const VehicleParams& params() const { return params_; }

  // Footprint for collision / lidar in (x, y) road coordinates.
  Obb footprint() const;

  int lane(const Track& track) const { return track.lane_of(state_.y); }

 private:
  VehicleParams params_;
  VehicleState state_;
};

}  // namespace hero::sim
