// Kinematic vehicle model.
//
// The testbed robots are differential-drive platforms commanded with a
// (linear speed, angular speed) twist — exactly the paper's low-level action
// space — so a unicycle integrator is the faithful dynamics model.
#pragma once

#include <algorithm>
#include <cmath>

#include "sim/geometry.h"
#include "sim/track.h"

namespace hero::sim {

struct VehicleParams {
  double length = 0.30;        // metres
  double width = 0.18;
  double max_speed = 0.25;     // hard actuator limits (beyond the RL bounds)
  double min_speed = 0.0;
  double max_yaw_rate = 0.6;
  double max_heading = 1.0;    // |heading| clamp vs the road axis (radians)
};

struct VehicleState {
  double x = 0.0;        // arc length along the track (wraps)
  double y = 0.0;        // lateral offset
  double heading = 0.0;  // relative to the road axis
  double speed = 0.0;    // last commanded linear speed
  double yaw_rate = 0.0; // last commanded angular speed
};

struct TwistCmd {
  double linear = 0.0;
  double angular = 0.0;
};

// One control period of the unicycle integrator: commands clamped to the
// actuator limits, mid-point heading integration, arc length wrapped through
// the track. Defined inline in this header because Vehicle::step *and* the
// SoA BatchLaneWorld kinematics pass both call it — sharing one set of
// expressions is what keeps batched trajectories bitwise equal to serial
// ones even when the compiler contracts floating-point expressions
// (contraction decisions are made per expression, not per call site).
inline VehicleState integrate_unicycle(const VehicleParams& params,
                                       const VehicleState& s, const TwistCmd& cmd,
                                       double dt, const Track& track) {
  const double v = std::clamp(cmd.linear, params.min_speed, params.max_speed);
  const double w = std::clamp(cmd.angular, -params.max_yaw_rate, params.max_yaw_rate);

  // Mid-point heading integration keeps trajectories rotation-consistent at
  // the coarse control rate used here.
  const double h0 = s.heading;
  const double h1 =
      std::clamp(wrap_angle(h0 + w * dt), -params.max_heading, params.max_heading);
  const double hm = 0.5 * (h0 + h1);

  VehicleState next;
  next.x = track.wrap_x(s.x + v * std::cos(hm) * dt);
  next.y = s.y + v * std::sin(hm) * dt;
  next.heading = h1;
  next.speed = v;
  next.yaw_rate = w;
  return next;
}

class Vehicle {
 public:
  Vehicle() = default;
  Vehicle(const VehicleParams& params, const VehicleState& initial)
      : params_(params), state_(initial) {}

  // Integrates one control period. Commands are clamped to actuator limits;
  // heading is clamped so a vehicle can never drive perpendicular to the
  // road (matching the bounded-steering testbed).
  void step(const TwistCmd& cmd, double dt, const Track& track);

  const VehicleState& state() const { return state_; }
  VehicleState& mutable_state() { return state_; }
  const VehicleParams& params() const { return params_; }

  // Footprint for collision / lidar in (x, y) road coordinates.
  Obb footprint() const;

  int lane(const Track& track) const { return track.lane_of(state_.y); }

 private:
  VehicleParams params_;
  VehicleState state_;
};

}  // namespace hero::sim
