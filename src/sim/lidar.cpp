#include "sim/lidar.h"

#include <algorithm>
#include <cmath>

namespace hero::sim {

namespace {
// Widening applied to the half-angle subtended by a box's circumcircle
// before deciding which beams can hit it. Rounding error in the
// interval arithmetic is a few ulps (~1e-15 rad); 1e-6 rad of slack
// is ~10⁹× that while widening the interval by < 1e-5 beams, so the cull
// stays conservative without ever testing a meaningfully wider fan.
constexpr double kBeamCullMargin = 1e-6;

// Upper bound on asin(x) for x ∈ [0, 1]: asin(x)/x is increasing, so on
// each piece asin(x) ≤ x · asin(t)/t for the piece's right endpoint t (the
// constants below round that ratio up). The cull needs only an upper bound
// on the subtended half-angle — a slightly wide interval tests a beam that
// then misses, never the reverse — and this costs one branch and one
// multiply instead of a libm asin.
double asin_upper_bound(double x) {
  if (x <= 0.5) return 1.0471976 * x;   // asin(0.5)/0.5 = 1.04719755…
  if (x <= 0.9) return 1.2442 * x;      // asin(0.9)/0.9 = 1.24418835…
  return 1.5707964;                     // ≥ π/2 ≥ asin(x)
}
}  // namespace

double approx_atan2(double y, double x) {
  // Octant reduction + the classic quadratic atan approximation on [-1, 1]:
  // atan(z) ≈ z·(π/4 + 0.273·(1 − |z|)). tests/test_spatial_index.cpp
  // sweeps this against std::atan2 and asserts the error stays below
  // kLidarAtanApproxMaxErr, which the beam cull adds back as margin.
  const double ax = std::abs(x);
  const double ay = std::abs(y);
  if (ay <= ax) {
    const double z = y / x;  // |z| ≤ 1; sign of z carries the result's sign
    const double a = z * (0.7853981633974483 + 0.273 * (1.0 - std::abs(z)));
    if (x >= 0.0) return a;
    return a + (y >= 0.0 ? M_PI : -M_PI);
  }
  const double z = x / y;  // |z| < 1
  const double a = z * (0.7853981633974483 + 0.273 * (1.0 - std::abs(z)));
  return (y >= 0.0 ? 0.5 * M_PI : -0.5 * M_PI) - a;
}

LidarSensor::LidarSensor(const LidarConfig& cfg) : cfg_(cfg) {
  HERO_CHECK(cfg_.num_beams > 0);
  HERO_CHECK(cfg_.max_range > 0.0);
  const std::size_t nb = static_cast<std::size_t>(cfg_.num_beams);
  best_.assign(nb, cfg_.max_range);
  dirs_.assign(nb, Vec2{});
  dir_ok_.assign(nb, 0);
}

std::vector<double> LidarSensor::scan(const Vehicle& ego,
                                      const std::vector<Vehicle>& all,
                                      std::size_t ego_index, const Track& track,
                                      Rng* noise_rng) const {
  const VehicleState& s = ego.state();
  std::vector<double> out(static_cast<std::size_t>(cfg_.num_beams), 1.0);

  // Pre-compute the other footprints placed relative to the ego via the
  // wrapped arc-length metric.
  std::vector<Obb> boxes;
  boxes.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i == ego_index) continue;
    Obb box = all[i].footprint();
    box.center.x = s.x + track.signed_dx(s.x, all[i].state().x);
    boxes.push_back(box);
  }

  scan_into(s.x, s.y, s.heading, boxes.data(), boxes.size(), noise_rng, out.data());
  return out;
}

void LidarSensor::scan_into(double x, double y, double heading, const Obb* boxes,
                            std::size_t num_boxes, Rng* noise_rng,
                            double* out) const {
  const int nb = cfg_.num_beams;
  const Vec2 origin{x, y};
  for (int b = 0; b < nb; ++b) {
    best_[static_cast<std::size_t>(b)] = cfg_.max_range;
    dir_ok_[static_cast<std::size_t>(b)] = 0;
  }

  const double beam_step = 2.0 * M_PI / static_cast<double>(nb);
  for (std::size_t i = 0; i < num_boxes; ++i) {
    const Obb& box = boxes[i];
    const double cx = box.center.x - x;
    const double cy = box.center.y - y;
    const double d2 = cx * cx + cy * cy;
    const double r =
        std::sqrt(box.half_len * box.half_len + box.half_wid * box.half_wid);
    // Beam range [lo, hi] (unwrapped beam indices) that can geometrically
    // reach the box: a ray from the origin misses the circumcircle — and
    // therefore the box — unless its angle is within asin(r/d) of the
    // centre direction. Origin inside the circumcircle ⇒ every beam may hit.
    // Both the half-angle and the centre use cheap conservative stand-ins
    // for the libm calls (upper-bounded asin, error-bounded atan2 with the
    // bound added back as margin): the interval can only widen, and a wider
    // interval tests beams that then miss — output is still bitwise equal
    // to the all-pairs narrow phase.
    int lo = 0;
    int hi = nb - 1;
    if (d2 > r * r) {
      const double d = std::sqrt(d2);
      const double half = asin_upper_bound(std::min(1.0, r / d)) +
                          kLidarAtanApproxMaxErr + kBeamCullMargin;
      const double center = (approx_atan2(cy, cx) - heading) / beam_step;
      const double halfb = half / beam_step;
      lo = static_cast<int>(std::ceil(center - halfb));
      hi = static_cast<int>(std::floor(center + halfb));
      if (hi - lo + 1 >= nb) {
        lo = 0;
        hi = nb - 1;
      } else if (hi < lo) {
        continue;  // interval holds no beam direction
      }
    }
    // Hoist the box-frame rotation: every surviving beam casts against the
    // same box, so cos/sin of -heading are paid once per box instead of
    // twice per cast (ray_obb_prerot keeps the result bit-identical).
    const double rot_cos = std::cos(-box.heading);
    const double rot_sin = std::sin(-box.heading);
    for (int bb = lo; bb <= hi; ++bb) {
      const int b = ((bb % nb) + nb) % nb;
      const std::size_t sb = static_cast<std::size_t>(b);
      if (!dir_ok_[sb]) {
        // Must match the reference beam-angle expression bit-for-bit.
        const double angle =
            heading + 2.0 * M_PI * static_cast<double>(b) / cfg_.num_beams;
        dirs_[sb] = Vec2{std::cos(angle), std::sin(angle)};
        dir_ok_[sb] = 1;
      }
      if (auto t = ray_obb_prerot(origin, dirs_[sb], box, rot_cos, rot_sin);
          t && *t < best_[sb]) {
        best_[sb] = *t;
      }
    }
  }

  // Noise and normalization in ascending beam order: the per-beam draw
  // sequence is identical to the beams-outer reference loop.
  for (int b = 0; b < nb; ++b) {
    double best = best_[static_cast<std::size_t>(b)];
    if (noise_rng && cfg_.noise_stddev > 0.0) {
      best = std::clamp(best + noise_rng->normal(0.0, cfg_.noise_stddev), 0.0,
                        cfg_.max_range);
    }
    out[static_cast<std::size_t>(b)] = best / cfg_.max_range;
  }
}

void LidarSensor::scan_into_allpairs(double x, double y, double heading,
                                     const Obb* boxes, std::size_t num_boxes,
                                     Rng* noise_rng, double* out) const {
  const Vec2 origin{x, y};
  for (int b = 0; b < cfg_.num_beams; ++b) {
    const double angle =
        heading + 2.0 * M_PI * static_cast<double>(b) / cfg_.num_beams;
    const Vec2 dir{std::cos(angle), std::sin(angle)};
    double best = cfg_.max_range;
    for (std::size_t i = 0; i < num_boxes; ++i) {
      if (auto t = ray_obb(origin, dir, boxes[i]); t && *t < best) best = *t;
    }
    if (noise_rng && cfg_.noise_stddev > 0.0) {
      best = std::clamp(best + noise_rng->normal(0.0, cfg_.noise_stddev), 0.0,
                        cfg_.max_range);
    }
    out[static_cast<std::size_t>(b)] = best / cfg_.max_range;
  }
}

}  // namespace hero::sim
