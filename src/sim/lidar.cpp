#include "sim/lidar.h"

#include <algorithm>
#include <cmath>

namespace hero::sim {

LidarSensor::LidarSensor(const LidarConfig& cfg) : cfg_(cfg) {
  HERO_CHECK(cfg_.num_beams > 0);
  HERO_CHECK(cfg_.max_range > 0.0);
}

std::vector<double> LidarSensor::scan(const Vehicle& ego,
                                      const std::vector<Vehicle>& all,
                                      std::size_t ego_index, const Track& track,
                                      Rng* noise_rng) const {
  const VehicleState& s = ego.state();
  std::vector<double> out(static_cast<std::size_t>(cfg_.num_beams), 1.0);

  // Pre-compute the other footprints placed relative to the ego via the
  // wrapped arc-length metric.
  std::vector<Obb> boxes;
  boxes.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i == ego_index) continue;
    Obb box = all[i].footprint();
    box.center.x = s.x + track.signed_dx(s.x, all[i].state().x);
    boxes.push_back(box);
  }

  scan_into(s.x, s.y, s.heading, boxes.data(), boxes.size(), noise_rng, out.data());
  return out;
}

void LidarSensor::scan_into(double x, double y, double heading, const Obb* boxes,
                            std::size_t num_boxes, Rng* noise_rng,
                            double* out) const {
  const Vec2 origin{x, y};
  for (int b = 0; b < cfg_.num_beams; ++b) {
    const double angle =
        heading + 2.0 * M_PI * static_cast<double>(b) / cfg_.num_beams;
    const Vec2 dir{std::cos(angle), std::sin(angle)};
    double best = cfg_.max_range;
    for (std::size_t i = 0; i < num_boxes; ++i) {
      if (auto t = ray_obb(origin, dir, boxes[i]); t && *t < best) best = *t;
    }
    if (noise_rng && cfg_.noise_stddev > 0.0) {
      best = std::clamp(best + noise_rng->normal(0.0, cfg_.noise_stddev), 0.0,
                        cfg_.max_range);
    }
    out[static_cast<std::size_t>(b)] = best / cfg_.max_range;
  }
}

}  // namespace hero::sim
