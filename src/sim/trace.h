// Deterministic episode traces: record every command sent to a LaneWorld
// (plus the observed outcomes) and replay the file later to reproduce the
// episode bit-for-bit. Replay verifies recorded travel/collision against the
// re-simulated run, so a trace doubles as a regression fixture for the
// simulator and a debugging artifact for training anomalies.
//
// Format (text, line-oriented):
//   herotrace 1 <num_learners> <seed>
//   step <linear> <angular> ... (num_learners pairs)  <collision> <travel...>
//   end
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/lane_world.h"

namespace hero::sim {

struct TraceStep {
  std::vector<TwistCmd> cmds;          // one per learner
  bool collision = false;
  std::vector<double> travel;          // per vehicle, as observed at record time
};

class EpisodeTrace {
 public:
  // Begins a new trace: the world must be reset with an Rng seeded `seed`
  // *immediately before* recording starts, and stepped with a *fresh* Rng
  // seeded `seed` as well (the trace stores the seed so replay can rebuild
  // the exact noise sequence).
  void begin(unsigned seed, int num_learners);

  void record(const std::vector<TwistCmd>& cmds, const StepResult& result);

  unsigned seed() const { return seed_; }
  int num_learners() const { return num_learners_; }
  const std::vector<TraceStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  static EpisodeTrace load(std::istream& is);
  static EpisodeTrace load_file(const std::string& path);

 private:
  unsigned seed_ = 0;
  int num_learners_ = 0;
  std::vector<TraceStep> steps_;
};

struct ReplayReport {
  bool ok = true;              // everything matched
  int steps_replayed = 0;
  int first_divergence = -1;   // step index of the first mismatch, or -1
  double max_travel_error = 0.0;
};

// Re-simulates the trace on a world built from `config` (reset with the
// trace's seed) and compares outcomes step by step.
ReplayReport replay(const EpisodeTrace& trace, const LaneWorldConfig& config,
                    double travel_tolerance = 1e-9);

// Convenience: runs one episode of `world` under per-step commands from
// `policy(world)`, recording a trace.
template <typename Policy>
EpisodeTrace record_episode(const LaneWorldConfig& config, unsigned seed,
                            Policy&& policy) {
  LaneWorld world(config);
  Rng rng(seed);
  world.reset(rng);
  EpisodeTrace trace;
  trace.begin(seed, world.num_learners());
  while (!world.done()) {
    auto cmds = policy(world);
    auto result = world.step(cmds, rng);
    trace.record(cmds, result);
  }
  return trace;
}

}  // namespace hero::sim
