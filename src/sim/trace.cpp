#include "sim/trace.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace hero::sim {

void EpisodeTrace::begin(unsigned seed, int num_learners) {
  HERO_CHECK(num_learners > 0);
  seed_ = seed;
  num_learners_ = num_learners;
  steps_.clear();
}

void EpisodeTrace::record(const std::vector<TwistCmd>& cmds,
                          const StepResult& result) {
  HERO_CHECK_MSG(static_cast<int>(cmds.size()) == num_learners_,
                 "trace expects " << num_learners_ << " commands");
  steps_.push_back({cmds, result.collision, result.travel});
}

void EpisodeTrace::save(std::ostream& os) const {
  os << "herotrace 1 " << num_learners_ << ' ' << seed_ << '\n';
  os << std::setprecision(17);
  for (const auto& s : steps_) {
    os << "step";
    for (const auto& c : s.cmds) os << ' ' << c.linear << ' ' << c.angular;
    os << ' ' << (s.collision ? 1 : 0);
    for (double t : s.travel) os << ' ' << t;
    os << '\n';
  }
  os << "end\n";
}

void EpisodeTrace::save_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("EpisodeTrace::save_file: cannot open " + path);
  save(f);
}

EpisodeTrace EpisodeTrace::load(std::istream& is) {
  std::string magic;
  int version = 0;
  EpisodeTrace trace;
  is >> magic >> version >> trace.num_learners_ >> trace.seed_;
  if (magic != "herotrace" || version != 1) {
    throw std::runtime_error("EpisodeTrace::load: not a herotrace v1 stream");
  }
  std::string tok;
  std::string line;
  std::getline(is, line);  // finish the header line
  while (std::getline(is, line)) {
    if (line == "end") return trace;
    std::istringstream ls(line);
    ls >> tok;
    if (tok != "step") throw std::runtime_error("EpisodeTrace::load: bad line");
    TraceStep s;
    for (int k = 0; k < trace.num_learners_; ++k) {
      TwistCmd c;
      ls >> c.linear >> c.angular;
      s.cmds.push_back(c);
    }
    int coll = 0;
    ls >> coll;
    s.collision = coll != 0;
    double t;
    while (ls >> t) s.travel.push_back(t);
    if (!ls.eof() && ls.fail()) {
      throw std::runtime_error("EpisodeTrace::load: truncated step");
    }
    trace.steps_.push_back(std::move(s));
  }
  throw std::runtime_error("EpisodeTrace::load: missing 'end'");
}

EpisodeTrace EpisodeTrace::load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("EpisodeTrace::load_file: cannot open " + path);
  return load(f);
}

ReplayReport replay(const EpisodeTrace& trace, const LaneWorldConfig& config,
                    double travel_tolerance) {
  ReplayReport report;
  LaneWorld world(config);
  Rng rng(trace.seed());
  world.reset(rng);
  HERO_CHECK_MSG(world.num_learners() == trace.num_learners(),
                 "config has " << world.num_learners() << " learners, trace has "
                               << trace.num_learners());

  for (const auto& step : trace.steps()) {
    if (world.done()) {
      report.ok = false;
      if (report.first_divergence < 0) report.first_divergence = report.steps_replayed;
      break;
    }
    auto result = world.step(step.cmds, rng);
    ++report.steps_replayed;

    bool mismatch = result.collision != step.collision ||
                    result.travel.size() != step.travel.size();
    if (!mismatch) {
      for (std::size_t i = 0; i < result.travel.size(); ++i) {
        const double err = std::abs(result.travel[i] - step.travel[i]);
        report.max_travel_error = std::max(report.max_travel_error, err);
        if (err > travel_tolerance) mismatch = true;
      }
    }
    if (mismatch && report.first_divergence < 0) {
      report.ok = false;
      report.first_divergence = report.steps_replayed - 1;
    }
  }
  return report;
}

}  // namespace hero::sim
