#include "sim/lane_world.h"

#include <algorithm>
#include <cmath>

#include "obs/phase.h"
#include "obs/metrics.h"

namespace hero::sim {

LaneWorldConfig with_real_world_shift(LaneWorldConfig cfg) {
  cfg.lidar.noise_stddev = 0.02;
  cfg.camera.noise_stddev = 0.02;
  cfg.actuation_noise = 0.08;
  cfg.actuation_latency = 1;
  cfg.param_jitter = 0.08;
  return cfg;
}

LaneWorld::LaneWorld(const LaneWorldConfig& cfg)
    : cfg_(cfg), track_(cfg.track), lidar_(cfg.lidar), camera_(cfg.camera) {
  HERO_CHECK_MSG(!cfg_.specs.empty(), "LaneWorld needs at least one vehicle spec");
  HERO_CHECK(cfg_.dt > 0.0 && cfg_.max_steps > 0);
  vehicles_.resize(cfg_.specs.size());
  for (std::size_t i = 0; i < cfg_.specs.size(); ++i) {
    if (!cfg_.specs[i].scripted) learners_.push_back(static_cast<int>(i));
  }
  total_travel_.assign(vehicles_.size(), 0.0);
  reach_ = std::hypot(0.5 * cfg_.vehicle.length, 0.5 * cfg_.vehicle.width);
  sx_.assign(vehicles_.size(), 0.0);
  sy_.assign(vehicles_.size(), 0.0);
  sheading_.assign(vehicles_.size(), 0.0);
  sspeed_.assign(vehicles_.size(), 0.0);
  obs_boxes_.assign(vehicles_.size(), Obb{});
  hit_scratch_.assign(vehicles_.size(), 0);
  Rng dummy(0);
  reset(dummy);
}

void LaneWorld::reset(Rng& rng) {
  steps_ = 0;
  done_ = false;
  had_collision_ = false;
  scene_dirty_ = true;
  total_travel_.assign(vehicles_.size(), 0.0);
  latency_queues_.assign(vehicles_.size(), {});
  speed_gain_.assign(vehicles_.size(), 1.0);
  heading_drift_.assign(vehicles_.size(), 0.0);

  for (std::size_t i = 0; i < cfg_.specs.size(); ++i) {
    const VehicleSpec& sp = cfg_.specs[i];
    VehicleState st;
    st.x = track_.wrap_x(sp.start_x +
                         rng.uniform(-sp.start_x_jitter, sp.start_x_jitter));
    st.y = track_.lane_center(sp.start_lane);
    st.heading = 0.0;
    st.speed = sp.scripted ? sp.scripted_speed : sp.start_speed;
    vehicles_[i] = Vehicle(cfg_.vehicle, st);
    if (cfg_.param_jitter > 0.0) {
      speed_gain_[i] = std::max(0.5, 1.0 + rng.normal(0.0, cfg_.param_jitter));
      heading_drift_[i] = rng.normal(0.0, cfg_.param_jitter * 0.2);
    }
  }
}

TwistCmd LaneWorld::perturbed(int vehicle, TwistCmd cmd, Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(vehicle);
  cmd.linear *= speed_gain_[i];
  cmd.angular += heading_drift_[i];
  if (cfg_.actuation_noise > 0.0) {
    cmd.linear *= std::max(0.0, 1.0 + rng.normal(0.0, cfg_.actuation_noise));
    cmd.angular += rng.normal(0.0, cfg_.actuation_noise * 0.25);
  }
  return cmd;
}

StepResult LaneWorld::step(const std::vector<TwistCmd>& cmds, Rng& rng) {
  OBS_PHASE("sim_step");
  HERO_CHECK_MSG(!done_, "step() called on a finished episode; call reset()");
  HERO_CHECK_MSG(cmds.size() == learners_.size(),
                 "expected " << learners_.size() << " commands, got " << cmds.size());

  StepResult out;
  out.travel.assign(vehicles_.size(), 0.0);

  // Resolve the command each vehicle executes this step.
  std::vector<TwistCmd> exec(vehicles_.size());
  for (std::size_t k = 0; k < learners_.size(); ++k) {
    const int vi = learners_[k];
    TwistCmd cmd = cmds[k];
    if (cfg_.actuation_latency > 0) {
      auto& q = latency_queues_[static_cast<std::size_t>(vi)];
      q.push_back(cmd);
      if (static_cast<int>(q.size()) > cfg_.actuation_latency) {
        cmd = q.front();
        q.erase(q.begin());
      } else {
        // Queue still filling: hold the initial speed, no steering.
        cmd = {vehicles_[static_cast<std::size_t>(vi)].state().speed, 0.0};
      }
    }
    exec[static_cast<std::size_t>(vi)] = perturbed(vi, cmd, rng);
  }
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    if (cfg_.specs[i].scripted) exec[i] = {cfg_.specs[i].scripted_speed, 0.0};
  }

  // Integrate.
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const double x0 = vehicles_[i].state().x;
    vehicles_[i].step(exec[i], cfg_.dt, track_);
    const double dx = track_.signed_dx(x0, vehicles_[i].state().x);
    out.travel[i] = dx;
    total_travel_[i] += dx;
  }
  scene_dirty_ = true;

  ++steps_;
#if HERO_DEBUG_CHECKS_ENABLED
  // Post-integration invariants: states stay finite, arc-length stays wrapped
  // into [0, C), and speeds respect the vehicle envelope. An excursion here
  // means the integrator (not the policy) broke — catch it at the step that
  // produced it.
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const VehicleState& st = vehicles_[i].state();
    HERO_DCHECK_MSG(std::isfinite(st.x) && std::isfinite(st.y) &&
                        std::isfinite(st.heading) && std::isfinite(st.speed),
                    "LaneWorld::step vehicle " << i << " non-finite state");
    HERO_DCHECK_MSG(st.x >= 0.0 && st.x < track_.circumference(),
                    "LaneWorld::step vehicle " << i << " arc-length " << st.x
                                               << " outside [0, "
                                               << track_.circumference() << ")");
    HERO_DCHECK_MSG(st.speed >= cfg_.vehicle.min_speed - 1e-9 &&
                        st.speed <= cfg_.vehicle.max_speed + 1e-9,
                    "LaneWorld::step vehicle " << i << " speed " << st.speed
                                               << " outside [" << cfg_.vehicle.min_speed
                                               << ", " << cfg_.vehicle.max_speed << "]");
  }
#endif
  detect_collisions(out);
  if (obs::metrics_enabled()) {
    static obs::Counter& steps = obs::Registry::instance().counter("sim.steps");
    static obs::Counter& collisions =
        obs::Registry::instance().counter("sim.collisions");
    steps.inc();
    if (out.collision) collisions.inc();
  }
  if (out.collision) had_collision_ = true;
  done_ = out.collision || steps_ >= cfg_.max_steps;
  out.done = done_;

  // High-level team reward (paper Sec. IV-B):
  //   r_h^i = α·r_col + (1−α)·r_travel^i
  // with r_travel normalized by the per-step distance at max RL speed.
  const double travel_norm = 0.2 * cfg_.dt;  // 0.2 m/s is the top RL speed bound
  double team_travel = 0.0;
  for (int vi : learners_) team_travel += out.travel[static_cast<std::size_t>(vi)];
  team_travel /= std::max<std::size_t>(1, learners_.size());

  out.reward.assign(learners_.size(), 0.0);
  for (std::size_t k = 0; k < learners_.size(); ++k) {
    const double travel =
        cfg_.shared_travel ? team_travel : out.travel[static_cast<std::size_t>(learners_[k])];
    const double r_col = out.collision ? cfg_.collision_penalty : 0.0;
    out.reward[k] = cfg_.alpha * r_col + (1.0 - cfg_.alpha) * (travel / travel_norm);
  }
  return out;
}

void LaneWorld::ensure_scene() const {
  if (!scene_dirty_) return;
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const VehicleState& st = vehicles_[i].state();
    sx_[i] = st.x;
    sy_[i] = st.y;
    sheading_[i] = st.heading;
    sspeed_[i] = st.speed;
  }
  if (cfg_.use_spatial_index) {
    index_.build(sx_.data(), static_cast<int>(vehicles_.size()),
                 track_.circumference());
  }
  scene_dirty_ = false;
}

void LaneWorld::detect_collisions(StepResult& out) const {
  if (!cfg_.use_spatial_index) {
    // All-pairs reference path: every pair through the SAT test.
    std::vector<bool> hit(vehicles_.size(), false);
    for (std::size_t i = 0; i < vehicles_.size(); ++i) {
      for (std::size_t j = i + 1; j < vehicles_.size(); ++j) {
        Obb a = vehicles_[i].footprint();
        Obb b = vehicles_[j].footprint();
        // Respect the ring topology: place j relative to i.
        b.center.x = a.center.x + track_.signed_dx(a.center.x, b.center.x);
        // The separating-axis test is a symmetric relation; if it ever
        // disagrees under argument order the collision reward is corrupt.
        HERO_DCHECK_MSG(obb_overlap(a, b) == obb_overlap(b, a),
                        "obb_overlap asymmetry between vehicles " << i << " and " << j);
        if (obb_overlap(a, b)) {
          hit[i] = hit[j] = true;
        }
      }
      if (cfg_.offroad_is_collision && !track_.on_road(vehicles_[i].state().y)) {
        hit[i] = true;
      }
    }
    for (std::size_t i = 0; i < vehicles_.size(); ++i) {
      if (hit[i]) out.collided.push_back(static_cast<int>(i));
    }
    out.collision = !out.collided.empty();
    return;
  }

  // Broad-phase via the shared index: sweep each vehicle's cyclic arc-length
  // successors until the ring gap exceeds 2·reach — beyond that no footprint
  // pair can overlap, so the narrow-phase SAT set (reference = lower id,
  // exactly the all-pairs pair test) is identical to the loop above
  // (tests/test_spatial_index.cpp, randomized scenes).
  ensure_scene();
  const int V = static_cast<int>(vehicles_.size());
  for (int i = 0; i < V; ++i) hit_scratch_[static_cast<std::size_t>(i)] = 0;
  const double near = 2.0 * reach_ + 1e-9;
  const double circ = track_.circumference();
  for (int a = 0; a < V; ++a) {
    const int ia = index_.id(a);
    const double xa = index_.pos(a);
    for (int t = 1; t < V; ++t) {
      const int b = (a + t) % V;
      const int ib = index_.id(b);
      double gap = index_.pos(b) - xa;
      if (b < a) gap += circ;  // cyclic successor wrapped past the seam
      if (gap > near) break;   // sorted ⇒ later successors are farther

      const std::size_t pi = static_cast<std::size_t>(std::min(ia, ib));
      const std::size_t pj = static_cast<std::size_t>(std::max(ia, ib));
      Obb oa = vehicles_[pi].footprint();
      Obb ob = vehicles_[pj].footprint();
      ob.center.x = oa.center.x + track_.signed_dx(oa.center.x, ob.center.x);
      HERO_DCHECK_MSG(obb_overlap(oa, ob) == obb_overlap(ob, oa),
                      "obb_overlap asymmetry between vehicles " << pi << " and " << pj);
      if (obb_overlap(oa, ob)) {
        hit_scratch_[pi] = 1;
        hit_scratch_[pj] = 1;
      }
    }
    if (cfg_.offroad_is_collision &&
        !track_.on_road(vehicles_[static_cast<std::size_t>(ia)].state().y)) {
      hit_scratch_[static_cast<std::size_t>(ia)] = 1;
    }
  }
  for (int i = 0; i < V; ++i) {
    if (hit_scratch_[static_cast<std::size_t>(i)]) out.collided.push_back(i);
  }
  out.collision = !out.collided.empty();
}

std::vector<double> LaneWorld::high_level_obs(int vehicle, Rng* noise_rng) const {
  std::vector<double> obs(high_level_obs_dim());
  high_level_obs_into(vehicle, obs.data(), noise_rng);
  return obs;
}

void LaneWorld::high_level_obs_into(int vehicle, double* out,
                                    Rng* noise_rng) const {
  ensure_scene();
  const std::size_t ei = static_cast<std::size_t>(vehicle);
  const double ex = sx_[ei];
  const double ey = sy_[ei];
  // Stage the other footprints ego-relative through the wrapped metric,
  // pruning boxes whose nearest point lies beyond lidar range — they cannot
  // lower any beam's minimum, so the scan is bit-identical to unpruned.
  const double thr = cfg_.lidar.max_range + reach_ + 1e-9;
  std::size_t nb = 0;
  if (cfg_.use_spatial_index) {
    const int* ids = nullptr;
    // Rank-order candidates: the scan reduces each beam to a minimum over
    // ray casts, so staging order cannot change the output.
    const int k = index_.query_unordered(ex, thr, thr, vehicle, &ids);
    for (int c = 0; c < k; ++c) {
      const std::size_t i = static_cast<std::size_t>(ids[c]);
      const double dx = track_.signed_dx(ex, sx_[i]);
      const double dy = sy_[i] - ey;
      if (dx * dx + dy * dy > thr * thr) continue;
      obs_boxes_[nb] = Obb{{ex + dx, sy_[i]}, sheading_[i],
                           0.5 * cfg_.vehicle.length, 0.5 * cfg_.vehicle.width};
      ++nb;
    }
    lidar_.scan_into(ex, ey, sheading_[ei], obs_boxes_.data(), nb, noise_rng,
                     out);
  } else {
    // All-pairs reference: stage every other footprint, uncull narrow phase.
    for (std::size_t i = 0; i < vehicles_.size(); ++i) {
      if (i == ei) continue;
      obs_boxes_[nb] = Obb{{ex + track_.signed_dx(ex, sx_[i]), sy_[i]},
                           sheading_[i], 0.5 * cfg_.vehicle.length,
                           0.5 * cfg_.vehicle.width};
      ++nb;
    }
    lidar_.scan_into_allpairs(ex, ey, sheading_[ei], obs_boxes_.data(), nb,
                              noise_rng, out);
  }
  const std::size_t beams = static_cast<std::size_t>(cfg_.lidar.num_beams);
  out[beams] = sspeed_[ei] / cfg_.vehicle.max_speed;
  out[beams + 1] = static_cast<double>(lane(vehicle));
}

std::size_t LaneWorld::high_level_obs_dim() const {
  return static_cast<std::size_t>(cfg_.lidar.num_beams) + 2;
}

std::vector<double> LaneWorld::low_level_obs(int vehicle, int reference_lane,
                                             Rng* noise_rng) const {
  std::vector<double> obs(low_level_obs_dim());
  low_level_obs_into(vehicle, reference_lane, obs.data(), noise_rng);
  return obs;
}

void LaneWorld::low_level_obs_into(int vehicle, int reference_lane, double* out,
                                   Rng* noise_rng) const {
  ensure_scene();
  const std::size_t ei = static_cast<std::size_t>(vehicle);
  const VehicleState& s = vehicles_[ei].state();
  camera_.features_into(s, cfg_.vehicle.max_speed, sx_.data(), sy_.data(),
                        sspeed_.data(), vehicles_.size(), ei, track_,
                        reference_lane, noise_rng,
                        cfg_.use_spatial_index ? &index_ : nullptr, out);
  out[kLaneCameraDim] = s.speed / cfg_.vehicle.max_speed;
  out[kLaneCameraDim + 1] = static_cast<double>(lane(vehicle));
}

std::size_t LaneWorld::low_level_obs_dim() const { return kLaneCameraDim + 2; }

double LaneWorld::mean_speed(int i) const {
  if (steps_ == 0) return vehicles_[static_cast<std::size_t>(i)].state().speed;
  return total_travel_[static_cast<std::size_t>(i)] /
         (static_cast<double>(steps_) * cfg_.dt);
}

}  // namespace hero::sim
