// BatchLaneWorld: E LaneWorld instances stepped in lockstep, structure-of-
// arrays form (docs/BATCHING.md).
//
// The serial LaneWorld steps one environment and is the semantic reference;
// this class holds the same episode state for E environments in flat
// env-major arrays (x_[e*V + i] is vehicle i of env e) and advances every
// live environment in one pass per phase: command resolution (latency rings
// + actuation perturbation), unicycle integration, collision detection, and
// reward computation. Each phase is a tight loop over flat arrays instead of
// E virtual-dispatch-free but cache-cold single-env steps.
//
// Equivalence contract: stepping env e here with RNG stream R is bitwise
// identical to stepping a serial LaneWorld with the same config, state, and
// stream R — the kinematics run through the shared integrate_unicycle
// inline, observations through the shared LidarSensor/LaneCamera cores, and
// every RNG draw happens in the serial order (learners ascending, then
// per-vehicle episode jitter). tests/test_sim.cpp enforces this at E=1 and
// E=16.
//
// Collision detection uses a sorted arc-length sweep (broad-phase) instead
// of the serial all-pairs loop: vehicles are sorted by wrapped arc length
// and only pairs within 2·reach of each other along the ring (reach =
// hypot(half_len, half_wid), the footprint's circumradius) reach the SAT
// test. Pairs farther apart cannot overlap, so the resulting collision set
// is identical to all-pairs (also enforced by test_sim on randomized
// scenes). With cfg.use_spatial_index (the default) the same per-env sorted
// order lives in a SpatialIndex built once per step and shared with lidar
// box staging and the camera's lead search, shrinking per-ego candidate
// sets from V to the k vehicles inside the sensor window — conservatively,
// so sensing stays bitwise identical (tests/test_spatial_index.cpp).
//
// Thread-safety: like LaneWorld, an instance is confined to one thread at a
// time; observation methods use mutable scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/lane_world.h"

namespace hero::sim {

// Flat per-round step output: env-major arrays sized at construction, no
// per-step allocation after the first use.
struct BatchStepResult {
  std::vector<double> reward;          // E × num_learners
  std::vector<double> travel;          // E × num_vehicles
  std::vector<std::uint8_t> collision; // per env: any collision this step
  std::vector<std::uint8_t> done;      // per env: collision or step limit
};

class BatchLaneWorld {
 public:
  BatchLaneWorld(const LaneWorldConfig& cfg, int num_envs);

  int num_envs() const { return E_; }
  int num_vehicles() const { return V_; }
  const std::vector<int>& learners() const { return learners_; }
  int num_learners() const { return static_cast<int>(learners_.size()); }

  // Resets env e exactly like LaneWorld::reset with the same rng: the draw
  // order (per-vehicle start jitter, then optional param jitter) matches.
  void reset_env(int e, Rng& rng);

  // Advances every env with active[e] != 0 by one control period. `cmds` is
  // env-major (cmds[e*num_learners + k] drives learner k of env e) and
  // rngs[e] is env e's stream — each active env consumes exactly the draws
  // its serial twin would. Inactive envs are untouched; their `out` entries
  // are zeroed.
  void step_all(const TwistCmd* cmds, Rng* const* rngs,
                const std::uint8_t* active, BatchStepResult& out);

  // --- observations (zero-alloc; layout identical to LaneWorld) ---
  void high_level_obs_into(int e, int vehicle, double* out,
                           Rng* noise_rng = nullptr) const;
  std::size_t high_level_obs_dim() const {
    return static_cast<std::size_t>(cfg_.lidar.num_beams) + 2;
  }
  void low_level_obs_into(int e, int vehicle, int reference_lane, double* out,
                          Rng* noise_rng = nullptr) const;
  std::size_t low_level_obs_dim() const { return kLaneCameraDim + 2; }

  // --- inspection (mirrors LaneWorld per env) ---
  VehicleState state(int e, int i) const;
  // Tests and skill wrappers overwrite start states through this.
  // Invalidates env e's cached spatial index.
  void set_state(int e, int i, const VehicleState& s);
  int lane(int e, int i) const { return track_.lane_of(y_[flat(e, i)]); }
  int steps(int e) const { return steps_[static_cast<std::size_t>(e)]; }
  bool done(int e) const { return done_[static_cast<std::size_t>(e)] != 0; }
  bool had_collision(int e) const {
    return had_collision_[static_cast<std::size_t>(e)] != 0;
  }
  // Whether vehicle i of env e was in the collision set of the last step —
  // the broad-phase analogue of StepResult::collided.
  bool hit(int e, int i) const { return hit_[flat(e, i)] != 0; }
  double total_travel(int e, int i) const { return total_travel_[flat(e, i)]; }
  double mean_speed(int e, int i) const;
  const Track& track() const { return track_; }
  const LaneWorldConfig& config() const { return cfg_; }

 private:
  std::size_t flat(int e, int i) const {
    return static_cast<std::size_t>(e) * static_cast<std::size_t>(V_) +
           static_cast<std::size_t>(i);
  }

  // Hot-path phases of step_all. Named step_* so lint rule R6
  // (no per-element vector growth in BatchLaneWorld::step* bodies) covers
  // them — the whole step path must stay free of per-step allocation.
  void step_resolve(const TwistCmd* cmds, Rng* const* rngs,
                    const std::uint8_t* active);
  void step_integrate(const std::uint8_t* active, BatchStepResult& out);
  void step_collide(const std::uint8_t* active, BatchStepResult& out);
  void step_rewards(const std::uint8_t* active, BatchStepResult& out);

  // Returns env e's SpatialIndex, rebuilding it from the current SoA state
  // if a reset/set_state/step invalidated it. Requires use_spatial_index.
  const SpatialIndex& ensure_index(int e) const;

  LaneWorldConfig cfg_;
  Track track_;
  LidarSensor lidar_;
  LaneCamera camera_;
  int E_ = 0;
  int V_ = 0;
  std::vector<int> learners_;
  double reach_ = 0.0;  // footprint circumradius, broad-phase threshold / 2

  // SoA episode state, env-major (index flat(e, i)).
  std::vector<double> x_, y_, heading_, speed_, yaw_;
  std::vector<double> total_travel_;
  std::vector<double> speed_gain_, heading_drift_;
  std::vector<int> steps_;                  // per env
  std::vector<std::uint8_t> done_, had_collision_;  // per env

  // Latency rings: fixed-capacity replacement for the serial push/pop-front
  // queues. Capacity = actuation_latency per vehicle; count < capacity means
  // the queue is still filling (hold initial speed, like the serial path).
  int lat_cap_ = 0;
  std::vector<TwistCmd> lat_buf_;  // E × V × lat_cap_
  std::vector<int> lat_head_, lat_count_;  // E × V

  // step scratch (preallocated in the constructor)
  std::vector<TwistCmd> exec_;       // E × V resolved commands
  std::vector<std::uint8_t> hit_;    // E × V collision flags of the last step
  std::vector<int> order_;           // V, per-env arc-length sort (all-pairs path)
  mutable std::vector<Obb> obs_boxes_;  // V, lidar box staging

  // Per-env arc-length index shared by collision broad-phase and sensing;
  // rebuilt eagerly in step_collide and lazily (via ensure_index) when a
  // reset or set_state dirtied the env. Mutable: obs methods are const.
  mutable std::vector<SpatialIndex> indices_;      // E
  mutable std::vector<std::uint8_t> idx_dirty_;    // E
};

}  // namespace hero::sim
