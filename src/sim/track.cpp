#include "sim/track.h"

#include <algorithm>
#include <cmath>

namespace hero::sim {

Track::Track(const TrackConfig& cfg) : cfg_(cfg) {
  HERO_CHECK(cfg_.circumference > 0.0);
  HERO_CHECK(cfg_.lane_width > 0.0);
  HERO_CHECK(cfg_.num_lanes >= 1);
}

double Track::lane_center(int id) const {
  HERO_CHECK_MSG(id >= 0 && id < cfg_.num_lanes, "lane id " << id << " out of range");
  return static_cast<double>(id) * cfg_.lane_width;
}

int Track::lane_of(double y) const {
  int id = static_cast<int>(std::lround(y / cfg_.lane_width));
  return std::clamp(id, 0, cfg_.num_lanes - 1);
}

bool Track::on_road(double y) const {
  const double lo = -0.5 * cfg_.lane_width;
  const double hi = lane_center(cfg_.num_lanes - 1) + 0.5 * cfg_.lane_width;
  return y >= lo && y <= hi;
}

double Track::wrap_x(double x) const {
  const double c = cfg_.circumference;
  x = std::fmod(x, c);
  if (x < 0.0) x += c;
  return x;
}

double Track::signed_dx(double from, double to) const {
  const double c = cfg_.circumference;
  double d = wrap_x(to) - wrap_x(from);
  if (d > 0.5 * c) d -= c;
  if (d <= -0.5 * c) d += c;
  return d;
}

double Track::forward_gap(double from, double to) const {
  const double c = cfg_.circumference;
  double d = wrap_x(to) - wrap_x(from);
  if (d < 0.0) d += c;
  return d;
}

}  // namespace hero::sim
