// LaneWorld: the multi-vehicle cooperative lane-change environment.
//
// Substitutes the paper's Gazebo world and physical testbed (DESIGN.md §2).
// The world integrates unicycle vehicles on a two-lane ring track, renders
// lidar scans and lane-camera features, detects collisions, and computes the
// paper's high-level team reward  r_h = α·r_col + (1−α)·r_travel.
//
// "Real-world" evaluation (Table II) uses the same class with the domain-
// shift knobs enabled: sensor noise, actuation noise, command latency and
// per-episode dynamics perturbation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/features.h"
#include "sim/lidar.h"
#include "sim/spatial_index.h"
#include "sim/vehicle.h"

namespace hero::sim {

// Per-vehicle scenario placement and role.
struct VehicleSpec {
  int start_lane = 0;
  double start_x = 0.0;        // nominal arc-length position
  double start_x_jitter = 0.0; // uniform ±jitter applied at reset
  double start_speed = 0.1;
  bool scripted = false;       // plodding vehicle: constant speed, keeps lane
  double scripted_speed = 0.04;
};

struct LaneWorldConfig {
  TrackConfig track;
  VehicleParams vehicle;
  LidarConfig lidar;
  LaneCameraConfig camera;
  std::vector<VehicleSpec> specs;

  double dt = 0.5;              // control period (seconds)
  int max_steps = 30;           // paper Table I episode length
  double collision_penalty = -20.0;
  double alpha = 0.7;           // weight of r_col vs r_travel
  // Paper Sec. IV-B:  r_h^i = α·r_col + (1−α)·r_travel^i — the collision
  // penalty is shared (team safety) but the travel term is per-vehicle.
  // true switches to team-mean travel (fully shared reward) for ablation.
  bool shared_travel = false;
  bool offroad_is_collision = true;

  // Route collision broad-phase, lidar box staging and the camera's lead
  // search through the shared per-step SpatialIndex (O(V·k) sensing instead
  // of O(V²)). The pruning is conservative, so observations and collision
  // sets are bitwise identical either way — false keeps the all-pairs
  // reference path for equivalence tests and the dense-traffic benchmark
  // baseline (docs/PERFORMANCE.md).
  bool use_spatial_index = true;

  // --- domain shift (Table II real-world mode) ---
  double actuation_noise = 0.0;  // multiplicative linear / additive angular
  int actuation_latency = 0;     // command delay in control steps
  double param_jitter = 0.0;     // per-episode speed-gain / heading-drift σ
};

// Returns `cfg` with the real-world shift knobs of the paper's testbed
// enabled (sensor + actuation noise, 1-step latency, dynamics mismatch).
LaneWorldConfig with_real_world_shift(LaneWorldConfig cfg);

struct StepResult {
  std::vector<double> reward;   // high-level team reward per learning agent
  std::vector<double> travel;   // forward progress per vehicle this step (m)
  bool collision = false;       // any collision / off-road this step
  std::vector<int> collided;    // indices of vehicles involved
  bool done = false;            // collision or step limit
};

// Thread-safety: a LaneWorld instance is confined to one thread at a time —
// reset/step mutate internal state and draw from the caller's Rng. The only
// state shared between instances is the obs metrics registry (atomic
// counters), so the parallel runtime keeps one instance per worker slot and
// never locks (docs/PARALLELISM.md).
class LaneWorld {
 public:
  explicit LaneWorld(const LaneWorldConfig& cfg);

  int num_vehicles() const { return static_cast<int>(vehicles_.size()); }
  // Indices of non-scripted vehicles, in order; rewards/commands use this order.
  const std::vector<int>& learners() const { return learners_; }
  int num_learners() const { return static_cast<int>(learners_.size()); }

  // Re-places all vehicles per the specs (with jitter) and samples the
  // episode's domain-shift perturbations.
  void reset(Rng& rng);

  // Advances one control period. `cmds[k]` drives learner k
  // (= vehicle learners()[k]); scripted vehicles drive themselves.
  StepResult step(const std::vector<TwistCmd>& cmds, Rng& rng);

  // --- observations ---
  // High-level state s_h = [lidar..., speed/vmax, laneID] (paper Sec. IV-B).
  std::vector<double> high_level_obs(int vehicle, Rng* noise_rng = nullptr) const;
  std::size_t high_level_obs_dim() const;

  // Low-level state s_l = [camera features..., speed/vmax, laneID]
  // relative to `reference_lane` (paper Sec. IV-C).
  std::vector<double> low_level_obs(int vehicle, int reference_lane,
                                    Rng* noise_rng = nullptr) const;
  std::size_t low_level_obs_dim() const;

  // Zero-allocation observation cores (layout identical to the vector
  // overloads, which delegate here). `out` must hold *_obs_dim() doubles.
  // Candidate staging goes through the shared SpatialIndex (or the
  // all-pairs reference when use_spatial_index is off) and a reused box
  // buffer — no allocating LidarSensor::scan() on the hot path.
  void high_level_obs_into(int vehicle, double* out,
                           Rng* noise_rng = nullptr) const;
  void low_level_obs_into(int vehicle, int reference_lane, double* out,
                          Rng* noise_rng = nullptr) const;

  // --- inspection ---
  const Vehicle& vehicle(int i) const { return vehicles_[static_cast<std::size_t>(i)]; }
  // Skill-training wrappers perturb start states (lateral offset / heading
  // jitter) through this accessor right after reset(). Invalidates the
  // cached scene mirror / spatial index: the caller may move the vehicle.
  Vehicle& mutable_vehicle(int i) {
    scene_dirty_ = true;
    return vehicles_[static_cast<std::size_t>(i)];
  }
  const Track& track() const { return track_; }
  const LaneWorldConfig& config() const { return cfg_; }
  int lane(int i) const { return vehicles_[static_cast<std::size_t>(i)].lane(track_); }
  int steps() const { return steps_; }
  bool done() const { return done_; }
  bool had_collision() const { return had_collision_; }
  double total_travel(int i) const { return total_travel_[static_cast<std::size_t>(i)]; }
  // Mean speed of vehicle i over the episode so far (metres / second).
  double mean_speed(int i) const;

 private:
  TwistCmd perturbed(int vehicle, TwistCmd cmd, Rng& rng) const;
  void detect_collisions(StepResult& out) const;
  // Refreshes the SoA scene mirror (and, with use_spatial_index, the arc-
  // length index) from vehicles_ if anything moved since the last build.
  // One rebuild per step is shared by collisions and every obs call.
  void ensure_scene() const;

  LaneWorldConfig cfg_;
  Track track_;
  LidarSensor lidar_;
  LaneCamera camera_;
  std::vector<Vehicle> vehicles_;
  std::vector<int> learners_;
  double reach_ = 0.0;  // footprint circumradius (same role as the batch world)

  // episode state
  int steps_ = 0;
  bool done_ = false;
  bool had_collision_ = false;
  std::vector<double> total_travel_;
  std::vector<std::vector<TwistCmd>> latency_queues_;
  std::vector<double> speed_gain_;     // per-episode actuator miscalibration
  std::vector<double> heading_drift_;  // per-episode steering bias (rad/s)

  // Lazily rebuilt per-step scene mirror (SoA views of vehicles_) feeding
  // the spatial index, the camera core and the lidar box staging without
  // per-call allocation. Mutable: obs methods are const but cache.
  mutable bool scene_dirty_ = true;
  mutable std::vector<double> sx_, sy_, sheading_, sspeed_;
  mutable SpatialIndex index_;
  mutable std::vector<Obb> obs_boxes_;          // lidar staging scratch
  mutable std::vector<std::uint8_t> hit_scratch_;  // collision sweep scratch
};

}  // namespace hero::sim
