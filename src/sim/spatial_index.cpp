#include "sim/spatial_index.h"

#include <algorithm>

namespace hero::sim {

void SpatialIndex::build(const double* xs, int n, double circumference) {
  if (static_cast<int>(order_.size()) < n) {
    order_.resize(static_cast<std::size_t>(n));
    sx_.resize(static_cast<std::size_t>(n));
    cand_.resize(static_cast<std::size_t>(n));
  }
  // (position, id) ordering ties equal positions by ascending id — the same
  // order a stable sort (and the batch world's insertion sort) produces.
  // Keys are unique, so every correct sort yields the same permutation and
  // the two branches below are interchangeable bit for bit.
  if (n_ != n) {
    // First build at this size: no usable previous order.
    n_ = n;
    for (int i = 0; i < n; ++i) order_[static_cast<std::size_t>(i)] = i;
    std::sort(order_.begin(), order_.begin() + n, [xs](int a, int b) {
      const double xa = xs[a];
      const double xb = xs[b];
      if (xa != xb) return xa < xb;
      return a < b;
    });
  } else {
    // Rebuild at the same size: one step moves each vehicle a fraction of
    // the typical spacing, so the previous order is nearly sorted and an
    // insertion sort runs in O(n + inversions) ≈ O(n).
    for (int k = 1; k < n; ++k) {
      const int v = order_[static_cast<std::size_t>(k)];
      const double xv = xs[v];
      int j = k - 1;
      while (j >= 0) {
        const int u = order_[static_cast<std::size_t>(j)];
        const double xu = xs[u];
        if (xu < xv || (xu == xv && u < v)) break;
        order_[static_cast<std::size_t>(j + 1)] = u;
        --j;
      }
      order_[static_cast<std::size_t>(j + 1)] = v;
    }
  }
  circ_ = circumference;
  for (int k = 0; k < n; ++k) {
    sx_[static_cast<std::size_t>(k)] = xs[order_[static_cast<std::size_t>(k)]];
  }
}

int SpatialIndex::query_collect(double x0, double behind, double ahead,
                                int exclude) const {
  int m = 0;
  if (behind + ahead >= circ_) {
    // Degenerate window covering the whole ring: everyone qualifies. Emit
    // 0..n-1 directly — ascending by id, which satisfies both query orders.
    for (int i = 0; i < n_; ++i) {
      if (i != exclude) cand_[static_cast<std::size_t>(m++)] = i;
    }
    return m;
  }

  // Wrapped window endpoints. x0 ∈ [0, C) and behind/ahead < C here, so one
  // conditional re-wrap suffices on each side.
  double lo = x0 - behind;
  if (lo < 0.0) lo += circ_;
  double hi = x0 + ahead;
  if (hi >= circ_) hi -= circ_;

  const auto emit = [&](double a, double b) {
    const auto first = std::lower_bound(sx_.begin(), sx_.begin() + n_, a);
    const auto last = std::upper_bound(sx_.begin(), sx_.begin() + n_, b);
    for (auto it = first; it != last; ++it) {
      const int vid = order_[static_cast<std::size_t>(it - sx_.begin())];
      if (vid != exclude) cand_[static_cast<std::size_t>(m++)] = vid;
    }
  };
  if (lo <= hi) {
    emit(lo, hi);
  } else {
    // Window crosses the seam: [lo, C) ∪ [0, hi].
    emit(lo, circ_);
    emit(0.0, hi);
  }
  return m;
}

int SpatialIndex::query(double x0, double behind, double ahead, int exclude,
                        const int** out_ids) const {
  const int m = query_collect(x0, behind, ahead, exclude);
  // Rank order → id order; k is small (vehicles within one sensor window).
  std::sort(cand_.begin(), cand_.begin() + m);
  *out_ids = cand_.data();
  return m;
}

int SpatialIndex::query_unordered(double x0, double behind, double ahead,
                                  int exclude, const int** out_ids) const {
  const int m = query_collect(x0, behind, ahead, exclude);
  *out_ids = cand_.data();
  return m;
}

}  // namespace hero::sim
