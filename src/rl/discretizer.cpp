#include "rl/discretizer.h"

#include <cmath>

#include "common/check.h"

namespace hero::rl {

ActionGrid::ActionGrid(std::vector<double> linear_levels,
                       std::vector<double> angular_levels)
    : linear_(std::move(linear_levels)), angular_(std::move(angular_levels)) {
  HERO_CHECK(!linear_.empty() && !angular_.empty());
}

ActionGrid ActionGrid::standard() {
  return ActionGrid({0.04, 0.08, 0.12, 0.16, 0.20},
                    {-0.25, -0.12, 0.0, 0.12, 0.25});
}

sim::TwistCmd ActionGrid::decode(std::size_t index) const {
  HERO_CHECK(index < size());
  const std::size_t li = index / angular_.size();
  const std::size_t ai = index % angular_.size();
  return {linear_[li], angular_[ai]};
}

std::size_t ActionGrid::encode(const sim::TwistCmd& cmd) const {
  auto nearest = [](const std::vector<double>& levels, double v) {
    std::size_t best = 0;
    double bd = std::abs(levels[0] - v);
    for (std::size_t i = 1; i < levels.size(); ++i) {
      double d = std::abs(levels[i] - v);
      if (d < bd) {
        bd = d;
        best = i;
      }
    }
    return best;
  };
  return nearest(linear_, cmd.linear) * angular_.size() +
         nearest(angular_, cmd.angular);
}

}  // namespace hero::rl
