#include "rl/controller.h"

#include "common/check.h"

namespace hero::rl {

void Controller::act_rows_into(const ObsBatch& batch, Rng* const* rngs,
                               bool explore, sim::TwistCmd* cmds_out) {
  act_rows_fallback(batch, rngs, explore, cmds_out);
}

void Controller::act_rows_fallback(const ObsBatch& batch, Rng* const* rngs,
                                   bool explore, sim::TwistCmd* cmds_out) {
  const int n = batch.num_learners();
  for (std::size_t s = 0; s < batch.count(); ++s) {
    const ObsBatch::SlotMeta& m = batch.slot(s);
    if (!m.active) continue;
    HERO_CHECK_MSG(m.world != nullptr,
                   "default act_rows_into needs per-slot worlds "
                   "(set_slot_from_world); decoded batches require a batched "
                   "controller override");
    if (m.reset) begin_episode(*m.world);
    const auto cmds = act(*m.world, *rngs[s], explore);
    HERO_CHECK(static_cast<int>(cmds.size()) == n);
    for (int k = 0; k < n; ++k) {
      cmds_out[s * static_cast<std::size_t>(n) + static_cast<std::size_t>(k)] =
          cmds[static_cast<std::size_t>(k)];
    }
  }
}

}  // namespace hero::rl
