// The deployment-time interface every method (HERO and all baselines)
// implements: map the current world state to one twist command per learning
// vehicle. A single evaluation harness (rl/evaluation.h) then scores any
// method identically — this is what the Fig. 7/11 and Table II benches use.
//
// Two entry points:
//
//   * act() — the scalar path: one live world, one command vector. The
//     historical interface; training loops and single-episode evaluation
//     keep using it unchanged.
//   * act_rows_into() — the batch-first path: many environment slots in one
//     ObsBatch, one fused pass. This is what batched evaluation
//     (rl::evaluate_batch) and the policy server (src/serve) consume; HERO
//     and all four baselines override it with genuinely batched network
//     evaluation, so cross-slot batching costs one forward per network
//     instead of one per slot.
#pragma once

#include <vector>

#include "common/rng.h"
#include "rl/obs_batch.h"
#include "sim/lane_world.h"

namespace hero::rl {

class Controller {
 public:
  virtual ~Controller() = default;

  // Called once per episode right after world.reset(); controllers reset
  // per-episode state here (current options, noise processes, ...).
  virtual void begin_episode(const sim::LaneWorld& world) { (void)world; }

  // One command per learner, in world.learners() order. `explore` selects
  // stochastic (training) vs greedy (evaluation) action selection.
  virtual std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                         bool explore) = 0;

  // Batch-first action selection over `batch.count()` environment slots.
  //
  // Contract:
  //   * `cmds_out` holds batch.count() · batch.num_learners() commands,
  //     slot-major: slot s's learner k lands at s·n + k. Inactive slots
  //     (slot(s).active == false) are skipped and their commands left
  //     untouched.
  //   * `rngs[s]` is slot s's draw stream; with explore == false no
  //     controller in this repo draws from it (greedy selection is
  //     draw-free), which is what makes served answers bitwise-reproducible
  //     under any batching (docs/SERVING.md).
  //   * Slot indices are session identities: controllers that carry
  //     per-episode state (HERO's option executions) key it by slot, and
  //     slot(s).reset marks the start of a fresh episode for that slot.
  //
  // The default implementation loops the scalar act() through the per-slot
  // world pointers (set_slot_from_world producers only) — correct for
  // stateless controllers at any width and for any controller at width 1;
  // stateful controllers override it with a real per-slot path.
  virtual void act_rows_into(const ObsBatch& batch, Rng* const* rngs, bool explore,
                             sim::TwistCmd* cmds_out);

 private:
  // The scalar-looping fallback behind the default act_rows_into (kept out
  // of the *_into body: this path allocates by design — it is a
  // compatibility shim, not a hot path).
  void act_rows_fallback(const ObsBatch& batch, Rng* const* rngs, bool explore,
                         sim::TwistCmd* cmds_out);
};

}  // namespace hero::rl
