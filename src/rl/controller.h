// The deployment-time interface every method (HERO and all baselines)
// implements: map the current world state to one twist command per learning
// vehicle. A single evaluation harness (rl/evaluation.h) then scores any
// method identically — this is what the Fig. 7/11 and Table II benches use.
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/lane_world.h"

namespace hero::rl {

class Controller {
 public:
  virtual ~Controller() = default;

  // Called once per episode right after world.reset(); controllers reset
  // per-episode state here (current options, noise processes, ...).
  virtual void begin_episode(const sim::LaneWorld& world) { (void)world; }

  // One command per learner, in world.learners() order. `explore` selects
  // stochastic (training) vs greedy (evaluation) action selection.
  virtual std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                         bool explore) = 0;
};

}  // namespace hero::rl
