// Uniform experience-replay ring buffer (paper Table I: capacity 100k,
// batch 1024). Header-only template shared by every off-policy learner:
// each algorithm defines its own Transition record type.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace hero::rl {

template <typename Transition>
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
    HERO_CHECK(capacity_ > 0);
    data_.reserve(capacity_);
  }

  void add(Transition t) {
    HERO_DCHECK_MSG(write_ < capacity_,
                    "ReplayBuffer write cursor " << write_ << " out of bounds ("
                                                 << capacity_ << ")");
    if (data_.size() < capacity_) {
      data_.push_back(std::move(t));
    } else {
      data_[write_] = std::move(t);
    }
    write_ = (write_ + 1) % capacity_;
    HERO_DCHECK(data_.size() <= capacity_);
  }

  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool ready(std::size_t minimum) const { return data_.size() >= minimum; }
  void clear() {
    data_.clear();
    write_ = 0;
  }

  // Uniform sample with replacement; pointers remain valid until the next
  // add() — consumers copy what they need into batch matrices immediately.
  std::vector<const Transition*> sample(std::size_t batch, Rng& rng) const {
    HERO_CHECK(!data_.empty());
    HERO_DCHECK_MSG(batch > 0, "ReplayBuffer::sample with empty batch");
    std::vector<const Transition*> out;
    out.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) out.push_back(&data_[rng.index(data_.size())]);
    return out;
  }

  const Transition& at(std::size_t i) const { return data_[i]; }

 private:
  std::size_t capacity_;
  std::size_t write_ = 0;
  std::vector<Transition> data_;
};

}  // namespace hero::rl
