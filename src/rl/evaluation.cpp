#include "rl/evaluation.h"

#include <algorithm>
#include <memory>

#include "common/stats.h"
#include "obs/obs.h"
#include "runtime/batch_rollout.h"

namespace hero::rl {

EpisodeStats run_episode(sim::LaneWorld& world, Controller& controller, Rng& rng,
                         bool explore, int merger_index, int merger_target_lane) {
  OBS_SPAN("eval/episode");
  OBS_PHASE("eval_episode");
  world.reset(rng);
  controller.begin_episode(world);

  EpisodeStats stats;
  while (!world.done()) {
    auto cmds = controller.act(world, rng, explore);
    auto result = world.step(cmds, rng);
    stats.team_reward += mean_of(result.reward);
    if (result.collision) stats.collision = true;
  }
  stats.steps = world.steps();
  stats.success =
      !stats.collision && world.lane(merger_index) == merger_target_lane;
  double speed = 0.0;
  for (int vi : world.learners()) speed += world.mean_speed(vi);
  stats.mean_speed = speed / static_cast<double>(world.num_learners());
  return stats;
}

EvalSummary evaluate(sim::LaneWorld& world, Controller& controller, Rng& rng,
                     int episodes, int merger_index, int merger_target_lane) {
  EvalSummary s;
  s.episodes = episodes;
  for (int e = 0; e < episodes; ++e) {
    EpisodeStats ep = run_episode(world, controller, rng, /*explore=*/false,
                                  merger_index, merger_target_lane);
    s.mean_reward += ep.team_reward;
    s.collision_rate += ep.collision ? 1.0 : 0.0;
    s.success_rate += ep.success ? 1.0 : 0.0;
    s.mean_speed += ep.mean_speed;
    if (obs::telemetry_enabled()) {
      obs::Telemetry::instance().emit(obs::TelemetryEvent("eval/episode")
                                          .field("episode", e)
                                          .field("reward", ep.team_reward)
                                          .field("steps", ep.steps)
                                          .field("collision", ep.collision)
                                          .field("success", ep.success)
                                          .field("mean_speed", ep.mean_speed));
    }
    obs::note_episode();
  }
  if (episodes > 0) {
    s.mean_reward /= episodes;
    s.collision_rate /= episodes;
    s.success_rate /= episodes;
    s.mean_speed /= episodes;
  }
  return s;
}

EvalSummary evaluate_batch(const sim::LaneWorldConfig& world_cfg,
                           Controller& controller, std::uint64_t root_seed,
                           int episodes, int batch, int merger_index,
                           int merger_target_lane) {
  OBS_SPAN("eval/batch");
  EvalSummary summary;
  summary.episodes = episodes;
  if (episodes <= 0) return summary;
  const std::size_t B =
      static_cast<std::size_t>(std::clamp(batch, 1, std::max(episodes, 1)));

  std::vector<std::unique_ptr<sim::LaneWorld>> worlds;
  for (std::size_t i = 0; i < B; ++i) {
    worlds.push_back(std::make_unique<sim::LaneWorld>(world_cfg));
  }
  const sim::LaneWorld& proto = *worlds[0];
  const int n = proto.num_learners();

  ObsBatch obs;
  obs.configure(n, proto.high_level_obs_dim(), proto.low_level_obs_dim(),
                proto.track().num_lanes());
  runtime::BatchRoundScheduler sched(B);
  std::vector<sim::TwistCmd> cmds(B * static_cast<std::size_t>(n));
  std::vector<sim::TwistCmd> slot_cmds(static_cast<std::size_t>(n));
  std::vector<EpisodeStats> stats(B);

  for (std::size_t first = 0; first < static_cast<std::size_t>(episodes);
       first += B) {
    const std::size_t count =
        std::min(B, static_cast<std::size_t>(episodes) - first);
    sched.begin_round(root_seed, first, count);
    obs.set_count(count);
    for (std::size_t i = 0; i < count; ++i) {
      worlds[i]->reset(sched.rng(i));
      stats[i] = EpisodeStats{};
      obs.set_slot_from_world(i, *worlds[i], /*reset=*/true);
    }
    bool fresh = true;
    while (sched.live() > 0) {
      if (!fresh) {
        for (std::size_t i = 0; i < count; ++i) {
          if (!sched.active(i)) {
            obs.slot(i).active = false;
            continue;
          }
          obs.set_slot_from_world(i, *worlds[i], /*reset=*/false);
        }
      }
      fresh = false;
      controller.act_rows_into(obs, sched.rng_ptrs(), /*explore=*/false,
                               cmds.data());
      for (std::size_t i = 0; i < count; ++i) {
        if (!sched.active(i)) continue;
        std::copy(cmds.begin() + static_cast<long>(i * static_cast<std::size_t>(n)),
                  cmds.begin() +
                      static_cast<long>((i + 1) * static_cast<std::size_t>(n)),
                  slot_cmds.begin());
        auto result = worlds[i]->step(slot_cmds, sched.rng(i));
        stats[i].team_reward += mean_of(result.reward);
        if (result.collision) stats[i].collision = true;
        if (worlds[i]->done()) {
          stats[i].steps = worlds[i]->steps();
          stats[i].success = !stats[i].collision &&
                             worlds[i]->lane(merger_index) == merger_target_lane;
          double speed = 0.0;
          for (int vi : worlds[i]->learners()) speed += worlds[i]->mean_speed(vi);
          stats[i].mean_speed = speed / static_cast<double>(n);
          sched.finish(i);
        }
      }
    }
    // Emit in canonical episode order (lane order IS episode order).
    for (std::size_t i = 0; i < count; ++i) {
      const EpisodeStats& ep = stats[i];
      summary.mean_reward += ep.team_reward;
      summary.collision_rate += ep.collision ? 1.0 : 0.0;
      summary.success_rate += ep.success ? 1.0 : 0.0;
      summary.mean_speed += ep.mean_speed;
      if (obs::telemetry_enabled()) {
        obs::Telemetry::instance().emit(
            obs::TelemetryEvent("eval/episode")
                .field("episode", static_cast<long long>(first + i))
                .field("reward", ep.team_reward)
                .field("steps", ep.steps)
                .field("collision", ep.collision)
                .field("success", ep.success)
                .field("mean_speed", ep.mean_speed));
      }
      obs::note_episode();
    }
  }
  summary.mean_reward /= episodes;
  summary.collision_rate /= episodes;
  summary.success_rate /= episodes;
  summary.mean_speed /= episodes;
  return summary;
}

}  // namespace hero::rl
