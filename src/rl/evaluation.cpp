#include "rl/evaluation.h"

#include "common/stats.h"
#include "obs/obs.h"

namespace hero::rl {

EpisodeStats run_episode(sim::LaneWorld& world, Controller& controller, Rng& rng,
                         bool explore, int merger_index, int merger_target_lane) {
  OBS_SPAN("eval/episode");
  OBS_PHASE("eval_episode");
  world.reset(rng);
  controller.begin_episode(world);

  EpisodeStats stats;
  while (!world.done()) {
    auto cmds = controller.act(world, rng, explore);
    auto result = world.step(cmds, rng);
    stats.team_reward += mean_of(result.reward);
    if (result.collision) stats.collision = true;
  }
  stats.steps = world.steps();
  stats.success =
      !stats.collision && world.lane(merger_index) == merger_target_lane;
  double speed = 0.0;
  for (int vi : world.learners()) speed += world.mean_speed(vi);
  stats.mean_speed = speed / static_cast<double>(world.num_learners());
  return stats;
}

EvalSummary evaluate(sim::LaneWorld& world, Controller& controller, Rng& rng,
                     int episodes, int merger_index, int merger_target_lane) {
  EvalSummary s;
  s.episodes = episodes;
  for (int e = 0; e < episodes; ++e) {
    EpisodeStats ep = run_episode(world, controller, rng, /*explore=*/false,
                                  merger_index, merger_target_lane);
    s.mean_reward += ep.team_reward;
    s.collision_rate += ep.collision ? 1.0 : 0.0;
    s.success_rate += ep.success ? 1.0 : 0.0;
    s.mean_speed += ep.mean_speed;
    if (obs::telemetry_enabled()) {
      obs::Telemetry::instance().emit(obs::TelemetryEvent("eval/episode")
                                          .field("episode", e)
                                          .field("reward", ep.team_reward)
                                          .field("steps", ep.steps)
                                          .field("collision", ep.collision)
                                          .field("success", ep.success)
                                          .field("mean_speed", ep.mean_speed));
    }
    obs::note_episode();
  }
  if (episodes > 0) {
    s.mean_reward /= episodes;
    s.collision_rate /= episodes;
    s.success_rate /= episodes;
    s.mean_speed /= episodes;
  }
  return s;
}

}  // namespace hero::rl
