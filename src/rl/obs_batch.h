// ObsBatch: the wire-format-agnostic observation batch behind the batch-first
// Controller API (docs/SERVING.md).
//
// One batch holds `count` environment slots × `num_learners` agents of
// extracted features — everything a controller needs to act without touching
// a live sim::LaneWorld:
//
//   * per (slot, agent): the ego scalars (y, heading, speed, lane), the
//     high-level observation row, and one low-level observation row per
//     candidate reference lane (a lane-change skill reads the target lane's
//     frame, the in-lane skills read the current lane's);
//   * per slot: the track geometry + control period needed by the steering
//     law, a `reset` marker (begin-episode), and an `active` flag so batched
//     drivers can retire finished slots without renumbering the survivors
//     (slot index is a session identity — see Controller::act_rows_into).
//
// Two producers fill it: set_slot_from_world() extracts from a live world
// (the in-process evaluation path), and the serving layer decodes client
// request frames straight into the rows (src/serve/protocol.h). Either way
// the consuming controller sees the same layout, which is what makes the
// served answers testable against the in-process ones.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.h"
#include "sim/lane_world.h"

namespace hero::rl {

class ObsBatch {
 public:
  // Per-slot metadata. `world` is set only by set_slot_from_world and lets
  // the default scalar-looping Controller::act_rows_into work; controllers
  // with a real batched path must not rely on it.
  struct SlotMeta {
    const sim::LaneWorld* world = nullptr;
    const sim::Track* track = nullptr;
    double dt = 0.0;
    bool reset = false;
    bool active = true;
  };

  // Ego scalars of one (slot, agent) pair, read by termination tests and the
  // steering law.
  struct AgentScalars {
    double y = 0.0;
    double heading = 0.0;
    double speed = 0.0;
    int lane = 0;
  };

  // Fixes the per-agent feature geometry. Must be called before set_count;
  // re-configuring with identical dims is a no-op.
  void configure(int num_learners, std::size_t hl_dim, std::size_t ll_dim,
                 int num_lanes);
  // Sets the number of slots for this tick (storage grows in place and is
  // reused across ticks). Resets every slot's meta to {reset=false,
  // active=true, world=nullptr}; feature rows keep their previous contents
  // until overwritten.
  void set_count(std::size_t count);

  std::size_t count() const { return count_; }
  int num_learners() const { return n_; }
  std::size_t hl_dim() const { return hl_dim_; }
  std::size_t ll_dim() const { return ll_dim_; }
  int num_lanes() const { return num_lanes_; }

  SlotMeta& slot(std::size_t s) { return metas_[s]; }
  const SlotMeta& slot(std::size_t s) const { return metas_[s]; }

  AgentScalars& scalars(std::size_t s, int k) { return scalars_[agent_index(s, k)]; }
  const AgentScalars& scalars(std::size_t s, int k) const {
    return scalars_[agent_index(s, k)];
  }

  double* hl_row(std::size_t s, int k) { return hl_.row_ptr(agent_index(s, k)); }
  const double* hl_row(std::size_t s, int k) const {
    return hl_.row_ptr(agent_index(s, k));
  }

  // Low-level observation of (slot, agent) relative to `reference_lane`.
  double* ll_row(std::size_t s, int k, int reference_lane);
  const double* ll_row(std::size_t s, int k, int reference_lane) const;

  // Extracts slot `s` from a live world (configure must match the world's
  // dims). `reset` marks the slot as a fresh episode for the controller.
  void set_slot_from_world(std::size_t s, const sim::LaneWorld& world, bool reset);

 private:
  std::size_t agent_index(std::size_t s, int k) const {
    return s * static_cast<std::size_t>(n_) + static_cast<std::size_t>(k);
  }

  int n_ = 0;
  std::size_t hl_dim_ = 0;
  std::size_t ll_dim_ = 0;
  int num_lanes_ = 0;
  std::size_t count_ = 0;

  std::vector<SlotMeta> metas_;
  std::vector<AgentScalars> scalars_;
  nn::Matrix hl_;  // (count·n) × hl_dim
  nn::Matrix ll_;  // (count·n·num_lanes) × ll_dim
};

}  // namespace hero::rl
