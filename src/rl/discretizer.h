// Action grid for value-based baselines.
//
// Independent DQN and COMA operate on a discrete action set; the paper runs
// them end-to-end on the primitive (linear, angular) twist space, which we
// discretize on a fixed grid spanning the same bounds the continuous methods
// use.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/vehicle.h"

namespace hero::rl {

class ActionGrid {
 public:
  ActionGrid(std::vector<double> linear_levels, std::vector<double> angular_levels);

  // The default grid spans the paper's primitive bounds:
  // linear ∈ {0.04..0.20}, angular ∈ {−0.25..0.25}.
  static ActionGrid standard();

  std::size_t size() const { return linear_.size() * angular_.size(); }
  sim::TwistCmd decode(std::size_t index) const;
  // Nearest grid index for a continuous command (used in tests / analysis).
  std::size_t encode(const sim::TwistCmd& cmd) const;

  const std::vector<double>& linear_levels() const { return linear_; }
  const std::vector<double>& angular_levels() const { return angular_; }

 private:
  std::vector<double> linear_;
  std::vector<double> angular_;
};

}  // namespace hero::rl
