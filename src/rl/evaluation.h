// Shared episode-rollout and evaluation harness.
//
// Computes the paper's four metrics (Sec. V-B): mean episode reward,
// collision rate, lane-merge success rate, and mean speed.
#pragma once

#include <cstdint>

#include "rl/controller.h"
#include "sim/scenario.h"

namespace hero::rl {

struct EpisodeStats {
  double team_reward = 0.0;  // summed team reward over the episode
  bool collision = false;
  bool success = false;      // merger finished in the target lane, no collision
  double mean_speed = 0.0;   // averaged over learners
  int steps = 0;
};

struct EvalSummary {
  double mean_reward = 0.0;
  double collision_rate = 0.0;
  double success_rate = 0.0;
  double mean_speed = 0.0;
  int episodes = 0;
};

// Rolls one episode of `world` under `controller`. Success is judged against
// the scenario's merger vehicle / target lane.
EpisodeStats run_episode(sim::LaneWorld& world, Controller& controller, Rng& rng,
                         bool explore, int merger_index, int merger_target_lane);

// Greedy evaluation over `episodes` fresh episodes.
EvalSummary evaluate(sim::LaneWorld& world, Controller& controller, Rng& rng,
                     int episodes, int merger_index, int merger_target_lane);

// Batch-first greedy evaluation through Controller::act_rows_into: up to
// `batch` episodes advance in lockstep over independent worlds, so every
// per-step network evaluation of a batched controller runs once per tick
// instead of once per episode. Episode e draws all of its randomness from
// the counter-based stream stream_rng(root_seed, e) and greedy selection is
// draw-free, so the per-episode results are invariant to the batch width —
// evaluate_batch(.., batch=1, ..) and batch=16 score identical episodes
// (docs/SERVING.md, "Batched evaluation").
EvalSummary evaluate_batch(const sim::LaneWorldConfig& world_cfg,
                           Controller& controller, std::uint64_t root_seed,
                           int episodes, int batch, int merger_index,
                           int merger_target_lane);

}  // namespace hero::rl
