// Shared episode-rollout and evaluation harness.
//
// Computes the paper's four metrics (Sec. V-B): mean episode reward,
// collision rate, lane-merge success rate, and mean speed.
#pragma once

#include "rl/controller.h"
#include "sim/scenario.h"

namespace hero::rl {

struct EpisodeStats {
  double team_reward = 0.0;  // summed team reward over the episode
  bool collision = false;
  bool success = false;      // merger finished in the target lane, no collision
  double mean_speed = 0.0;   // averaged over learners
  int steps = 0;
};

struct EvalSummary {
  double mean_reward = 0.0;
  double collision_rate = 0.0;
  double success_rate = 0.0;
  double mean_speed = 0.0;
  int episodes = 0;
};

// Rolls one episode of `world` under `controller`. Success is judged against
// the scenario's merger vehicle / target lane.
EpisodeStats run_episode(sim::LaneWorld& world, Controller& controller, Rng& rng,
                         bool explore, int merger_index, int merger_target_lane);

// Greedy evaluation over `episodes` fresh episodes.
EvalSummary evaluate(sim::LaneWorld& world, Controller& controller, Rng& rng,
                     int episodes, int merger_index, int merger_target_lane);

}  // namespace hero::rl
