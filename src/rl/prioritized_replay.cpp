#include "rl/prioritized_replay.h"

namespace hero::rl {

SumTree::SumTree(std::size_t capacity) : capacity_(capacity) {
  HERO_CHECK(capacity > 0);
  // Round leaves up to a power of two for a clean implicit tree.
  leaf_base_ = 1;
  while (leaf_base_ < capacity) leaf_base_ <<= 1;
  tree_.assign(2 * leaf_base_, 0.0);
}

double SumTree::priority(std::size_t index) const {
  HERO_CHECK(index < capacity_);
  return tree_[leaf_base_ + index];
}

void SumTree::set(std::size_t index, double priority) {
  HERO_CHECK(index < capacity_);
  HERO_CHECK(priority >= 0.0);
  std::size_t node = leaf_base_ + index;
  const double delta = priority - tree_[node];
  while (node >= 1) {
    tree_[node] += delta;
    node >>= 1;
  }
}

std::size_t SumTree::find(double mass) const {
  // Descend from the root (node 1).
  std::size_t node = 1;
  while (node < leaf_base_) {
    const std::size_t left = 2 * node;
    if (mass < tree_[left]) {
      node = left;
    } else {
      mass -= tree_[left];
      node = left + 1;
    }
  }
  return node - leaf_base_;
}

}  // namespace hero::rl
