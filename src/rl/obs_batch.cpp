#include "rl/obs_batch.h"

#include <algorithm>

#include "common/check.h"

namespace hero::rl {

void ObsBatch::configure(int num_learners, std::size_t hl_dim, std::size_t ll_dim,
                         int num_lanes) {
  HERO_CHECK(num_learners > 0 && num_lanes > 0);
  n_ = num_learners;
  hl_dim_ = hl_dim;
  ll_dim_ = ll_dim;
  num_lanes_ = num_lanes;
  count_ = 0;
}

void ObsBatch::set_count(std::size_t count) {
  HERO_CHECK_MSG(n_ > 0, "ObsBatch::configure must run before set_count");
  count_ = count;
  metas_.assign(count, SlotMeta{});
  scalars_.resize(count * static_cast<std::size_t>(n_));
  hl_.resize(count * static_cast<std::size_t>(n_), hl_dim_);
  ll_.resize(count * static_cast<std::size_t>(n_) * static_cast<std::size_t>(num_lanes_),
             ll_dim_);
}

double* ObsBatch::ll_row(std::size_t s, int k, int reference_lane) {
  HERO_DCHECK(reference_lane >= 0 && reference_lane < num_lanes_);
  return ll_.row_ptr(agent_index(s, k) * static_cast<std::size_t>(num_lanes_) +
                     static_cast<std::size_t>(reference_lane));
}

const double* ObsBatch::ll_row(std::size_t s, int k, int reference_lane) const {
  HERO_DCHECK(reference_lane >= 0 && reference_lane < num_lanes_);
  return ll_.row_ptr(agent_index(s, k) * static_cast<std::size_t>(num_lanes_) +
                     static_cast<std::size_t>(reference_lane));
}

void ObsBatch::set_slot_from_world(std::size_t s, const sim::LaneWorld& world,
                                   bool reset) {
  HERO_CHECK_MSG(world.num_learners() == n_,
                 "world has " << world.num_learners() << " learners, batch expects "
                              << n_);
  HERO_CHECK(world.high_level_obs_dim() == hl_dim_ &&
             world.low_level_obs_dim() == ll_dim_ &&
             world.track().num_lanes() == num_lanes_);
  SlotMeta& m = metas_[s];
  m.world = &world;
  m.track = &world.track();
  m.dt = world.config().dt;
  m.reset = reset;
  m.active = true;
  for (int k = 0; k < n_; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    const auto& st = world.vehicle(vi).state();
    AgentScalars& sc = scalars(s, k);
    sc.y = st.y;
    sc.heading = st.heading;
    sc.speed = st.speed;
    sc.lane = world.lane(vi);

    const auto hl = world.high_level_obs(vi);
    std::copy(hl.begin(), hl.end(), hl_row(s, k));
    for (int lane = 0; lane < num_lanes_; ++lane) {
      const auto ll = world.low_level_obs(vi, lane);
      std::copy(ll.begin(), ll.end(), ll_row(s, k, lane));
    }
  }
}

}  // namespace hero::rl
