#include "rl/exploration.h"

#include <algorithm>

namespace hero::rl {

double LinearSchedule::value(long t) const {
  if (t >= decay_steps_) return end_;
  if (t <= 0) return start_;
  const double frac = static_cast<double>(t) / static_cast<double>(decay_steps_);
  return start_ + frac * (end_ - start_);
}

OrnsteinUhlenbeck::OrnsteinUhlenbeck(std::size_t dim, double theta, double sigma,
                                     double dt)
    : theta_(theta), sigma_(sigma), dt_(dt), state_(dim, 0.0) {}

void OrnsteinUhlenbeck::reset() { std::fill(state_.begin(), state_.end(), 0.0); }

const std::vector<double>& OrnsteinUhlenbeck::sample(Rng& rng) {
  for (double& x : state_) {
    x += theta_ * (0.0 - x) * dt_ + sigma_ * std::sqrt(dt_) * rng.normal();
  }
  return state_;
}

std::vector<double> gaussian_perturb(const std::vector<double>& action,
                                     const std::vector<double>& lo,
                                     const std::vector<double>& hi, double stddev,
                                     Rng& rng) {
  std::vector<double> out(action.size());
  for (std::size_t i = 0; i < action.size(); ++i) {
    out[i] = std::clamp(action[i] + rng.normal(0.0, stddev), lo[i], hi[i]);
  }
  return out;
}

}  // namespace hero::rl
