// Exploration utilities: linear schedules (ε-greedy decay), Gaussian action
// noise, and Ornstein–Uhlenbeck noise (DDPG-style temporally-correlated
// exploration).
#pragma once

#include <vector>

#include "common/rng.h"

namespace hero::rl {

// Linearly interpolates from `start` to `end` over `decay_steps`, then holds.
class LinearSchedule {
 public:
  LinearSchedule(double start, double end, long decay_steps)
      : start_(start), end_(end), decay_steps_(decay_steps > 0 ? decay_steps : 1) {}

  double value(long t) const;

 private:
  double start_, end_;
  long decay_steps_;
};

// Per-dimension OU process: dx = θ(μ − x)dt + σ dW. reset() between episodes.
class OrnsteinUhlenbeck {
 public:
  OrnsteinUhlenbeck(std::size_t dim, double theta = 0.15, double sigma = 0.2,
                    double dt = 1.0);

  void reset();
  const std::vector<double>& sample(Rng& rng);

 private:
  double theta_, sigma_, dt_;
  std::vector<double> state_;
};

// Adds clipped Gaussian noise to an action, respecting [lo, hi] bounds.
std::vector<double> gaussian_perturb(const std::vector<double>& action,
                                     const std::vector<double>& lo,
                                     const std::vector<double>& hi, double stddev,
                                     Rng& rng);

}  // namespace hero::rl
