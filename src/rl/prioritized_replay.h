// Proportional prioritized experience replay (Schaul et al. 2016 — cited by
// the paper as crucial for stabilizing deep RL). Sum-tree backed: O(log n)
// insert/update/sample. Optional drop-in alternative to the uniform
// ReplayBuffer for the value-based learners.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace hero::rl {

// Fixed-capacity sum tree over priorities.
class SumTree {
 public:
  explicit SumTree(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  double total() const { return tree_[1]; }  // node 1 is the root
  double priority(std::size_t index) const;

  void set(std::size_t index, double priority);

  // Finds the leaf index i such that the prefix sum over leaves [0, i)
  // ≤ mass < prefix sum over [0, i]. `mass` must be in [0, total()).
  std::size_t find(double mass) const;

 private:
  std::size_t capacity_;
  std::size_t leaf_base_;      // index of the first leaf in tree_
  std::vector<double> tree_;   // implicit binary tree, root at 0
};

// Result of a prioritized sample: item indices plus importance weights
// normalized so max weight == 1.
struct PrioritizedSample {
  std::vector<std::size_t> indices;
  std::vector<double> weights;
};

template <typename Transition>
class PrioritizedReplayBuffer {
 public:
  // α: how strongly priorities bias sampling (0 = uniform). β: importance
  // correction strength (callers typically anneal it toward 1).
  PrioritizedReplayBuffer(std::size_t capacity, double alpha = 0.6,
                          double beta = 0.4)
      : capacity_(capacity), alpha_(alpha), beta_(beta), tree_(capacity) {
    HERO_CHECK(capacity > 0);
    data_.reserve(capacity);
  }

  // New transitions get max priority so they are replayed at least once.
  void add(Transition t) {
    const std::size_t index = write_;
    if (data_.size() < capacity_) {
      data_.push_back(std::move(t));
    } else {
      data_[index] = std::move(t);
    }
    tree_.set(index, std::pow(max_priority_, alpha_));
    write_ = (write_ + 1) % capacity_;
  }

  std::size_t size() const { return data_.size(); }
  bool ready(std::size_t minimum) const { return data_.size() >= minimum; }
  const Transition& at(std::size_t i) const { return data_[i]; }

  PrioritizedSample sample(std::size_t batch, Rng& rng) const {
    HERO_CHECK(!data_.empty());
    PrioritizedSample out;
    out.indices.reserve(batch);
    out.weights.reserve(batch);
    const double total = tree_.total();
    const double n = static_cast<double>(data_.size());
    double max_w = 0.0;
    for (std::size_t k = 0; k < batch; ++k) {
      // Stratified: one draw per equal-mass segment reduces variance.
      const double lo = total * static_cast<double>(k) / static_cast<double>(batch);
      const double hi = total * static_cast<double>(k + 1) / static_cast<double>(batch);
      std::size_t idx = tree_.find(rng.uniform(lo, hi));
      if (idx >= data_.size()) idx = data_.size() - 1;  // capacity > size edge
      out.indices.push_back(idx);
      const double p = tree_.priority(idx) / total;
      const double w = std::pow(n * p, -beta_);
      out.weights.push_back(w);
      max_w = std::max(max_w, w);
    }
    if (max_w > 0.0) {
      for (double& w : out.weights) w /= max_w;
    }
    return out;
  }

  // Updates priorities from fresh TD errors after a learning step.
  void update_priorities(const std::vector<std::size_t>& indices,
                         const std::vector<double>& td_errors) {
    HERO_CHECK(indices.size() == td_errors.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const double p = std::abs(td_errors[k]) + kEps;
      max_priority_ = std::max(max_priority_, p);
      tree_.set(indices[k], std::pow(p, alpha_));
    }
  }

  void set_beta(double beta) { beta_ = beta; }
  double beta() const { return beta_; }

 private:
  static constexpr double kEps = 1e-4;  // keeps every priority > 0

  std::size_t capacity_;
  double alpha_;
  double beta_;
  std::size_t write_ = 0;
  double max_priority_ = 1.0;
  SumTree tree_;
  std::vector<Transition> data_;
};

}  // namespace hero::rl
