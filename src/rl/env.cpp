#include "rl/env.h"

#include <algorithm>
#include <cmath>

#include "sim/geometry.h"  // wrap_angle

namespace hero::rl {

std::vector<double> PointRegulatorEnv::reset(Rng& rng) {
  x_ = rng.uniform(-1.0, 1.0);
  t_ = 0;
  return {x_};
}

EnvStep PointRegulatorEnv::step(const std::vector<double>& action) {
  const double u = std::clamp(action.at(0), -1.0, 1.0);
  x_ += gain_ * u;
  ++t_;
  return {{x_}, -std::abs(x_), t_ >= horizon_};
}

std::vector<double> PendulumEnv::observe() const {
  return {std::cos(theta_), std::sin(theta_), theta_dot_};
}

std::vector<double> PendulumEnv::reset(Rng& rng) {
  theta_ = rng.uniform(-M_PI, M_PI);
  theta_dot_ = rng.uniform(-1.0, 1.0);
  t_ = 0;
  return observe();
}

EnvStep PendulumEnv::step(const std::vector<double>& action) {
  constexpr double g = 10.0, m = 1.0, l = 1.0, dt = 0.05;
  const double u = std::clamp(action.at(0), -2.0, 2.0);

  const double cost = theta_ * theta_ + 0.1 * theta_dot_ * theta_dot_ + 0.001 * u * u;

  theta_dot_ += (3.0 * g / (2.0 * l) * std::sin(theta_) +
                 3.0 / (m * l * l) * u) *
                dt;
  theta_dot_ = std::clamp(theta_dot_, -8.0, 8.0);
  theta_ = sim::wrap_angle(theta_ + theta_dot_ * dt);
  ++t_;
  return {observe(), -cost, t_ >= horizon_};
}

}  // namespace hero::rl
