// Generic single-agent environment interface plus two reference
// environments. SacAgent / DdpgAgent are environment-agnostic; this header
// gives library users (and the test suite) ready-made tasks to validate a
// learner before pointing it at the lane world.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hero::rl {

struct EnvStep {
  std::vector<double> obs;
  double reward = 0.0;
  bool done = false;
};

class SingleAgentEnv {
 public:
  virtual ~SingleAgentEnv() = default;

  virtual std::size_t obs_dim() const = 0;
  virtual std::size_t action_dim() const = 0;
  virtual std::vector<double> action_lo() const = 0;
  virtual std::vector<double> action_hi() const = 0;

  // Resets and returns the initial observation.
  virtual std::vector<double> reset(Rng& rng) = 0;
  virtual EnvStep step(const std::vector<double>& action) = 0;
};

// 1-D regulator: drive x to the origin. obs = [x], action = velocity,
// reward = −|x'|. The minimal sanity task for any continuous learner.
class PointRegulatorEnv final : public SingleAgentEnv {
 public:
  explicit PointRegulatorEnv(int horizon = 20, double gain = 0.2)
      : horizon_(horizon), gain_(gain) {}

  std::size_t obs_dim() const override { return 1; }
  std::size_t action_dim() const override { return 1; }
  std::vector<double> action_lo() const override { return {-1.0}; }
  std::vector<double> action_hi() const override { return {1.0}; }

  std::vector<double> reset(Rng& rng) override;
  EnvStep step(const std::vector<double>& action) override;

 private:
  int horizon_;
  double gain_;
  double x_ = 0.0;
  int t_ = 0;
};

// Torque-limited pendulum swing-up (the classic continuous-control task):
// obs = [cos θ, sin θ, θ̇], action = torque ∈ [−2, 2],
// reward = −(θ² + 0.1·θ̇² + 0.001·u²) with θ wrapped to (−π, π].
class PendulumEnv final : public SingleAgentEnv {
 public:
  explicit PendulumEnv(int horizon = 100) : horizon_(horizon) {}

  std::size_t obs_dim() const override { return 3; }
  std::size_t action_dim() const override { return 1; }
  std::vector<double> action_lo() const override { return {-2.0}; }
  std::vector<double> action_hi() const override { return {2.0}; }

  std::vector<double> reset(Rng& rng) override;
  EnvStep step(const std::vector<double>& action) override;

  double theta() const { return theta_; }

 private:
  std::vector<double> observe() const;

  int horizon_;
  double theta_ = 0.0;
  double theta_dot_ = 0.0;
  int t_ = 0;
};

// Runs `episodes` of `agent` on `env` with observe()-driven learning;
// returns the per-episode reward sums. Agent must provide
// act(obs, rng[, deterministic]) and observe(obs, a, r, next, done, rng).
template <typename Agent>
std::vector<double> train_on_env(SingleAgentEnv& env, Agent& agent, int episodes,
                                 Rng& rng) {
  std::vector<double> curve;
  curve.reserve(static_cast<std::size_t>(episodes));
  for (int ep = 0; ep < episodes; ++ep) {
    std::vector<double> obs = env.reset(rng);
    double total = 0.0;
    while (true) {
      auto action = agent.act(obs, rng);
      EnvStep s = env.step(action);
      total += s.reward;
      agent.observe(obs, action, s.reward, s.obs, s.done, rng);
      obs = s.obs;
      if (s.done) break;
    }
    curve.push_back(total);
  }
  return curve;
}

}  // namespace hero::rl
