// Opponent modeling network (paper Sec. III-C, Fig. 3).
//
// For agent i, one categorical predictor per opponent j maps i's own
// high-level observation to a distribution over j's *current option* —
// modeling temporal abstractions instead of primitive actions. Trained
// online by entropy-regularized cross-entropy on the observed option
// history:  L(θ) = −E[log π̂(o^j | s_h^i)] − λ·H(π̂).
//
// The learned distributions feed the high-level actor and the critic's
// TD-target (the mechanism that counters non-stationarity in fully
// distributed training).
#pragma once

#include <memory>
#include <vector>

#include "hero/options.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/replay_buffer.h"

namespace hero::core {

struct OpponentModelConfig {
  double lr = 0.002;
  double entropy_lambda = 0.01;  // λ in the paper's loss
  std::size_t buffer_capacity = 20000;
  std::size_t batch = 64;
  std::size_t min_samples = 64;
  std::vector<std::size_t> hidden = {32};
};

class OpponentModel {
 public:
  OpponentModel(std::size_t obs_dim, int num_opponents,
                const OpponentModelConfig& cfg, Rng& rng);

  int num_opponents() const { return static_cast<int>(nets_.size()); }

  // Predicted option distribution of opponent slot j (uniform until the
  // model has seen min_samples labels). The `_into` form writes kNumOptions
  // values to `out` without allocating.
  void predict_into(int j, const std::vector<double>& obs, double* out);
  std::vector<double> predict(int j, const std::vector<double>& obs);

  // Concatenated predictions over all opponents — the ô^{-i} feature block
  // consumed by the high-level actor and critic. The `_into` form writes
  // feature_dim() values to `out`.
  void predict_all_into(const std::vector<double>& obs, double* out);
  std::vector<double> predict_all(const std::vector<double>& obs);

  // Batched predict_all over a whole minibatch: row b of `obs_rows`
  // (B × obs_dim) yields row b of `out` (B × feature_dim). One forward per
  // opponent network instead of B single-row forwards — same values as
  // calling predict_all_into per row (the kernels treat batch rows
  // independently), but ~B× fewer network dispatches. This is the
  // high-level update's hot path (docs/PARALLELISM.md §hot-path).
  void predict_all_rows(const nn::Matrix& obs_rows, nn::Matrix& out);
  std::size_t feature_dim() const {
    return nets_.size() * static_cast<std::size_t>(kNumOptions);
  }

  // One observed (own obs, opponent j's current option) pair. Public so the
  // parallel runtime can stage copies of a worker replica's collected
  // samples back to the learner (hero_trainer.cpp merge phase).
  struct Sample {
    std::vector<double> obs;
    int option;
  };

  // Records one observed (own obs, opponent j's current option) pair.
  void observe(int j, std::vector<double> obs, Option option);

  // FIFO access to opponent j's collected samples (index order == insertion
  // order while the buffer has not wrapped — worker replicas clear per
  // episode, far below capacity). Used by the merge phase.
  const Sample& sample_at(int j, std::size_t i) const {
    return buffers_[static_cast<std::size_t>(j)].at(i);
  }
  // Drops all collected samples (worker replicas, after staging a round).
  void clear_buffers() {
    for (auto& b : buffers_) b.clear();
  }

  // One gradient step on opponent j's predictor; returns the loss (NaN-free;
  // 0 when below min_samples). update_all() steps every predictor and
  // appends to the per-opponent loss history (the Fig. 10 curves).
  double update(int j, Rng& rng);
  std::vector<double> update_all(Rng& rng);

  const std::vector<std::vector<double>>& loss_history() const { return losses_; }

  // Direct access to predictor j's network (checkpointing).
  nn::Mlp& net(int j) { return nets_[static_cast<std::size_t>(j)]; }

  // Marks the predictors as trained so predict() trusts the networks even
  // with an empty sample buffer (used after loading a checkpoint, and by
  // worker replicas syncing from a learner whose predictors are live —
  // replicas clear their buffers every episode, so the learner's readiness
  // has to be carried over explicitly).
  void mark_trained() { trained_ = true; }
  bool trained() const { return trained_; }

  // True once predict() consults the networks rather than the uniform
  // prior. All per-opponent buffers fill in lockstep (every opponent is
  // observed each step), so one flag describes the whole model.
  bool prediction_ready() const {
    return trained_ ||
           (!buffers_.empty() && buffers_[0].size() >= cfg_.min_samples);
  }

  // Number of labeled samples collected for opponent j.
  std::size_t samples(int j) const { return buffers_[static_cast<std::size_t>(j)].size(); }
  // True once predictor j has enough samples for update() to take a step.
  bool ready(int j) const {
    return buffers_[static_cast<std::size_t>(j)].size() >= cfg_.min_samples;
  }

 private:
  OpponentModelConfig cfg_;
  bool trained_ = false;
  std::vector<nn::Mlp> nets_;
  std::vector<std::unique_ptr<nn::Adam>> opts_;
  std::vector<rl::ReplayBuffer<Sample>> buffers_;
  std::vector<std::vector<double>> losses_;  // per opponent, per update

  // Prediction/update scratch (resized in place).
  nn::Matrix obs_row_, obs_m_, ce_grad_, probs_, logp_;
  std::vector<std::size_t> labels_;
};

}  // namespace hero::core
