#include "hero/options.h"

#include <cmath>

#include "common/check.h"

namespace hero::core {

const char* option_name(Option o) {
  switch (o) {
    case Option::kKeepLane: return "keep_lane";
    case Option::kSlowDown: return "slow_down";
    case Option::kAccelerate: return "accelerate";
    case Option::kLaneChange: return "lane_change";
  }
  return "?";
}

Option option_from_index(int i) {
  HERO_CHECK(i >= 0 && i < kNumOptions);
  return static_cast<Option>(i);
}

OptionActionSpace option_action_space(Option o) {
  // Paper Sec. IV-C: per-skill linear/angular speed bounds.
  switch (o) {
    case Option::kSlowDown: return {{0.04, -0.10}, {0.08, 0.10}};
    case Option::kAccelerate: return {{0.08, -0.10}, {0.14, 0.10}};
    case Option::kLaneChange: return {{0.10, 0.12}, {0.20, 0.25}};
    case Option::kKeepLane: return {{0.04, -0.10}, {0.20, 0.10}};  // not learned
  }
  return {{0.0, 0.0}, {0.0, 0.0}};
}

bool option_terminated(const OptionExecution& exec, const sim::LaneWorld& world,
                       int vehicle, const TerminationConfig& cfg) {
  const auto& st = world.vehicle(vehicle).state();
  return option_terminated(exec, world.track(), st.y, st.heading, world.done(),
                           cfg);
}

LaneChangeOutcome lane_change_outcome(const OptionExecution& exec,
                                      const sim::LaneWorld& world, int vehicle,
                                      const TerminationConfig& cfg) {
  const auto& st = world.vehicle(vehicle).state();
  return lane_change_outcome(exec, world.track(), st.y, st.heading, world.done(),
                             cfg);
}

bool option_terminated(const OptionExecution& exec, const sim::Track& track,
                       double y, double heading, bool world_done,
                       const TerminationConfig& cfg) {
  if (world_done) return true;
  if (cfg.synchronous) return exec.steps >= cfg.in_lane_duration;
  if (exec.option == Option::kLaneChange) {
    return lane_change_outcome(exec, track, y, heading, world_done, cfg) !=
           LaneChangeOutcome::kInProgress;
  }
  return exec.steps >= cfg.in_lane_duration;
}

LaneChangeOutcome lane_change_outcome(const OptionExecution& exec,
                                      const sim::Track& track, double y,
                                      double heading, bool world_done,
                                      const TerminationConfig& cfg) {
  const double y_err = std::abs(y - track.lane_center(exec.target_lane));
  if (y_err < cfg.lane_change_tol_y &&
      std::abs(heading) < cfg.lane_change_tol_heading) {
    return LaneChangeOutcome::kSuccess;
  }
  if (exec.steps >= cfg.lane_change_max_steps || world_done) {
    return LaneChangeOutcome::kFail;
  }
  return LaneChangeOutcome::kInProgress;
}

double driving_in_lane_reward(const sim::LaneWorld& world, int vehicle,
                              double travel_m, const IntrinsicRewardConfig& cfg) {
  const auto& st = world.vehicle(vehicle).state();
  const int lane = world.lane(vehicle);
  const double deviate =
      std::abs(st.y - world.track().lane_center(lane)) /
      (0.5 * world.track().lane_width());
  const double r_deviate = -deviate;  // 0 when centred, −1 at the lane edge
  const double r_travel = travel_m / cfg.travel_norm;
  return cfg.beta * r_deviate + (1.0 - cfg.beta) * r_travel;
}

double lane_change_reward(LaneChangeOutcome outcome, double travel_m,
                          const IntrinsicRewardConfig& cfg) {
  switch (outcome) {
    case LaneChangeOutcome::kSuccess: return cfg.lane_change_bonus;
    case LaneChangeOutcome::kFail: return -cfg.lane_change_bonus;
    case LaneChangeOutcome::kInProgress: return travel_m / cfg.travel_norm;
  }
  return 0.0;
}

}  // namespace hero::core
