#include "hero/hero_trainer.h"

#include <chrono>
#include <string>

#include "common/stats.h"
#include "nn/serialize.h"
#include "obs/obs.h"
#include "sim/scenario.h"

namespace hero::core {

HeroTrainer::HeroTrainer(const sim::Scenario& scenario, const HeroConfig& cfg,
                         Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      skills_(world_.low_level_obs_dim(), cfg.skill, rng) {
  const int n = world_.num_learners();
  for (int k = 0; k < n; ++k) {
    agents_.push_back(std::make_unique<HeroAgent>(
        world_.high_level_obs_dim(), n - 1, cfg_.high, cfg_.opponent,
        cfg_.skill.termination, rng));
  }
  current_options_.assign(static_cast<std::size_t>(n),
                          static_cast<int>(Option::kKeepLane));
}

const std::vector<int>& HeroTrainer::others_options(int k) const {
  others_scratch_.clear();
  for (std::size_t j = 0; j < current_options_.size(); ++j) {
    if (static_cast<int>(j) != k) others_scratch_.push_back(current_options_[j]);
  }
  return others_scratch_;
}

std::map<Option, std::vector<double>> HeroTrainer::train_skills(
    int episodes_per_skill, Rng& rng, const SkillHook& hook) {
  if (cfg_.parallel_skills) {
    return skills_.train_all_parallel(episodes_per_skill, rng.engine()(), hook);
  }
  std::map<Option, std::vector<double>> curves;
  for (int i = 0; i < kNumOptions; ++i) {
    const Option o = option_from_index(i);
    if (!skills_.has_agent(o)) continue;
    sim::LaneWorld skill_world(sim::skill_training_world(/*with_leader=*/false));
    curves[o] = skills_.train_skill(
        o, skill_world, episodes_per_skill, rng,
        [&](int ep, double r) {
          if (hook) hook(o, ep, r);
        });
  }
  return curves;
}

void HeroTrainer::save(const std::string& dir) {
  skills_.save(dir);
  for (std::size_t k = 0; k < agents_.size(); ++k) {
    const std::string base = dir + "/agent" + std::to_string(k);
    auto& agent = *agents_[k];
    nn::save_params_file(agent.high_level().actor().net(), base + "_actor.ckpt");
    nn::save_params_file(agent.high_level().critic(), base + "_critic.ckpt");
    for (int j = 0; j < agent.opponents().num_opponents(); ++j) {
      nn::save_params_file(agent.opponents().net(j),
                           base + "_opp" + std::to_string(j) + ".ckpt");
    }
  }
}

void HeroTrainer::load(const std::string& dir) {
  skills_.load(dir);
  for (std::size_t k = 0; k < agents_.size(); ++k) {
    const std::string base = dir + "/agent" + std::to_string(k);
    auto& agent = *agents_[k];
    nn::load_params_file(agent.high_level().actor().net(), base + "_actor.ckpt");
    nn::load_params_file(agent.high_level().critic(), base + "_critic.ckpt");
    for (int j = 0; j < agent.opponents().num_opponents(); ++j) {
      nn::load_params_file(agent.opponents().net(j),
                           base + "_opp" + std::to_string(j) + ".ckpt");
    }
    agent.opponents().mark_trained();
  }
}

void HeroTrainer::begin_episode(const sim::LaneWorld& world) {
  (void)world;
  episode_started_ = false;
  std::fill(current_options_.begin(), current_options_.end(),
            static_cast<int>(Option::kKeepLane));
  for (auto& a : agents_) a->reset_episode();
}

std::vector<sim::TwistCmd> HeroTrainer::act(const sim::LaneWorld& world, Rng& rng,
                                            bool explore) {
  const int n = static_cast<int>(agents_.size());
  HERO_CHECK_MSG(world.num_learners() == n,
                 "world has " << world.num_learners() << " learners, trainer has " << n);

  for (int k = 0; k < n; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    if (!episode_started_) {
      agents_[static_cast<std::size_t>(k)]->select_initial(world, vi,
                                                           others_options(k), rng,
                                                           explore);
    } else {
      if (agents_[static_cast<std::size_t>(k)]->maybe_reselect(
              world, vi, others_options(k), rng, explore, learning_)) {
        ++option_switches_;
      }
    }
    current_options_[static_cast<std::size_t>(k)] =
        static_cast<int>(agents_[static_cast<std::size_t>(k)]->execution().option);
  }
  episode_started_ = true;

  std::vector<sim::TwistCmd> cmds;
  cmds.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    auto& exec = agents_[static_cast<std::size_t>(k)]->execution();
    cmds.push_back(skills_.execute(exec, world, vi, rng,
                                   /*deterministic=*/!explore));
    ++exec.steps;  // one world.step() follows each act() by contract
  }
  return cmds;
}

void HeroTrainer::train(int episodes, Rng& rng, const algos::EpisodeHook& hook) {
  learning_ = true;
  const int n = static_cast<int>(agents_.size());

  for (int ep = 0; ep < episodes; ++ep) {
    OBS_SPAN("stage2/episode");
    const bool observing = obs::metrics_enabled() || obs::telemetry_enabled();
    const auto ep_start = std::chrono::steady_clock::now();
    const long switches_before = option_switches_;
    if (observing) {
      for (auto& a : agents_) a->reset_opp_score();
    }
    RunningStat critic_loss, actor_entropy, critic_gn, actor_gn, opp_loss;

    world_.reset(rng);
    begin_episode(world_);
    rl::EpisodeStats stats;

    while (!world_.done()) {
      auto cmds = act(world_, rng, /*explore=*/true);
      auto result = world_.step(cmds, rng);
      stats.team_reward += mean_of(result.reward);
      if (result.collision) stats.collision = true;
      ++total_steps_;

      for (int k = 0; k < n; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        agents_[static_cast<std::size_t>(k)]->accumulate(
            result.reward[static_cast<std::size_t>(k)]);
        agents_[static_cast<std::size_t>(k)]->observe_opponents(
            world_.high_level_obs(vi), others_options(k));
      }

      if (total_steps_ % cfg_.update_every == 0) {
        for (auto& a : agents_) {
          const AgentUpdateStats us = a->update(rng);
          if (!observing) continue;
          if (us.high.updated) {
            critic_loss.add(us.high.critic_loss);
            actor_entropy.add(us.high.actor_entropy);
            critic_gn.add(us.high.critic_grad_norm);
            actor_gn.add(us.high.actor_grad_norm);
          }
          if (us.opponent_updates > 0) opp_loss.add(us.opponent_loss);
        }
      }
    }

    for (int k = 0; k < n; ++k) {
      const int vi = world_.learners()[static_cast<std::size_t>(k)];
      agents_[static_cast<std::size_t>(k)]->finalize_episode(world_, vi,
                                                             /*learning=*/true);
    }

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());

    if (observing) {
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - ep_start)
              .count();
      const double steps_per_sec =
          wall_s > 0.0 ? static_cast<double>(stats.steps) / wall_s : 0.0;
      const long switches = option_switches_ - switches_before;
      const double switch_rate =
          stats.steps > 0
              ? static_cast<double>(switches) / (static_cast<double>(stats.steps) * n)
              : 0.0;
      long opp_preds = 0, opp_hits = 0;
      double replay = 0.0;
      for (auto& a : agents_) {
        opp_preds += a->opp_predictions();
        opp_hits += a->opp_correct();
        replay += static_cast<double>(a->high_level().buffered());
      }
      replay /= n;
      const double opp_acc =
          opp_preds > 0 ? static_cast<double>(opp_hits) / opp_preds : 0.0;

      if (obs::metrics_enabled()) {
        auto& reg = obs::Registry::instance();
        reg.counter("hero.stage2.episodes").inc();
        reg.counter("hero.stage2.steps").inc(stats.steps);
        reg.counter("hero.stage2.option_switches").inc(switches);
        if (stats.collision) reg.counter("hero.stage2.collisions").inc();
        if (stats.success) reg.counter("hero.stage2.successes").inc();
        reg.gauge("hero.stage2.replay_occupancy").set(replay);
        reg.gauge("hero.stage2.opponent_accuracy").set(opp_acc);
        reg.histogram("hero.stage2.episode_reward",
                      {/*lo=*/-100.0, /*hi=*/100.0, /*buckets=*/64,
                       /*log_scale=*/false})
            .observe(stats.team_reward);
        reg.histogram("hero.stage2.steps_per_sec").observe(steps_per_sec);
      }
      if (obs::telemetry_enabled()) {
        obs::TelemetryEvent e("stage2/episode");
        e.field("episode", ep)
            .field("reward", stats.team_reward)
            .field("steps", stats.steps)
            .field("collision", stats.collision)
            .field("success", stats.success)
            .field("mean_speed", stats.mean_speed)
            .field("option_switches", switches)
            .field("option_switch_rate", switch_rate)
            .field("opponent_accuracy", opp_acc)
            .field("opponent_predictions", opp_preds)
            .field("replay_occupancy", replay)
            .field("steps_per_sec", steps_per_sec)
            .field("total_steps", total_steps_);
        if (critic_loss.count() > 0) {
          e.field("critic_loss", critic_loss.mean())
              .field("actor_entropy", actor_entropy.mean())
              .field("critic_grad_norm", critic_gn.mean())
              .field("actor_grad_norm", actor_gn.mean());
        }
        if (opp_loss.count() > 0) e.field("opponent_loss", opp_loss.mean());
        obs::Telemetry::instance().emit(e);
      }
    }
    if (hook) hook(ep, stats);
  }
  learning_ = false;
}

}  // namespace hero::core
