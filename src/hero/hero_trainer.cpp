#include "hero/hero_trainer.h"

#include <string>

#include "common/stats.h"
#include "nn/serialize.h"
#include "sim/scenario.h"

namespace hero::core {

HeroTrainer::HeroTrainer(const sim::Scenario& scenario, const HeroConfig& cfg,
                         Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      skills_(world_.low_level_obs_dim(), cfg.skill, rng) {
  const int n = world_.num_learners();
  for (int k = 0; k < n; ++k) {
    agents_.push_back(std::make_unique<HeroAgent>(
        world_.high_level_obs_dim(), n - 1, cfg_.high, cfg_.opponent,
        cfg_.skill.termination, rng));
  }
  current_options_.assign(static_cast<std::size_t>(n),
                          static_cast<int>(Option::kKeepLane));
}

const std::vector<int>& HeroTrainer::others_options(int k) const {
  others_scratch_.clear();
  for (std::size_t j = 0; j < current_options_.size(); ++j) {
    if (static_cast<int>(j) != k) others_scratch_.push_back(current_options_[j]);
  }
  return others_scratch_;
}

std::map<Option, std::vector<double>> HeroTrainer::train_skills(
    int episodes_per_skill, Rng& rng, const SkillHook& hook) {
  if (cfg_.parallel_skills) {
    return skills_.train_all_parallel(episodes_per_skill, rng.engine()(), hook);
  }
  std::map<Option, std::vector<double>> curves;
  for (int i = 0; i < kNumOptions; ++i) {
    const Option o = option_from_index(i);
    if (!skills_.has_agent(o)) continue;
    sim::LaneWorld skill_world(sim::skill_training_world(/*with_leader=*/false));
    curves[o] = skills_.train_skill(
        o, skill_world, episodes_per_skill, rng,
        [&](int ep, double r) {
          if (hook) hook(o, ep, r);
        });
  }
  return curves;
}

void HeroTrainer::save(const std::string& dir) {
  skills_.save(dir);
  for (std::size_t k = 0; k < agents_.size(); ++k) {
    const std::string base = dir + "/agent" + std::to_string(k);
    auto& agent = *agents_[k];
    nn::save_params_file(agent.high_level().actor().net(), base + "_actor.ckpt");
    nn::save_params_file(agent.high_level().critic(), base + "_critic.ckpt");
    for (int j = 0; j < agent.opponents().num_opponents(); ++j) {
      nn::save_params_file(agent.opponents().net(j),
                           base + "_opp" + std::to_string(j) + ".ckpt");
    }
  }
}

void HeroTrainer::load(const std::string& dir) {
  skills_.load(dir);
  for (std::size_t k = 0; k < agents_.size(); ++k) {
    const std::string base = dir + "/agent" + std::to_string(k);
    auto& agent = *agents_[k];
    nn::load_params_file(agent.high_level().actor().net(), base + "_actor.ckpt");
    nn::load_params_file(agent.high_level().critic(), base + "_critic.ckpt");
    for (int j = 0; j < agent.opponents().num_opponents(); ++j) {
      nn::load_params_file(agent.opponents().net(j),
                           base + "_opp" + std::to_string(j) + ".ckpt");
    }
    agent.opponents().mark_trained();
  }
}

void HeroTrainer::begin_episode(const sim::LaneWorld& world) {
  (void)world;
  episode_started_ = false;
  std::fill(current_options_.begin(), current_options_.end(),
            static_cast<int>(Option::kKeepLane));
  for (auto& a : agents_) a->reset_episode();
}

std::vector<sim::TwistCmd> HeroTrainer::act(const sim::LaneWorld& world, Rng& rng,
                                            bool explore) {
  const int n = static_cast<int>(agents_.size());
  HERO_CHECK_MSG(world.num_learners() == n,
                 "world has " << world.num_learners() << " learners, trainer has " << n);

  for (int k = 0; k < n; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    if (!episode_started_) {
      agents_[static_cast<std::size_t>(k)]->select_initial(world, vi,
                                                           others_options(k), rng,
                                                           explore);
    } else {
      agents_[static_cast<std::size_t>(k)]->maybe_reselect(
          world, vi, others_options(k), rng, explore, learning_);
    }
    current_options_[static_cast<std::size_t>(k)] =
        static_cast<int>(agents_[static_cast<std::size_t>(k)]->execution().option);
  }
  episode_started_ = true;

  std::vector<sim::TwistCmd> cmds;
  cmds.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    auto& exec = agents_[static_cast<std::size_t>(k)]->execution();
    cmds.push_back(skills_.execute(exec, world, vi, rng,
                                   /*deterministic=*/!explore));
    ++exec.steps;  // one world.step() follows each act() by contract
  }
  return cmds;
}

void HeroTrainer::train(int episodes, Rng& rng, const algos::EpisodeHook& hook) {
  learning_ = true;
  const int n = static_cast<int>(agents_.size());

  for (int ep = 0; ep < episodes; ++ep) {
    world_.reset(rng);
    begin_episode(world_);
    rl::EpisodeStats stats;

    while (!world_.done()) {
      auto cmds = act(world_, rng, /*explore=*/true);
      auto result = world_.step(cmds, rng);
      stats.team_reward += mean_of(result.reward);
      if (result.collision) stats.collision = true;
      ++total_steps_;

      for (int k = 0; k < n; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        agents_[static_cast<std::size_t>(k)]->accumulate(
            result.reward[static_cast<std::size_t>(k)]);
        agents_[static_cast<std::size_t>(k)]->observe_opponents(
            world_.high_level_obs(vi), others_options(k));
      }

      if (total_steps_ % cfg_.update_every == 0) {
        for (auto& a : agents_) a->update(rng);
      }
    }

    for (int k = 0; k < n; ++k) {
      const int vi = world_.learners()[static_cast<std::size_t>(k)];
      agents_[static_cast<std::size_t>(k)]->finalize_episode(world_, vi,
                                                             /*learning=*/true);
    }

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());
    if (hook) hook(ep, stats);
  }
  learning_ = false;
}

}  // namespace hero::core
