#include "hero/hero_trainer.h"

#include <algorithm>
#include <string>

#include "common/stats.h"
#include "hero/checkpoint.h"
#include "nn/serialize.h"
#include "obs/obs.h"
#include "runtime/rollout.h"
#include "sim/scenario.h"

namespace hero::core {

HeroTrainer::HeroTrainer(const sim::Scenario& scenario, const HeroConfig& cfg,
                         Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      skills_(world_.low_level_obs_dim(), cfg.skill, rng) {
  const int n = world_.num_learners();
  for (int k = 0; k < n; ++k) {
    agents_.push_back(std::make_unique<HeroAgent>(
        world_.high_level_obs_dim(), n - 1, cfg_.high, cfg_.opponent,
        cfg_.skill.termination, rng));
  }
  current_options_.assign(static_cast<std::size_t>(n),
                          static_cast<int>(Option::kKeepLane));
}

const std::vector<int>& HeroTrainer::others_options(int k) const {
  others_scratch_.clear();
  for (std::size_t j = 0; j < current_options_.size(); ++j) {
    if (static_cast<int>(j) != k) others_scratch_.push_back(current_options_[j]);
  }
  return others_scratch_;
}

runtime::ThreadPool& HeroTrainer::ensure_pool(std::size_t threads) {
  if (!pool_ || pool_->size() < threads) {
    pool_ = std::make_unique<runtime::ThreadPool>(threads);
  }
  return *pool_;
}

std::map<Option, std::vector<double>> HeroTrainer::train_skills(
    int episodes_per_skill, Rng& rng, const SkillHook& hook) {
  OBS_PHASE("stage1");
  if (cfg_.parallel_skills || cfg_.num_workers > 1) {
    // One task per learned skill; a pool at least as wide as the skill count
    // preserves the historical thread-per-skill concurrency.
    auto& pool = ensure_pool(std::max<std::size_t>(
        static_cast<std::size_t>(std::max(cfg_.num_workers, 1)),
        static_cast<std::size_t>(kNumOptions - 1)));
    return skills_.train_all_parallel(episodes_per_skill, rng.engine()(), pool, hook);
  }
  std::map<Option, std::vector<double>> curves;
  for (int i = 0; i < kNumOptions; ++i) {
    const Option o = option_from_index(i);
    if (!skills_.has_agent(o)) continue;
    sim::LaneWorld skill_world(sim::skill_training_world(/*with_leader=*/false));
    curves[o] = skills_.train_skill(
        o, skill_world, episodes_per_skill, rng,
        [&](int ep, double r) {
          if (hook) hook(o, ep, r);
        });
  }
  return curves;
}

void HeroTrainer::save(const std::string& dir) {
  write_manifest(dir, manifest_of(*this));
  skills_.save(dir);
  for (std::size_t k = 0; k < agents_.size(); ++k) {
    const std::string base = dir + "/agent" + std::to_string(k);
    auto& agent = *agents_[k];
    nn::save_params_file(agent.high_level().actor().net(), base + "_actor.ckpt");
    nn::save_params_file(agent.high_level().critic(), base + "_critic.ckpt");
    for (int j = 0; j < agent.opponents().num_opponents(); ++j) {
      nn::save_params_file(agent.opponents().net(j),
                           base + "_opp" + std::to_string(j) + ".ckpt");
    }
  }
}

void HeroTrainer::load(const std::string& dir) {
  CheckpointManifest on_disk;
  if (read_manifest(dir, &on_disk)) {
    validate_manifest(on_disk, manifest_of(*this), dir);
  }
  skills_.load(dir);
  for (std::size_t k = 0; k < agents_.size(); ++k) {
    const std::string base = dir + "/agent" + std::to_string(k);
    auto& agent = *agents_[k];
    nn::load_params_file(agent.high_level().actor().net(), base + "_actor.ckpt");
    nn::load_params_file(agent.high_level().critic(), base + "_critic.ckpt");
    for (int j = 0; j < agent.opponents().num_opponents(); ++j) {
      nn::load_params_file(agent.opponents().net(j),
                           base + "_opp" + std::to_string(j) + ".ckpt");
    }
    agent.opponents().mark_trained();
  }
}

void HeroTrainer::begin_episode(const sim::LaneWorld& world) {
  (void)world;
  episode_started_ = false;
  std::fill(current_options_.begin(), current_options_.end(),
            static_cast<int>(Option::kKeepLane));
  for (auto& a : agents_) a->reset_episode();
}

std::vector<sim::TwistCmd> HeroTrainer::act(const sim::LaneWorld& world, Rng& rng,
                                            bool explore) {
  OBS_PHASE("act");
  const int n = static_cast<int>(agents_.size());
  HERO_CHECK_MSG(world.num_learners() == n,
                 "world has " << world.num_learners() << " learners, trainer has " << n);

  for (int k = 0; k < n; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    if (!episode_started_) {
      agents_[static_cast<std::size_t>(k)]->select_initial(world, vi,
                                                           others_options(k), rng,
                                                           explore);
    } else {
      if (agents_[static_cast<std::size_t>(k)]->maybe_reselect(
              world, vi, others_options(k), rng, explore, learning_)) {
        ++option_switches_;
      }
    }
    current_options_[static_cast<std::size_t>(k)] =
        static_cast<int>(agents_[static_cast<std::size_t>(k)]->execution().option);
  }
  episode_started_ = true;

  std::vector<sim::TwistCmd> cmds;
  cmds.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    auto& exec = agents_[static_cast<std::size_t>(k)]->execution();
    cmds.push_back(skills_.execute(exec, world, vi, rng,
                                   /*deterministic=*/!explore));
    ++exec.steps;  // one world.step() follows each act() by contract
  }
  return cmds;
}

void HeroTrainer::act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs,
                                bool explore, sim::TwistCmd* cmds_out) {
  batched_act(batch, rngs, explore, cmds_out);
}

void HeroTrainer::batched_act(const rl::ObsBatch& batch, Rng* const* rngs,
                              bool explore, sim::TwistCmd* cmds_out) {
  if (!act_engine_) act_engine_ = std::make_unique<HeroActEngine>();
  // Sessions are keyed by slot index and survive across calls; growing the
  // batch appends fresh (unstarted) sessions without disturbing existing
  // slots.
  if (act_sessions_.size() < batch.count()) act_sessions_.resize(batch.count());
  act_session_ptrs_.resize(batch.count());
  for (std::size_t s = 0; s < batch.count(); ++s) {
    act_session_ptrs_[s] = &act_sessions_[s];
  }
  act_engine_->act_rows(skills_, agents_, cfg_.high, cfg_.skill.termination,
                        batch, act_session_ptrs_.data(), rngs, explore, cmds_out);
}

void HeroTrainer::train(int episodes, Rng& rng, const algos::EpisodeHook& hook) {
  OBS_PHASE("stage2");
  if (cfg_.batch_envs > 0) {
    train_batched(episodes, rng, hook);
  } else if (cfg_.num_workers <= 1) {
    train_serial(episodes, rng, hook);
  } else {
    train_parallel(episodes, rng, hook);
  }
}

void HeroTrainer::emit_episode_obs(int episode, const rl::EpisodeStats& stats,
                                   long switches, long opp_preds, long opp_hits,
                                   double steps_per_sec,
                                   const RunningStat& critic_loss,
                                   const RunningStat& actor_entropy,
                                   const RunningStat& critic_gn,
                                   const RunningStat& actor_gn,
                                   const RunningStat& opp_loss) {
  const int n = static_cast<int>(agents_.size());
  const double switch_rate =
      stats.steps > 0
          ? static_cast<double>(switches) / (static_cast<double>(stats.steps) * n)
          : 0.0;
  double replay = 0.0;
  for (auto& a : agents_) replay += static_cast<double>(a->high_level().buffered());
  replay /= n;
  const double opp_acc =
      opp_preds > 0 ? static_cast<double>(opp_hits) / opp_preds : 0.0;

  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    reg.counter("hero.stage2.episodes").inc();
    reg.counter("hero.stage2.steps").inc(stats.steps);
    reg.counter("hero.stage2.option_switches").inc(switches);
    if (stats.collision) reg.counter("hero.stage2.collisions").inc();
    if (stats.success) reg.counter("hero.stage2.successes").inc();
    reg.gauge("hero.stage2.replay_occupancy").set(replay);
    reg.gauge("hero.stage2.opponent_accuracy").set(opp_acc);
    reg.histogram("hero.stage2.episode_reward",
                  {/*lo=*/-100.0, /*hi=*/100.0, /*buckets=*/64,
                   /*log_scale=*/false})
        .observe(stats.team_reward);
    reg.histogram("hero.stage2.steps_per_sec").observe(steps_per_sec);
  }
  if (obs::telemetry_enabled()) {
    obs::TelemetryEvent e("stage2/episode");
    e.field("episode", episode)
        .field("reward", stats.team_reward)
        .field("steps", stats.steps)
        .field("collision", stats.collision)
        .field("success", stats.success)
        .field("mean_speed", stats.mean_speed)
        .field("option_switches", switches)
        .field("option_switch_rate", switch_rate)
        .field("opponent_accuracy", opp_acc)
        .field("opponent_predictions", opp_preds)
        .field("replay_occupancy", replay)
        .field("steps_per_sec", steps_per_sec)
        .field("total_steps", total_steps_);
    if (critic_loss.count() > 0) {
      e.field("critic_loss", critic_loss.mean())
          .field("actor_entropy", actor_entropy.mean())
          .field("critic_grad_norm", critic_gn.mean())
          .field("actor_grad_norm", actor_gn.mean());
    }
    if (opp_loss.count() > 0) e.field("opponent_loss", opp_loss.mean());
    obs::Telemetry::instance().emit(e);
  }
  if (obs::health_enabled()) {
    obs::EpisodeHealth h;
    h.episode = episode;
    h.reward = stats.team_reward;
    h.steps = stats.steps;
    h.steps_per_sec = steps_per_sec;
    h.have_updates = critic_loss.count() > 0;
    h.updated_this_episode = critic_loss.count() > 0;
    if (h.have_updates) {
      h.critic_loss = critic_loss.mean();
      h.critic_grad_norm = critic_gn.mean();
      h.actor_grad_norm = actor_gn.mean();
    }
    h.have_replay = true;  // stage 2 always learns through the HL replay
    h.opponent_predictions = opp_preds;
    h.opponent_accuracy = opp_acc;
    h.option_switch_rate = switch_rate;
    obs::AlertEngine::instance().observe_episode(h);
    obs::note_episode();
  }
}

void HeroTrainer::train_serial(int episodes, Rng& rng,
                               const algos::EpisodeHook& hook) {
  learning_ = true;
  const int n = static_cast<int>(agents_.size());

  for (int ep = 0; ep < episodes; ++ep) {
    OBS_SPAN("stage2/episode");
    const bool observing = obs::metrics_enabled() || obs::telemetry_enabled();
    const double ep_start_us = obs::now_us();
    const long switches_before = option_switches_;
    if (observing) {
      for (auto& a : agents_) a->reset_opp_score();
    }
    RunningStat critic_loss, actor_entropy, critic_gn, actor_gn, opp_loss;

    world_.reset(rng);
    begin_episode(world_);
    rl::EpisodeStats stats;

    while (!world_.done()) {
      auto cmds = act(world_, rng, /*explore=*/true);
      auto result = world_.step(cmds, rng);
      stats.team_reward += mean_of(result.reward);
      if (result.collision) stats.collision = true;
      ++total_steps_;

      {
        OBS_PHASE("obs_build");
        for (int k = 0; k < n; ++k) {
          const int vi = world_.learners()[static_cast<std::size_t>(k)];
          agents_[static_cast<std::size_t>(k)]->accumulate(
              result.reward[static_cast<std::size_t>(k)]);
          agents_[static_cast<std::size_t>(k)]->observe_opponents(
              world_.high_level_obs(vi), others_options(k));
        }
      }

      if (total_steps_ % cfg_.update_every == 0) {
        for (auto& a : agents_) {
          const AgentUpdateStats us = a->update(rng);
          if (!observing) continue;
          if (us.high.updated) {
            critic_loss.add(us.high.critic_loss);
            actor_entropy.add(us.high.actor_entropy);
            critic_gn.add(us.high.critic_grad_norm);
            actor_gn.add(us.high.actor_grad_norm);
          }
          if (us.opponent_updates > 0) opp_loss.add(us.opponent_loss);
        }
      }
    }

    for (int k = 0; k < n; ++k) {
      const int vi = world_.learners()[static_cast<std::size_t>(k)];
      agents_[static_cast<std::size_t>(k)]->finalize_episode(world_, vi,
                                                             /*learning=*/true);
    }

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());

    if (observing) {
      const double wall_s = (obs::now_us() - ep_start_us) * 1e-6;
      const double steps_per_sec =
          wall_s > 0.0 ? static_cast<double>(stats.steps) / wall_s : 0.0;
      long opp_preds = 0, opp_hits = 0;
      for (auto& a : agents_) {
        opp_preds += a->opp_predictions();
        opp_hits += a->opp_correct();
      }
      emit_episode_obs(ep, stats, option_switches_ - switches_before, opp_preds,
                       opp_hits, steps_per_sec, critic_loss, actor_entropy,
                       critic_gn, actor_gn, opp_loss);
    }
    if (hook) hook(ep, stats);
  }
  learning_ = false;
}

void HeroTrainer::ensure_replicas(std::size_t slots, std::uint64_t root_seed) {
  HeroConfig replica_cfg = cfg_;
  replica_cfg.num_workers = 1;  // replicas never recurse into the runtime
  replica_cfg.parallel_skills = false;
  while (replicas_.size() < slots) {
    // Construction draws initialize networks that the first sync_replicas()
    // overwrites; the stream only needs to be deterministic.
    Rng init = runtime::stream_rng(root_seed, 0x5107'0000ULL + replicas_.size());
    replicas_.push_back(
        std::make_unique<HeroTrainer>(scenario_, replica_cfg, init));
  }
}

void HeroTrainer::sync_replicas(std::size_t slots) {
  for (std::size_t s = 0; s < slots; ++s) {
    HeroTrainer& w = *replicas_[s];
    for (std::size_t k = 0; k < agents_.size(); ++k) {
      w.agents_[k]->sync_policy_from(*agents_[k]);
    }
  }
}

void HeroTrainer::parallel_update(Rng& rng, std::vector<AgentUpdateStats>& out) {
  const std::size_t n = agents_.size();
  out.resize(n);
  // One engine draw keys the whole round; per-agent streams split from it so
  // the update is independent of pool scheduling, and the learner's rng
  // advances exactly once per round regardless of agent count.
  const std::uint64_t base = rng.engine()();
  pool_->parallel_for(n, [&](std::size_t k) {
    Rng agent_rng = runtime::stream_rng(base, k);
    out[k] = agents_[k]->update(agent_rng);
  });
}

void HeroTrainer::collect_episode(Rng& rng, std::size_t slot,
                                  runtime::ShardedReplay<StagedHigh>& high_staging,
                                  runtime::ShardedReplay<StagedOpp>& opp_staging,
                                  CollectedEpisode& out) {
  OBS_PHASE("rollout_collect");  // worker-thread root in the merged phase tree
  const double t0_us = obs::now_us();
  learning_ = true;  // store semi-MDP transitions in the replica buffers
  const int n = static_cast<int>(agents_.size());
  const long switches_before = option_switches_;
  out.switches = 0;  // the learner reuses CollectedEpisode records round-over-round
  out.opp_total = 0;
  out.opp_correct = 0;
  out.selections.assign(static_cast<std::size_t>(n), 0);
  out.high_counts.assign(static_cast<std::size_t>(n), 0);
  out.opp_counts.assign(static_cast<std::size_t>(n), 0);
  for (int k = 0; k < n; ++k) {
    out.selections[static_cast<std::size_t>(k)] =
        agents_[static_cast<std::size_t>(k)]->high_level().selections();
  }
  for (auto& a : agents_) a->reset_opp_score();

  world_.reset(rng);
  begin_episode(world_);
  rl::EpisodeStats stats;

  while (!world_.done()) {
    auto cmds = act(world_, rng, /*explore=*/true);
    auto result = world_.step(cmds, rng);
    stats.team_reward += mean_of(result.reward);
    if (result.collision) stats.collision = true;
    ++total_steps_;
    OBS_PHASE("obs_build");
    for (int k = 0; k < n; ++k) {
      const int vi = world_.learners()[static_cast<std::size_t>(k)];
      agents_[static_cast<std::size_t>(k)]->accumulate(
          result.reward[static_cast<std::size_t>(k)]);
      agents_[static_cast<std::size_t>(k)]->observe_opponents(
          world_.high_level_obs(vi), others_options(k));
    }
  }
  for (int k = 0; k < n; ++k) {
    const int vi = world_.learners()[static_cast<std::size_t>(k)];
    agents_[static_cast<std::size_t>(k)]->finalize_episode(world_, vi,
                                                           /*learning=*/true);
  }

  stats.steps = world_.steps();
  stats.success = !stats.collision &&
                  world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
  double speed = 0.0;
  for (int vi : world_.learners()) speed += world_.mean_speed(vi);
  stats.mean_speed = speed / static_cast<double>(world_.num_learners());

  // Stage this episode's experience into our shard, agent-major, FIFO within
  // an agent — the exact order drain_front hands the learner.
  for (int k = 0; k < n; ++k) {
    auto& agent = *agents_[static_cast<std::size_t>(k)];
    const auto& buf = agent.high_level().buffer();
    for (std::size_t i = 0; i < buf.size(); ++i) {
      high_staging.push(slot, {k, buf.at(i)});
    }
    out.high_counts[static_cast<std::size_t>(k)] = buf.size();
    agent.high_level().clear_buffer();

    auto& om = agent.opponents();
    std::size_t staged = 0;
    for (int j = 0; j < om.num_opponents(); ++j) {
      const std::size_t m = om.samples(j);
      for (std::size_t i = 0; i < m; ++i) {
        opp_staging.push(slot, {k, j, om.sample_at(j, i)});
      }
      staged += m;
    }
    out.opp_counts[static_cast<std::size_t>(k)] = staged;
    om.clear_buffers();

    out.opp_total += agent.opp_predictions();
    out.opp_correct += agent.opp_correct();
    // Report the ε-schedule advance, then rewind to the round-start position:
    // every episode of a round explores from the learner's schedule, so the
    // trajectory of episode e cannot depend on which slot ran it (the
    // worker-count invariance in docs/PARALLELISM.md).
    const long start = out.selections[static_cast<std::size_t>(k)];
    out.selections[static_cast<std::size_t>(k)] =
        agent.high_level().selections() - start;
    agent.high_level().set_selections(start);
  }
  out.stats = stats;
  out.switches = option_switches_ - switches_before;
  runtime::RolloutRunner::record_worker_rate(slot, stats.steps,
                                             runtime::seconds_since(t0_us));
}

void HeroTrainer::train_parallel(int episodes, Rng& rng,
                                 const algos::EpisodeHook& hook) {
  learning_ = true;
  const int n = static_cast<int>(agents_.size());
  const std::size_t workers = static_cast<std::size_t>(std::max(cfg_.num_workers, 1));
  const std::size_t envs = cfg_.num_envs > 0 ? static_cast<std::size_t>(cfg_.num_envs)
                                             : workers;
  auto& pool = ensure_pool(workers);
  // The root seed is one engine draw — the caller's rng advances the same
  // way no matter how many episodes follow.
  const std::uint64_t root = rng.engine()();
  runtime::RolloutRunner runner(pool, root);
  const std::size_t max_slots = std::min(pool.size(), envs);
  ensure_replicas(max_slots, root);
  for (std::size_t s = 0; s < max_slots; ++s) {
    replicas_[s]->skills_.sync_policies_from(skills_);  // stage-2 skills frozen
  }
  sync_replicas(max_slots);

  // Staging shards sized for one round: per slot, ceil(envs/slots) episodes
  // of at most max_steps transitions per agent (+1 for the terminal store).
  const std::size_t per_slot_eps = (envs + max_slots - 1) / max_slots;
  const std::size_t max_steps =
      static_cast<std::size_t>(std::max(world_.config().max_steps, 1)) + 2;
  const std::size_t per_slot_items =
      per_slot_eps * max_steps * static_cast<std::size_t>(std::max(n, 1));
  runtime::ShardedReplay<StagedHigh> high_staging(per_slot_items * max_slots,
                                                  max_slots);
  runtime::ShardedReplay<StagedOpp> opp_staging(
      per_slot_items * max_slots * static_cast<std::size_t>(std::max(n - 1, 1)),
      max_slots);

  std::vector<CollectedEpisode> results(envs);
  std::vector<AgentUpdateStats> update_stats;

  int done_eps = 0;
  while (done_eps < episodes) {
    const std::size_t round =
        std::min(envs, static_cast<std::size_t>(episodes - done_eps));
    const std::size_t slots = std::min(pool.size(), round);
    {
      OBS_SPAN("runtime/rollout");
      OBS_PHASE("rollout");
      runner.run_round(static_cast<std::size_t>(done_eps), round,
                       [&](std::size_t ep, std::size_t slot, Rng& ep_rng) {
                         replicas_[slot]->collect_episode(
                             ep_rng, slot, high_staging, opp_staging,
                             results[ep - static_cast<std::size_t>(done_eps)]);
                       });
    }
    {
      OBS_SPAN("runtime/learn");
      OBS_PHASE("learn");
      for (std::size_t e = 0; e < round; ++e) {
        const CollectedEpisode& col = results[e];
        const std::size_t slot = e % slots;
        // Deterministic round-robin merge: episode e's staged items leave
        // shard e % slots in exactly the order the worker pushed them.
        std::size_t high_total = 0, opp_total = 0;
        for (int k = 0; k < n; ++k) {
          high_total += col.high_counts[static_cast<std::size_t>(k)];
          opp_total += col.opp_counts[static_cast<std::size_t>(k)];
        }
        high_staging.drain_front(slot, high_total, [&](StagedHigh&& item) {
          agents_[static_cast<std::size_t>(item.agent)]->high_level().store(
              std::move(item.t));
        });
        opp_staging.drain_front(slot, opp_total, [&](StagedOpp&& item) {
          agents_[static_cast<std::size_t>(item.agent)]->opponents().observe(
              item.opponent, std::move(item.s.obs),
              option_from_index(item.s.option));
        });
        total_steps_ += col.stats.steps;
        option_switches_ += col.switches;
        for (int k = 0; k < n; ++k) {
          auto& hl = agents_[static_cast<std::size_t>(k)]->high_level();
          hl.set_selections(hl.selections() +
                            col.selections[static_cast<std::size_t>(k)]);
        }

        // Preserve the serial gradient cadence: one update round per
        // update_every collected steps, remainder carried across episodes.
        RunningStat critic_loss, actor_entropy, critic_gn, actor_gn, opp_loss;
        pending_update_steps_ += col.stats.steps;
        while (pending_update_steps_ >= cfg_.update_every) {
          pending_update_steps_ -= cfg_.update_every;
          parallel_update(rng, update_stats);
          for (const auto& us : update_stats) {
            if (us.high.updated) {
              critic_loss.add(us.high.critic_loss);
              actor_entropy.add(us.high.actor_entropy);
              critic_gn.add(us.high.critic_grad_norm);
              actor_gn.add(us.high.actor_grad_norm);
            }
            if (us.opponent_updates > 0) opp_loss.add(us.opponent_loss);
          }
        }

        if (obs::metrics_enabled() || obs::telemetry_enabled()) {
          // Wall-clock throughput is a property of the whole round, not one
          // episode; per-worker rates live in the runtime.worker.* gauges.
          emit_episode_obs(done_eps + static_cast<int>(e), col.stats,
                           col.switches, col.opp_total, col.opp_correct,
                           /*steps_per_sec=*/0.0, critic_loss, actor_entropy,
                           critic_gn, actor_gn, opp_loss);
        }
        if (obs::metrics_enabled()) {
          auto& reg = obs::Registry::instance();
          for (std::size_t s = 0; s < slots; ++s) {
            reg.gauge("runtime.shard." + std::to_string(s) + ".occupancy")
                .set(static_cast<double>(high_staging.shard_size(s)));
          }
        }
        if (hook) hook(done_eps + static_cast<int>(e), col.stats);
      }
      sync_replicas(slots);
    }
    done_eps += static_cast<int>(round);
  }
  learning_ = false;
}

void HeroTrainer::train_batched(int episodes, Rng& rng,
                                const algos::EpisodeHook& hook) {
  learning_ = true;
  const int n = static_cast<int>(agents_.size());
  const int envs = std::max(cfg_.batch_envs, 1);
  // One engine draw keys the whole run, matching train_parallel: the
  // caller's rng advances identically however many episodes follow.
  const std::uint64_t root = rng.engine()();
  if (!batched_) {
    batched_ = std::make_unique<BatchedRollout>(scenario_, cfg_.high,
                                                cfg_.skill.termination, skills_,
                                                agents_, envs);
  }
  std::vector<AgentUpdateStats> update_stats(static_cast<std::size_t>(n));

  int done_eps = 0;
  while (done_eps < episodes) {
    const std::size_t round = std::min<std::size_t>(
        static_cast<std::size_t>(envs), static_cast<std::size_t>(episodes - done_eps));
    const bool observing = obs::metrics_enabled() || obs::telemetry_enabled();
    batched_->run_round(root, static_cast<std::size_t>(done_eps), round, observing);

    {
      OBS_SPAN("runtime/learn");
      OBS_PHASE("learn");
      // Merge in lane order == canonical episode order: replay stores
      // agent-major FIFO, opponent labels (agent, opponent)-major FIFO —
      // exactly the order the sharded runtime drains.
      {
        OBS_PHASE("merge");
        for (std::size_t e = 0; e < round; ++e) {
          BatchedEpisode& col = batched_->episode(e);
          for (int k = 0; k < n; ++k) {
            auto& hl = agents_[static_cast<std::size_t>(k)]->high_level();
            for (auto& t : col.high[static_cast<std::size_t>(k)]) {
              hl.store(std::move(t));
            }
            auto& om = agents_[static_cast<std::size_t>(k)]->opponents();
            for (int j = 0; j < n - 1; ++j) {
              auto& samples =
                  col.opp[static_cast<std::size_t>(k) * static_cast<std::size_t>(n - 1) +
                          static_cast<std::size_t>(j)];
              for (auto& s : samples) {
                om.observe(j, std::move(s.obs), option_from_index(s.option));
              }
            }
            hl.set_selections(hl.selections() +
                              col.selections[static_cast<std::size_t>(k)]);
          }
          total_steps_ += col.stats.steps;
          option_switches_ += col.switches;
        }
      }

      // Gradient cadence in synchronized *batch* steps — the batching
      // throughput lever (docs/BATCHING.md §cadence): one batch step advanced
      // every live lane, so at batch_envs = E this runs ~E× fewer update
      // rounds per environment step than the serial loop, with the remainder
      // carried across rounds like the worker runtime does.
      RunningStat critic_loss, actor_entropy, critic_gn, actor_gn, opp_loss;
      pending_update_steps_ += batched_->round_batch_steps();
      while (pending_update_steps_ >= cfg_.update_every) {
        pending_update_steps_ -= cfg_.update_every;
        for (std::size_t k = 0; k < agents_.size(); ++k) {
          update_stats[k] = agents_[k]->update(rng);
        }
        if (!observing) continue;
        for (const auto& us : update_stats) {
          if (us.high.updated) {
            critic_loss.add(us.high.critic_loss);
            actor_entropy.add(us.high.actor_entropy);
            critic_gn.add(us.high.critic_grad_norm);
            actor_gn.add(us.high.actor_grad_norm);
          }
          if (us.opponent_updates > 0) opp_loss.add(us.opponent_loss);
        }
      }

      for (std::size_t e = 0; e < round; ++e) {
        const BatchedEpisode& col = batched_->episode(e);
        if (observing) {
          // Update stats describe the whole round; attach them to its last
          // episode so telemetry counts each update round once.
          const bool last = e + 1 == round;
          const RunningStat empty;
          emit_episode_obs(done_eps + static_cast<int>(e), col.stats,
                           col.switches, col.opp_total, col.opp_correct,
                           /*steps_per_sec=*/0.0, last ? critic_loss : empty,
                           last ? actor_entropy : empty, last ? critic_gn : empty,
                           last ? actor_gn : empty, last ? opp_loss : empty);
        }
        if (hook) hook(done_eps + static_cast<int>(e), col.stats);
      }
    }
    done_eps += static_cast<int>(round);
  }
  learning_ = false;
}

}  // namespace hero::core
