#include "hero/opponent_model.h"

#include <algorithm>
#include <cmath>

#include "nn/losses.h"
#include "obs/phase.h"

namespace hero::core {

OpponentModel::OpponentModel(std::size_t obs_dim, int num_opponents,
                             const OpponentModelConfig& cfg, Rng& rng)
    : cfg_(cfg) {
  HERO_CHECK(num_opponents >= 0);
  for (int j = 0; j < num_opponents; ++j) {
    nets_.emplace_back(obs_dim, cfg_.hidden, kNumOptions, rng);
    opts_.push_back(std::make_unique<nn::Adam>(nets_.back().params(), cfg_.lr));
    buffers_.emplace_back(cfg_.buffer_capacity);
    losses_.emplace_back();
  }
}

void OpponentModel::predict_into(int j, const std::vector<double>& obs, double* out) {
  auto& buffer = buffers_[static_cast<std::size_t>(j)];
  if (!trained_ && buffer.size() < cfg_.min_samples) {
    for (int a = 0; a < kNumOptions; ++a) out[a] = 1.0 / kNumOptions;
    return;
  }
  obs_row_.resize(1, obs.size());
  std::copy(obs.begin(), obs.end(), obs_row_.data());
  const nn::Matrix& logits = nets_[static_cast<std::size_t>(j)].forward(obs_row_);
  // Softmax of the single logits row, straight into `out`.
  const double* lrow = logits.row_ptr(0);
  double mx = lrow[0];
  for (int a = 1; a < kNumOptions; ++a) mx = std::max(mx, lrow[a]);
  double z = 0.0;
  for (int a = 0; a < kNumOptions; ++a) {
    out[a] = std::exp(lrow[a] - mx);
    z += out[a];
  }
  for (int a = 0; a < kNumOptions; ++a) out[a] /= z;
}

std::vector<double> OpponentModel::predict(int j, const std::vector<double>& obs) {
  std::vector<double> out(kNumOptions);
  predict_into(j, obs, out.data());
  return out;
}

void OpponentModel::predict_all_into(const std::vector<double>& obs, double* out) {
  for (int j = 0; j < num_opponents(); ++j) {
    predict_into(j, obs, out + static_cast<std::size_t>(j) * kNumOptions);
  }
}

std::vector<double> OpponentModel::predict_all(const std::vector<double>& obs) {
  std::vector<double> out(feature_dim());
  predict_all_into(obs, out.data());
  return out;
}

void OpponentModel::predict_all_rows(const nn::Matrix& obs_rows, nn::Matrix& out) {
  OBS_PHASE("opponent_predict");
  const std::size_t B = obs_rows.rows();
  out.resize(B, std::max<std::size_t>(feature_dim(), 1));
  for (int j = 0; j < num_opponents(); ++j) {
    const std::size_t off = static_cast<std::size_t>(j) * kNumOptions;
    auto& buffer = buffers_[static_cast<std::size_t>(j)];
    if (!trained_ && buffer.size() < cfg_.min_samples) {
      for (std::size_t b = 0; b < B; ++b) {
        double* row = out.row_ptr(b) + off;
        for (int a = 0; a < kNumOptions; ++a) row[a] = 1.0 / kNumOptions;
      }
      continue;
    }
    const nn::Matrix& logits = nets_[static_cast<std::size_t>(j)].forward(obs_rows);
    for (std::size_t b = 0; b < B; ++b) {
      // Same max-subtracted softmax as predict_into, row by row.
      const double* lrow = logits.row_ptr(b);
      double* orow = out.row_ptr(b) + off;
      double mx = lrow[0];
      for (int a = 1; a < kNumOptions; ++a) mx = std::max(mx, lrow[a]);
      double z = 0.0;
      for (int a = 0; a < kNumOptions; ++a) {
        orow[a] = std::exp(lrow[a] - mx);
        z += orow[a];
      }
      for (int a = 0; a < kNumOptions; ++a) orow[a] /= z;
    }
  }
}

void OpponentModel::observe(int j, std::vector<double> obs, Option option) {
  buffers_[static_cast<std::size_t>(j)].add(
      {std::move(obs), static_cast<int>(option)});
}

double OpponentModel::update(int j, Rng& rng) {
  auto& buffer = buffers_[static_cast<std::size_t>(j)];
  if (buffer.size() < cfg_.min_samples) return 0.0;
  auto batch = buffer.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();

  auto& net = nets_[static_cast<std::size_t>(j)];
  obs_m_.resize(B, net.in_dim());
  labels_.resize(B);
  for (std::size_t b = 0; b < B; ++b) {
    const Sample& s = *batch[b];
    std::copy(s.obs.begin(), s.obs.end(), obs_m_.row_ptr(b));
    labels_[b] = static_cast<std::size_t>(s.option);
  }

  const nn::Matrix& logits = net.forward(obs_m_);
  const double ce_loss = nn::softmax_cross_entropy_into(logits, labels_, nullptr, ce_grad_);

  // Entropy regularization: loss −= λ·H(π̂);
  // d(−H)/dlogit_c = p_c (log p_c + H).
  nn::softmax_into(logits, probs_);
  nn::log_softmax_into(logits, logp_);
  const double inv_b = 1.0 / static_cast<double>(B);
  double mean_entropy = 0.0;
  for (std::size_t b = 0; b < B; ++b) {
    double h = 0.0;
    for (int a = 0; a < kNumOptions; ++a) {
      h -= probs_(b, static_cast<std::size_t>(a)) * logp_(b, static_cast<std::size_t>(a));
    }
    mean_entropy += h * inv_b;
    for (int a = 0; a < kNumOptions; ++a) {
      const std::size_t c = static_cast<std::size_t>(a);
      ce_grad_(b, c) += cfg_.entropy_lambda * probs_(b, c) * (logp_(b, c) + h) * inv_b;
    }
  }
  const double loss = ce_loss - cfg_.entropy_lambda * mean_entropy;

  net.zero_grad();
  net.backward(ce_grad_);
  net.clip_grad_norm(10.0);
  opts_[static_cast<std::size_t>(j)]->step();
  losses_[static_cast<std::size_t>(j)].push_back(loss);
  trained_ = true;
  return loss;
}

std::vector<double> OpponentModel::update_all(Rng& rng) {
  std::vector<double> out;
  out.reserve(nets_.size());
  for (int j = 0; j < num_opponents(); ++j) out.push_back(update(j, rng));
  return out;
}

}  // namespace hero::core
