#include "hero/opponent_model.h"

#include "nn/losses.h"

namespace hero::core {

OpponentModel::OpponentModel(std::size_t obs_dim, int num_opponents,
                             const OpponentModelConfig& cfg, Rng& rng)
    : cfg_(cfg) {
  HERO_CHECK(num_opponents >= 0);
  for (int j = 0; j < num_opponents; ++j) {
    nets_.emplace_back(obs_dim, cfg_.hidden, kNumOptions, rng);
    opts_.push_back(std::make_unique<nn::Adam>(nets_.back().params(), cfg_.lr));
    buffers_.emplace_back(cfg_.buffer_capacity);
    losses_.emplace_back();
  }
}

std::vector<double> OpponentModel::predict(int j, const std::vector<double>& obs) {
  auto& buffer = buffers_[static_cast<std::size_t>(j)];
  if (!trained_ && buffer.size() < cfg_.min_samples) {
    return std::vector<double>(kNumOptions, 1.0 / kNumOptions);
  }
  nn::Matrix logits = nets_[static_cast<std::size_t>(j)].forward(nn::Matrix::row(obs));
  return nn::softmax(logits).row_vec(0);
}

std::vector<double> OpponentModel::predict_all(const std::vector<double>& obs) {
  std::vector<double> out;
  out.reserve(feature_dim());
  for (int j = 0; j < num_opponents(); ++j) {
    auto p = predict(j, obs);
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

void OpponentModel::observe(int j, std::vector<double> obs, Option option) {
  buffers_[static_cast<std::size_t>(j)].add(
      {std::move(obs), static_cast<int>(option)});
}

double OpponentModel::update(int j, Rng& rng) {
  auto& buffer = buffers_[static_cast<std::size_t>(j)];
  if (buffer.size() < cfg_.min_samples) return 0.0;
  auto batch = buffer.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();

  std::vector<std::vector<double>> rows;
  std::vector<std::size_t> labels;
  rows.reserve(B);
  for (const auto* s : batch) {
    rows.push_back(s->obs);
    labels.push_back(static_cast<std::size_t>(s->option));
  }

  auto& net = nets_[static_cast<std::size_t>(j)];
  nn::Matrix logits = net.forward(nn::Matrix::stack_rows(rows));
  auto ce = nn::softmax_cross_entropy(logits, labels);

  // Entropy regularization: loss −= λ·H(π̂);
  // d(−H)/dlogit_c = p_c (log p_c + H).
  nn::Matrix probs = nn::softmax(logits);
  nn::Matrix logp = nn::log_softmax(logits);
  const double inv_b = 1.0 / static_cast<double>(B);
  double mean_entropy = 0.0;
  for (std::size_t b = 0; b < B; ++b) {
    double h = 0.0;
    for (int a = 0; a < kNumOptions; ++a) {
      h -= probs(b, static_cast<std::size_t>(a)) * logp(b, static_cast<std::size_t>(a));
    }
    mean_entropy += h * inv_b;
    for (int a = 0; a < kNumOptions; ++a) {
      const std::size_t c = static_cast<std::size_t>(a);
      ce.grad(b, c) += cfg_.entropy_lambda * probs(b, c) * (logp(b, c) + h) * inv_b;
    }
  }
  const double loss = ce.loss - cfg_.entropy_lambda * mean_entropy;

  net.zero_grad();
  net.backward(ce.grad);
  net.clip_grad_norm(10.0);
  opts_[static_cast<std::size_t>(j)]->step();
  losses_[static_cast<std::size_t>(j)].push_back(loss);
  trained_ = true;
  return loss;
}

std::vector<double> OpponentModel::update_all(Rng& rng) {
  std::vector<double> out;
  out.reserve(nets_.size());
  for (int j = 0; j < num_opponents(); ++j) out.push_back(update(j, rng));
  return out;
}

}  // namespace hero::core
