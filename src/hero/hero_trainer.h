// HERO end-to-end: two-stage training (paper Fig. 2) and deployment.
//
//   Stage 1 — train_skills(): each low-level skill learns in a single-vehicle
//   world against its intrinsic reward (Algorithm 2).
//   Stage 2 — train(): multiple vehicles learn the high-level cooperative
//   option-selection policy with opponent modeling, skills frozen
//   (Algorithm 1).
//
// HeroTrainer is also an rl::Controller, so the shared evaluation harness
// (and the Table II domain-shifted world) can run it like any baseline.
#pragma once

#include <map>
#include <memory>

#include "algos/common.h"
#include "hero/hero_agent.h"

namespace hero::core {

struct HeroConfig {
  SkillConfig skill;
  HighLevelConfig high;
  OpponentModelConfig opponent;
  int update_every = 2;        // world steps between gradient updates
  int skill_episodes = 1200;   // default stage-1 budget per skill
  // Train the skills in parallel environments (paper Sec. V-C), one thread
  // per skill. Off by default so single-seed runs stay bit-reproducible with
  // historical results; the parallel path is deterministic per skill.
  bool parallel_skills = false;
};

class HeroTrainer : public rl::Controller {
 public:
  HeroTrainer(const sim::Scenario& scenario, const HeroConfig& cfg, Rng& rng);

  // --- stage 1 ---
  using SkillHook = std::function<void(Option, int, double)>;
  // Trains every learned skill; returns the per-episode intrinsic reward
  // curves (Fig. 8).
  std::map<Option, std::vector<double>> train_skills(int episodes_per_skill,
                                                     Rng& rng,
                                                     const SkillHook& hook = {});

  // --- stage 2 ---
  void train(int episodes, Rng& rng, const algos::EpisodeHook& hook = {});

  // --- rl::Controller (deployment / evaluation) ---
  void begin_episode(const sim::LaneWorld& world) override;
  std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                 bool explore) override;

  // --- checkpointing ---
  // Persists the full model (skill bank, per-agent high-level actor/critic,
  // opponent predictors) into `dir`; load() restores into an identically
  // configured trainer. Note: opponent predictors below their min-samples
  // threshold still report the uniform prior after load (by design — the
  // threshold guards deployment on untrained predictors).
  void save(const std::string& dir);
  void load(const std::string& dir);

  SkillBank& skills() { return skills_; }
  HeroAgent& agent(int k) { return *agents_[static_cast<std::size_t>(k)]; }
  int num_agents() const { return static_cast<int>(agents_.size()); }
  sim::LaneWorld& world() { return world_; }
  const sim::Scenario& scenario() const { return scenario_; }
  const std::vector<int>& current_options() const { return current_options_; }

 private:
  // Options currently held by every learner except `k` (ascending order) —
  // the observable option history the paper assumes. Returns a reference to
  // a reused scratch vector, overwritten by the next call.
  const std::vector<int>& others_options(int k) const;

  sim::Scenario scenario_;
  HeroConfig cfg_;
  sim::LaneWorld world_;
  SkillBank skills_;
  std::vector<std::unique_ptr<HeroAgent>> agents_;
  std::vector<int> current_options_;
  mutable std::vector<int> others_scratch_;
  bool episode_started_ = false;
  bool learning_ = false;
  long total_steps_ = 0;
  long option_switches_ = 0;  // β_o firings across all agents (telemetry)
};

}  // namespace hero::core
