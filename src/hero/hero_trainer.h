// HERO end-to-end: two-stage training (paper Fig. 2) and deployment.
//
//   Stage 1 — train_skills(): each low-level skill learns in a single-vehicle
//   world against its intrinsic reward (Algorithm 2).
//   Stage 2 — train(): multiple vehicles learn the high-level cooperative
//   option-selection policy with opponent modeling, skills frozen
//   (Algorithm 1).
//
// HeroTrainer is also an rl::Controller, so the shared evaluation harness
// (and the Table II domain-shifted world) can run it like any baseline.
#pragma once

#include <map>
#include <memory>

#include "algos/common.h"
#include "common/stats.h"
#include "hero/act_engine.h"
#include "hero/batched_rollout.h"
#include "hero/hero_agent.h"
#include "runtime/sharded_replay.h"
#include "runtime/thread_pool.h"

namespace hero::core {

struct HeroConfig {
  SkillConfig skill;
  HighLevelConfig high;
  OpponentModelConfig opponent;
  int update_every = 2;        // world steps between gradient updates
  int skill_episodes = 1200;   // default stage-1 budget per skill
  // Train the skills in parallel environments (paper Sec. V-C), one pool
  // task per skill. Off by default so single-seed runs stay bit-reproducible
  // with historical results; the parallel path is deterministic per skill.
  bool parallel_skills = false;
  // Stage-2 rollout workers. 1 (default) keeps the exact historical serial
  // code path — bitwise identical to pre-runtime builds. >1 collects
  // episodes on a thread pool with counter-based per-episode RNG streams:
  // deterministic for a fixed (seed, num_envs) pair, invariant to scheduling
  // and to num_workers itself (docs/PARALLELISM.md).
  int num_workers = 1;
  // Episodes in flight per rollout round; 0 → num_workers. The determinism
  // contract is keyed on this value (it fixes the episode→stream map and the
  // merge cadence).
  int num_envs = 0;
  // Batch-first stage-2 rollouts (docs/BATCHING.md): > 0 steps that many
  // episodes in lockstep through one vectorized BatchLaneWorld on a single
  // thread, with every per-step network evaluation batched across lanes and
  // gradient updates clocked per *batch* step. Takes precedence over
  // num_workers. Deterministic for a fixed (seed, batch_envs) pair via the
  // same per-episode RNG streams as the worker runtime.
  int batch_envs = 0;
};

class HeroTrainer : public rl::Controller {
 public:
  HeroTrainer(const sim::Scenario& scenario, const HeroConfig& cfg, Rng& rng);

  // --- stage 1 ---
  using SkillHook = std::function<void(Option, int, double)>;
  // Trains every learned skill; returns the per-episode intrinsic reward
  // curves (Fig. 8).
  std::map<Option, std::vector<double>> train_skills(int episodes_per_skill,
                                                     Rng& rng,
                                                     const SkillHook& hook = {});

  // --- stage 2 ---
  void train(int episodes, Rng& rng, const algos::EpisodeHook& hook = {});

  // --- rl::Controller (deployment / evaluation) ---
  void begin_episode(const sim::LaneWorld& world) override;
  std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                 bool explore) override;
  // Batch-first deployment: one fused HeroActEngine pass over all active
  // slots (three batched network stages total instead of 3·B·n single-row
  // forwards). Slot s's semi-MDP state lives in an internal per-slot
  // HeroSession keyed by slot index, reset via the batch's reset flags — the
  // Controller contract's "slot index is session identity". Greedy commands
  // are bitwise-identical to the scalar act() path (see test_serve.cpp);
  // explore mode is deterministic too but keys its draw order on the fused
  // schedule, like the batch_envs training path.
  void act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                     sim::TwistCmd* cmds_out) override;

  // --- checkpointing ---
  // Persists the full model (skill bank, per-agent high-level actor/critic,
  // opponent predictors) into `dir`, plus the versioned `checkpoint.json`
  // manifest (hero/checkpoint.h); load() restores into an identically
  // configured trainer and throws std::runtime_error when the manifest
  // declares an incompatible format or architecture (manifest-less legacy
  // directories still load). Note: opponent predictors below their
  // min-samples threshold still report the uniform prior after load (by
  // design — the threshold guards deployment on untrained predictors).
  void save(const std::string& dir);
  void load(const std::string& dir);

  SkillBank& skills() { return skills_; }
  HeroAgent& agent(int k) { return *agents_[static_cast<std::size_t>(k)]; }
  // The full agent roster — what HeroActEngine consumers (the policy server)
  // pass per call so a model swap never invalidates engine state.
  std::vector<std::unique_ptr<HeroAgent>>& agents() { return agents_; }
  const HeroConfig& config() const { return cfg_; }
  int num_agents() const { return static_cast<int>(agents_.size()); }
  sim::LaneWorld& world() { return world_; }
  const sim::Scenario& scenario() const { return scenario_; }
  const std::vector<int>& current_options() const { return current_options_; }

 private:
  // Options currently held by every learner except `k` (ascending order) —
  // the observable option history the paper assumes. Returns a reference to
  // a reused scratch vector, overwritten by the next call.
  const std::vector<int>& others_options(int k) const;

  // act_rows_into body (the _into method must stay allocation-free; the
  // engine and session pool grow here, on first use / batch growth only).
  void batched_act(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                   sim::TwistCmd* cmds_out);

  // --- parallel stage 2 (cfg_.num_workers > 1; docs/PARALLELISM.md) ---
  // A transition collected by a worker replica, staged for the learner.
  struct StagedHigh {
    int agent;
    OptionTransition t;
  };
  struct StagedOpp {
    int agent;
    int opponent;
    OpponentModel::Sample s;
  };
  // Per-episode collection record, filled by the worker, consumed by the
  // learner's merge in canonical episode order.
  struct CollectedEpisode {
    rl::EpisodeStats stats;
    long switches = 0;
    long opp_total = 0;
    long opp_correct = 0;
    std::vector<long> selections;          // per agent: Δ ε-schedule position
    std::vector<std::size_t> high_counts;  // per agent: staged transitions
    std::vector<std::size_t> opp_counts;   // per agent: staged labels
  };

  void train_serial(int episodes, Rng& rng, const algos::EpisodeHook& hook);
  void train_parallel(int episodes, Rng& rng, const algos::EpisodeHook& hook);
  // Batch-first rollout path (cfg_.batch_envs > 0; docs/BATCHING.md).
  void train_batched(int episodes, Rng& rng, const algos::EpisodeHook& hook);
  // Runs one episode on a worker replica and stages its transitions into
  // shard `slot`.
  void collect_episode(Rng& rng, std::size_t slot,
                       runtime::ShardedReplay<StagedHigh>& high_staging,
                       runtime::ShardedReplay<StagedOpp>& opp_staging,
                       CollectedEpisode& out);
  // Pushes learner policy/opponent parameters to every replica.
  void sync_replicas(std::size_t slots);
  // One update round: every agent steps in parallel, stats merged in agent
  // order.
  void parallel_update(Rng& rng, std::vector<AgentUpdateStats>& out);
  // Lazily builds the worker pool (>= threads) and the replica trainers.
  runtime::ThreadPool& ensure_pool(std::size_t threads);
  void ensure_replicas(std::size_t slots, std::uint64_t root_seed);
  // Shared telemetry/metrics emission for one finished episode.
  void emit_episode_obs(int episode, const rl::EpisodeStats& stats, long switches,
                        long opp_preds, long opp_hits, double steps_per_sec,
                        const RunningStat& critic_loss,
                        const RunningStat& actor_entropy,
                        const RunningStat& critic_gn, const RunningStat& actor_gn,
                        const RunningStat& opp_loss);

  sim::Scenario scenario_;
  HeroConfig cfg_;
  sim::LaneWorld world_;
  SkillBank skills_;
  std::vector<std::unique_ptr<HeroAgent>> agents_;
  std::vector<int> current_options_;
  mutable std::vector<int> others_scratch_;
  bool episode_started_ = false;
  bool learning_ = false;
  long total_steps_ = 0;
  long option_switches_ = 0;  // β_o firings across all agents (telemetry)

  // Parallel-runtime state (unused while num_workers == 1).
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::vector<std::unique_ptr<HeroTrainer>> replicas_;  // one per worker slot
  long pending_update_steps_ = 0;  // carries the steps/update_every remainder

  // Batch-first rollout engine (unused while batch_envs == 0).
  std::unique_ptr<BatchedRollout> batched_;

  // Batch-first deployment engine + per-slot sessions (lazy; see
  // act_rows_into).
  std::unique_ptr<HeroActEngine> act_engine_;
  std::vector<HeroSession> act_sessions_;
  std::vector<HeroSession*> act_session_ptrs_;
};

}  // namespace hero::core
