#include "hero/batched_rollout.h"

#include <algorithm>

#include "obs/phase.h"
#include "obs/trace.h"

namespace hero::core {

BatchedRollout::BatchedRollout(const sim::Scenario& scenario,
                               const HighLevelConfig& high,
                               const TerminationConfig& term, SkillBank& skills,
                               std::vector<std::unique_ptr<HeroAgent>>& agents,
                               int num_envs)
    : scenario_(scenario),
      high_cfg_(high),
      term_(term),
      skills_(skills),
      agents_(agents),
      world_(scenario.config, num_envs),
      sched_(static_cast<std::size_t>(num_envs)) {
  E_ = num_envs;
  n_ = world_.num_learners();
  HERO_CHECK(static_cast<int>(agents_.size()) == n_);
  const std::size_t slots = static_cast<std::size_t>(E_) * static_cast<std::size_t>(n_);
  episodes_.resize(static_cast<std::size_t>(E_));
  lane_agents_.resize(slots);
  options_.assign(slots, static_cast<int>(Option::kKeepLane));
  started_.assign(static_cast<std::size_t>(E_), 0);
  needs_select_.assign(slots, 0);
  cmds_.assign(slots, sim::TwistCmd{});
  hl_obs_.resize(slots, world_.high_level_obs_dim());
}

void BatchedRollout::begin_lane(std::size_t lane) {
  world_.reset_env(static_cast<int>(lane), sched_.rng(lane));

  BatchedEpisode& ep = episodes_[lane];
  ep.stats = rl::EpisodeStats{};
  ep.switches = 0;
  ep.opp_total = 0;
  ep.opp_correct = 0;
  ep.selections.assign(static_cast<std::size_t>(n_), 0);
  ep.high.resize(static_cast<std::size_t>(n_));
  for (auto& v : ep.high) v.clear();
  ep.opp.resize(static_cast<std::size_t>(n_) *
                static_cast<std::size_t>(std::max(n_ - 1, 0)));
  for (auto& v : ep.opp) v.clear();

  for (int k = 0; k < n_; ++k) {
    LaneAgent& la = lane_agents_[la_index(lane, k)];
    la.exec = OptionExecution{};
    la.has_pending = false;
    la.opp_cache.clear();
    // Every lane explores from the learner's current ε-schedule position —
    // the same round-start convention as the multi-worker runtime, so the
    // trajectory of episode e cannot depend on batch width bookkeeping.
    la.selections = agents_[static_cast<std::size_t>(k)]->high_level().selections();
    ep.selections[static_cast<std::size_t>(k)] = la.selections;
    options_[la_index(lane, k)] = static_cast<int>(Option::kKeepLane);
  }
  started_[lane] = 0;
}

void BatchedRollout::run_round(std::uint64_t root, std::size_t first,
                               std::size_t count, bool observing) {
  OBS_SPAN("runtime/batch_rollout");
  OBS_PHASE("rollout");
  HERO_CHECK(count <= static_cast<std::size_t>(E_));
  sched_.begin_round(root, first, count);
  round_batch_steps_ = 0;
  for (std::size_t lane = 0; lane < count; ++lane) begin_lane(lane);
  while (sched_.live() > 0) step_once(observing);
}

void BatchedRollout::stage_opp_labels(std::size_t lane, int k,
                                      const double* obs_row, bool observing) {
  BatchedEpisode& ep = episodes_[lane];
  LaneAgent& la = lane_agents_[la_index(lane, k)];
  const std::size_t hl_dim = world_.high_level_obs_dim();
  const std::size_t opp_dim =
      static_cast<std::size_t>(std::max(n_ - 1, 0)) * kNumOptions;
  const bool score =
      observing && high_cfg_.use_opponent_model && la.opp_cache.size() == opp_dim;
  std::size_t slot = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == k) continue;
    const int actual = options_[la_index(lane, j)];
    if (score) {
      // Score the block cached at option-selection time, exactly like the
      // serial HeroAgent::observe_opponents scoreboard.
      const double* p = la.opp_cache.data() + slot * kNumOptions;
      const int pred = static_cast<int>(std::max_element(p, p + kNumOptions) - p);
      ++ep.opp_total;
      if (pred == actual) ++ep.opp_correct;
    }
    ep.opp[static_cast<std::size_t>(k) * static_cast<std::size_t>(n_ - 1) + slot]
        .push_back({std::vector<double>(obs_row, obs_row + hl_dim), actual});
    ++slot;
  }
}

void BatchedRollout::finish_lane(std::size_t lane, bool observing) {
  BatchedEpisode& ep = episodes_[lane];
  const std::size_t hl_dim = world_.high_level_obs_dim();
  const int e = static_cast<int>(lane);

  // Terminal observation per agent: feeds the episode's last opponent labels
  // (the serial loop observes after every step, including the last) and the
  // done = true semi-MDP store of HeroAgent::finalize_episode.
  for (int k = 0; k < n_; ++k) {
    const int vi = world_.learners()[static_cast<std::size_t>(k)];
    double* row = hl_obs_.row_ptr(la_index(lane, k));
    world_.high_level_obs_into(e, vi, row);
    stage_opp_labels(lane, k, row, observing);
  }
  for (int k = 0; k < n_; ++k) {
    LaneAgent& la = lane_agents_[la_index(lane, k)];
    if (!la.has_pending) continue;
    const double* row = hl_obs_.row_ptr(la_index(lane, k));
    ep.high[static_cast<std::size_t>(k)].push_back(
        {std::move(la.pend_obs), std::move(la.pend_opp_actual), la.pend_option,
         la.pend_reward, la.pend_discount, std::vector<double>(row, row + hl_dim),
         /*done=*/true});
    la.has_pending = false;
  }

  ep.stats.steps = world_.steps(e);
  ep.stats.collision = world_.had_collision(e);
  ep.stats.success = !ep.stats.collision &&
                     world_.lane(e, scenario_.merger_index) ==
                         scenario_.merger_target_lane;
  double speed = 0.0;
  for (int vi : world_.learners()) speed += world_.mean_speed(e, vi);
  ep.stats.mean_speed = speed / static_cast<double>(n_);
  for (int k = 0; k < n_; ++k) {
    const LaneAgent& la = lane_agents_[la_index(lane, k)];
    ep.selections[static_cast<std::size_t>(k)] =
        la.selections - ep.selections[static_cast<std::size_t>(k)];
  }
  sched_.finish(lane);
}

void BatchedRollout::step_once(bool observing) {
  const std::size_t hl_dim = world_.high_level_obs_dim();
  const std::size_t ll_dim = world_.low_level_obs_dim();
  const std::size_t opp_dim =
      static_cast<std::size_t>(std::max(n_ - 1, 0)) * kNumOptions;
  const std::size_t lanes = sched_.round_size();

  {
    OBS_PHASE("obs_build");
    // (1) High-level observations for every live (lane, agent): one row
    // serves as the previous step's opponent label, this step's
    // termination/selection input, and the pending transition's next_obs.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!sched_.active(lane)) continue;
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        world_.high_level_obs_into(static_cast<int>(lane), vi,
                                   hl_obs_.row_ptr(la_index(lane, k)));
      }
    }

    // (2) Opponent labels for the step just taken (options on the board are
    // still the ones held during it — selection below happens after).
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!sched_.active(lane) || !started_[lane]) continue;
      for (int k = 0; k < n_; ++k) {
        stage_opp_labels(lane, k, hl_obs_.row_ptr(la_index(lane, k)), observing);
      }
    }

    // (3) β_o termination per (lane, agent): finalize the pending semi-MDP
    // transition (next_obs = current row, done = false) and flag for
    // re-selection. Unstarted lanes flag every agent (initial selection).
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!sched_.active(lane)) continue;
      for (int k = 0; k < n_; ++k) {
        const std::size_t idx = la_index(lane, k);
        LaneAgent& la = lane_agents_[idx];
        if (!started_[lane]) {
          needs_select_[idx] = 1;
          continue;
        }
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        const auto st = world_.state(static_cast<int>(lane), vi);
        if (!option_terminated(la.exec, world_.track(), st.y, st.heading,
                               /*world_done=*/false, term_)) {
          needs_select_[idx] = 0;
          continue;
        }
        if (la.has_pending) {
          const double* row = hl_obs_.row_ptr(idx);
          episodes_[lane].high[static_cast<std::size_t>(k)].push_back(
              {std::move(la.pend_obs), std::move(la.pend_opp_actual),
               la.pend_option, la.pend_reward, la.pend_discount,
               std::vector<double>(row, row + hl_dim), /*done=*/false});
          la.has_pending = false;
        }
        ++episodes_[lane].switches;
        needs_select_[idx] = 1;
      }
    }
  }

  // (4) Option selection, agent-major: for agent k, all lanes that need a
  // selection share one opponent-model forward and one actor forward; the
  // ε/categorical draws then come lane-ascending from each lane's own
  // stream. Processing k ascending keeps the one-hot opponent blocks on the
  // serial convention (agents < k already updated this step, agents > k
  // still on their previous option).
  {
  OBS_PHASE("select");
  for (int k = 0; k < n_; ++k) {
    sel_lanes_.clear();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (sched_.active(lane) && needs_select_[la_index(lane, k)] != 0) {
        sel_lanes_.push_back(lane);
      }
    }
    if (sel_lanes_.empty()) continue;
    const std::size_t m = sel_lanes_.size();

    sel_obs_.resize(m, hl_dim);
    for (std::size_t r = 0; r < m; ++r) {
      const double* src = hl_obs_.row_ptr(la_index(sel_lanes_[r], k));
      std::copy(src, src + hl_dim, sel_obs_.row_ptr(r));
    }
    if (opp_dim > 0) {
      if (high_cfg_.use_opponent_model) {
        agents_[static_cast<std::size_t>(k)]->opponents().predict_all_rows(
            sel_obs_, sel_blocks_);
      } else {
        sel_blocks_.resize(m, opp_dim);
        sel_blocks_.fill(1.0 / kNumOptions);
      }
    }
    sel_in_.resize(m, hl_dim + opp_dim);
    for (std::size_t r = 0; r < m; ++r) {
      double* row = sel_in_.row_ptr(r);
      const double* src = sel_obs_.row_ptr(r);
      std::copy(src, src + hl_dim, row);
      for (std::size_t c = 0; c < opp_dim; ++c) row[hl_dim + c] = sel_blocks_(r, c);
    }
    agents_[static_cast<std::size_t>(k)]->high_level().option_probs_rows(sel_in_,
                                                                         sel_probs_);

    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t lane = sel_lanes_[r];
      const std::size_t idx = la_index(lane, k);
      LaneAgent& la = lane_agents_[idx];
      const int vi = world_.learners()[static_cast<std::size_t>(k)];
      ++la.selections;
      const int opt = HighLevelAgent::select_from_probs(
          high_cfg_, sel_probs_.row_ptr(r), la.selections, sched_.rng(lane),
          /*explore=*/true);

      la.exec = OptionExecution{};
      la.exec.option = option_from_index(opt);
      const int cur_lane = world_.lane(static_cast<int>(lane), vi);
      la.exec.target_lane = la.exec.option == Option::kLaneChange
                                ? world_.track().num_lanes() - 1 - cur_lane
                                : cur_lane;
      la.exec.hold_speed = world_.state(static_cast<int>(lane), vi).speed;
      options_[idx] = opt;

      const double* obs_row = hl_obs_.row_ptr(idx);
      la.pend_obs.assign(obs_row, obs_row + hl_dim);
      la.pend_opp_actual.assign(opp_dim, 0.0);
      std::size_t slot = 0;
      for (int j = 0; j < n_; ++j) {
        if (j == k) continue;
        la.pend_opp_actual[slot * kNumOptions +
                           static_cast<std::size_t>(options_[la_index(lane, j)])] =
            1.0;
        ++slot;
      }
      la.pend_option = opt;
      la.pend_reward = 0.0;
      la.pend_discount = 1.0;
      la.has_pending = true;
      if (opp_dim > 0) {
        la.opp_cache.assign(sel_blocks_.row_ptr(r),
                            sel_blocks_.row_ptr(r) + opp_dim);
      }
    }
  }
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (sched_.active(lane)) started_[lane] = 1;
  }
  }  // OBS_PHASE("select")

  // (5) Skill commands. Keep-lane is closed-form; the learned options run
  // option-major so each SAC policy does one batched forward over every lane
  // currently holding it, with the squashing draws routed to the owning
  // lane's stream (act_rows_into).
  {
  OBS_PHASE("skills");
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (!sched_.active(lane)) continue;
    for (int k = 0; k < n_; ++k) {
      LaneAgent& la = lane_agents_[la_index(lane, k)];
      if (la.exec.option == Option::kKeepLane) {
        cmds_[la_index(lane, k)] = {la.exec.hold_speed, 0.0};
      }
      ++la.exec.steps;  // one step_all follows, mirroring the serial act()
    }
  }
  for (int oi = 0; oi < kNumOptions; ++oi) {
    const Option o = option_from_index(oi);
    if (!skills_.has_agent(o)) continue;
    sk_rows_.clear();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!sched_.active(lane)) continue;
      for (int k = 0; k < n_; ++k) {
        if (lane_agents_[la_index(lane, k)].exec.option == o) {
          sk_rows_.push_back({lane, k});
        }
      }
    }
    if (sk_rows_.empty()) continue;
    const std::size_t m = sk_rows_.size();
    sk_obs_.resize(m, ll_dim);
    sk_rngs_.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
      const auto [lane, k] = sk_rows_[r];
      const LaneAgent& la = lane_agents_[la_index(lane, k)];
      const int vi = world_.learners()[static_cast<std::size_t>(k)];
      const int ref_lane = o == Option::kLaneChange
                               ? la.exec.target_lane
                               : world_.lane(static_cast<int>(lane), vi);
      world_.low_level_obs_into(static_cast<int>(lane), vi, ref_lane,
                                sk_obs_.row_ptr(r));
      sk_rngs_[r] = &sched_.rng(lane);
    }
    skills_.agent(o).policy().act_rows_into(sk_obs_, sk_rngs_.data(),
                                            /*deterministic=*/false, sk_act_);
    for (std::size_t r = 0; r < m; ++r) {
      const auto [lane, k] = sk_rows_[r];
      const LaneAgent& la = lane_agents_[la_index(lane, k)];
      const int vi = world_.learners()[static_cast<std::size_t>(k)];
      const auto st = world_.state(static_cast<int>(lane), vi);
      cmds_[la_index(lane, k)] = skills_.to_twist_core(
          la.exec, world_.track(), world_.config().dt, st.y, st.heading,
          sk_act_.row_ptr(r), sk_act_.cols());
    }
  }
  }  // OBS_PHASE("skills")

  // (6) One synchronized world step across every live lane (the sim_step
  // phase is recorded inside step_all).
  world_.step_all(cmds_.data(), sched_.rng_ptrs(), sched_.active_mask(),
                  step_out_);
  ++round_batch_steps_;

  OBS_PHASE("accumulate");
  // (7) Reward accumulation: team mean into the episode stats, per-agent
  // discounted accumulation into the pending semi-MDP transitions.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (!sched_.active(lane)) continue;
    BatchedEpisode& ep = episodes_[lane];
    double sum = 0.0;
    for (int k = 0; k < n_; ++k) {
      const double r =
          step_out_.reward[lane * static_cast<std::size_t>(n_) +
                           static_cast<std::size_t>(k)];
      sum += r;
      LaneAgent& la = lane_agents_[la_index(lane, k)];
      if (la.has_pending) {
        la.pend_reward += la.pend_discount * r;
        la.pend_discount *= high_cfg_.gamma;
      }
    }
    ep.stats.team_reward += sum / static_cast<double>(n_);
    if (step_out_.collision[lane] != 0) ep.stats.collision = true;
  }

  // (8) Retire finished lanes (terminal obs, final labels, done stores).
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (sched_.active(lane) && step_out_.done[lane] != 0) {
      finish_lane(lane, observing);
    }
  }
}

}  // namespace hero::core
