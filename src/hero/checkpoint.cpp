#include "hero/checkpoint.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "hero/hero_trainer.h"
#include "obs/obs.h"

namespace hero::core {

namespace {

std::string dims_string(const std::vector<std::size_t>& dims) {
  std::string out;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += ':';
    out += std::to_string(dims[i]);
  }
  return out;
}

// Minimal JSON string escaping for the values we write (shas, build types,
// shape strings — none of which should ever need it, but a manifest must
// stay parseable regardless).
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

// Finds `"key": ` in `text` and returns the character offset of the value,
// or npos.
std::size_t value_offset(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return pos;
  pos += needle.size();
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n')) ++pos;
  return pos;
}

long long parse_int_field(const std::string& text, const std::string& key,
                          const std::string& dir) {
  const std::size_t pos = value_offset(text, key);
  if (pos == std::string::npos) {
    throw std::runtime_error("checkpoint manifest " + dir +
                             "/checkpoint.json is missing field \"" + key + "\"");
  }
  std::size_t end = pos;
  while (end < text.size() &&
         ((text[end] >= '0' && text[end] <= '9') || text[end] == '-')) {
    ++end;
  }
  if (end == pos) {
    throw std::runtime_error("checkpoint manifest " + dir +
                             "/checkpoint.json: field \"" + key +
                             "\" is not an integer");
  }
  return std::stoll(text.substr(pos, end - pos));
}

std::string parse_string_field(const std::string& text, const std::string& key,
                               const std::string& dir) {
  std::size_t pos = value_offset(text, key);
  if (pos == std::string::npos || pos >= text.size() || text[pos] != '"') {
    throw std::runtime_error("checkpoint manifest " + dir +
                             "/checkpoint.json is missing string field \"" + key +
                             "\"");
  }
  ++pos;
  std::string out;
  while (pos < text.size() && text[pos] != '"') {
    if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
    out += text[pos++];
  }
  return out;
}

}  // namespace

CheckpointManifest manifest_of(HeroTrainer& trainer) {
  CheckpointManifest m;
  const auto run = obs::default_manifest("checkpoint");
  m.git_sha = run.git_sha;
  m.build_type = run.build_type;
  m.learners = trainer.num_agents();
  m.num_options = kNumOptions;
  m.num_lanes = trainer.world().track().num_lanes();
  m.hl_obs_dim = static_cast<long long>(trainer.world().high_level_obs_dim());
  m.ll_obs_dim = static_cast<long long>(trainer.world().low_level_obs_dim());

  for (int i = 0; i < kNumOptions; ++i) {
    const Option o = option_from_index(i);
    if (!trainer.skills().has_agent(o)) continue;
    auto& skill = trainer.skills().agent(o);
    const std::string base = option_name(o);
    m.shapes[base + "_actor"] = dims_string(skill.policy().net().layer_dims());
    m.shapes[base + "_q1"] = dims_string(skill.critic1().layer_dims());
    m.shapes[base + "_q2"] = dims_string(skill.critic2().layer_dims());
  }
  for (int k = 0; k < trainer.num_agents(); ++k) {
    auto& agent = trainer.agent(k);
    const std::string base = "agent" + std::to_string(k);
    m.shapes[base + "_actor"] =
        dims_string(agent.high_level().actor().net().layer_dims());
    m.shapes[base + "_critic"] = dims_string(agent.high_level().critic().layer_dims());
    for (int j = 0; j < agent.opponents().num_opponents(); ++j) {
      m.shapes[base + "_opp" + std::to_string(j)] =
          dims_string(agent.opponents().net(j).layer_dims());
    }
  }

  // Digest over the architecture only (not the build fields): two builds of
  // the same config produce the same digest.
  std::ostringstream canon;
  canon << "v" << m.format_version << " learners=" << m.learners
        << " options=" << m.num_options << " lanes=" << m.num_lanes
        << " hl=" << m.hl_obs_dim << " ll=" << m.ll_obs_dim;
  for (const auto& [name, shape] : m.shapes) canon << " " << name << "=" << shape;
  m.config_digest = obs::config_digest(canon.str());
  return m;
}

std::string manifest_to_json(const CheckpointManifest& m) {
  std::string out = "{\n";
  out += "  \"checkpoint_format\": " + std::to_string(m.format_version) + ",\n";
  out += "  \"git_sha\": \"";
  append_escaped(out, m.git_sha);
  out += "\",\n  \"build_type\": \"";
  append_escaped(out, m.build_type);
  out += "\",\n  \"config_digest\": \"";
  append_escaped(out, m.config_digest);
  out += "\",\n";
  out += "  \"learners\": " + std::to_string(m.learners) + ",\n";
  out += "  \"num_options\": " + std::to_string(m.num_options) + ",\n";
  out += "  \"num_lanes\": " + std::to_string(m.num_lanes) + ",\n";
  out += "  \"hl_obs_dim\": " + std::to_string(m.hl_obs_dim) + ",\n";
  out += "  \"ll_obs_dim\": " + std::to_string(m.ll_obs_dim) + ",\n";
  out += "  \"shapes\": {";
  bool first = true;
  for (const auto& [name, shape] : m.shapes) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": \"";
    append_escaped(out, shape);
    out += "\"";
  }
  out += "\n  }\n}\n";
  return out;
}

bool read_manifest(const std::string& dir, CheckpointManifest* out) {
  const std::string path = dir + "/checkpoint.json";
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  CheckpointManifest m;
  m.format_version = static_cast<int>(parse_int_field(text, "checkpoint_format", dir));
  m.git_sha = parse_string_field(text, "git_sha", dir);
  m.build_type = parse_string_field(text, "build_type", dir);
  m.config_digest = parse_string_field(text, "config_digest", dir);
  m.learners = static_cast<int>(parse_int_field(text, "learners", dir));
  m.num_options = static_cast<int>(parse_int_field(text, "num_options", dir));
  m.num_lanes = static_cast<int>(parse_int_field(text, "num_lanes", dir));
  m.hl_obs_dim = parse_int_field(text, "hl_obs_dim", dir);
  m.ll_obs_dim = parse_int_field(text, "ll_obs_dim", dir);

  std::size_t pos = value_offset(text, "shapes");
  if (pos == std::string::npos || text[pos] != '{') {
    throw std::runtime_error("checkpoint manifest " + path +
                             " is missing the \"shapes\" object");
  }
  const std::size_t close = text.find('}', pos);
  if (close == std::string::npos) {
    throw std::runtime_error("checkpoint manifest " + path +
                             ": unterminated \"shapes\" object");
  }
  std::size_t cur = pos + 1;
  while (true) {
    const std::size_t q0 = text.find('"', cur);
    if (q0 == std::string::npos || q0 > close) break;
    const std::size_t q1 = text.find('"', q0 + 1);
    const std::size_t q2 = text.find('"', q1 + 1);
    const std::size_t q3 = text.find('"', q2 + 1);
    if (q3 == std::string::npos || q3 > close) {
      throw std::runtime_error("checkpoint manifest " + path +
                               ": malformed \"shapes\" entry");
    }
    m.shapes[text.substr(q0 + 1, q1 - q0 - 1)] = text.substr(q2 + 1, q3 - q2 - 1);
    cur = q3 + 1;
  }
  *out = m;
  return true;
}

void write_manifest(const std::string& dir, const CheckpointManifest& m) {
  const std::string path = dir + "/checkpoint.json";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write checkpoint manifest " + path);
  }
  out << manifest_to_json(m);
  if (!out) {
    throw std::runtime_error("failed writing checkpoint manifest " + path);
  }
}

void validate_manifest(const CheckpointManifest& on_disk,
                       const CheckpointManifest& expected,
                       const std::string& dir) {
  std::ostringstream err;
  int problems = 0;
  const auto mismatch = [&](const std::string& what, const std::string& disk,
                            const std::string& want) {
    err << (problems++ ? "; " : "") << what << ": checkpoint has " << disk
        << ", this build expects " << want;
  };

  if (on_disk.format_version != expected.format_version) {
    mismatch("format version", std::to_string(on_disk.format_version),
             std::to_string(expected.format_version));
  }
  if (on_disk.learners != expected.learners) {
    mismatch("learners", std::to_string(on_disk.learners),
             std::to_string(expected.learners));
  }
  if (on_disk.num_options != expected.num_options) {
    mismatch("num_options", std::to_string(on_disk.num_options),
             std::to_string(expected.num_options));
  }
  if (on_disk.num_lanes != expected.num_lanes) {
    mismatch("num_lanes", std::to_string(on_disk.num_lanes),
             std::to_string(expected.num_lanes));
  }
  if (on_disk.hl_obs_dim != expected.hl_obs_dim) {
    mismatch("hl_obs_dim", std::to_string(on_disk.hl_obs_dim),
             std::to_string(expected.hl_obs_dim));
  }
  if (on_disk.ll_obs_dim != expected.ll_obs_dim) {
    mismatch("ll_obs_dim", std::to_string(on_disk.ll_obs_dim),
             std::to_string(expected.ll_obs_dim));
  }
  // Shapes: every component this build will load must exist on disk with the
  // same architecture. Extra on-disk components (e.g. a bigger run's agents)
  // already show up as a learner-count mismatch above.
  for (const auto& [name, shape] : expected.shapes) {
    auto it = on_disk.shapes.find(name);
    if (it == on_disk.shapes.end()) {
      err << (problems++ ? "; " : "") << "component \"" << name
          << "\" missing from checkpoint";
    } else if (it->second != shape) {
      mismatch("shape of \"" + name + "\"", it->second, shape);
    }
  }
  if (problems > 0) {
    throw std::runtime_error("checkpoint " + dir +
                             " is incompatible with this configuration (" +
                             err.str() + ")");
  }
}

CheckpointManifest load_checkpoint(HeroTrainer& trainer, const std::string& dir,
                                   bool* legacy) {
  const CheckpointManifest expected = manifest_of(trainer);
  CheckpointManifest on_disk;
  const bool has_manifest = read_manifest(dir, &on_disk);
  if (legacy != nullptr) *legacy = !has_manifest;
  if (has_manifest) validate_manifest(on_disk, expected, dir);
  trainer.load(dir);
  return has_manifest ? on_disk : expected;
}

namespace {

// "34:32:32:4" → {34, 32, 32, 4}; throws on anything else.
std::vector<std::size_t> parse_dims(const std::string& name,
                                    const std::string& s) {
  std::vector<std::size_t> dims;
  std::size_t value = 0;
  bool in_number = false;
  for (char ch : s) {
    if (ch >= '0' && ch <= '9') {
      value = value * 10 + static_cast<std::size_t>(ch - '0');
      in_number = true;
    } else if (ch == ':' && in_number) {
      dims.push_back(value);
      value = 0;
      in_number = false;
    } else {
      throw std::runtime_error("checkpoint manifest: malformed shape for \"" +
                               name + "\": \"" + s + "\"");
    }
  }
  if (in_number) dims.push_back(value);
  if (dims.size() < 2) {
    throw std::runtime_error("checkpoint manifest: malformed shape for \"" +
                             name + "\": \"" + s + "\"");
  }
  return dims;
}

// The hidden widths are every layer but the first (input) and last (output).
std::vector<std::size_t> hidden_of(const std::string& name,
                                   const std::string& shape) {
  const auto dims = parse_dims(name, shape);
  return {dims.begin() + 1, dims.end() - 1};
}

}  // namespace

void apply_manifest_geometry(const CheckpointManifest& m, HeroConfig* cfg) {
  for (const auto& [name, shape] : m.shapes) {
    if (name == "agent0_actor") {
      cfg->high.hidden = hidden_of(name, shape);
    } else if (name == "agent0_opp0") {
      cfg->opponent.hidden = hidden_of(name, shape);
    } else if (name.rfind("agent", 0) != 0 &&
               name.size() > 6 &&
               name.compare(name.size() - 6, 6, "_actor") == 0) {
      // A skill actor (e.g. "accelerate_actor") — all skills share one width.
      cfg->skill.sac.hidden = hidden_of(name, shape);
    }
  }
}

}  // namespace hero::core
