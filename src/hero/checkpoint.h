// Versioned checkpoint manifest (docs/SERVING.md, "Checkpoints").
//
// HeroTrainer::save writes `checkpoint.json` next to the tensor files: the
// manifest format version, the producing build (git sha, build type), a
// digest of the architecture, and the exact network shapes (per-component
// Mlp layer widths). HeroTrainer::load — and therefore hero_eval and
// hero_serve, which share the load path below — validates the manifest
// against the loading trainer's own architecture and rejects version or
// shape mismatches with an error that names both sides, instead of letting
// nn::load_params fail tensor-by-tensor (or worse, silently misread a
// same-sized file).
//
// Manifest content is fully deterministic (no timestamps, no wall-clock
// fields): the seed-determinism gate compares checkpoint directories
// bitwise (tools/check_determinism.sh).
//
// Checkpoints written before this format carry no manifest; they load with
// a warning (shape errors then surface from the tensor loader as before).
#pragma once

#include <map>
#include <string>

namespace hero::core {

class HeroTrainer;
struct HeroConfig;

// Bumped whenever the on-disk layout changes incompatibly.
inline constexpr int kCheckpointFormatVersion = 1;

struct CheckpointManifest {
  int format_version = kCheckpointFormatVersion;
  std::string git_sha;        // producing build (informational)
  std::string build_type;     // informational
  std::string config_digest;  // FNV-1a over the canonical shape string
  int learners = 0;
  int num_options = 0;
  int num_lanes = 0;
  long long hl_obs_dim = 0;
  long long ll_obs_dim = 0;
  // Component name → Mlp layer widths as "in:h1:...:out", e.g.
  // "slow_down_actor" → "8:32:32:4". Covers every tensor file the trainer
  // writes (skills, high-level actors/critics, opponent predictors).
  std::map<std::string, std::string> shapes;
};

// The manifest describing `trainer`'s in-memory architecture.
CheckpointManifest manifest_of(HeroTrainer& trainer);

// Canonical JSON (sorted keys, fixed field order) — what save() writes.
std::string manifest_to_json(const CheckpointManifest& m);

// Reads dir/checkpoint.json. Returns false when the file is absent
// (legacy checkpoint); throws std::runtime_error on unparseable content.
bool read_manifest(const std::string& dir, CheckpointManifest* out);

// Writes dir/checkpoint.json (the directory must exist).
void write_manifest(const std::string& dir, const CheckpointManifest& m);

// Throws std::runtime_error naming every mismatch (format version, learner
// count, obs dims, per-component shapes) between a manifest read from disk
// and the expected one; returns normally when compatible.
void validate_manifest(const CheckpointManifest& on_disk,
                       const CheckpointManifest& expected,
                       const std::string& dir);

// The shared tool-side load path: validates the manifest (when present) and
// loads the tensors into `trainer`. Returns the manifest read from disk, or
// the trainer's own manifest for legacy directories (sets *legacy = true so
// the tool can print a warning — src/ itself stays silent per lint R3).
// Throws std::runtime_error with a tool-quality message on any failure —
// hero_eval and hero_serve both funnel through here so a bad checkpoint
// fails the same way everywhere.
CheckpointManifest load_checkpoint(HeroTrainer& trainer, const std::string& dir,
                                   bool* legacy = nullptr);

// Configures `cfg`'s network widths (high-level actor, opponent predictors,
// skill SAC nets) from the shapes recorded in the manifest, making the
// checkpoint self-describing: hero_serve / hero_eval / hero_loadgen adapt to
// whatever hidden sizes the checkpoint was trained with (hero_train
// --hidden) without geometry flags. Fields whose shapes are absent keep
// their current values. Throws std::runtime_error on a malformed shape
// string.
void apply_manifest_geometry(const CheckpointManifest& m, HeroConfig* cfg);

}  // namespace hero::core
