// Batch-first stage-2 rollout: E episodes advance in lockstep through one
// BatchLaneWorld, and every per-step network evaluation — opponent-model
// prediction, high-level actor softmax, skill-policy action — runs as a
// single batch=E forward instead of E single-row dispatches
// (docs/BATCHING.md).
//
// Each lane (environment slot) replays the serial episode logic exactly:
// the same β_o termination tests, the same semi-MDP accumulation, the same
// per-stream RNG draw sets. Draws come from the counter-based episode
// stream stream_rng(root, episode), so a run is bitwise reproducible for a
// fixed (seed, batch_envs) pair. Collected experience is staged per lane
// and merged by the trainer in lane order — which IS canonical episode
// order, so no reordering step exists to get wrong.
//
// The rollout only *reads* the learner's networks (actor, opponent
// predictors, frozen skills); all replay buffers are filled at merge time
// by HeroTrainer::train_batched. Single-threaded by design: batching, not
// threading, is the throughput lever here (docs/PARALLELISM.md compares).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hero/hero_agent.h"
#include "rl/evaluation.h"
#include "runtime/batch_rollout.h"
#include "sim/batch_lane_world.h"
#include "sim/scenario.h"

namespace hero::core {

// One finished episode's staged experience, in the exact shapes the
// trainer's merge consumes (mirrors HeroTrainer::CollectedEpisode, but the
// transitions ride along instead of living in a shard).
struct BatchedEpisode {
  rl::EpisodeStats stats;
  long switches = 0;
  long opp_total = 0;
  long opp_correct = 0;
  // Per agent: Δ ε-schedule position over this episode.
  std::vector<long> selections;
  // Per agent: semi-MDP transitions in store order (FIFO).
  std::vector<std::vector<OptionTransition>> high;
  // Per (agent k, opponent slot j) at index k·(n−1)+j: labels in step order.
  std::vector<std::vector<OpponentModel::Sample>> opp;
};

class BatchedRollout {
 public:
  // Holds references to the learner's skill bank and agents; both must
  // outlive the rollout (HeroTrainer owns all three).
  BatchedRollout(const sim::Scenario& scenario, const HighLevelConfig& high,
                 const TerminationConfig& term, SkillBank& skills,
                 std::vector<std::unique_ptr<HeroAgent>>& agents, int num_envs);

  int num_envs() const { return E_; }

  // Runs episodes [first, first + count) to completion (count ≤ num_envs).
  // `observing` enables the opponent-prediction scoreboard (metrics or
  // telemetry on). Results are readable via episode(i) until the next round.
  void run_round(std::uint64_t root, std::size_t first, std::size_t count,
                 bool observing);

  // Episode `first + i` of the last round. Mutable so the merge can move the
  // staged transitions out instead of copying.
  BatchedEpisode& episode(std::size_t i) { return episodes_[i]; }

  // Synchronized batch steps executed by the last round — the trainer's
  // gradient-update clock: one batch step advances every live lane, so the
  // serial cadence of one update round per `update_every` *steps* becomes
  // one per `update_every` *batch steps* (standard vectorized-RL semantics;
  // at E lanes that is ~E× fewer gradient rounds per environment step).
  long round_batch_steps() const { return round_batch_steps_; }

  sim::BatchLaneWorld& world() { return world_; }

 private:
  // Per-(lane, agent) episode bookkeeping — the batched analogue of
  // HeroAgent's exec_/pending_/opp_cache_ trio.
  struct LaneAgent {
    OptionExecution exec;
    bool has_pending = false;
    std::vector<double> pend_obs;
    std::vector<double> pend_opp_actual;
    int pend_option = 0;
    double pend_reward = 0.0;
    double pend_discount = 1.0;
    long selections = 0;             // local ε-schedule position
    std::vector<double> opp_cache;   // predicted block at last selection
  };

  std::size_t la_index(std::size_t lane, int k) const {
    return lane * static_cast<std::size_t>(n_) + static_cast<std::size_t>(k);
  }

  void begin_lane(std::size_t lane);
  void step_once(bool observing);
  // Stages the opponent labels implied by the obs row of (lane, k) and the
  // options currently on the board; scores the cached predictions.
  void stage_opp_labels(std::size_t lane, int k, const double* obs_row,
                        bool observing);
  void finish_lane(std::size_t lane, bool observing);

  sim::Scenario scenario_;
  HighLevelConfig high_cfg_;
  TerminationConfig term_;
  SkillBank& skills_;
  std::vector<std::unique_ptr<HeroAgent>>& agents_;
  int n_ = 0;  // learners per env
  int E_ = 0;

  sim::BatchLaneWorld world_;
  runtime::BatchRoundScheduler sched_;
  long round_batch_steps_ = 0;

  std::vector<BatchedEpisode> episodes_;   // lane-indexed
  std::vector<LaneAgent> lane_agents_;     // lane-major (la_index)
  std::vector<int> options_;               // lane-major current options
  std::vector<std::uint8_t> started_;      // per lane: initial selection done
  std::vector<std::uint8_t> needs_select_; // lane-major, per batch step
  std::vector<sim::TwistCmd> cmds_;        // lane-major learner commands
  sim::BatchStepResult step_out_;

  // Batched-forward staging (resized in place, reused across steps).
  nn::Matrix hl_obs_;                      // (E·n) × high_level_obs_dim
  std::vector<std::size_t> sel_lanes_;     // lanes selecting for one agent
  nn::Matrix sel_obs_, sel_blocks_, sel_in_, sel_probs_;
  std::vector<std::pair<std::size_t, int>> sk_rows_;  // (lane, k) per option
  nn::Matrix sk_obs_, sk_act_;
  std::vector<Rng*> sk_rngs_;
};

}  // namespace hero::core
