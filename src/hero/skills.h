// The low-level skill bank: one SAC policy per learned option (slow down,
// accelerate, lane change — keep-lane holds the current speed, per paper
// Sec. IV-B), each trained in a single-vehicle world against its intrinsic
// reward (stage 1 of HERO's two-stage training, paper Fig. 2a / Sec. V-C).
//
// The lane-change skill's angular action is a steering-rate magnitude; a
// fixed kinematic steering law resolves its sign/profile toward the target
// lane (the paper's asymmetric positive angular range 0.12:0.25 implies the
// same arrangement — the skill chooses how fast and how aggressively, the
// steering column geometry decides the direction). See DESIGN.md §5.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "algos/sac.h"
#include "hero/options.h"
#include "runtime/thread_pool.h"

namespace hero::core {

struct SkillConfig {
  algos::SacConfig sac;
  TerminationConfig termination;
  IntrinsicRewardConfig reward;
  double steer_gain = 2.5;        // lane-change: θ_des = gain · lateral error
  double max_change_heading = 0.6;  // |θ_des| clamp during a lane change
  int train_episode_steps = 30;   // stage-1 episode length for in-lane skills
};

class SkillBank {
 public:
  SkillBank(std::size_t obs_dim, const SkillConfig& cfg, Rng& rng);

  // Low-level observation for the given execution (reference lane is the
  // lane-change target during a change, else the current lane).
  std::vector<double> skill_obs(const OptionExecution& exec,
                                const sim::LaneWorld& world, int vehicle) const;

  // Raw policy action for the option (empty for keep-lane).
  std::vector<double> policy_action(Option o, const std::vector<double>& obs,
                                    Rng& rng, bool deterministic);

  // Maps (execution, policy action) to the twist command actually sent.
  sim::TwistCmd to_twist(const OptionExecution& exec, const sim::LaneWorld& world,
                         int vehicle, const std::vector<double>& action) const;

  // The pure steering-law core over scalar ego state — shared with the
  // batched rollout, which reads (y, heading) from the SoA world. to_twist
  // delegates here, so batched and serial commands are identical.
  sim::TwistCmd to_twist_core(const OptionExecution& exec, const sim::Track& track,
                              double dt, double y, double heading,
                              const double* action, std::size_t action_n) const;

  // Convenience: obs → action → twist in one call (deployment path).
  sim::TwistCmd execute(const OptionExecution& exec, const sim::LaneWorld& world,
                        int vehicle, Rng& rng, bool deterministic);

  bool has_agent(Option o) const { return o != Option::kKeepLane; }
  algos::SacAgent& agent(Option o);

  // --- stage-1 training ---
  // Trains one skill in its single-vehicle world; returns per-episode
  // intrinsic-reward sums (the Fig. 8 curves). `hook(ep, reward)` optional.
  std::vector<double> train_skill(Option o, sim::LaneWorld& world, int episodes,
                                  Rng& rng,
                                  const std::function<void(int, double)>& hook = {});

  // Parallel stage 1 (paper Sec. V-C: "we create parallel training
  // environments with different intrinsic reward functions"): one pool task
  // per learned skill, each with its own environment and RNG stream (derived
  // deterministically from `seed`, independent of pool size or scheduling).
  // Skills share no mutable state, so the tasks are independent; the
  // optional hook is serialized internally and receives (option, episode,
  // reward). Returns the same curves as running train_skill per option.
  std::map<Option, std::vector<double>> train_all_parallel(
      int episodes_per_skill, std::uint64_t seed, runtime::ThreadPool& pool,
      const std::function<void(Option, int, double)>& hook = {});

  // Copies the act-path parameters (SAC policy networks) from `src` into
  // this bank — how rollout replicas pick up the learner's frozen skills
  // (critics/optimizers are learner-only state).
  void sync_policies_from(SkillBank& src);

  // Checkpointing of all learned skills (directory of herockpt files).
  void save(const std::string& dir) const;
  void load(const std::string& dir);

  const SkillConfig& config() const { return cfg_; }

 private:
  SkillConfig cfg_;
  std::array<std::unique_ptr<algos::SacAgent>, kNumOptions> agents_;
};

}  // namespace hero::core
