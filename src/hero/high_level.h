// Decentralized high-level actor–critic over options with opponent
// conditioning (paper Sec. III-C).
//
//   critic  Q_h^i(s_h, o^i, o^{-i})  — input [s_h | onehot(o^i) | opp block]
//   actor   π_h^i(o^i | s_h, ô^{-i}) — input [s_h | opp block]
//
// The opponent block is a concatenation of per-opponent option
// distributions: the *actual* (one-hot) options during critic regression,
// and the opponent model's *predicted* distributions in the TD-target and
// the actor input — the paper feeds distribution values rather than
// samples. Transitions are semi-MDP: each covers the c steps an option ran,
// with discounted accumulated reward and a γ^c bootstrap.
#pragma once

#include <memory>
#include <vector>

#include "hero/opponent_model.h"
#include "nn/policy_heads.h"
#include "rl/replay_buffer.h"

namespace hero::core {

// TD-target bootstrap for the option-value function.
//  kMax       — SMDP Q-learning: y = R + γ^c·max_o' Q'(s', o', ô'). Off-policy
//               optimism lets the value of a manoeuvre propagate even while
//               the current actor still avoids it (the paper describes the
//               high-level critic as Q-learning stabilized by the opponent
//               model).
//  kExpected  — expected SARSA under the current actor: more conservative,
//               kept for ablation.
enum class Bootstrap { kMax, kExpected };

struct HighLevelConfig {
  double gamma = 0.95;
  double lr = 0.002;
  double tau = 0.01;
  double grad_clip = 10.0;
  double entropy_coef = 0.02;
  Bootstrap bootstrap = Bootstrap::kMax;
  std::size_t batch = 64;
  std::size_t buffer_capacity = 50000;
  std::size_t warmup_transitions = 200;
  std::vector<std::size_t> hidden = {32, 32};
  bool use_opponent_model = true;  // ablation: uniform prior when false
  // ε-greedy over options on top of categorical sampling.
  double eps_start = 0.5;
  double eps_end = 0.02;
  long eps_decay_selections = 6000;
};

// One semi-MDP transition of agent i.
struct OptionTransition {
  std::vector<double> obs;         // s_h at option start
  std::vector<double> opp_actual;  // others' options at start (one-hot block)
  int option;
  double reward;      // Σ_k γ^k r_{t+k} accumulated while the option ran
  double gamma_pow;   // γ^c
  std::vector<double> next_obs;
  bool done;
};

struct HighLevelUpdateStats {
  double critic_loss = 0.0;
  double actor_entropy = 0.0;
  double critic_grad_norm = 0.0;  // pre-clip global norms (telemetry)
  double actor_grad_norm = 0.0;
  bool updated = false;
};

class HighLevelAgent {
 public:
  HighLevelAgent(std::size_t obs_dim, int num_opponents, const HighLevelConfig& cfg,
                 Rng& rng);

  // Option selection given the opponent block (predicted distributions, or
  // uniform under the ablation). `explore` enables sampling + ε-greedy.
  int select_option(const std::vector<double>& obs,
                    const std::vector<double>& opp_block, Rng& rng, bool explore);

  // Current policy distribution (used by peers' opponent-model analysis and
  // by tests).
  std::vector<double> option_probs(const std::vector<double>& obs,
                                   const std::vector<double>& opp_block);

  // Batched actor evaluation: row b of `in` is [s_h | opp block]; writes the
  // row-wise softmax policy into `probs` (batched rollout path).
  void option_probs_rows(const nn::Matrix& in, nn::Matrix& probs);

  // The ε-greedy-plus-categorical selection draw from a precomputed policy
  // row of kNumOptions probabilities. `selection_count` is the ε-schedule
  // position *including* this selection. select_option delegates here, so a
  // batched caller that evaluates probabilities as one batch=E forward and
  // then draws per-stream consumes exactly the serial per-stream draws.
  static int select_from_probs(const HighLevelConfig& cfg, const double* probs,
                               long selection_count, Rng& rng, bool explore);

  void store(OptionTransition t) { buffer_.add(std::move(t)); }
  std::size_t buffered() const { return buffer_.size(); }
  const rl::ReplayBuffer<OptionTransition>& buffer() const { return buffer_; }
  // Drops buffered transitions (worker replicas stage their collected
  // transitions to the learner after every episode, then reset).
  void clear_buffer() { buffer_.clear(); }

  // One actor+critic gradient step; TD-targets query `opponents` on the
  // stored next observations (always the latest model, per the paper).
  HighLevelUpdateStats update(OpponentModel& opponents, Rng& rng);

  nn::Mlp& critic() { return critic_; }
  nn::CategoricalPolicy& actor() { return actor_; }
  long selections() const { return selections_; }
  // Overwrites the ε-schedule position — the parallel runtime keeps worker
  // replicas on the learner's schedule (docs/PARALLELISM.md §sync).
  void set_selections(long n) { selections_ = n; }

 private:
  // Writes [obs | onehot(option) | opp_block] into a preallocated row.
  void critic_input_into(const std::vector<double>& obs, int option,
                         const double* opp_block, double* row) const;

  HighLevelConfig cfg_;
  std::size_t obs_dim_;
  std::size_t opp_dim_;

  nn::CategoricalPolicy actor_;
  nn::Mlp critic_, critic_target_;
  std::unique_ptr<nn::Adam> actor_opt_, critic_opt_;
  rl::ReplayBuffer<OptionTransition> buffer_;
  long selections_ = 0;

  // Update scratch, reused across update() calls (resized in place).
  nn::Matrix actor_in_, q_in_, cin_, target_m_, closs_grad_;
  nn::Matrix probs_, logp_, dlogits_, blocks_, obs_rows_;
  std::vector<double> targets_;
};

}  // namespace hero::core
