#include "hero/high_level.h"

#include <algorithm>

#include "nn/losses.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "rl/exploration.h"

namespace hero::core {

HighLevelAgent::HighLevelAgent(std::size_t obs_dim, int num_opponents,
                               const HighLevelConfig& cfg, Rng& rng)
    : cfg_(cfg),
      obs_dim_(obs_dim),
      opp_dim_(static_cast<std::size_t>(num_opponents) * kNumOptions),
      actor_(obs_dim + opp_dim_, cfg.hidden, kNumOptions, rng),
      critic_(obs_dim + kNumOptions + opp_dim_, cfg.hidden, 1, rng),
      critic_target_(critic_),
      buffer_(cfg.buffer_capacity) {
  actor_opt_ = std::make_unique<nn::Adam>(actor_.net().params(), cfg_.lr);
  critic_opt_ = std::make_unique<nn::Adam>(critic_.params(), cfg_.lr);
}

void HighLevelAgent::critic_input_into(const std::vector<double>& obs, int option,
                                       const double* opp_block, double* row) const {
  HERO_CHECK(obs.size() == obs_dim_);
  std::size_t c = 0;
  for (double v : obs) row[c++] = v;
  for (int a = 0; a < kNumOptions; ++a) row[c++] = (a == option) ? 1.0 : 0.0;
  for (std::size_t k = 0; k < opp_dim_; ++k) row[c++] = opp_block[k];
}

std::vector<double> HighLevelAgent::option_probs(
    const std::vector<double>& obs, const std::vector<double>& opp_block) {
  std::vector<double> in = obs;
  in.insert(in.end(), opp_block.begin(), opp_block.end());
  return actor_.probs1(in);
}

void HighLevelAgent::option_probs_rows(const nn::Matrix& in, nn::Matrix& probs) {
  HERO_CHECK(in.cols() == obs_dim_ + opp_dim_);
  nn::softmax_into(actor_.net().forward(in), probs);
}

int HighLevelAgent::select_from_probs(const HighLevelConfig& cfg,
                                      const double* probs, long selection_count,
                                      Rng& rng, bool explore) {
  if (explore) {
    const double eps = rl::LinearSchedule(cfg.eps_start, cfg.eps_end,
                                          cfg.eps_decay_selections)
                           .value(selection_count);
    if (rng.chance(eps)) return static_cast<int>(rng.index(kNumOptions));
    return static_cast<int>(rng.categorical(probs, kNumOptions));
  }
  int best = 0;
  for (int o = 1; o < kNumOptions; ++o) {
    if (probs[o] > probs[best]) best = o;
  }
  return best;
}

int HighLevelAgent::select_option(const std::vector<double>& obs,
                                  const std::vector<double>& opp_block, Rng& rng,
                                  bool explore) {
  ++selections_;
  // option_probs is draw-free, so evaluating it before the ε draw leaves the
  // RNG stream identical to drawing ε first (the batched path precomputes
  // probabilities for a whole round the same way).
  auto p = option_probs(obs, opp_block);
  return select_from_probs(cfg_, p.data(), selections_, rng, explore);
}

HighLevelUpdateStats HighLevelAgent::update(OpponentModel& opponents, Rng& rng) {
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_transitions))) return {};
  HighLevelUpdateStats stats;
  stats.updated = true;

  const auto batch = [&] {
    OBS_PHASE("replay");
    return buffer_.sample(cfg_.batch, rng);
  }();
  const std::size_t B = batch.size();

  // Fills blocks_ (B × opp_dim) with the opponent blocks for one batch-wide
  // set of observations: a single batched forward per opponent network
  // (identical values to the old per-row predict_all_into loop — see
  // OpponentBatchEquivalence in tests/test_hero_learning.cpp — at a fraction
  // of the dispatch cost). Uniform prior under the ablation.
  auto fill_blocks = [&](auto&& obs_of) {
    blocks_.resize(B, std::max<std::size_t>(opp_dim_, 1));
    if (!cfg_.use_opponent_model || opp_dim_ == 0) {
      blocks_.fill(1.0 / kNumOptions);
      return;
    }
    obs_rows_.resize(B, obs_dim_);
    for (std::size_t b = 0; b < B; ++b) {
      const std::vector<double>& obs = obs_of(b);
      std::copy(obs.begin(), obs.end(), obs_rows_.row_ptr(b));
    }
    opponents.predict_all_rows(obs_rows_, blocks_);
  };

  const std::size_t cin_dim = obs_dim_ + kNumOptions + opp_dim_;

  // ----- critic TD target -----
  //   kMax:      y = R + γ^c·max_o' Q'(s', o', ô')
  //   kExpected: y = R + γ^c·Σ_o' π(o'|s', ô') Q'(s', o', ô')
  {
  OBS_SPAN("stage2/update/critic");
  targets_.resize(B);
  {
    // Assemble per-sample next-state actor inputs and all 4 next-Q inputs.
    fill_blocks([&](std::size_t b) -> const std::vector<double>& {
      return batch[b]->next_obs;
    });
    actor_in_.resize(B, obs_dim_ + opp_dim_);
    q_in_.resize(B * kNumOptions, cin_dim);
    for (std::size_t b = 0; b < B; ++b) {
      double* arow = actor_in_.row_ptr(b);
      std::copy(batch[b]->next_obs.begin(), batch[b]->next_obs.end(), arow);
      const double* block = blocks_.row_ptr(b);
      for (std::size_t k = 0; k < opp_dim_; ++k) arow[obs_dim_ + k] = block[k];
      for (int o = 0; o < kNumOptions; ++o) {
        critic_input_into(batch[b]->next_obs, o, block,
                          q_in_.row_ptr(b * kNumOptions + static_cast<std::size_t>(o)));
      }
    }
    nn::softmax_into(actor_.net().forward(actor_in_), probs_);
    const nn::Matrix& qnext = critic_target_.forward(q_in_);
    for (std::size_t b = 0; b < B; ++b) {
      double v;
      if (cfg_.bootstrap == Bootstrap::kMax) {
        v = qnext(b * kNumOptions, 0);
        for (int o = 1; o < kNumOptions; ++o) {
          v = std::max(v, qnext(b * kNumOptions + static_cast<std::size_t>(o), 0));
        }
      } else {
        v = 0.0;
        for (int o = 0; o < kNumOptions; ++o) {
          v += probs_(b, static_cast<std::size_t>(o)) *
               qnext(b * kNumOptions + static_cast<std::size_t>(o), 0);
        }
      }
      targets_[b] =
          batch[b]->reward + (batch[b]->done ? 0.0 : batch[b]->gamma_pow * v);
    }
  }

  cin_.resize(B, cin_dim);
  for (std::size_t b = 0; b < B; ++b) {
    critic_input_into(batch[b]->obs, batch[b]->option, batch[b]->opp_actual.data(),
                      cin_.row_ptr(b));
  }
  const nn::Matrix& pred = critic_.forward(cin_);
  target_m_.resize(B, 1);
  for (std::size_t b = 0; b < B; ++b) target_m_(b, 0) = targets_[b];
  HERO_DCHECK_FINITE(target_m_, "HighLevelAgent::update critic TD target");
  stats.critic_loss = nn::mse_loss_into(pred, target_m_, closs_grad_);
  critic_.zero_grad();
  critic_.backward(closs_grad_);
  stats.critic_grad_norm = critic_.clip_grad_norm(cfg_.grad_clip);
  critic_opt_->step();
  }

  // ----- actor: ∇logπ(o|s, ô)·A with A = Q(s,o,·) − Σ_o π Q, plus entropy --
  {
    OBS_SPAN("stage2/update/actor");
    fill_blocks([&](std::size_t b) -> const std::vector<double>& {
      return batch[b]->obs;
    });
    actor_in_.resize(B, obs_dim_ + opp_dim_);
    q_in_.resize(B * kNumOptions, cin_dim);
    for (std::size_t b = 0; b < B; ++b) {
      double* arow = actor_in_.row_ptr(b);
      std::copy(batch[b]->obs.begin(), batch[b]->obs.end(), arow);
      const double* block = blocks_.row_ptr(b);
      for (std::size_t k = 0; k < opp_dim_; ++k) arow[obs_dim_ + k] = block[k];
      for (int o = 0; o < kNumOptions; ++o) {
        // Q evaluated with the *actual* peer options from the buffer.
        critic_input_into(batch[b]->obs, o, batch[b]->opp_actual.data(),
                          q_in_.row_ptr(b * kNumOptions + static_cast<std::size_t>(o)));
      }
    }
    const nn::Matrix& q_all = critic_.forward(q_in_);
    const nn::Matrix& logits = actor_.net().forward(actor_in_);
    nn::softmax_into(logits, probs_);
    nn::log_softmax_into(logits, logp_);

    const double inv_b = 1.0 / static_cast<double>(B);
    dlogits_.resize(B, kNumOptions);
    dlogits_.fill(0.0);
    double mean_entropy = 0.0;
    for (std::size_t b = 0; b < B; ++b) {
      double baseline = 0.0;
      for (int o = 0; o < kNumOptions; ++o) {
        baseline += probs_(b, static_cast<std::size_t>(o)) *
                    q_all(b * kNumOptions + static_cast<std::size_t>(o), 0);
      }
      const std::size_t taken = static_cast<std::size_t>(batch[b]->option);
      const double adv = q_all(b * kNumOptions + taken, 0) - baseline;
      for (int o = 0; o < kNumOptions; ++o) {
        dlogits_(b, static_cast<std::size_t>(o)) +=
            adv * probs_(b, static_cast<std::size_t>(o)) * inv_b;
      }
      dlogits_(b, taken) -= adv * inv_b;

      double h = 0.0;
      for (int o = 0; o < kNumOptions; ++o) {
        const std::size_t c = static_cast<std::size_t>(o);
        h -= probs_(b, c) * logp_(b, c);
      }
      mean_entropy += h * inv_b;
      for (int o = 0; o < kNumOptions; ++o) {
        const std::size_t c = static_cast<std::size_t>(o);
        dlogits_(b, c) += cfg_.entropy_coef * probs_(b, c) * (logp_(b, c) + h) * inv_b;
      }
    }
    stats.actor_entropy = mean_entropy;
    HERO_DCHECK_FINITE(dlogits_, "HighLevelAgent::update actor logit gradient");
    actor_.net().zero_grad();
    actor_.net().backward(dlogits_);
    stats.actor_grad_norm = actor_.net().clip_grad_norm(cfg_.grad_clip);
    actor_opt_->step();
  }

  critic_target_.soft_update_from(critic_, cfg_.tau);
  return stats;
}

}  // namespace hero::core
