#include "hero/high_level.h"

#include <algorithm>

#include "nn/losses.h"
#include "rl/exploration.h"

namespace hero::core {

HighLevelAgent::HighLevelAgent(std::size_t obs_dim, int num_opponents,
                               const HighLevelConfig& cfg, Rng& rng)
    : cfg_(cfg),
      obs_dim_(obs_dim),
      opp_dim_(static_cast<std::size_t>(num_opponents) * kNumOptions),
      actor_(obs_dim + opp_dim_, cfg.hidden, kNumOptions, rng),
      critic_(obs_dim + kNumOptions + opp_dim_, cfg.hidden, 1, rng),
      critic_target_(critic_),
      buffer_(cfg.buffer_capacity) {
  actor_opt_ = std::make_unique<nn::Adam>(actor_.net().params(), cfg_.lr);
  critic_opt_ = std::make_unique<nn::Adam>(critic_.params(), cfg_.lr);
}

std::vector<double> HighLevelAgent::critic_input(
    const std::vector<double>& obs, int option,
    const std::vector<double>& opp_block) const {
  HERO_CHECK(obs.size() == obs_dim_ && opp_block.size() == opp_dim_);
  std::vector<double> in = obs;
  for (int a = 0; a < kNumOptions; ++a) in.push_back(a == option ? 1.0 : 0.0);
  in.insert(in.end(), opp_block.begin(), opp_block.end());
  return in;
}

std::vector<double> HighLevelAgent::option_probs(
    const std::vector<double>& obs, const std::vector<double>& opp_block) {
  std::vector<double> in = obs;
  in.insert(in.end(), opp_block.begin(), opp_block.end());
  return actor_.probs1(in);
}

int HighLevelAgent::select_option(const std::vector<double>& obs,
                                  const std::vector<double>& opp_block, Rng& rng,
                                  bool explore) {
  ++selections_;
  if (explore) {
    const double eps = rl::LinearSchedule(cfg_.eps_start, cfg_.eps_end,
                                          cfg_.eps_decay_selections)
                           .value(selections_);
    if (rng.chance(eps)) return static_cast<int>(rng.index(kNumOptions));
  }
  auto p = option_probs(obs, opp_block);
  if (!explore) {
    return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
  }
  return static_cast<int>(rng.categorical(p));
}

HighLevelUpdateStats HighLevelAgent::update(OpponentModel& opponents, Rng& rng) {
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_transitions))) return {};
  HighLevelUpdateStats stats;
  stats.updated = true;

  auto batch = buffer_.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();

  auto opp_block_for = [&](const std::vector<double>& obs) {
    if (!cfg_.use_opponent_model || opp_dim_ == 0) {
      return std::vector<double>(opp_dim_, 1.0 / kNumOptions);
    }
    return opponents.predict_all(obs);
  };

  // ----- critic TD target -----
  //   kMax:      y = R + γ^c·max_o' Q'(s', o', ô')
  //   kExpected: y = R + γ^c·Σ_o' π(o'|s', ô') Q'(s', o', ô')
  std::vector<double> targets(B);
  {
    // Assemble per-sample next-state actor inputs and all 4 next-Q inputs.
    std::vector<std::vector<double>> actor_rows;
    std::vector<std::vector<double>> q_rows;  // B × kNumOptions rows
    actor_rows.reserve(B);
    q_rows.reserve(B * kNumOptions);
    std::vector<std::vector<double>> next_blocks(B);
    for (std::size_t b = 0; b < B; ++b) {
      next_blocks[b] = opp_block_for(batch[b]->next_obs);
      std::vector<double> ain = batch[b]->next_obs;
      ain.insert(ain.end(), next_blocks[b].begin(), next_blocks[b].end());
      actor_rows.push_back(std::move(ain));
      for (int o = 0; o < kNumOptions; ++o) {
        q_rows.push_back(critic_input(batch[b]->next_obs, o, next_blocks[b]));
      }
    }
    nn::Matrix probs =
        nn::softmax(actor_.net().forward(nn::Matrix::stack_rows(actor_rows)));
    nn::Matrix qnext = critic_target_.forward(nn::Matrix::stack_rows(q_rows));
    for (std::size_t b = 0; b < B; ++b) {
      double v;
      if (cfg_.bootstrap == Bootstrap::kMax) {
        v = qnext(b * kNumOptions, 0);
        for (int o = 1; o < kNumOptions; ++o) {
          v = std::max(v, qnext(b * kNumOptions + static_cast<std::size_t>(o), 0));
        }
      } else {
        v = 0.0;
        for (int o = 0; o < kNumOptions; ++o) {
          v += probs(b, static_cast<std::size_t>(o)) *
               qnext(b * kNumOptions + static_cast<std::size_t>(o), 0);
        }
      }
      targets[b] =
          batch[b]->reward + (batch[b]->done ? 0.0 : batch[b]->gamma_pow * v);
    }
  }

  std::vector<std::vector<double>> critic_rows;
  critic_rows.reserve(B);
  for (std::size_t b = 0; b < B; ++b) {
    critic_rows.push_back(
        critic_input(batch[b]->obs, batch[b]->option, batch[b]->opp_actual));
  }
  nn::Matrix cin = nn::Matrix::stack_rows(critic_rows);
  nn::Matrix pred = critic_.forward(cin);
  nn::Matrix target_m(B, 1);
  for (std::size_t b = 0; b < B; ++b) target_m(b, 0) = targets[b];
  auto closs = nn::mse_loss(pred, target_m);
  stats.critic_loss = closs.loss;
  critic_.zero_grad();
  critic_.backward(closs.grad);
  critic_.clip_grad_norm(cfg_.grad_clip);
  critic_opt_->step();

  // ----- actor: ∇logπ(o|s, ô)·A with A = Q(s,o,·) − Σ_o π Q, plus entropy --
  {
    std::vector<std::vector<double>> actor_rows;
    std::vector<std::vector<double>> q_rows;
    std::vector<std::vector<double>> blocks(B);
    actor_rows.reserve(B);
    q_rows.reserve(B * kNumOptions);
    for (std::size_t b = 0; b < B; ++b) {
      blocks[b] = opp_block_for(batch[b]->obs);
      std::vector<double> ain = batch[b]->obs;
      ain.insert(ain.end(), blocks[b].begin(), blocks[b].end());
      actor_rows.push_back(std::move(ain));
      for (int o = 0; o < kNumOptions; ++o) {
        // Q evaluated with the *actual* peer options from the buffer.
        q_rows.push_back(critic_input(batch[b]->obs, o, batch[b]->opp_actual));
      }
    }
    nn::Matrix q_all = critic_.forward(nn::Matrix::stack_rows(q_rows));
    nn::Matrix logits = actor_.net().forward(nn::Matrix::stack_rows(actor_rows));
    nn::Matrix probs = nn::softmax(logits);
    nn::Matrix logp = nn::log_softmax(logits);

    const double inv_b = 1.0 / static_cast<double>(B);
    nn::Matrix dlogits(B, kNumOptions);
    double mean_entropy = 0.0;
    for (std::size_t b = 0; b < B; ++b) {
      double baseline = 0.0;
      for (int o = 0; o < kNumOptions; ++o) {
        baseline += probs(b, static_cast<std::size_t>(o)) *
                    q_all(b * kNumOptions + static_cast<std::size_t>(o), 0);
      }
      const std::size_t taken = static_cast<std::size_t>(batch[b]->option);
      const double adv = q_all(b * kNumOptions + taken, 0) - baseline;
      for (int o = 0; o < kNumOptions; ++o) {
        dlogits(b, static_cast<std::size_t>(o)) +=
            adv * probs(b, static_cast<std::size_t>(o)) * inv_b;
      }
      dlogits(b, taken) -= adv * inv_b;

      double h = 0.0;
      for (int o = 0; o < kNumOptions; ++o) {
        const std::size_t c = static_cast<std::size_t>(o);
        h -= probs(b, c) * logp(b, c);
      }
      mean_entropy += h * inv_b;
      for (int o = 0; o < kNumOptions; ++o) {
        const std::size_t c = static_cast<std::size_t>(o);
        dlogits(b, c) += cfg_.entropy_coef * probs(b, c) * (logp(b, c) + h) * inv_b;
      }
    }
    stats.actor_entropy = mean_entropy;
    actor_.net().zero_grad();
    actor_.net().backward(dlogits);
    actor_.net().clip_grad_norm(cfg_.grad_clip);
    actor_opt_->step();
  }

  critic_target_.soft_update_from(critic_, cfg_.tau);
  return stats;
}

}  // namespace hero::core
