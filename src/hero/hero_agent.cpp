#include "hero/hero_agent.h"

#include <algorithm>

#include "obs/phase.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace hero::core {

HeroAgent::HeroAgent(std::size_t hl_obs_dim, int num_opponents,
                     const HighLevelConfig& high, const OpponentModelConfig& opponent,
                     const TerminationConfig& term, Rng& rng)
    : high_cfg_(high), term_(term) {
  high_ = std::make_unique<HighLevelAgent>(hl_obs_dim, num_opponents, high, rng);
  opponents_ = std::make_unique<OpponentModel>(hl_obs_dim, num_opponents, opponent, rng);
}

void HeroAgent::reset_episode() {
  pending_.reset();
  exec_ = OptionExecution{};
  opp_cache_.clear();
}

const std::vector<double>& HeroAgent::opp_block(const std::vector<double>& obs) {
  opp_cache_.resize(opponents_->feature_dim());
  if (!high_cfg_.use_opponent_model || opponents_->num_opponents() == 0) {
    std::fill(opp_cache_.begin(), opp_cache_.end(), 1.0 / kNumOptions);
  } else {
    opponents_->predict_all_into(obs, opp_cache_.data());
  }
  return opp_cache_;
}

std::vector<double> HeroAgent::one_hot_block(
    const std::vector<int>& others_options) const {
  std::vector<double> block(others_options.size() * kNumOptions, 0.0);
  for (std::size_t j = 0; j < others_options.size(); ++j) {
    block[j * kNumOptions + static_cast<std::size_t>(others_options[j])] = 1.0;
  }
  return block;
}

void HeroAgent::select(const sim::LaneWorld& world, int vehicle,
                       const std::vector<int>& others_options, Rng& rng,
                       bool explore) {
  const auto obs = world.high_level_obs(vehicle);
  const int opt = high_->select_option(obs, opp_block(obs), rng, explore);

  exec_ = OptionExecution{};
  exec_.option = option_from_index(opt);
  if (exec_.option == Option::kLaneChange) {
    exec_.target_lane = world.track().num_lanes() - 1 - world.lane(vehicle);
  } else {
    exec_.target_lane = world.lane(vehicle);
  }
  exec_.hold_speed = world.vehicle(vehicle).state().speed;

  pending_ = Pending{obs, one_hot_block(others_options), opt, 0.0, 1.0};
}

void HeroAgent::select_initial(const sim::LaneWorld& world, int vehicle,
                               const std::vector<int>& others_options, Rng& rng,
                               bool explore) {
  reset_episode();
  select(world, vehicle, others_options, rng, explore);
}

bool HeroAgent::maybe_reselect(const sim::LaneWorld& world, int vehicle,
                               const std::vector<int>& others_options, Rng& rng,
                               bool explore, bool learning) {
  if (!option_terminated(exec_, world, vehicle, term_)) return false;
  if (pending_ && learning) {
    high_->store({std::move(pending_->obs), std::move(pending_->opp_actual),
                  pending_->option, pending_->reward, pending_->discount,
                  world.high_level_obs(vehicle), /*done=*/false});
  }
  pending_.reset();
  select(world, vehicle, others_options, rng, explore);
  return true;
}

void HeroAgent::accumulate(double reward) {
  if (!pending_) return;
  pending_->reward += pending_->discount * reward;
  pending_->discount *= high_cfg_.gamma;
}

void HeroAgent::finalize_episode(const sim::LaneWorld& world, int vehicle,
                                 bool learning) {
  if (pending_ && learning) {
    high_->store({std::move(pending_->obs), std::move(pending_->opp_actual),
                  pending_->option, pending_->reward, pending_->discount,
                  world.high_level_obs(vehicle), /*done=*/true});
  }
  pending_.reset();
}

void HeroAgent::observe_opponents(const std::vector<double>& own_obs,
                                  const std::vector<int>& others_options) {
  const bool score = high_cfg_.use_opponent_model &&
                     (obs::metrics_enabled() || obs::telemetry_enabled()) &&
                     opp_cache_.size() == others_options.size() * kNumOptions;
  for (std::size_t j = 0; j < others_options.size(); ++j) {
    if (score) {
      // Score the prediction cached at option-selection time — one forward
      // per hold instead of one per primitive step. (The label recorded via
      // observe() below never trains on its own prediction either way.)
      const double* p = opp_cache_.data() + j * kNumOptions;
      const int pred = static_cast<int>(std::max_element(p, p + kNumOptions) - p);
      ++opp_total_;
      if (pred == others_options[j]) ++opp_correct_;
    }
    opponents_->observe(static_cast<int>(j), own_obs,
                        option_from_index(others_options[j]));
  }
}

void HeroAgent::sync_policy_from(HeroAgent& src) {
  high_->actor().net().copy_params_from(src.high_->actor().net());
  high_->set_selections(src.high_->selections());
  HERO_CHECK(opponents_->num_opponents() == src.opponents_->num_opponents());
  for (int j = 0; j < opponents_->num_opponents(); ++j) {
    opponents_->net(j).copy_params_from(src.opponents_->net(j));
  }
  // Readiness is monotone: once the learner's predictors are live, replicas
  // must stop answering with the uniform prior (their own buffers reset
  // every episode, so buffer occupancy cannot carry the signal).
  if (src.opponents_->prediction_ready()) opponents_->mark_trained();
}

AgentUpdateStats HeroAgent::update(Rng& rng) {
  OBS_SPAN("stage2/update");
  OBS_PHASE("update");
  AgentUpdateStats stats;
  {
    OBS_SPAN("stage2/update/opponent");
    OBS_PHASE("opponent_update");
    const auto losses = opponents_->update_all(rng);
    for (std::size_t j = 0; j < losses.size(); ++j) {
      if (!opponents_->ready(static_cast<int>(j))) continue;
      stats.opponent_loss += losses[j];
      ++stats.opponent_updates;
    }
    if (stats.opponent_updates > 0) stats.opponent_loss /= stats.opponent_updates;
  }
  stats.high = high_->update(*opponents_, rng);
  return stats;
}

}  // namespace hero::core
