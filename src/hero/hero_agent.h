// One HERO agent: the per-vehicle composition of the high-level actor–critic,
// the opponent model, and the semi-MDP option bookkeeping (Fig. 1 of the
// paper — each agent maintains a cooperation layer and a control layer; the
// skill bank itself is shared and lives in HeroTrainer).
#pragma once

#include <memory>
#include <optional>

#include "hero/high_level.h"
#include "hero/skills.h"

namespace hero::core {

// What one HeroAgent::update() did, for telemetry: the high-level
// actor–critic stats plus the opponent-model training signal.
struct AgentUpdateStats {
  HighLevelUpdateStats high;
  double opponent_loss = 0.0;  // mean loss over opponents that stepped
  int opponent_updates = 0;    // predictors past their min-samples threshold
};

class HeroAgent {
 public:
  HeroAgent(std::size_t hl_obs_dim, int num_opponents, const HighLevelConfig& high,
            const OpponentModelConfig& opponent, const TerminationConfig& term,
            Rng& rng);

  // Discards any in-flight option state (start of a fresh episode).
  void reset_episode();

  // Selects the initial option of an episode. `others_options` are the
  // opponents' currently-held options (observable history, paper Sec. III-A).
  void select_initial(const sim::LaneWorld& world, int vehicle,
                      const std::vector<int>& others_options, Rng& rng, bool explore);

  // If β_o fires, finalizes the pending semi-MDP transition (stored only when
  // `learning`) and selects the next option. Returns true on re-selection.
  bool maybe_reselect(const sim::LaneWorld& world, int vehicle,
                      const std::vector<int>& others_options, Rng& rng, bool explore,
                      bool learning);

  // Accumulates the high-level team reward received this step: R += γ^k·r.
  void accumulate(double reward);

  // Ends the episode: stores the pending transition with done = true (when
  // `learning`).
  void finalize_episode(const sim::LaneWorld& world, int vehicle, bool learning);

  // Registers the opponents' current options as opponent-model labels.
  // While metrics or telemetry are enabled it also scores the model's
  // prediction (argmax vs the observed option) into the accuracy counters
  // below — the paper's opponent-model convergence signal. Scoring reuses
  // the forward pass cached at option-selection time (opp_block_cache())
  // instead of re-running inference every primitive step: the prediction
  // being scored is "what the model forecast for this option hold", and the
  // per-step inference disappears from the hot path.
  void observe_opponents(const std::vector<double>& own_obs,
                         const std::vector<int>& others_options);

  // The ô^{-i} block computed at the last option selection (empty before the
  // first selection). Cached across the option hold — see observe_opponents.
  const std::vector<double>& opp_block_cache() const { return opp_cache_; }

  // Copies everything a rollout replica needs to act like `src` — high-level
  // actor parameters, the ε-schedule position, opponent predictor parameters
  // and their readiness. Critics and optimizer state stay behind: replicas
  // only act, the learner updates (docs/PARALLELISM.md §sync).
  void sync_policy_from(HeroAgent& src);

  // Opponent-prediction scoreboard since the last reset_opp_score().
  long opp_predictions() const { return opp_total_; }
  long opp_correct() const { return opp_correct_; }
  void reset_opp_score() { opp_total_ = opp_correct_ = 0; }

  // One gradient step on the high-level networks and the opponent models.
  AgentUpdateStats update(Rng& rng);

  const OptionExecution& execution() const { return exec_; }
  OptionExecution& execution() { return exec_; }
  HighLevelAgent& high_level() { return *high_; }
  OpponentModel& opponents() { return *opponents_; }
  const TerminationConfig& termination() const { return term_; }

 private:
  struct Pending {
    std::vector<double> obs;
    std::vector<double> opp_actual;
    int option;
    double reward = 0.0;
    double discount = 1.0;
  };

  const std::vector<double>& opp_block(const std::vector<double>& obs);
  std::vector<double> one_hot_block(const std::vector<int>& others_options) const;
  void select(const sim::LaneWorld& world, int vehicle,
              const std::vector<int>& others_options, Rng& rng, bool explore);

  HighLevelConfig high_cfg_;
  TerminationConfig term_;
  std::unique_ptr<HighLevelAgent> high_;
  std::unique_ptr<OpponentModel> opponents_;
  OptionExecution exec_;
  std::optional<Pending> pending_;
  std::vector<double> opp_cache_;  // ô^{-i} from the last selection
  long opp_total_ = 0;
  long opp_correct_ = 0;
};

}  // namespace hero::core
