// HeroActEngine: the fused batch-first deployment pass of the HERO policy
// (docs/SERVING.md).
//
// One act_rows() call advances every active slot of an rl::ObsBatch by one
// control tick with exactly three batched network stages — the same fused
// structure the training-side BatchedRollout uses (docs/BATCHING.md), minus
// all experience staging:
//
//   1. β_o termination per (slot, agent) from the ego scalars;
//   2. option selection, agent-major: for agent k, every slot re-selecting
//      shares one opponent-model predict_all_rows and one actor
//      option_probs_rows forward; the ε/categorical draws (explore only)
//      then come from each slot's own stream, so the chosen options are
//      independent of which other slots happened to share the batch;
//   3. skill actions, option-major: one SquashedGaussianPolicy act_rows_into
//      per learned option over every (slot, agent) currently holding it,
//      then the pure steering-law core (SkillBank::to_twist_core).
//
// Greedy mode (explore == false) draws nothing anywhere — argmax option
// selection plus deterministic skill means — which is what makes a served
// batch bitwise-equal to serving each request alone (ServeEquivalence tests).
//
// The engine owns only scratch; the model (skill bank + agents) and the
// per-slot session state are passed per call, so a checkpoint hot-reload can
// swap the model under the engine without touching in-flight sessions.
#pragma once

#include <memory>
#include <vector>

#include "hero/hero_agent.h"
#include "rl/obs_batch.h"

namespace hero::core {

// Per-slot deployment state: the semi-MDP option bookkeeping of one episode
// (the serving analogue of BatchedRollout::LaneAgent). Owned by the caller —
// HeroTrainer keys them by slot for batched evaluation, the policy server
// keys them by client session.
struct HeroSession {
  struct AgentState {
    OptionExecution exec;
    long selections = 0;  // local ε-schedule position (explore mode)
  };
  bool started = false;
  std::vector<AgentState> agents;
  std::vector<int> options;  // option currently held per agent

  // Drops all option state; the next act_rows() performs the initial
  // selection for every agent (begin-episode semantics).
  void reset() {
    started = false;
    agents.clear();
    options.clear();
  }
};

class HeroActEngine {
 public:
  // One fused deployment tick over batch.count() slots. sessions[s] and
  // rngs[s] belong to slot s; inactive slots are skipped. Commands land
  // slot-major in cmds_out (slot s, agent k → s·n + k), exactly like
  // Controller::act_rows_into.
  void act_rows(SkillBank& skills, std::vector<std::unique_ptr<HeroAgent>>& agents,
                const HighLevelConfig& high, const TerminationConfig& term,
                const rl::ObsBatch& batch, HeroSession* const* sessions,
                Rng* const* rngs, bool explore, sim::TwistCmd* cmds_out);

 private:
  // Scratch, resized in place and reused across calls.
  std::vector<std::uint8_t> needs_select_;        // (slot·n)
  std::vector<std::size_t> sel_slots_;            // slots selecting for one agent
  nn::Matrix sel_obs_, sel_blocks_, sel_in_, sel_probs_;
  std::vector<std::pair<std::size_t, int>> sk_rows_;  // (slot, k) per option
  nn::Matrix sk_obs_, sk_act_;
  std::vector<Rng*> sk_rngs_;
};

}  // namespace hero::core
