// The high-level option space of the cooperative lane-change case study
// (paper Sec. IV-B):  A_h = [keep lane, slow down, accelerate, lane change],
// with the per-option primitive action bounds of Sec. IV-C and the
// asynchronous termination conditions β_o of Sec. III-B.
#pragma once

#include <string>
#include <vector>

#include "sim/lane_world.h"

namespace hero::core {

enum class Option : int {
  kKeepLane = 0,
  kSlowDown = 1,
  kAccelerate = 2,
  kLaneChange = 3,
};

constexpr int kNumOptions = 4;

const char* option_name(Option o);
Option option_from_index(int i);

// Per-option bounds on the low-level continuous action (paper Sec. IV-C).
// For kLaneChange the angular component is a steering-rate *magnitude*; the
// skill executor resolves its sign toward the target lane (see skills.h).
struct OptionActionSpace {
  std::vector<double> lo;
  std::vector<double> hi;
};
OptionActionSpace option_action_space(Option o);

// Tracks one agent's currently-executing option (semi-MDP bookkeeping).
struct OptionExecution {
  Option option = Option::kKeepLane;
  int steps = 0;           // primitive steps executed under this option
  int target_lane = 0;     // lane-change goal (valid while option == kLaneChange)
  double hold_speed = 0.0; // keep-lane holds the speed at selection time
};

struct TerminationConfig {
  int in_lane_duration = 3;       // fixed duration c of the in-lane options
  int lane_change_max_steps = 14; // fail deadline for a lane change
  double lane_change_tol_y = 0.06;
  double lane_change_tol_heading = 0.15;
  // Synchronous mode (the alternative the paper rejects for distributed
  // systems, Sec. III-B): every option — including an in-flight lane change —
  // is interrupted after `in_lane_duration` steps so all agents re-select on
  // a common clock. Kept as an ablation (bench/ablation_hero).
  bool synchronous = false;
};

// β_o: returns true when the option must hand control back to the high level.
bool option_terminated(const OptionExecution& exec, const sim::LaneWorld& world,
                       int vehicle, const TerminationConfig& cfg);

// Outcome of a lane-change option used by the intrinsic reward (+20/−20).
enum class LaneChangeOutcome { kInProgress, kSuccess, kFail };
LaneChangeOutcome lane_change_outcome(const OptionExecution& exec,
                                      const sim::LaneWorld& world, int vehicle,
                                      const TerminationConfig& cfg);

// State-scalar overloads of β_o and the lane-change outcome, shared with
// the batched rollout path: the LaneWorld versions above delegate here, so
// batched termination decisions are identical to serial ones by
// construction. `world_done` is the episode's done flag.
bool option_terminated(const OptionExecution& exec, const sim::Track& track,
                       double y, double heading, bool world_done,
                       const TerminationConfig& cfg);
LaneChangeOutcome lane_change_outcome(const OptionExecution& exec,
                                      const sim::Track& track, double y,
                                      double heading, bool world_done,
                                      const TerminationConfig& cfg);

// --- intrinsic rewards (paper Sec. IV-C) ---

struct IntrinsicRewardConfig {
  double beta = 0.5;            // deviate-vs-travel weight for in-lane skills
  double travel_norm = 0.1;     // metres per step at nominal top speed
  double lane_change_bonus = 20.0;
};

// r_driving-in-lane = β·r_deviate + (1−β)·r_travel.
double driving_in_lane_reward(const sim::LaneWorld& world, int vehicle,
                              double travel_m, const IntrinsicRewardConfig& cfg);

// r_lane-change = +20 success / −20 fail / r_travel otherwise.
double lane_change_reward(LaneChangeOutcome outcome, double travel_m,
                          const IntrinsicRewardConfig& cfg);

}  // namespace hero::core
