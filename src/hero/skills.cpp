#include "hero/skills.h"

#include <algorithm>
#include <cmath>

#include "common/sync.h"
#include "nn/serialize.h"
#include "obs/obs.h"
#include "sim/scenario.h"

namespace hero::core {

SkillBank::SkillBank(std::size_t obs_dim, const SkillConfig& cfg, Rng& rng)
    : cfg_(cfg) {
  for (int i = 0; i < kNumOptions; ++i) {
    const Option o = option_from_index(i);
    if (o == Option::kKeepLane) continue;  // keep-lane is not learned
    auto space = option_action_space(o);
    agents_[static_cast<std::size_t>(i)] = std::make_unique<algos::SacAgent>(
        obs_dim, space.lo, space.hi, cfg_.sac, rng);
  }
}

algos::SacAgent& SkillBank::agent(Option o) {
  auto& ptr = agents_[static_cast<std::size_t>(static_cast<int>(o))];
  HERO_CHECK_MSG(ptr != nullptr, "option " << option_name(o) << " has no learned skill");
  return *ptr;
}

std::vector<double> SkillBank::skill_obs(const OptionExecution& exec,
                                         const sim::LaneWorld& world,
                                         int vehicle) const {
  const int ref_lane = exec.option == Option::kLaneChange ? exec.target_lane
                                                          : world.lane(vehicle);
  return world.low_level_obs(vehicle, ref_lane);
}

std::vector<double> SkillBank::policy_action(Option o, const std::vector<double>& obs,
                                             Rng& rng, bool deterministic) {
  if (o == Option::kKeepLane) return {};
  return agent(o).act(obs, rng, deterministic);
}

sim::TwistCmd SkillBank::to_twist(const OptionExecution& exec,
                                  const sim::LaneWorld& world, int vehicle,
                                  const std::vector<double>& action) const {
  const auto& st = world.vehicle(vehicle).state();
  return to_twist_core(exec, world.track(), world.config().dt, st.y, st.heading,
                       action.data(), action.size());
}

sim::TwistCmd SkillBank::to_twist_core(const OptionExecution& exec,
                                       const sim::Track& track, double dt,
                                       double y, double heading,
                                       const double* action,
                                       std::size_t action_n) const {
  if (exec.option == Option::kKeepLane) {
    // Paper Sec. IV-C: keep-lane holds the previous linear speed.
    return {exec.hold_speed, 0.0};
  }
  HERO_CHECK(action_n == 2);
  if (exec.option != Option::kLaneChange) {
    return {action[0], action[1]};  // signed angular command straight through
  }
  // Lane change: the policy commands speed and a steering-rate magnitude;
  // the steering law turns that into a signed rate toward the target lane
  // and straightens out as the lateral error vanishes.
  const double y_err = track.lane_center(exec.target_lane) - y;
  const double theta_des = std::clamp(cfg_.steer_gain * y_err,
                                      -cfg_.max_change_heading,
                                      cfg_.max_change_heading);
  const double w_mag = action[1];
  const double w = std::clamp((theta_des - heading) / dt, -w_mag, w_mag);
  return {action[0], w};
}

sim::TwistCmd SkillBank::execute(const OptionExecution& exec,
                                 const sim::LaneWorld& world, int vehicle, Rng& rng,
                                 bool deterministic) {
  if (exec.option == Option::kKeepLane) return to_twist(exec, world, vehicle, {});
  const auto obs = skill_obs(exec, world, vehicle);
  return to_twist(exec, world, vehicle,
                  policy_action(exec.option, obs, rng, deterministic));
}

std::vector<double> SkillBank::train_skill(
    Option o, sim::LaneWorld& world, int episodes, Rng& rng,
    const std::function<void(int, double)>& hook) {
  HERO_CHECK(has_agent(o));
  HERO_CHECK_MSG(world.num_learners() == 1, "stage-1 training is single-vehicle");
  algos::SacAgent& sac = agent(o);
  const int vehicle = world.learners()[0];
  std::vector<double> curve;
  curve.reserve(static_cast<std::size_t>(episodes));

  for (int ep = 0; ep < episodes; ++ep) {
    OBS_SPAN("stage1/episode");
    OBS_PHASE("skill_episode");
    world.reset(rng);
    // Start-state randomization: lateral offset and heading jitter force the
    // skills to learn recovery, not just straight-line driving.
    auto& st = world.mutable_vehicle(vehicle).mutable_state();
    st.y += rng.uniform(-0.3, 0.3) * 0.5 * world.track().lane_width();
    st.heading = rng.uniform(-0.2, 0.2);

    OptionExecution exec;
    exec.option = o;
    exec.steps = 0;
    exec.target_lane =
        o == Option::kLaneChange ? 1 - world.lane(vehicle) : world.lane(vehicle);

    double ep_reward = 0.0;
    while (!world.done()) {
      const auto obs = skill_obs(exec, world, vehicle);
      const auto action = policy_action(o, obs, rng, /*deterministic=*/false);
      const auto cmd = to_twist(exec, world, vehicle, action);
      auto result = world.step({cmd}, rng);
      ++exec.steps;

      double r = 0.0;
      bool skill_done = result.done;
      const double travel = result.travel[static_cast<std::size_t>(vehicle)];
      if (o == Option::kLaneChange) {
        const auto outcome = lane_change_outcome(exec, world, vehicle,
                                                 cfg_.termination);
        r = lane_change_reward(outcome, travel, cfg_.reward);
        if (result.collision) r = -cfg_.reward.lane_change_bonus;
        skill_done = skill_done || outcome != LaneChangeOutcome::kInProgress;
      } else {
        // In-lane skills train over the whole episode (the 3-step execution
        // window applies at deployment, not during skill acquisition).
        r = driving_in_lane_reward(world, vehicle, travel, cfg_.reward);
        if (result.collision) r -= cfg_.reward.lane_change_bonus;
      }
      ep_reward += r;
      sac.observe(obs, action, r, skill_obs(exec, world, vehicle), skill_done, rng);
      if (skill_done) break;
    }
    curve.push_back(ep_reward);
    if (obs::metrics_enabled()) {
      auto& reg = obs::Registry::instance();
      reg.counter("hero.stage1.episodes").inc();
      reg.counter("hero.stage1.steps").inc(exec.steps);
    }
    if (obs::telemetry_enabled()) {
      obs::Telemetry::instance().emit(obs::TelemetryEvent("stage1/episode")
                                          .field("skill", option_name(o))
                                          .field("episode", ep)
                                          .field("reward", ep_reward)
                                          .field("steps", exec.steps));
    }
    if (hook) hook(ep, ep_reward);
  }
  return curve;
}

std::map<Option, std::vector<double>> SkillBank::train_all_parallel(
    int episodes_per_skill, std::uint64_t seed, runtime::ThreadPool& pool,
    const std::function<void(Option, int, double)>& hook) {
  // Serializes caller-supplied hook invocations across skill tasks. Local,
  // so HERO_GUARDED_BY cannot name it — the hook std::function is the
  // guarded state by convention.
  Mutex hook_mutex;
  std::array<std::vector<double>, kNumOptions> results;

  // One pool task per learned option. The per-skill RNG stream is derived
  // from (seed, option index) exactly as the historical thread-per-skill
  // implementation did, so curves are bitwise-stable across pool sizes and
  // vs. the legacy code path.
  pool.parallel_for(kNumOptions, [&](std::size_t idx) {
    const int i = static_cast<int>(idx);
    const Option o = option_from_index(i);
    if (!has_agent(o)) return;
    // Task-local environment and RNG stream; the SAC agent for option `o`
    // is only ever touched by the one task training it.
    sim::LaneWorld world(sim::skill_training_world(/*with_leader=*/false));
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1)));
    std::function<void(int, double)> task_hook;
    if (hook) {
      task_hook = [&](int ep, double r) {
        MutexLock lock(hook_mutex);
        hook(o, ep, r);
      };
    }
    results[static_cast<std::size_t>(i)] =
        train_skill(o, world, episodes_per_skill, rng, task_hook);
  });

  std::map<Option, std::vector<double>> curves;
  for (int i = 0; i < kNumOptions; ++i) {
    if (!has_agent(option_from_index(i))) continue;
    curves[option_from_index(i)] = std::move(results[static_cast<std::size_t>(i)]);
  }
  return curves;
}

void SkillBank::sync_policies_from(SkillBank& src) {
  for (int i = 0; i < kNumOptions; ++i) {
    auto& dst_ptr = agents_[static_cast<std::size_t>(i)];
    auto& src_ptr = src.agents_[static_cast<std::size_t>(i)];
    HERO_CHECK((dst_ptr == nullptr) == (src_ptr == nullptr));
    if (!dst_ptr) continue;
    dst_ptr->policy().net().copy_params_from(src_ptr->policy().net());
  }
}

void SkillBank::save(const std::string& dir) const {
  for (int i = 0; i < kNumOptions; ++i) {
    const auto& ptr = agents_[static_cast<std::size_t>(i)];
    if (!ptr) continue;
    const std::string base = dir + "/" + option_name(option_from_index(i));
    nn::save_params_file(ptr->policy().net(), base + "_actor.ckpt");
    nn::save_params_file(ptr->critic1(), base + "_q1.ckpt");
    nn::save_params_file(ptr->critic2(), base + "_q2.ckpt");
  }
}

void SkillBank::load(const std::string& dir) {
  for (int i = 0; i < kNumOptions; ++i) {
    const auto& ptr = agents_[static_cast<std::size_t>(i)];
    if (!ptr) continue;
    const std::string base = dir + "/" + option_name(option_from_index(i));
    nn::load_params_file(ptr->policy().net(), base + "_actor.ckpt");
    nn::load_params_file(ptr->critic1(), base + "_q1.ckpt");
    nn::load_params_file(ptr->critic2(), base + "_q2.ckpt");
  }
}

}  // namespace hero::core
