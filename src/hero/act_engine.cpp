#include "hero/act_engine.h"

#include <algorithm>

#include "obs/phase.h"

namespace hero::core {

void HeroActEngine::act_rows(SkillBank& skills,
                             std::vector<std::unique_ptr<HeroAgent>>& agents,
                             const HighLevelConfig& high,
                             const TerminationConfig& term,
                             const rl::ObsBatch& batch,
                             HeroSession* const* sessions, Rng* const* rngs,
                             bool explore, sim::TwistCmd* cmds_out) {
  OBS_PHASE("act_rows");
  const std::size_t count = batch.count();
  const int n = batch.num_learners();
  HERO_CHECK_MSG(static_cast<int>(agents.size()) == n,
                 "batch has " << n << " learners, model has " << agents.size());
  const std::size_t hl_dim = batch.hl_dim();
  const std::size_t ll_dim = batch.ll_dim();
  const std::size_t opp_dim = agents.empty() ? 0 : agents[0]->opponents().feature_dim();
  const auto idx = [n](std::size_t s, int k) {
    return s * static_cast<std::size_t>(n) + static_cast<std::size_t>(k);
  };

  // (1) Session init / β_o termination → who re-selects this tick.
  needs_select_.assign(count * static_cast<std::size_t>(n), 0);
  for (std::size_t s = 0; s < count; ++s) {
    const auto& meta = batch.slot(s);
    if (!meta.active) continue;
    HERO_CHECK_MSG(meta.track != nullptr, "ObsBatch slot carries no track");
    HeroSession& sess = *sessions[s];
    if (meta.reset) sess.reset();
    if (!sess.started) {
      sess.agents.assign(static_cast<std::size_t>(n), HeroSession::AgentState{});
      sess.options.assign(static_cast<std::size_t>(n),
                          static_cast<int>(Option::kKeepLane));
      for (int k = 0; k < n; ++k) {
        // Fresh sessions explore from the learner's current ε-schedule
        // position — the same convention as the batched training rollout.
        sess.agents[static_cast<std::size_t>(k)].selections =
            agents[static_cast<std::size_t>(k)]->high_level().selections();
        needs_select_[idx(s, k)] = 1;
      }
      continue;
    }
    for (int k = 0; k < n; ++k) {
      const auto& sc = batch.scalars(s, k);
      if (option_terminated(sess.agents[static_cast<std::size_t>(k)].exec,
                            *meta.track, sc.y, sc.heading,
                            /*world_done=*/false, term)) {
        needs_select_[idx(s, k)] = 1;
      }
    }
  }

  // (2) Option selection, agent-major (one opponent + one actor forward per
  // agent across every slot that re-selects).
  for (int k = 0; k < n; ++k) {
    sel_slots_.clear();
    for (std::size_t s = 0; s < count; ++s) {
      if (needs_select_[idx(s, k)] != 0) sel_slots_.push_back(s);
    }
    if (sel_slots_.empty()) continue;
    const std::size_t m = sel_slots_.size();

    sel_obs_.resize(m, hl_dim);
    for (std::size_t r = 0; r < m; ++r) {
      const double* src = batch.hl_row(sel_slots_[r], k);
      std::copy(src, src + hl_dim, sel_obs_.row_ptr(r));
    }
    if (opp_dim > 0) {
      if (high.use_opponent_model) {
        agents[static_cast<std::size_t>(k)]->opponents().predict_all_rows(
            sel_obs_, sel_blocks_);
      } else {
        sel_blocks_.resize(m, opp_dim);
        sel_blocks_.fill(1.0 / kNumOptions);
      }
    }
    sel_in_.resize(m, hl_dim + opp_dim);
    for (std::size_t r = 0; r < m; ++r) {
      double* row = sel_in_.row_ptr(r);
      const double* src = sel_obs_.row_ptr(r);
      std::copy(src, src + hl_dim, row);
      for (std::size_t c = 0; c < opp_dim; ++c) row[hl_dim + c] = sel_blocks_(r, c);
    }
    agents[static_cast<std::size_t>(k)]->high_level().option_probs_rows(sel_in_,
                                                                        sel_probs_);

    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t s = sel_slots_[r];
      HeroSession::AgentState& as = sessions[s]->agents[static_cast<std::size_t>(k)];
      const auto& sc = batch.scalars(s, k);
      ++as.selections;
      const int opt = HighLevelAgent::select_from_probs(
          high, sel_probs_.row_ptr(r), as.selections, *rngs[s], explore);
      as.exec = OptionExecution{};
      as.exec.option = option_from_index(opt);
      as.exec.target_lane = as.exec.option == Option::kLaneChange
                                ? batch.slot(s).track->num_lanes() - 1 - sc.lane
                                : sc.lane;
      as.exec.hold_speed = sc.speed;
      sessions[s]->options[static_cast<std::size_t>(k)] = opt;
    }
  }
  for (std::size_t s = 0; s < count; ++s) {
    if (batch.slot(s).active) sessions[s]->started = true;
  }

  // (3) Skill commands: keep-lane closed-form, learned options option-major
  // with one batched policy forward each. One world step follows each tick
  // by contract, mirroring the serial act()'s ++exec.steps.
  for (std::size_t s = 0; s < count; ++s) {
    if (!batch.slot(s).active) continue;
    for (int k = 0; k < n; ++k) {
      HeroSession::AgentState& as = sessions[s]->agents[static_cast<std::size_t>(k)];
      if (as.exec.option == Option::kKeepLane) {
        cmds_out[idx(s, k)] = {as.exec.hold_speed, 0.0};
      }
      ++as.exec.steps;
    }
  }
  for (int oi = 0; oi < kNumOptions; ++oi) {
    const Option o = option_from_index(oi);
    if (!skills.has_agent(o)) continue;
    sk_rows_.clear();
    for (std::size_t s = 0; s < count; ++s) {
      if (!batch.slot(s).active) continue;
      for (int k = 0; k < n; ++k) {
        if (sessions[s]->agents[static_cast<std::size_t>(k)].exec.option == o) {
          sk_rows_.push_back({s, k});
        }
      }
    }
    if (sk_rows_.empty()) continue;
    const std::size_t m = sk_rows_.size();
    sk_obs_.resize(m, ll_dim);
    sk_rngs_.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
      const auto [s, k] = sk_rows_[r];
      const auto& as = sessions[s]->agents[static_cast<std::size_t>(k)];
      const auto& sc = batch.scalars(s, k);
      const int ref_lane =
          o == Option::kLaneChange ? as.exec.target_lane : sc.lane;
      const double* src = batch.ll_row(s, k, ref_lane);
      std::copy(src, src + ll_dim, sk_obs_.row_ptr(r));
      sk_rngs_[r] = rngs[s];
    }
    skills.agent(o).policy().act_rows_into(sk_obs_, sk_rngs_.data(),
                                           /*deterministic=*/!explore, sk_act_);
    for (std::size_t r = 0; r < m; ++r) {
      const auto [s, k] = sk_rows_[r];
      const auto& as = sessions[s]->agents[static_cast<std::size_t>(k)];
      const auto& sc = batch.scalars(s, k);
      const auto& meta = batch.slot(s);
      cmds_out[idx(s, k)] = skills.to_twist_core(as.exec, *meta.track, meta.dt,
                                                 sc.y, sc.heading,
                                                 sk_act_.row_ptr(r), sk_act_.cols());
    }
  }
}

}  // namespace hero::core
