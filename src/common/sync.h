// Synchronization primitives with Clang thread-safety (capability)
// annotations — the repo's only sanctioned mutex/condvar types.
//
// Every mutex in src/ is a hero::Mutex, every scoped lock a hero::MutexLock,
// every condition variable a hero::CondVar (enforced by tools/lint.py rule
// R8 no-raw-mutex). The wrappers carry Clang's capability annotations, so a
// clang build with -Wthread-safety -Werror=thread-safety-analysis proves at
// compile time that:
//
//   * state declared HERO_GUARDED_BY(mu) is only touched while mu is held;
//   * functions declared HERO_REQUIRES(mu) are only called under mu;
//   * functions declared HERO_EXCLUDES(mu) are never called while mu is
//     held (catches self-deadlock through a singleton re-entering itself);
//   * every acquire has a matching release on every path.
//
// On non-Clang compilers (the GCC tier-1 build) every annotation macro
// expands to nothing and the wrappers compile down to plain std::mutex /
// std::condition_variable with zero overhead — all methods are inline
// one-liners.
//
// The analysis gate runs as `tools/run_static_analysis.sh --thread-safety`
// (pinned clang in CI's `thread-safety` job; skipped locally when no clang
// is installed). The repo lock hierarchy — which locks may be held while
// acquiring which — is documented in docs/CORRECTNESS.md.
//
// Annotating new state:
//
//   class Queue {
//    public:
//     void push(Item it) HERO_EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       items_.push_back(std::move(it));
//     }
//    private:
//     void compact() HERO_REQUIRES(mu_);   // helper called under the lock
//     Mutex mu_;
//     std::vector<Item> items_ HERO_GUARDED_BY(mu_);
//   };
//
// HERO_NO_THREAD_SAFETY_ANALYSIS is the escape hatch for intentionally
// lock-free patterns the analysis cannot see (single-owner-writer reads,
// init-before-threads access). Every use must carry a one-line
// justification comment; the bar is "the analysis is wrong here", not
// "the warning is annoying".
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------- macros ---
// Attribute spellings follow the Clang Thread Safety Analysis documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed HERO_ to
// avoid colliding with other libraries' unprefixed variants.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HERO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HERO_THREAD_ANNOTATION
#define HERO_THREAD_ANNOTATION(x)  // non-Clang: annotations compile away
#endif

// A type that is a lockable capability (mutexes).
#define HERO_CAPABILITY(x) HERO_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires a capability in its ctor, releases in its dtor.
#define HERO_SCOPED_CAPABILITY HERO_THREAD_ANNOTATION(scoped_lockable)
// Data member readable/writable only while the named mutex is held.
#define HERO_GUARDED_BY(x) HERO_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose *pointee* is guarded by the named mutex.
#define HERO_PT_GUARDED_BY(x) HERO_THREAD_ANNOTATION(pt_guarded_by(x))
// Function may only be called while the named mutex(es) are held.
#define HERO_REQUIRES(...) \
  HERO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HERO_REQUIRES_SHARED(...) \
  HERO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// Function acquires / releases the named mutex(es) (no args: `this`).
#define HERO_ACQUIRE(...) HERO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HERO_RELEASE(...) HERO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Function conditionally acquires: first arg is the success return value.
#define HERO_TRY_ACQUIRE(...) \
  HERO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function must NOT be called while the named mutex(es) are held — declares
// "this function takes the lock itself" and catches re-entrant deadlock.
#define HERO_EXCLUDES(...) HERO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Static ordering hints for the (beta) lock-ordering analysis.
#define HERO_ACQUIRED_BEFORE(...) \
  HERO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HERO_ACQUIRED_AFTER(...) \
  HERO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
// Function returns a reference to the named mutex (accessor pattern).
#define HERO_RETURN_CAPABILITY(x) HERO_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: body is not analyzed. MUST carry a justification comment.
#define HERO_NO_THREAD_SAFETY_ANALYSIS \
  HERO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hero {

// Exclusive mutex. Same semantics, size and cost as std::mutex; the class
// exists so the capability annotations have a type to hang off.
class HERO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HERO_ACQUIRE() { mu_.lock(); }
  void unlock() HERO_RELEASE() { mu_.unlock(); }
  bool try_lock() HERO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scoped lock — the std::lock_guard of this codebase. Annotated as a
// scoped capability so the analysis tracks the mutex as held for exactly
// the lock object's lifetime.
class HERO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HERO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HERO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over hero::Mutex. wait() takes the mutex itself (not a
// lock object) so the held-ness requirement is expressible as
// HERO_REQUIRES(mu): callers hold mu via MutexLock, wait() releases it
// while blocked and re-holds it before returning — net effect "still held",
// which is exactly what the annotation states.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified. Spurious wakeups happen — callers loop on their
  // predicate (or use the predicate overload below).
  void wait(Mutex& mu) HERO_REQUIRES(mu) {
    // Adopt the caller-held native mutex for the duration of the wait, then
    // release ownership back without unlocking — the caller's MutexLock
    // still owns the critical section when wait() returns.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Loops until stop_waiting() returns true. The predicate runs with mu
  // held, like std::condition_variable::wait(lock, pred).
  template <class Pred>
  void wait(Mutex& mu, Pred stop_waiting) HERO_REQUIRES(mu) {
    while (!stop_waiting()) wait(mu);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hero
