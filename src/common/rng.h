// Seedable random-number generator shared by the simulator, the exploration
// strategies and the replay buffers.
//
// Everything that draws randomness takes an explicit Rng& so that whole
// training runs are reproducible from a single seed; no global RNG state.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace hero {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Standard normal scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int randint(int lo, int hi) {
    HERO_CHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    HERO_CHECK(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  // Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  // Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights);
  // Same draw from a raw weight row (batched callers index into a matrix);
  // the vector overload delegates here, so both consume identical draws.
  std::size_t categorical(const double* weights, std::size_t n);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  // Derive an independent child generator (for per-agent / per-env streams).
  Rng split() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hero
