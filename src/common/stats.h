// Streaming statistics helpers for training metrics: running mean/variance,
// windowed moving averages, and series down-sampling for curve reporting.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace hero {

// Welford running mean / variance.
class RunningStat {
 public:
  void add(double x);
  void reset();

  // Parallel Welford combine (Chan et al.): after merge(), this stream is
  // statistically identical to having add()ed both streams' samples into
  // one accumulator. Lets per-thread skill stats and per-agent metrics be
  // aggregated without losing variance.
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-window moving average (the paper's learning curves are smoothed).
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window) : window_(window ? window : 1) {}

  double add(double x);  // returns the current average
  double value() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  bool full() const { return n_ == window_; }

 private:
  std::size_t window_;
  std::deque<double> buf_;
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

// Down-samples `series` to at most `points` entries by block-averaging;
// returns (index, value) pairs. Used when printing long learning curves.
std::vector<std::pair<std::size_t, double>> downsample(const std::vector<double>& series,
                                                       std::size_t points);

double mean_of(const std::vector<double>& v);
double stddev_of(const std::vector<double>& v);

}  // namespace hero
