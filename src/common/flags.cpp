#include "common/flags.h"

#include <stdexcept>

namespace hero {

namespace {
bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}
}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--no-X` is always boolean (never consumes a value); otherwise
    // `--flag value` when the next token isn't another flag, else boolean.
    if (starts_with(body, "no-")) {
      values_[body.substr(3)] = "false";
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

int Flags::get_int(const std::string& name, int def) {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::stoi(it->second);
}

double Flags::get_double(const std::string& name, double def) {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::stod(it->second);
}

std::string Flags::get_string(const std::string& name, const std::string& def) {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second;
}

bool Flags::get_bool(const std::string& name, bool def) {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

void Flags::check_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!consumed_.count(name)) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
  }
}

}  // namespace hero
