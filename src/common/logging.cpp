#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/sync.h"

namespace hero {

namespace {

LogLevel initial_level() {
  // Read exactly once, during static initialization, before any thread can
  // exist — getenv's MT-unsafety cannot bite here.
  const char* env = std::getenv("HERO_LOG_LEVEL");  // NOLINT(concurrency-mt-unsafe)
  if (!env) return LogLevel::kInfo;
  return parse_log_level(env).value_or(LogLevel::kInfo);
}

std::atomic<LogLevel> g_level{initial_level()};
std::atomic<bool> g_timestamps{false};

// Serializes whole-line emission: without this, threads logging through raw
// fprintf can interleave fragments (stderr is only atomic per call, and the
// prefix + message + newline used to be observable mid-write on some libcs).
// The guarded "state" is the stderr stream itself, which no annotation can
// name; the mutex is a leaf of the lock hierarchy (docs/CORRECTNESS.md) —
// log_line never acquires anything else while holding it.
Mutex& log_mutex() {
  static Mutex mu;
  return mu;
}

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(const std::string& s) {
  std::string low;
  low.reserve(s.size());
  for (char c : s) low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (low == "debug" || low == "0") return LogLevel::kDebug;
  if (low == "info" || low == "1") return LogLevel::kInfo;
  if (low == "warn" || low == "warning" || low == "2") return LogLevel::kWarn;
  if (low == "error" || low == "3") return LogLevel::kError;
  if (low == "off" || low == "none" || low == "4") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_timestamps(bool on) { g_timestamps.store(on); }
bool log_timestamps() { return g_timestamps.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  MutexLock lock(log_mutex());
  if (g_timestamps.load()) {
    std::fprintf(stderr, "[%s][+%.3fs] %s\n", level_tag(level),
                 seconds_since_start(), msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
  }
}
}  // namespace detail

}  // namespace hero
