#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace hero {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace hero
