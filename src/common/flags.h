// Tiny command-line flag parser used by the bench harnesses and examples.
//
// Supports `--name value`, `--name=value` and boolean `--name` /
// `--no-name` forms. Unknown flags are an error so typos don't silently run
// the default experiment.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hero {

class Flags {
 public:
  // Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, char** argv);

  // Registered-on-first-use accessors: each returns the parsed value or the
  // given default, and records the flag name so `check_unknown()` can reject
  // flags no accessor asked about.
  int get_int(const std::string& name, int def);
  double get_double(const std::string& name, double def);
  std::string get_string(const std::string& name, const std::string& def);
  bool get_bool(const std::string& name, bool def);

  // Throws if the command line contained a flag never requested above.
  void check_unknown() const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace hero
