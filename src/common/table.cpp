#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace hero {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  HERO_CHECK(!columns_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  HERO_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (columns_.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hero
