#include "common/csv.h"

#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace hero {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& columns)
    : path_(path), out_(path), width_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  HERO_CHECK(!columns.empty());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  HERO_CHECK_MSG(values.size() == width_, "CSV row width " << values.size()
                                                           << " != header " << width_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::row(const std::vector<std::string>& values) {
  HERO_CHECK(values.size() == width_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  out_.flush();
}

}  // namespace hero
