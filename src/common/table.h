// Fixed-width ASCII table printer: benches use it to print rows in the same
// layout as the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hero {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  // Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 4);

  // Renders header + separator + rows to `os`.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hero
