// Minimal leveled logger.
//
// Training loops and benches log progress through this; tests set the level
// to kWarn to keep ctest output clean.
//
// Production hardening:
//   * line emission is mutex-serialized, so concurrent threads (e.g. the
//     parallel stage-1 skill trainers) never interleave partial lines;
//   * the HERO_LOG_LEVEL environment variable ("debug".."error", "off", or
//     a 0-4 numeral) overrides the default kInfo minimum at startup;
//   * set_log_timestamps(true) prefixes every line with monotonic seconds
//     since process start ("[+12.345s]"), for correlating stderr output
//     with --trace-out / --telemetry-out timelines.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace hero {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are discarded. The initial
// value honours HERO_LOG_LEVEL when set (else kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

// Parses "debug"/"info"/"warn"/"warning"/"error"/"off" (case-insensitive)
// or a "0".."4" numeral; nullopt on anything else.
std::optional<LogLevel> parse_log_level(const std::string& s);

// Monotonic "[+seconds]" prefix on every emitted line (off by default).
void set_log_timestamps(bool on);
bool log_timestamps();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= log_level()) detail::log_line(level_, os_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace hero

#define LOG_DEBUG ::hero::LogMessage(::hero::LogLevel::kDebug)
#define LOG_INFO ::hero::LogMessage(::hero::LogLevel::kInfo)
#define LOG_WARN ::hero::LogMessage(::hero::LogLevel::kWarn)
#define LOG_ERROR ::hero::LogMessage(::hero::LogLevel::kError)
