// Minimal leveled logger.
//
// Training loops and benches log progress through this; tests set the level
// to kWarn to keep ctest output clean.
#pragma once

#include <sstream>
#include <string>

namespace hero {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= log_level()) detail::log_line(level_, os_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace hero

#define LOG_DEBUG ::hero::LogMessage(::hero::LogLevel::kDebug)
#define LOG_INFO ::hero::LogMessage(::hero::LogLevel::kInfo)
#define LOG_WARN ::hero::LogMessage(::hero::LogLevel::kWarn)
#define LOG_ERROR ::hero::LogMessage(::hero::LogLevel::kError)
