// CSV writer used by the bench harnesses to dump learning-curve series that
// EXPERIMENTS.md references.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hero {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  // Appends one row; must match the header width.
  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace hero
