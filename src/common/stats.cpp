#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace hero {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::reset() { *this = RunningStat(); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double MovingAverage::add(double x) {
  buf_.push_back(x);
  sum_ += x;
  if (buf_.size() > window_) {
    sum_ -= buf_.front();
    buf_.pop_front();
  }
  n_ = buf_.size();
  return value();
}

std::vector<std::pair<std::size_t, double>> downsample(const std::vector<double>& series,
                                                       std::size_t points) {
  std::vector<std::pair<std::size_t, double>> out;
  if (series.empty() || points == 0) return out;
  // Exactly min(points, size) blocks: boundary i·size/blocks partitions the
  // series into near-equal runs (the old fixed block width overshot the
  // requested count for non-divisible sizes, e.g. 10 points into 4 blocks
  // of 2 yielded 5 entries).
  const std::size_t blocks = std::min(points, series.size());
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t start = b * series.size() / blocks;
    const std::size_t end = (b + 1) * series.size() / blocks;
    double sum = 0.0;
    for (std::size_t i = start; i < end; ++i) sum += series[i];
    out.emplace_back(end - 1, sum / static_cast<double>(end - start));
  }
  return out;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean_of(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

}  // namespace hero
