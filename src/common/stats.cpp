#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace hero {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double MovingAverage::add(double x) {
  buf_.push_back(x);
  sum_ += x;
  if (buf_.size() > window_) {
    sum_ -= buf_.front();
    buf_.pop_front();
  }
  n_ = buf_.size();
  return value();
}

std::vector<std::pair<std::size_t, double>> downsample(const std::vector<double>& series,
                                                       std::size_t points) {
  std::vector<std::pair<std::size_t, double>> out;
  if (series.empty() || points == 0) return out;
  std::size_t block = std::max<std::size_t>(1, series.size() / points);
  for (std::size_t start = 0; start < series.size(); start += block) {
    std::size_t end = std::min(series.size(), start + block);
    double sum = 0.0;
    for (std::size_t i = start; i < end; ++i) sum += series[i];
    out.emplace_back(end - 1, sum / static_cast<double>(end - start));
  }
  return out;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean_of(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

}  // namespace hero
