// Lightweight runtime-check macros used across the library.
//
// HERO_CHECK fires in all build types: invariants of the library itself
// (shape mismatches, invalid configuration) are programming errors that we
// want to surface loudly rather than propagate NaNs through training.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hero {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace hero

#define HERO_CHECK(cond)                                             \
  do {                                                               \
    if (!(cond)) ::hero::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define HERO_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream hero_check_os;                                    \
      hero_check_os << msg;                                                \
      ::hero::check_failed(#cond, __FILE__, __LINE__, hero_check_os.str()); \
    }                                                                      \
  } while (0)
