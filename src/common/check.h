// Lightweight runtime-check macros used across the library.
//
// Two tiers (docs/CORRECTNESS.md):
//
//   HERO_CHECK / HERO_CHECK_MSG fire in every build type: invariants of the
//   library itself (shape mismatches, invalid configuration) are programming
//   errors we surface loudly rather than propagate NaNs through training.
//
//   HERO_DCHECK / HERO_DCHECK_MSG compile to nothing unless the build was
//   configured with -DHERO_DEBUG_CHECKS=ON. They guard per-element
//   invariants on hot paths (finiteness of activations and gradients, replay
//   and simulator state) that are too expensive for release binaries but
//   catch a NaN at the op that produced it instead of 200 episodes later.
//
// Both tiers keep the failure path out of line: the condition test is the
// only code in the hot path, and the message stream is constructed solely
// after the condition has already failed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hero {

// Cold out-of-line failure paths. Splitting the no-message overload avoids
// materializing an empty std::string at every call site.
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  throw std::logic_error(os.str());
}

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace hero

#define HERO_CHECK(cond)                                            \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::hero::check_failed(#cond, __FILE__, __LINE__);              \
    }                                                               \
  } while (0)

// The std::ostringstream (and everything streamed into it) is built only on
// the failure branch — the happy path is a bare predicate test.
#define HERO_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::ostringstream hero_check_os;                                      \
      hero_check_os << msg;                                                  \
      ::hero::check_failed(#cond, __FILE__, __LINE__, hero_check_os.str());  \
    }                                                                        \
  } while (0)

// Debug-only invariants: enabled by the HERO_DEBUG_CHECKS CMake option.
// When disabled the condition is never evaluated (it sits behind `if
// constexpr`-like dead code the optimizer removes), so operands may be
// arbitrarily expensive.
#ifdef HERO_DEBUG_CHECKS
#define HERO_DCHECK(cond) HERO_CHECK(cond)
#define HERO_DCHECK_MSG(cond, msg) HERO_CHECK_MSG(cond, msg)
#define HERO_DEBUG_CHECKS_ENABLED 1
#else
#define HERO_DCHECK(cond) \
  do {                    \
  } while (0)
#define HERO_DCHECK_MSG(cond, msg) \
  do {                             \
  } while (0)
#define HERO_DEBUG_CHECKS_ENABLED 0
#endif
