#include "common/rng.h"

#include <numeric>

namespace hero {

std::size_t Rng::categorical(const std::vector<double>& weights) {
  return categorical(weights.data(), weights.size());
}

std::size_t Rng::categorical(const double* weights, std::size_t n) {
  HERO_CHECK(n > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    HERO_CHECK_MSG(weights[i] >= 0.0,
                   "categorical weight must be non-negative, got " << weights[i]);
    total += weights[i];
  }
  if (total <= 0.0) return index(n);  // degenerate: uniform fallback
  double u = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return n - 1;  // numerical edge: u == total
}

}  // namespace hero
