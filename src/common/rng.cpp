#include "common/rng.h"

#include <numeric>

namespace hero {

std::size_t Rng::categorical(const std::vector<double>& weights) {
  HERO_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    HERO_CHECK_MSG(w >= 0.0, "categorical weight must be non-negative, got " << w);
    total += w;
  }
  if (total <= 0.0) return index(weights.size());  // degenerate: uniform fallback
  double u = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: u == total
}

}  // namespace hero
