#include "algos/maac.h"

#include <algorithm>

#include "common/stats.h"
#include "nn/losses.h"
#include "obs/obs.h"

namespace hero::algos {

MaacTrainer::MaacTrainer(const sim::Scenario& scenario, const MaacConfig& cfg, Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      grid_(rl::ActionGrid::standard()),
      n_(world_.num_learners()),
      obs_dim_(baseline_obs_dim(world_)),
      actor_(obs_dim_ + static_cast<std::size_t>(n_), cfg.hidden, grid_.size(), rng),
      buffer_(cfg.buffer_capacity) {
  critic_ = std::make_unique<AttentionCritic>(obs_dim_, grid_.size(), cfg_.embed_dim,
                                              cfg_.hidden, rng);
  critic_target_ = std::make_unique<AttentionCritic>(*critic_);
  actor_opt_ = std::make_unique<nn::Adam>(actor_.net().params(), cfg_.lr * 0.5);
  critic_opt_ = std::make_unique<nn::Adam>(critic_->params(), cfg_.lr);
  if (cfg_.num_workers > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(
        static_cast<std::size_t>(cfg_.num_workers));
  }
}

void MaacTrainer::for_rows(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (pool_) {
    pool_->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

std::vector<double> MaacTrainer::actor_obs(const std::vector<double>& obs,
                                           int agent) const {
  std::vector<double> in = obs;
  for (int j = 0; j < n_; ++j) in.push_back(j == agent ? 1.0 : 0.0);
  return in;
}

void MaacTrainer::act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs,
                                bool explore, sim::TwistCmd* cmds_out) {
  batched_act(batch, rngs, explore, cmds_out);
}

void MaacTrainer::batched_act(const rl::ObsBatch& batch, Rng* const* rngs,
                              bool explore, sim::TwistCmd* cmds_out) {
  OBS_PHASE("act_rows");
  const int n = batch.num_learners();
  HERO_CHECK_MSG(n == n_, "batch has " << n << " learners, trainer has " << n_);
  act_slots_.clear();
  for (std::size_t s = 0; s < batch.count(); ++s) {
    if (batch.slot(s).active) act_slots_.push_back(s);
  }
  if (act_slots_.empty()) return;
  const std::size_t obs_dim = batch.hl_dim() + batch.ll_dim();
  for (int k = 0; k < n; ++k) {
    gather_baseline_rows(batch, k, act_slots_, act_gather_);
    act_in_rows_.resize(act_slots_.size(), obs_dim + static_cast<std::size_t>(n_));
    for (std::size_t r = 0; r < act_slots_.size(); ++r) {
      double* row = act_in_rows_.row_ptr(r);
      const double* src = act_gather_.row_ptr(r);
      std::copy(src, src + obs_dim, row);
      for (int j = 0; j < n_; ++j) row[obs_dim + static_cast<std::size_t>(j)] =
          j == k ? 1.0 : 0.0;
    }
    nn::softmax_into(actor_.net().forward(act_in_rows_), act_probs_);
    for (std::size_t r = 0; r < act_slots_.size(); ++r) {
      const std::size_t s = act_slots_[r];
      const double* p = act_probs_.row_ptr(r);
      const std::size_t a =
          explore ? rngs[s]->categorical(p, act_probs_.cols())
                  : static_cast<std::size_t>(
                        std::max_element(p, p + act_probs_.cols()) - p);
      cmds_out[s * static_cast<std::size_t>(n) + static_cast<std::size_t>(k)] =
          grid_.decode(a);
    }
  }
}

std::size_t MaacTrainer::sample_action(int agent, const std::vector<double>& obs,
                                       Rng& rng, bool greedy) {
  return actor_.act(actor_obs(obs, agent), rng, greedy);
}

std::vector<sim::TwistCmd> MaacTrainer::act(const sim::LaneWorld& world, Rng& rng,
                                            bool explore) {
  std::vector<sim::TwistCmd> cmds;
  for (int k = 0; k < n_; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    cmds.push_back(grid_.decode(
        sample_action(k, baseline_obs(world, vi), rng, /*greedy=*/!explore)));
  }
  return cmds;
}

void MaacTrainer::update(Rng& rng) {
  OBS_SPAN("maac/update");
  OBS_PHASE("update");
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_steps))) return;
  auto batch = buffer_.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();
  const std::size_t A = grid_.size();
  const std::size_t N = static_cast<std::size_t>(n_);
  const std::size_t m = N - 1;

  // Fills actor_in_ with [obs ; onehot(agent)] rows for agent j's (next_)obs.
  auto fill_actor_in = [&](int j, bool next) {
    actor_in_.resize(B, obs_dim_ + N);
    for_rows(B, [&](std::size_t b) {
      const auto& o = next ? batch[b]->next_obs[static_cast<std::size_t>(j)]
                           : batch[b]->obs[static_cast<std::size_t>(j)];
      double* row = actor_in_.row_ptr(b);
      std::copy(o.begin(), o.end(), row);
      for (std::size_t k = 0; k < N; ++k)
        row[obs_dim_ + k] = (static_cast<int>(k) == j) ? 1.0 : 0.0;
    });
  };

  // Sample next actions for every agent from the current (shared) actor, and
  // keep their log-probs for the soft target.
  next_actions_.resize(N);
  next_logp_.resize(N);
  for (int j = 0; j < n_; ++j) {
    auto& na = next_actions_[static_cast<std::size_t>(j)];
    auto& nl = next_logp_[static_cast<std::size_t>(j)];
    na.resize(B);
    nl.resize(B);
    fill_actor_in(j, /*next=*/true);
    const nn::Matrix& logits = actor_.net().forward(actor_in_);
    nn::log_softmax_into(logits, logp_);
    nn::softmax_into(logits, probs_);
    for (std::size_t b = 0; b < B; ++b) {
      // Inverse-CDF draw straight off the probability row (no row copy).
      const double* p = probs_.row_ptr(b);
      const double u = rng.uniform(0.0, 1.0);
      std::size_t a = A - 1;
      double acc = 0.0;
      for (std::size_t c = 0; c < A; ++c) {
        acc += p[c];
        if (u < acc) { a = c; break; }
      }
      na[b] = a;
      nl[b] = logp_(b, a);
    }
  }

  // Fills own_m_ / others_m_ for a focal agent from (next_)obs and actions.
  auto fill_own = [&](int i, bool next) {
    own_m_.resize(B, obs_dim_);
    for_rows(B, [&](std::size_t b) {
      const auto& o = next ? batch[b]->next_obs[static_cast<std::size_t>(i)]
                           : batch[b]->obs[static_cast<std::size_t>(i)];
      std::copy(o.begin(), o.end(), own_m_.row_ptr(b));
    });
  };
  auto fill_others = [&](int focal, auto obs_of, auto action_of) {
    others_m_.resize(m * B, obs_dim_ + A);
    others_m_.fill(0.0);
    // Row index r = jj·B + b over the non-focal agents, flattened so every
    // row is written by exactly one task.
    for_rows(m * B, [&](std::size_t r) {
      const std::size_t jj = r / B;
      const std::size_t b = r % B;
      int j = static_cast<int>(jj);
      if (j >= focal) ++j;  // skip the focal agent, preserving agent order
      const std::vector<double>& o = obs_of(j, b);
      double* row = others_m_.row_ptr(r);
      std::copy(o.begin(), o.end(), row);
      row[obs_dim_ + action_of(j, b)] = 1.0;
    });
  };

  // ----- critic update (all agents share one critic; grads accumulate) -----
  critic_->zero_grad();
  y_.resize(B);
  taken_.resize(B);
  for (int i = 0; i < n_; ++i) {
    fill_own(i, /*next=*/true);
    fill_others(
        i, [&](int j, std::size_t b) -> const std::vector<double>& {
          return batch[b]->next_obs[static_cast<std::size_t>(j)];
        },
        [&](int j, std::size_t b) { return next_actions_[static_cast<std::size_t>(j)][b]; });
    critic_target_->forward(own_m_, others_m_, tgt_pass_);

    for_rows(B, [&](std::size_t b) {
      const std::size_t a_next = next_actions_[static_cast<std::size_t>(i)][b];
      const double soft_q = tgt_pass_.q(b, a_next) -
                            cfg_.alpha * next_logp_[static_cast<std::size_t>(i)][b];
      y_[b] = batch[b]->rewards[static_cast<std::size_t>(i)] +
              (batch[b]->done ? 0.0 : cfg_.gamma * soft_q);
    });

    fill_own(i, /*next=*/false);
    for (std::size_t b = 0; b < B; ++b)
      taken_[b] = batch[b]->actions[static_cast<std::size_t>(i)];
    fill_others(
        i, [&](int j, std::size_t b) -> const std::vector<double>& {
          return batch[b]->obs[static_cast<std::size_t>(j)];
        },
        [&](int j, std::size_t b) { return batch[b]->actions[static_cast<std::size_t>(j)]; });
    critic_->forward(own_m_, others_m_, pass_);
    nn::mse_loss_selected_into(pass_.q, taken_, y_, crit_grad_);
    critic_->backward(pass_, crit_grad_);
  }
  critic_->clip_grad_norm(cfg_.grad_clip);
  critic_opt_->step();

  // ----- actor update (expected soft policy gradient, exact over actions) --
  // J_t = Σ_a π(a|o)(Q(a) − α log π(a));   dJ/dlogit_c = π_c (f_c − E[f]),
  // f_a = Q_a − α log π_a. Critic treated as a constant.
  actor_.net().zero_grad();
  for (int i = 0; i < n_; ++i) {
    fill_own(i, /*next=*/false);
    fill_others(
        i, [&](int j, std::size_t b) -> const std::vector<double>& {
          return batch[b]->obs[static_cast<std::size_t>(j)];
        },
        [&](int j, std::size_t b) { return batch[b]->actions[static_cast<std::size_t>(j)]; });
    critic_->forward(own_m_, others_m_, pass_);

    fill_actor_in(i, /*next=*/false);
    const nn::Matrix& logits = actor_.net().forward(actor_in_);
    nn::softmax_into(logits, probs_);
    nn::log_softmax_into(logits, logp_);
    dlogits_.resize(B, A);
    const double inv = 1.0 / static_cast<double>(B * N);
    for_rows(B, [&](std::size_t b) {
      double mean_f = 0.0;
      for (std::size_t a = 0; a < A; ++a) {
        mean_f += probs_(b, a) * (pass_.q(b, a) - cfg_.alpha * logp_(b, a));
      }
      for (std::size_t a = 0; a < A; ++a) {
        const double f = pass_.q(b, a) - cfg_.alpha * logp_(b, a);
        dlogits_(b, a) = -probs_(b, a) * (f - mean_f) * inv;  // minimize −J
      }
    });
    actor_.net().backward(dlogits_);
  }
  actor_.net().clip_grad_norm(cfg_.grad_clip);
  actor_opt_->step();

  critic_target_->soft_update_from(*critic_, cfg_.tau);
}

void MaacTrainer::train(int episodes, Rng& rng, const EpisodeHook& hook) {
  for (int ep = 0; ep < episodes; ++ep) {
    OBS_SPAN("maac/episode");
    OBS_PHASE("episode");
    world_.reset(rng);
    rl::EpisodeStats stats;

    while (!world_.done()) {
      Transition t;
      t.obs.resize(static_cast<std::size_t>(n_));
      t.actions.resize(static_cast<std::size_t>(n_));
      std::vector<sim::TwistCmd> cmds;
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        t.obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
        t.actions[static_cast<std::size_t>(k)] =
            sample_action(k, t.obs[static_cast<std::size_t>(k)], rng, /*greedy=*/false);
        cmds.push_back(grid_.decode(t.actions[static_cast<std::size_t>(k)]));
      }

      auto result = world_.step(cmds, rng);
      stats.team_reward += mean_of(result.reward);
      if (result.collision) stats.collision = true;
      ++total_steps_;

      t.rewards = result.reward;
      t.done = result.done;
      t.next_obs.resize(static_cast<std::size_t>(n_));
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        t.next_obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
      }
      buffer_.add(std::move(t));

      if (total_steps_ % cfg_.update_every == 0) update(rng);
    }

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());
    record_episode("maac", ep, stats);
    if (hook) hook(ep, stats);
  }
}

}  // namespace hero::algos
