#include "algos/maac.h"

#include <algorithm>

#include "common/stats.h"
#include "nn/losses.h"

namespace hero::algos {

MaacTrainer::MaacTrainer(const sim::Scenario& scenario, const MaacConfig& cfg, Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      grid_(rl::ActionGrid::standard()),
      n_(world_.num_learners()),
      obs_dim_(baseline_obs_dim(world_)),
      actor_(obs_dim_ + static_cast<std::size_t>(n_), cfg.hidden, grid_.size(), rng),
      buffer_(cfg.buffer_capacity) {
  critic_ = std::make_unique<AttentionCritic>(obs_dim_, grid_.size(), cfg_.embed_dim,
                                              cfg_.hidden, rng);
  critic_target_ = std::make_unique<AttentionCritic>(*critic_);
  actor_opt_ = std::make_unique<nn::Adam>(actor_.net().params(), cfg_.lr * 0.5);
  critic_opt_ = std::make_unique<nn::Adam>(critic_->params(), cfg_.lr);
}

std::vector<double> MaacTrainer::actor_obs(const std::vector<double>& obs,
                                           int agent) const {
  std::vector<double> in = obs;
  for (int j = 0; j < n_; ++j) in.push_back(j == agent ? 1.0 : 0.0);
  return in;
}

std::size_t MaacTrainer::sample_action(int agent, const std::vector<double>& obs,
                                       Rng& rng, bool greedy) {
  return actor_.act(actor_obs(obs, agent), rng, greedy);
}

std::vector<sim::TwistCmd> MaacTrainer::act(const sim::LaneWorld& world, Rng& rng,
                                            bool explore) {
  std::vector<sim::TwistCmd> cmds;
  for (int k = 0; k < n_; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    cmds.push_back(grid_.decode(
        sample_action(k, baseline_obs(world, vi), rng, /*greedy=*/!explore)));
  }
  return cmds;
}

void MaacTrainer::update(Rng& rng) {
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_steps))) return;
  auto batch = buffer_.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();
  const std::size_t A = grid_.size();
  const std::size_t m = static_cast<std::size_t>(n_ - 1);

  // Sample next actions for every agent from the current (shared) actor, and
  // keep their log-probs for the soft target.
  std::vector<std::vector<std::size_t>> next_actions(
      static_cast<std::size_t>(n_), std::vector<std::size_t>(B));
  std::vector<std::vector<double>> next_logp(static_cast<std::size_t>(n_),
                                             std::vector<double>(B));
  for (int j = 0; j < n_; ++j) {
    std::vector<std::vector<double>> rows;
    rows.reserve(B);
    for (const auto* t : batch)
      rows.push_back(actor_obs(t->next_obs[static_cast<std::size_t>(j)], j));
    nn::Matrix logits = actor_.net().forward(nn::Matrix::stack_rows(rows));
    nn::Matrix logp = nn::log_softmax(logits);
    nn::Matrix probs = nn::softmax(logits);
    for (std::size_t b = 0; b < B; ++b) {
      const std::size_t a = rng.categorical(probs.row_vec(b));
      next_actions[static_cast<std::size_t>(j)][b] = a;
      next_logp[static_cast<std::size_t>(j)][b] = logp(b, a);
    }
  }

  auto build_others_sa = [&](int focal, auto obs_of, auto action_of) {
    nn::Matrix rows(m * B, obs_dim_ + A);
    std::size_t jj = 0;
    for (int j = 0; j < n_; ++j) {
      if (j == focal) continue;
      for (std::size_t b = 0; b < B; ++b) {
        const std::vector<double>& o = obs_of(j, b);
        for (std::size_t c = 0; c < obs_dim_; ++c) rows(jj * B + b, c) = o[c];
        rows(jj * B + b, obs_dim_ + action_of(j, b)) = 1.0;
      }
      ++jj;
    }
    return rows;
  };

  // ----- critic update (all agents share one critic; grads accumulate) -----
  critic_->zero_grad();
  for (int i = 0; i < n_; ++i) {
    std::vector<std::vector<double>> own_next;
    own_next.reserve(B);
    for (const auto* t : batch) own_next.push_back(t->next_obs[static_cast<std::size_t>(i)]);
    nn::Matrix others_next = build_others_sa(
        i, [&](int j, std::size_t b) -> const std::vector<double>& {
          return batch[b]->next_obs[static_cast<std::size_t>(j)];
        },
        [&](int j, std::size_t b) { return next_actions[static_cast<std::size_t>(j)][b]; });
    auto tgt_pass =
        critic_target_->forward(nn::Matrix::stack_rows(own_next), others_next);

    std::vector<double> y(B);
    for (std::size_t b = 0; b < B; ++b) {
      const std::size_t a_next = next_actions[static_cast<std::size_t>(i)][b];
      const double soft_q = tgt_pass.q(b, a_next) -
                            cfg_.alpha * next_logp[static_cast<std::size_t>(i)][b];
      y[b] = batch[b]->rewards[static_cast<std::size_t>(i)] +
             (batch[b]->done ? 0.0 : cfg_.gamma * soft_q);
    }

    std::vector<std::vector<double>> own;
    std::vector<std::size_t> taken;
    own.reserve(B);
    for (const auto* t : batch) {
      own.push_back(t->obs[static_cast<std::size_t>(i)]);
      taken.push_back(t->actions[static_cast<std::size_t>(i)]);
    }
    nn::Matrix others_cur = build_others_sa(
        i, [&](int j, std::size_t b) -> const std::vector<double>& {
          return batch[b]->obs[static_cast<std::size_t>(j)];
        },
        [&](int j, std::size_t b) { return batch[b]->actions[static_cast<std::size_t>(j)]; });
    auto pass = critic_->forward(nn::Matrix::stack_rows(own), others_cur);
    auto loss = nn::mse_loss_selected(pass.q, taken, y);
    critic_->backward(pass, loss.grad);
  }
  critic_->clip_grad_norm(cfg_.grad_clip);
  critic_opt_->step();

  // ----- actor update (expected soft policy gradient, exact over actions) --
  // J_t = Σ_a π(a|o)(Q(a) − α log π(a));   dJ/dlogit_c = π_c (f_c − E[f]),
  // f_a = Q_a − α log π_a. Critic treated as a constant.
  actor_.net().zero_grad();
  for (int i = 0; i < n_; ++i) {
    std::vector<std::vector<double>> own, actor_rows;
    own.reserve(B);
    for (const auto* t : batch) {
      own.push_back(t->obs[static_cast<std::size_t>(i)]);
      actor_rows.push_back(actor_obs(t->obs[static_cast<std::size_t>(i)], i));
    }
    nn::Matrix others_cur = build_others_sa(
        i, [&](int j, std::size_t b) -> const std::vector<double>& {
          return batch[b]->obs[static_cast<std::size_t>(j)];
        },
        [&](int j, std::size_t b) { return batch[b]->actions[static_cast<std::size_t>(j)]; });
    auto pass = critic_->forward(nn::Matrix::stack_rows(own), others_cur);

    nn::Matrix logits = actor_.net().forward(nn::Matrix::stack_rows(actor_rows));
    nn::Matrix probs = nn::softmax(logits);
    nn::Matrix logp = nn::log_softmax(logits);
    nn::Matrix dlogits(B, A);
    const double inv = 1.0 / static_cast<double>(B * static_cast<std::size_t>(n_));
    for (std::size_t b = 0; b < B; ++b) {
      double mean_f = 0.0;
      for (std::size_t a = 0; a < A; ++a) {
        mean_f += probs(b, a) * (pass.q(b, a) - cfg_.alpha * logp(b, a));
      }
      for (std::size_t a = 0; a < A; ++a) {
        const double f = pass.q(b, a) - cfg_.alpha * logp(b, a);
        dlogits(b, a) = -probs(b, a) * (f - mean_f) * inv;  // minimize −J
      }
    }
    actor_.net().backward(dlogits);
  }
  actor_.net().clip_grad_norm(cfg_.grad_clip);
  actor_opt_->step();

  critic_target_->soft_update_from(*critic_, cfg_.tau);
}

void MaacTrainer::train(int episodes, Rng& rng, const EpisodeHook& hook) {
  for (int ep = 0; ep < episodes; ++ep) {
    world_.reset(rng);
    rl::EpisodeStats stats;

    while (!world_.done()) {
      Transition t;
      t.obs.resize(static_cast<std::size_t>(n_));
      t.actions.resize(static_cast<std::size_t>(n_));
      std::vector<sim::TwistCmd> cmds;
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        t.obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
        t.actions[static_cast<std::size_t>(k)] =
            sample_action(k, t.obs[static_cast<std::size_t>(k)], rng, /*greedy=*/false);
        cmds.push_back(grid_.decode(t.actions[static_cast<std::size_t>(k)]));
      }

      auto result = world_.step(cmds, rng);
      stats.team_reward += mean_of(result.reward);
      if (result.collision) stats.collision = true;
      ++total_steps_;

      t.rewards = result.reward;
      t.done = result.done;
      t.next_obs.resize(static_cast<std::size_t>(n_));
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        t.next_obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
      }
      buffer_.add(std::move(t));

      if (total_steps_ % cfg_.update_every == 0) update(rng);
    }

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());
    if (hook) hook(ep, stats);
  }
}

}  // namespace hero::algos
