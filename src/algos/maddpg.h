// MADDPG baseline (Lowe et al. 2017): centralized training with
// decentralized execution. Each agent has a deterministic actor over its
// local observation and a centralized critic over the joint observation and
// joint action (paper Sec. V-A).
#pragma once

#include <memory>
#include <vector>

#include "algos/common.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/policy_heads.h"
#include "rl/replay_buffer.h"
#include "runtime/thread_pool.h"

namespace hero::algos {

struct MaddpgConfig : TrainConfig {};

class MaddpgTrainer : public rl::Controller {
 public:
  MaddpgTrainer(const sim::Scenario& scenario, const MaddpgConfig& cfg, Rng& rng);

  void train(int episodes, Rng& rng, const EpisodeHook& hook = {});

  std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                 bool explore) override;
  // Batch-first deployment: one actor forward per agent over all active
  // slots; exploration noise comes from each slot's own stream in the scalar
  // act()'s order, so commands are bitwise-identical to looping act() per
  // slot in both modes (test_serve.cpp).
  void act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                     sim::TwistCmd* cmds_out) override;

  sim::LaneWorld& world() { return world_; }

 private:
  // act_rows_into body (the _into method stays allocation-free; scratch
  // grows here on batch-shape changes only).
  void batched_act(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                   sim::TwistCmd* cmds_out);
  struct Transition {
    std::vector<std::vector<double>> obs;      // per agent
    std::vector<std::vector<double>> actions;  // per agent
    std::vector<double> rewards;               // per agent
    std::vector<std::vector<double>> next_obs;
    bool done;
  };

  // Per-agent update scratch: agent i's critic/actor phase only touches
  // block i, so the per-agent loop can fan out onto pool workers.
  struct AgentScratch {
    nn::Matrix obs_j;  // agent's observation batch
    nn::Matrix target, q_grad, dq, da, mixed_in;
  };

  std::vector<double> actor_action(int agent, const std::vector<double>& obs,
                                   Rng& rng, bool explore);
  // Agent i's critic regression + actor ascent + target soft updates for an
  // already-assembled joint batch. No RNG; reads only the shared read-only
  // joint matrices and writes agent-indexed state.
  void update_agent(int i, const std::vector<const Transition*>& batch);
  void update(Rng& rng);
  // Runs fn(i) for every agent — on the pool when num_workers > 1
  // (bitwise-identical results either way; see TrainConfig::num_workers).
  void for_agents(const std::function<void(std::size_t)>& fn);

  sim::Scenario scenario_;
  MaddpgConfig cfg_;
  sim::LaneWorld world_;
  int n_;
  std::size_t obs_dim_;
  std::size_t act_dim_;

  std::vector<nn::DeterministicTanhPolicy> actors_, actor_targets_;
  std::vector<nn::Mlp> critics_, critic_targets_;
  std::vector<std::unique_ptr<nn::Adam>> actor_opt_, critic_opt_;
  rl::ReplayBuffer<Transition> buffer_;
  long total_steps_ = 0;

  // Update scratch, reused across update() calls (resized in place).
  // The joint matrices are assembled once per update and read-only during
  // the per-agent phase.
  nn::Matrix joint_obs_, joint_next_obs_, joint_act_, joint_next_act_;
  nn::Matrix next_in_, cur_in_;
  std::vector<AgentScratch> scratch_;  // one per agent
  std::vector<std::size_t> act_slots_;  // act_rows scratch: active slot list
  nn::Matrix act_obs_;                  // act_rows scratch: gathered obs rows
  std::unique_ptr<runtime::ThreadPool> pool_;  // null while num_workers <= 1
};

}  // namespace hero::algos
