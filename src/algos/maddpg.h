// MADDPG baseline (Lowe et al. 2017): centralized training with
// decentralized execution. Each agent has a deterministic actor over its
// local observation and a centralized critic over the joint observation and
// joint action (paper Sec. V-A).
#pragma once

#include <memory>
#include <vector>

#include "algos/common.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/policy_heads.h"
#include "rl/replay_buffer.h"

namespace hero::algos {

struct MaddpgConfig : TrainConfig {};

class MaddpgTrainer : public rl::Controller {
 public:
  MaddpgTrainer(const sim::Scenario& scenario, const MaddpgConfig& cfg, Rng& rng);

  void train(int episodes, Rng& rng, const EpisodeHook& hook = {});

  std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                 bool explore) override;

  sim::LaneWorld& world() { return world_; }

 private:
  struct Transition {
    std::vector<std::vector<double>> obs;      // per agent
    std::vector<std::vector<double>> actions;  // per agent
    std::vector<double> rewards;               // per agent
    std::vector<std::vector<double>> next_obs;
    bool done;
  };

  std::vector<double> actor_action(int agent, const std::vector<double>& obs,
                                   Rng& rng, bool explore);
  void update(Rng& rng);

  sim::Scenario scenario_;
  MaddpgConfig cfg_;
  sim::LaneWorld world_;
  int n_;
  std::size_t obs_dim_;
  std::size_t act_dim_;

  std::vector<nn::DeterministicTanhPolicy> actors_, actor_targets_;
  std::vector<nn::Mlp> critics_, critic_targets_;
  std::vector<std::unique_ptr<nn::Adam>> actor_opt_, critic_opt_;
  rl::ReplayBuffer<Transition> buffer_;
  long total_steps_ = 0;

  // Update scratch, reused across update() calls (resized in place).
  nn::Matrix joint_obs_, joint_next_obs_, joint_act_, joint_next_act_;
  nn::Matrix next_in_, cur_in_, mixed_in_;
  nn::Matrix obs_j_;                // per-agent observation batch
  nn::Matrix target_, q_grad_, dq_, da_;
};

}  // namespace hero::algos
