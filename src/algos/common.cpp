#include "algos/common.h"

#include <algorithm>
#include <string>

#include "obs/obs.h"

namespace hero::algos {

void record_episode(const char* method, int episode, const rl::EpisodeStats& stats) {
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    const std::string prefix(method);
    reg.counter(prefix + ".episodes").inc();
    reg.counter(prefix + ".steps").inc(stats.steps);
    if (stats.collision) reg.counter(prefix + ".collisions").inc();
    if (stats.success) reg.counter(prefix + ".successes").inc();
    reg.histogram(prefix + ".episode_reward",
                  {/*lo=*/-100.0, /*hi=*/100.0, /*buckets=*/64,
                   /*log_scale=*/false})
        .observe(stats.team_reward);
  }
  if (obs::telemetry_enabled()) {
    obs::Telemetry::instance().emit(obs::TelemetryEvent("baseline/episode")
                                        .field("method", method)
                                        .field("episode", episode)
                                        .field("reward", stats.team_reward)
                                        .field("steps", stats.steps)
                                        .field("collision", stats.collision)
                                        .field("success", stats.success)
                                        .field("mean_speed", stats.mean_speed));
  }
  if (obs::health_enabled()) {
    // Baselines report reward/steps only; rules needing update or throughput
    // fields stay dormant, but episodes still count toward the verdict and
    // the rolling-snapshot cadence.
    obs::EpisodeHealth h;
    h.episode = episode;
    h.reward = stats.team_reward;
    h.steps = stats.steps;
    obs::AlertEngine::instance().observe_episode(h);
    obs::note_episode();
  }
}

std::vector<double> baseline_obs(const sim::LaneWorld& world, int vehicle) {
  std::vector<double> obs = world.high_level_obs(vehicle);
  std::vector<double> cam = world.low_level_obs(vehicle, world.lane(vehicle));
  obs.insert(obs.end(), cam.begin(), cam.end());
  return obs;
}

std::size_t baseline_obs_dim(const sim::LaneWorld& world) {
  return world.high_level_obs_dim() + world.low_level_obs_dim();
}

void baseline_obs_into(const sim::BatchLaneWorld& world, int e, int vehicle,
                       double* out) {
  world.high_level_obs_into(e, vehicle, out);
  world.low_level_obs_into(e, vehicle, world.lane(e, vehicle),
                           out + world.high_level_obs_dim());
}

void gather_baseline_rows(const rl::ObsBatch& batch, int agent,
                          const std::vector<std::size_t>& slots, nn::Matrix& out) {
  const std::size_t hl = batch.hl_dim();
  const std::size_t ll = batch.ll_dim();
  out.resize(slots.size(), hl + ll);
  for (std::size_t r = 0; r < slots.size(); ++r) {
    const std::size_t s = slots[r];
    double* row = out.row_ptr(r);
    const double* hsrc = batch.hl_row(s, agent);
    std::copy(hsrc, hsrc + hl, row);
    const double* lsrc = batch.ll_row(s, agent, batch.scalars(s, agent).lane);
    std::copy(lsrc, lsrc + ll, row + hl);
  }
}

std::vector<double> primitive_lo() { return {0.04, -0.25}; }
std::vector<double> primitive_hi() { return {0.20, 0.25}; }

}  // namespace hero::algos
