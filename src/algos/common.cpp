#include "algos/common.h"

namespace hero::algos {

std::vector<double> baseline_obs(const sim::LaneWorld& world, int vehicle) {
  std::vector<double> obs = world.high_level_obs(vehicle);
  std::vector<double> cam = world.low_level_obs(vehicle, world.lane(vehicle));
  obs.insert(obs.end(), cam.begin(), cam.end());
  return obs;
}

std::size_t baseline_obs_dim(const sim::LaneWorld& world) {
  return world.high_level_obs_dim() + world.low_level_obs_dim();
}

std::vector<double> primitive_lo() { return {0.04, -0.25}; }
std::vector<double> primitive_hi() { return {0.20, 0.25}; }

}  // namespace hero::algos
