// Soft actor–critic (Haarnoja et al. 2018) for continuous control.
//
// This is the learner behind HERO's low-level skills (paper Sec. III-D uses
// "the soft actor-critic method" with intrinsic rewards). The agent is
// environment-agnostic: callers drive act()/observe() with raw vectors, so
// the same class trains every skill and is reusable as a standalone
// single-agent RL component.
#pragma once

#include <memory>
#include <vector>

#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/policy_heads.h"
#include "rl/replay_buffer.h"

namespace hero::algos {

struct SacConfig {
  double gamma = 0.95;
  double lr = 0.002;
  double tau = 0.01;
  double alpha = 0.05;  // entropy temperature (paper's H regularization weight)
  std::size_t buffer_capacity = 100000;
  std::size_t batch = 128;
  std::size_t warmup_steps = 500;
  int update_every = 1;
  double grad_clip = 10.0;
  std::vector<std::size_t> hidden = {32, 32};
};

struct SacUpdateStats {
  double critic_loss = 0.0;
  double actor_loss = 0.0;
  double entropy = 0.0;
  bool updated = false;
};

class SacAgent {
 public:
  SacAgent(std::size_t obs_dim, std::vector<double> action_lo,
           std::vector<double> action_hi, const SacConfig& cfg, Rng& rng);

  // Stochastic (training) or deterministic squashed-mean (evaluation) action.
  std::vector<double> act(const std::vector<double>& obs, Rng& rng,
                          bool deterministic = false);

  // Stores the transition and, on schedule, performs a gradient update.
  SacUpdateStats observe(std::vector<double> obs, std::vector<double> action,
                         double reward, std::vector<double> next_obs, bool done,
                         Rng& rng);

  // One gradient update from the replay buffer (no-op before warmup).
  SacUpdateStats update(Rng& rng);

  nn::SquashedGaussianPolicy& policy() { return actor_; }
  nn::Mlp& critic1() { return q1_; }
  nn::Mlp& critic2() { return q2_; }
  long total_steps() const { return total_steps_; }
  const SacConfig& config() const { return cfg_; }

 private:
  struct Transition {
    std::vector<double> obs;
    std::vector<double> action;
    double reward;
    std::vector<double> next_obs;
    bool done;
  };

  SacConfig cfg_;
  std::size_t obs_dim_;
  nn::SquashedGaussianPolicy actor_;
  nn::Mlp q1_, q2_, q1_target_, q2_target_;
  std::unique_ptr<nn::Adam> actor_opt_, q1_opt_, q2_opt_;
  rl::ReplayBuffer<Transition> buffer_;
  long total_steps_ = 0;

  // Update scratch, reused across update() calls (resized in place), so a
  // steady-state update performs no heap allocations.
  nn::Matrix obs_m_, next_m_, act_m_;     // batch assembly
  nn::Matrix next_in_, critic_in_;        // [s ; a] critic inputs
  nn::Matrix target_, q_grad_;            // TD target and dL/dQ
  nn::Matrix dq1_, dq2_, dL_da_;          // actor-update gradients
  nn::SquashedGaussianPolicy::Sample next_sample_, sample_;
  std::vector<double> dL_dlogp_;
};

}  // namespace hero::algos
