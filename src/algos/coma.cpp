#include "algos/coma.h"

#include <algorithm>

#include "common/stats.h"
#include "nn/losses.h"
#include "obs/obs.h"

namespace hero::algos {

ComaTrainer::ComaTrainer(const sim::Scenario& scenario, const ComaConfig& cfg, Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      grid_(rl::ActionGrid::standard()),
      n_(world_.num_learners()),
      obs_dim_(baseline_obs_dim(world_)) {
  const std::size_t critic_in = static_cast<std::size_t>(n_) * obs_dim_ +
                                static_cast<std::size_t>(n_) +
                                static_cast<std::size_t>(n_ - 1) * grid_.size();
  for (int i = 0; i < n_; ++i) {
    actors_.emplace_back(obs_dim_, cfg_.hidden, grid_.size(), rng);
    actor_opt_.push_back(
        std::make_unique<nn::Adam>(actors_.back().net().params(), cfg_.lr));
  }
  critic_ = nn::Mlp(critic_in, cfg_.hidden, grid_.size(), rng);
  critic_target_ = critic_;
  critic_opt_ =
      std::make_unique<nn::Adam>(critic_.params(), cfg_.lr * cfg_.critic_lr_scale);
  if (cfg_.num_workers > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(
        static_cast<std::size_t>(cfg_.num_workers));
  }
}

void ComaTrainer::for_rows(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (pool_) {
    pool_->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

void ComaTrainer::critic_input_into(const StepRecord& rec, int agent,
                                    double* row) const {
  std::size_t c = 0;
  for (double v : rec.joint_obs) row[c++] = v;
  // Agent id one-hot.
  for (int j = 0; j < n_; ++j) row[c++] = (j == agent) ? 1.0 : 0.0;
  // Other agents' actions, one-hot, in agent order skipping `agent`.
  for (int j = 0; j < n_; ++j) {
    if (j == agent) continue;
    for (std::size_t a = 0; a < grid_.size(); ++a) {
      row[c++] = (rec.actions[static_cast<std::size_t>(j)] == a) ? 1.0 : 0.0;
    }
  }
}

void ComaTrainer::act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs,
                                bool explore, sim::TwistCmd* cmds_out) {
  batched_act(batch, rngs, explore, cmds_out);
}

void ComaTrainer::batched_act(const rl::ObsBatch& batch, Rng* const* rngs,
                              bool explore, sim::TwistCmd* cmds_out) {
  OBS_PHASE("act_rows");
  const int n = batch.num_learners();
  HERO_CHECK_MSG(n == n_, "batch has " << n << " learners, trainer has " << n_);
  act_slots_.clear();
  for (std::size_t s = 0; s < batch.count(); ++s) {
    if (batch.slot(s).active) act_slots_.push_back(s);
  }
  if (act_slots_.empty()) return;
  for (int k = 0; k < n; ++k) {
    gather_baseline_rows(batch, k, act_slots_, act_obs_);
    nn::softmax_into(actors_[static_cast<std::size_t>(k)].net().forward(act_obs_),
                     act_probs_);
    for (std::size_t r = 0; r < act_slots_.size(); ++r) {
      const std::size_t s = act_slots_[r];
      const double* p = act_probs_.row_ptr(r);
      const std::size_t a =
          explore ? rngs[s]->categorical(p, act_probs_.cols())
                  : static_cast<std::size_t>(
                        std::max_element(p, p + act_probs_.cols()) - p);
      cmds_out[s * static_cast<std::size_t>(n) + static_cast<std::size_t>(k)] =
          grid_.decode(a);
    }
  }
}

std::vector<sim::TwistCmd> ComaTrainer::act(const sim::LaneWorld& world, Rng& rng,
                                            bool explore) {
  std::vector<sim::TwistCmd> cmds;
  for (int k = 0; k < n_; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    const std::size_t a = actors_[static_cast<std::size_t>(k)].act(
        baseline_obs(world, vi), rng, /*greedy=*/!explore);
    cmds.push_back(grid_.decode(a));
  }
  return cmds;
}

void ComaTrainer::update_from_episode(const std::vector<StepRecord>& episode,
                                      Rng& rng) {
  OBS_SPAN("coma/update");
  OBS_PHASE("update");
  (void)rng;
  if (episode.empty()) return;
  const std::size_t T = episode.size();

  // Monte-Carlo returns (COMA's TD(λ) with λ = 1): G_t = r_t + γ G_{t+1}.
  returns_.resize(T);
  double g = 0.0;
  for (std::size_t t = T; t-- > 0;) {
    g = episode[t].reward + cfg_.gamma * g;
    returns_[t] = g;
  }

  const std::size_t A = grid_.size();
  for (int i = 0; i < n_; ++i) {
    // ----- critic regression: Q(s_t, a^i_t) → G_t -----
    critic_in_m_.resize(T, critic_.in_dim());
    taken_.resize(T);
    for_rows(T, [&](std::size_t t) {
      critic_input_into(episode[t], i, critic_in_m_.row_ptr(t));
      taken_[t] = episode[t].actions[static_cast<std::size_t>(i)];
    });
    const nn::Matrix& qs = critic_.forward(critic_in_m_);
    nn::mse_loss_selected_into(qs, taken_, returns_, closs_grad_);
    critic_.zero_grad();
    critic_.backward(closs_grad_);
    critic_.clip_grad_norm(cfg_.grad_clip);
    critic_opt_->step();

    // ----- actor update with the counterfactual advantage -----
    // Recompute Q after the critic step for a slightly fresher estimate.
    const nn::Matrix& q_now = critic_.forward(critic_in_m_);
    obs_m_.resize(T, obs_dim_);
    for_rows(T, [&](std::size_t t) {
      const auto& o = episode[t].obs[static_cast<std::size_t>(i)];
      std::copy(o.begin(), o.end(), obs_m_.row_ptr(t));
    });

    auto& actor = actors_[static_cast<std::size_t>(i)];
    const nn::Matrix& logits = actor.net().forward(obs_m_);
    nn::softmax_into(logits, probs_);
    nn::log_softmax_into(logits, logp_);

    // Advantage A_t = Q(a_taken) − Σ_a π(a) Q(a); loss = −A·log π(a_taken)
    // − β·H(π). Gradient w.r.t. logits assembled directly.
    const double inv_t = 1.0 / static_cast<double>(T);
    dlogits_.resize(T, A);
    dlogits_.fill(0.0);
    for_rows(T, [&](std::size_t t) {
      double baseline = 0.0;
      for (std::size_t a = 0; a < A; ++a) baseline += probs_(t, a) * q_now(t, a);
      const double adv = q_now(t, taken_[t]) - baseline;
      // policy-gradient part: d(−adv·logπ(a_t))/dlogits = adv·(π − onehot)
      for (std::size_t a = 0; a < A; ++a) {
        dlogits_(t, a) += adv * probs_(t, a) * inv_t;
      }
      dlogits_(t, taken_[t]) -= adv * inv_t;
      // entropy bonus: d(−β·H)/dlogits = β·π·(logπ + H)
      double ent = 0.0;
      for (std::size_t a = 0; a < A; ++a) ent -= probs_(t, a) * logp_(t, a);
      for (std::size_t a = 0; a < A; ++a) {
        dlogits_(t, a) += cfg_.entropy_coef * probs_(t, a) * (logp_(t, a) + ent) * inv_t;
      }
    });
    actor.net().zero_grad();
    actor.net().backward(dlogits_);
    actor.net().clip_grad_norm(cfg_.grad_clip);
    actor_opt_[static_cast<std::size_t>(i)]->step();
  }
  critic_target_.soft_update_from(critic_, cfg_.tau);
}

void ComaTrainer::train(int episodes, Rng& rng, const EpisodeHook& hook) {
  for (int ep = 0; ep < episodes; ++ep) {
    OBS_SPAN("coma/episode");
    OBS_PHASE("episode");
    world_.reset(rng);
    rl::EpisodeStats stats;
    std::vector<StepRecord> episode;

    while (!world_.done()) {
      StepRecord rec;
      rec.obs.resize(static_cast<std::size_t>(n_));
      rec.actions.resize(static_cast<std::size_t>(n_));
      std::vector<sim::TwistCmd> cmds;
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        rec.obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
        rec.joint_obs.insert(rec.joint_obs.end(),
                             rec.obs[static_cast<std::size_t>(k)].begin(),
                             rec.obs[static_cast<std::size_t>(k)].end());
        rec.actions[static_cast<std::size_t>(k)] = actors_[static_cast<std::size_t>(k)].act(
            rec.obs[static_cast<std::size_t>(k)], rng, /*greedy=*/false);
        cmds.push_back(grid_.decode(rec.actions[static_cast<std::size_t>(k)]));
      }

      auto result = world_.step(cmds, rng);
      rec.reward = mean_of(result.reward);
      stats.team_reward += rec.reward;
      if (result.collision) stats.collision = true;
      episode.push_back(std::move(rec));
    }

    update_from_episode(episode, rng);

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());
    record_episode("coma", ep, stats);
    if (hook) hook(ep, stats);
  }
}

}  // namespace hero::algos
