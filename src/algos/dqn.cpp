#include "algos/dqn.h"

#include <algorithm>

#include "common/stats.h"
#include "nn/losses.h"
#include "obs/obs.h"
#include "rl/exploration.h"

namespace hero::algos {

IndependentDqnTrainer::IndependentDqnTrainer(const sim::Scenario& scenario,
                                             const DqnConfig& cfg, Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      grid_(rl::ActionGrid::standard()) {
  const std::size_t obs_dim = baseline_obs_dim(world_);
  const int n = world_.num_learners();
  for (int i = 0; i < n; ++i) {
    q_.emplace_back(obs_dim, cfg_.hidden, grid_.size(), rng);
    q_target_.emplace_back(q_.back());
    opt_.push_back(std::make_unique<nn::Adam>(q_.back().params(), cfg_.lr));
    buffers_.emplace_back(cfg_.buffer_capacity);
    per_buffers_.emplace_back(cfg_.buffer_capacity, cfg_.per_alpha, cfg_.per_beta0);
  }
  scratch_.resize(static_cast<std::size_t>(n));
  if (cfg_.num_workers > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(
        static_cast<std::size_t>(cfg_.num_workers));
  }
}

void IndependentDqnTrainer::act_rows_into(const rl::ObsBatch& batch,
                                          Rng* const* rngs, bool explore,
                                          sim::TwistCmd* cmds_out) {
  batched_act(batch, rngs, explore, cmds_out);
}

void IndependentDqnTrainer::batched_act(const rl::ObsBatch& batch,
                                        Rng* const* rngs, bool explore,
                                        sim::TwistCmd* cmds_out) {
  OBS_PHASE("act_rows");
  const int n = batch.num_learners();
  HERO_CHECK_MSG(n == world_.num_learners(),
                 "batch has " << n << " learners, trainer has "
                              << world_.num_learners());
  act_slots_.clear();
  for (std::size_t s = 0; s < batch.count(); ++s) {
    if (batch.slot(s).active) act_slots_.push_back(s);
  }
  if (act_slots_.empty()) return;
  const double eps = explore ? rl::LinearSchedule(cfg_.eps_start, cfg_.eps_end,
                                                  cfg_.eps_decay_steps)
                                   .value(total_steps_)
                             : 0.0;
  for (int k = 0; k < n; ++k) {
    gather_baseline_rows(batch, k, act_slots_, act_obs_);
    const nn::Matrix& qs = q_[static_cast<std::size_t>(k)].forward(act_obs_);
    for (std::size_t r = 0; r < act_slots_.size(); ++r) {
      const std::size_t s = act_slots_[r];
      std::size_t a;
      if (explore && rngs[s]->chance(eps)) {
        a = rngs[s]->index(grid_.size());
      } else {
        const double* row = qs.row_ptr(r);
        a = static_cast<std::size_t>(
            std::max_element(row, row + qs.cols()) - row);
      }
      cmds_out[s * static_cast<std::size_t>(n) + static_cast<std::size_t>(k)] =
          grid_.decode(a);
    }
  }
}

std::size_t IndependentDqnTrainer::select_action(int agent,
                                                 const std::vector<double>& obs,
                                                 Rng& rng, bool explore) {
  if (explore) {
    const double eps = rl::LinearSchedule(cfg_.eps_start, cfg_.eps_end,
                                          cfg_.eps_decay_steps)
                           .value(total_steps_);
    if (rng.chance(eps)) return rng.index(grid_.size());
  }
  const auto qs = q_[static_cast<std::size_t>(agent)].forward1(obs);
  return static_cast<std::size_t>(std::max_element(qs.begin(), qs.end()) - qs.begin());
}

std::vector<sim::TwistCmd> IndependentDqnTrainer::act(const sim::LaneWorld& world,
                                                      Rng& rng, bool explore) {
  std::vector<sim::TwistCmd> cmds;
  for (int k = 0; k < world.num_learners(); ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    cmds.push_back(grid_.decode(select_action(k, baseline_obs(world, vi), rng, explore)));
  }
  return cmds;
}

double IndependentDqnTrainer::update_math(int agent,
                                          const std::vector<const Transition*>& batch,
                                          const std::vector<double>* weights,
                                          UpdateScratch& s,
                                          std::vector<double>* out_td) {
  const std::size_t ai = static_cast<std::size_t>(agent);
  const std::size_t B = batch.size();
  const std::size_t obs_dim = q_[ai].in_dim();
  s.obs_m.resize(B, obs_dim);
  s.next_m.resize(B, obs_dim);
  s.actions.resize(B);
  for (std::size_t i = 0; i < B; ++i) {
    const Transition& t = *batch[i];
    std::copy(t.obs.begin(), t.obs.end(), s.obs_m.row_ptr(i));
    std::copy(t.next_obs.begin(), t.next_obs.end(), s.next_m.row_ptr(i));
    s.actions[i] = t.action;
  }

  // TD target: r + γ·max_a' Q_target(s', a') for non-terminal transitions.
  const nn::Matrix& next_q = q_target_[ai].forward(s.next_m);
  s.targets.resize(B);
  for (std::size_t i = 0; i < B; ++i) {
    double mx = next_q(i, 0);
    for (std::size_t a = 1; a < grid_.size(); ++a) mx = std::max(mx, next_q(i, a));
    s.targets[i] = batch[i]->reward + (batch[i]->done ? 0.0 : cfg_.gamma * mx);
  }

  auto& net = q_[ai];
  const nn::Matrix& pred = net.forward(s.obs_m);
  const double loss = nn::huber_loss_selected_into(pred, s.actions, s.targets, 1.0,
                                                   weights, s.loss_grad);
  if (out_td) {
    // Capture TD errors before backward/step invalidates `pred`.
    out_td->resize(B);
    for (std::size_t i = 0; i < B; ++i) {
      (*out_td)[i] = pred(i, s.actions[i]) - s.targets[i];
    }
  }
  net.zero_grad();
  net.backward(s.loss_grad);
  net.clip_grad_norm(cfg_.grad_clip);
  opt_[ai]->step();
  q_target_[ai].soft_update_from(net, cfg_.tau);
  return loss;
}

double IndependentDqnTrainer::update_agent(int agent, Rng& rng) {
  OBS_SPAN("dqn/update");
  const std::size_t ai = static_cast<std::size_t>(agent);
  const std::size_t have =
      cfg_.prioritized ? per_buffers_[ai].size() : buffers_[ai].size();
  if (have < std::max(cfg_.batch, cfg_.warmup_steps)) return 0.0;
  ++updates_;

  // Gather the batch (uniform or prioritized with importance weights).
  std::vector<const Transition*> batch;
  rl::PrioritizedSample psample;
  std::vector<double>* weights = nullptr;
  if (cfg_.prioritized) {
    auto& per = per_buffers_[ai];
    per.set_beta(cfg_.per_beta0 +
                 (1.0 - cfg_.per_beta0) *
                     std::min(1.0, static_cast<double>(updates_) /
                                       static_cast<double>(cfg_.per_beta_steps)));
    psample = per.sample(cfg_.batch, rng);
    batch.reserve(psample.indices.size());
    for (std::size_t idx : psample.indices) batch.push_back(&per.at(idx));
    weights = &psample.weights;
  } else {
    batch = buffers_[ai].sample(cfg_.batch, rng);
  }

  UpdateScratch& s = scratch_[ai];
  const double loss =
      update_math(agent, batch, weights, s, cfg_.prioritized ? &s.td : nullptr);
  if (cfg_.prioritized) {
    per_buffers_[ai].update_priorities(psample.indices, s.td);
  }
  return loss;
}

void IndependentDqnTrainer::update_round(Rng& rng) {
  OBS_PHASE("update");
  const int n = world_.num_learners();
  // Prioritized replay stays serial: the β anneal and priority rewrites are
  // keyed to the global update order.
  if (!pool_ || cfg_.prioritized) {
    for (int k = 0; k < n; ++k) update_agent(k, rng);
    return;
  }
  OBS_SPAN("dqn/update_round");
  // Draw every batch serially in agent order (the only RNG consumer), then
  // fan the per-agent gradient math out — each task touches only
  // agent-indexed nets/optimizers/scratch, so the result is bitwise
  // identical to the serial loop.
  sampled_.assign(static_cast<std::size_t>(n), {});
  const std::size_t need = std::max(cfg_.batch, cfg_.warmup_steps);
  for (int k = 0; k < n; ++k) {
    const std::size_t ki = static_cast<std::size_t>(k);
    if (buffers_[ki].size() < need) continue;
    ++updates_;
    sampled_[ki] = buffers_[ki].sample(cfg_.batch, rng);
  }
  pool_->parallel_for(static_cast<std::size_t>(n), [&](std::size_t k) {
    if (sampled_[k].empty()) return;
    update_math(static_cast<int>(k), sampled_[k], nullptr, scratch_[k], nullptr);
  });
}

void IndependentDqnTrainer::train_batched(int episodes, Rng& rng,
                                          const EpisodeHook& hook) {
  const int n = world_.num_learners();
  const int envs = std::max(cfg_.batch_envs, 1);
  const std::size_t obs_dim = baseline_obs_dim(world_);
  // One engine draw keys the run's episode streams (lane i of a round over
  // [first, first+count) draws stream_rng(root, first+i)).
  const std::uint64_t root = rng.engine()();
  if (!bworld_) {
    bworld_ = std::make_unique<sim::BatchLaneWorld>(scenario_.config, envs);
    bsched_ = std::make_unique<runtime::BatchRoundScheduler>(
        static_cast<std::size_t>(envs));
  }

  const std::size_t slots =
      static_cast<std::size_t>(envs) * static_cast<std::size_t>(n);
  std::vector<rl::EpisodeStats> stats(static_cast<std::size_t>(envs));
  std::vector<sim::TwistCmd> cmds(slots);
  std::vector<std::size_t> actions(slots), greedy(slots);
  std::vector<std::size_t> live;
  live.reserve(static_cast<std::size_t>(envs));
  sim::BatchStepResult out;
  nn::Matrix obs_now(slots, obs_dim), obs_next(slots, obs_dim), qin;
  const auto row = [&](std::size_t lane, int k) {
    return lane * static_cast<std::size_t>(n) + static_cast<std::size_t>(k);
  };

  int done_eps = 0;
  while (done_eps < episodes) {
    OBS_SPAN("dqn/batched_round");
    OBS_PHASE("batched_round");
    const std::size_t round = std::min<std::size_t>(
        static_cast<std::size_t>(envs), static_cast<std::size_t>(episodes - done_eps));
    bsched_->begin_round(root, static_cast<std::size_t>(done_eps), round);
    for (std::size_t lane = 0; lane < round; ++lane) {
      bworld_->reset_env(static_cast<int>(lane), bsched_->rng(lane));
      stats[lane] = rl::EpisodeStats{};
      for (int k = 0; k < n; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        baseline_obs_into(*bworld_, static_cast<int>(lane), vi,
                          obs_now.row_ptr(row(lane, k)));
      }
    }

    while (bsched_->live() > 0) {
      live.clear();
      for (std::size_t lane = 0; lane < round; ++lane) {
        if (bsched_->active(lane)) live.push_back(lane);
      }

      // Greedy actions: one batched Q forward per agent over every live
      // lane (the serial path's per-env forward1, fused).
      for (int k = 0; k < n; ++k) {
        qin.resize(live.size(), obs_dim);
        for (std::size_t r = 0; r < live.size(); ++r) {
          const double* src = obs_now.row_ptr(row(live[r], k));
          std::copy(src, src + obs_dim, qin.row_ptr(r));
        }
        const nn::Matrix& qs = q_[static_cast<std::size_t>(k)].forward(qin);
        for (std::size_t r = 0; r < live.size(); ++r) {
          std::size_t best = 0;
          for (std::size_t a = 1; a < grid_.size(); ++a) {
            if (qs(r, a) > qs(r, best)) best = a;
          }
          greedy[row(live[r], k)] = best;
        }
      }
      // ε draws lane-ascending then agent-ascending from each lane's own
      // stream — the serial per-env draw order. The ε schedule advances per
      // synchronized batch step (one batch step ≈ live-lane env steps).
      const double eps = rl::LinearSchedule(cfg_.eps_start, cfg_.eps_end,
                                            cfg_.eps_decay_steps)
                             .value(total_steps_);
      for (std::size_t lane : live) {
        Rng& lrng = bsched_->rng(lane);
        for (int k = 0; k < n; ++k) {
          const std::size_t idx = row(lane, k);
          actions[idx] = lrng.chance(eps) ? lrng.index(grid_.size()) : greedy[idx];
          cmds[idx] = grid_.decode(actions[idx]);
        }
      }

      bworld_->step_all(cmds.data(), bsched_->rng_ptrs(), bsched_->active_mask(),
                        out);
      ++total_steps_;

      for (std::size_t lane : live) {
        double sum = 0.0;
        for (int k = 0; k < n; ++k) {
          const int vi = world_.learners()[static_cast<std::size_t>(k)];
          const std::size_t idx = row(lane, k);
          baseline_obs_into(*bworld_, static_cast<int>(lane), vi,
                            obs_next.row_ptr(idx));
          const double r = out.reward[idx];
          sum += r;
          const double* o0 = obs_now.row_ptr(idx);
          const double* o1 = obs_next.row_ptr(idx);
          Transition t{std::vector<double>(o0, o0 + obs_dim), actions[idx], r,
                       std::vector<double>(o1, o1 + obs_dim), out.done[lane] != 0};
          if (cfg_.prioritized) {
            per_buffers_[static_cast<std::size_t>(k)].add(std::move(t));
          } else {
            buffers_[static_cast<std::size_t>(k)].add(std::move(t));
          }
        }
        stats[lane].team_reward += sum / static_cast<double>(n);
        if (out.collision[lane] != 0) stats[lane].collision = true;
      }

      // Gradient cadence in batch steps — the batching throughput lever
      // (docs/BATCHING.md §cadence).
      if (total_steps_ % cfg_.update_every == 0) update_round(rng);

      for (std::size_t lane : live) {
        if (out.done[lane] == 0) continue;
        const int e = static_cast<int>(lane);
        stats[lane].steps = bworld_->steps(e);
        stats[lane].success =
            !stats[lane].collision &&
            bworld_->lane(e, scenario_.merger_index) == scenario_.merger_target_lane;
        double speed = 0.0;
        for (int vi : world_.learners()) speed += bworld_->mean_speed(e, vi);
        stats[lane].mean_speed = speed / static_cast<double>(n);
        bsched_->finish(lane);
      }
      std::swap(obs_now, obs_next);
    }

    for (std::size_t lane = 0; lane < round; ++lane) {
      const int ep = done_eps + static_cast<int>(lane);
      record_episode("dqn", ep, stats[lane]);
      if (hook) hook(ep, stats[lane]);
    }
    done_eps += static_cast<int>(round);
  }
}

void IndependentDqnTrainer::train(int episodes, Rng& rng, const EpisodeHook& hook) {
  if (cfg_.batch_envs > 0) {
    train_batched(episodes, rng, hook);
    return;
  }
  for (int ep = 0; ep < episodes; ++ep) {
    OBS_SPAN("dqn/episode");
    OBS_PHASE("episode");
    world_.reset(rng);
    rl::EpisodeStats stats;

    while (!world_.done()) {
      const int n = world_.num_learners();
      std::vector<std::vector<double>> obs(static_cast<std::size_t>(n));
      std::vector<std::size_t> actions(static_cast<std::size_t>(n));
      std::vector<sim::TwistCmd> cmds;
      for (int k = 0; k < n; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
        actions[static_cast<std::size_t>(k)] =
            select_action(k, obs[static_cast<std::size_t>(k)], rng, /*explore=*/true);
        cmds.push_back(grid_.decode(actions[static_cast<std::size_t>(k)]));
      }

      auto result = world_.step(cmds, rng);
      stats.team_reward += mean_of(result.reward);
      if (result.collision) stats.collision = true;
      ++total_steps_;

      for (int k = 0; k < n; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        Transition t{std::move(obs[static_cast<std::size_t>(k)]),
                     actions[static_cast<std::size_t>(k)],
                     result.reward[static_cast<std::size_t>(k)],
                     baseline_obs(world_, vi), result.done};
        if (cfg_.prioritized) {
          per_buffers_[static_cast<std::size_t>(k)].add(std::move(t));
        } else {
          buffers_[static_cast<std::size_t>(k)].add(std::move(t));
        }
      }

      if (total_steps_ % cfg_.update_every == 0) update_round(rng);
    }

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());
    record_episode("dqn", ep, stats);
    if (hook) hook(ep, stats);
  }
}

}  // namespace hero::algos
