// MAAC baseline (Iqbal & Sha 2019): multi-actor-attention-critic.
//
// Discrete soft actor–critic with a shared attention critic
// (algos/attention_critic.h) and a shared actor (agent-id one-hot appended
// to the observation — the parameter sharing the paper highlights).
// Off-policy with experience replay, like the original.
#pragma once

#include <memory>
#include <vector>

#include "algos/attention_critic.h"
#include "algos/common.h"
#include "nn/optimizer.h"
#include "nn/policy_heads.h"
#include "rl/discretizer.h"
#include "rl/replay_buffer.h"
#include "runtime/thread_pool.h"

namespace hero::algos {

struct MaacConfig : TrainConfig {
  MaacConfig() { update_every = 4; }  // the attention critic is ~4× a plain MLP

  double alpha = 0.05;        // entropy temperature
  std::size_t embed_dim = 32;
};

class MaacTrainer : public rl::Controller {
 public:
  MaacTrainer(const sim::Scenario& scenario, const MaacConfig& cfg, Rng& rng);

  void train(int episodes, Rng& rng, const EpisodeHook& hook = {});

  std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                 bool explore) override;
  // Batch-first deployment: one shared-actor forward per agent over all
  // active slots (the agent-id one-hot differs per agent, so rows batch
  // across slots, not agents); explore-mode draws come from each slot's own
  // stream in the scalar act()'s order, so commands are bitwise-identical to
  // looping act() per slot in both modes (test_serve.cpp).
  void act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                     sim::TwistCmd* cmds_out) override;

  sim::LaneWorld& world() { return world_; }

 private:
  // act_rows_into body (the _into method stays allocation-free; scratch
  // grows here on batch-shape changes only).
  void batched_act(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                   sim::TwistCmd* cmds_out);
  struct Transition {
    std::vector<std::vector<double>> obs;
    std::vector<std::size_t> actions;
    std::vector<double> rewards;
    std::vector<std::vector<double>> next_obs;
    bool done;
  };

  // Observation with the agent-id one-hot appended (shared-actor input).
  std::vector<double> actor_obs(const std::vector<double>& obs, int agent) const;
  std::size_t sample_action(int agent, const std::vector<double>& obs, Rng& rng,
                            bool greedy);
  void update(Rng& rng);
  // Runs fn(i) for i in [0, n) — on the pool when num_workers > 1. Used for
  // the minibatch-assembly loops (index-addressed row writes ⇒ results are
  // bitwise identical at any worker count). The network passes stay serial:
  // MAAC's actor and attention critic are shared across agents, and the
  // critic accumulates gradients agent by agent.
  void for_rows(std::size_t n, const std::function<void(std::size_t)>& fn);

  sim::Scenario scenario_;
  MaacConfig cfg_;
  sim::LaneWorld world_;
  rl::ActionGrid grid_;
  int n_;
  std::size_t obs_dim_;

  nn::CategoricalPolicy actor_;  // shared across agents
  std::unique_ptr<nn::Adam> actor_opt_;
  std::unique_ptr<AttentionCritic> critic_, critic_target_;
  std::unique_ptr<nn::Adam> critic_opt_;
  rl::ReplayBuffer<Transition> buffer_;
  long total_steps_ = 0;

  // Update scratch, reused across update() calls (resized in place).
  std::vector<std::vector<std::size_t>> next_actions_;
  std::vector<std::vector<double>> next_logp_;
  nn::Matrix actor_in_;            // (B, obs + n) shared-actor input
  nn::Matrix own_m_;               // (B, obs) focal-agent observations
  nn::Matrix others_m_;            // (m·B, obs + |A|) other-agent (s,a) rows
  nn::Matrix probs_, logp_, dlogits_;
  nn::Matrix crit_grad_;           // dL/dQ for the critic update
  AttentionCritic::Pass pass_, tgt_pass_;
  std::vector<std::size_t> act_slots_;   // act_rows scratch: active slot list
  nn::Matrix act_gather_, act_in_rows_, act_probs_;  // act_rows scratch
  std::vector<double> y_;
  std::vector<std::size_t> taken_;
  std::unique_ptr<runtime::ThreadPool> pool_;  // null while num_workers <= 1
};

}  // namespace hero::algos
