// Single-head attention critic (Iqbal & Sha 2019, "Actor-Attention-Critic").
//
// Shared across agents (parameter sharing, as the paper notes for MAAC):
// for agent i the critic embeds the agent's own observation, attends over
// the other agents' (observation, action) embeddings, and outputs Q-values
// for each of agent i's discrete actions:
//
//   e_i = f_s(o_i)
//   u_j = f_sa([o_j ; onehot(a_j)])          for each j ≠ i
//   α_j ∝ exp( (W_q e_i)·(W_k u_j) / √d )
//   x_i = Σ_j α_j · relu(W_v u_j)
//   Q_i(·) = f_head([e_i ; x_i])
//
// Forward/backward are explicit (no autograd); tests finite-difference-check
// the full attention backward pass. Layers are stateless, so Pass carries
// every intermediate backward() needs; reusing one Pass across update steps
// keeps the hot path allocation-free.
#pragma once

#include <vector>

#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace hero::algos {

class AttentionCritic {
 public:
  AttentionCritic(std::size_t obs_dim, std::size_t num_actions,
                  std::size_t embed_dim, const std::vector<std::size_t>& hidden,
                  Rng& rng);

  // Deep copy of the networks; caches and scratch stay with the source
  // (params() holds pointers into by-value members, so they must never be
  // copied). Declaring these also suppresses implicit moves — a move would
  // dangle a previously built param_cache_.
  AttentionCritic(const AttentionCritic& other);
  AttentionCritic& operator=(const AttentionCritic& other);

  // All state forward() needs to hand to backward().
  struct Pass {
    nn::Matrix q;        // (B, |A|) — Q-values for the focal agent's actions
    nn::Matrix attn;     // (B, m)   — attention weights over the others
    // caches (inputs/outputs of the stateless projection layers)
    nn::Matrix e;        // (B, d)   — state embedding
    nn::Matrix u;        // (m·B, d) — other-agent (s,a) embeddings, j-major
    nn::Matrix qvec;     // (B, d)
    nn::Matrix kvec;     // (m·B, d), j-major
    nn::Matrix vpre;     // (m·B, d), pre-ReLU values
    nn::Matrix vvec;     // (m·B, d), post-ReLU
    nn::Matrix head_in;  // (B, 2d)  — [e ; attended context]
    std::size_t batch = 0;
    std::size_t others = 0;
  };

  // `own_obs` is (B, obs_dim); `others_sa` is (m·B, obs_dim + |A|) rows
  // ordered j-major (all rows of other-agent 0 first, then other-agent 1, …)
  // with the action one-hot appended to each observation. The out-parameter
  // overload resizes `p` in place so a reused Pass allocates nothing at
  // steady state.
  void forward(const nn::Matrix& own_obs, const nn::Matrix& others_sa, Pass& p);
  Pass forward(const nn::Matrix& own_obs, const nn::Matrix& others_sa);

  // Backward for dL/dQ; accumulates every internal parameter gradient.
  // Must follow the forward() that produced `pass` (the encoder/head Mlp
  // workspaces still hold that pass's activations).
  void backward(const Pass& pass, const nn::Matrix& dq);

  const std::vector<nn::ParamRef>& params();
  void zero_grad();
  void soft_update_from(AttentionCritic& src, double tau);
  double clip_grad_norm(double max_norm);

  std::size_t obs_dim() const { return obs_dim_; }
  std::size_t num_actions() const { return num_actions_; }
  std::size_t embed_dim() const { return embed_dim_; }

 private:
  std::size_t obs_dim_ = 0;
  std::size_t num_actions_ = 0;
  std::size_t embed_dim_ = 0;

  nn::Mlp state_enc_;  // obs → d
  nn::Mlp sa_enc_;     // obs + |A| → d
  nn::Linear wq_, wk_, wv_;
  nn::ReLU relu_v_;
  nn::Mlp head_;       // 2d → |A|

  // Backward scratch (resized in place each call).
  nn::Matrix de_, dx_, dv_, dk_, dqvec_, du_, dtmp_, dvpre_;
  std::vector<double> scores_, dalpha_, dscore_;

  std::vector<nn::ParamRef> param_cache_;
};

}  // namespace hero::algos
