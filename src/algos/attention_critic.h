// Single-head attention critic (Iqbal & Sha 2019, "Actor-Attention-Critic").
//
// Shared across agents (parameter sharing, as the paper notes for MAAC):
// for agent i the critic embeds the agent's own observation, attends over
// the other agents' (observation, action) embeddings, and outputs Q-values
// for each of agent i's discrete actions:
//
//   e_i = f_s(o_i)
//   u_j = f_sa([o_j ; onehot(a_j)])          for each j ≠ i
//   α_j ∝ exp( (W_q e_i)·(W_k u_j) / √d )
//   x_i = Σ_j α_j · relu(W_v u_j)
//   Q_i(·) = f_head([e_i ; x_i])
//
// Forward/backward are explicit (no autograd); tests finite-difference-check
// the full attention backward pass.
#pragma once

#include <vector>

#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace hero::algos {

class AttentionCritic {
 public:
  AttentionCritic(std::size_t obs_dim, std::size_t num_actions,
                  std::size_t embed_dim, const std::vector<std::size_t>& hidden,
                  Rng& rng);

  // All state forward() needs to hand to backward().
  struct Pass {
    nn::Matrix q;        // (B, |A|) — Q-values for the focal agent's actions
    nn::Matrix attn;     // (B, m)   — attention weights over the others
    // caches
    nn::Matrix qvec;     // (B, d)
    nn::Matrix kvec;     // (m·B, d), j-major
    nn::Matrix vvec;     // (m·B, d), post-ReLU
    nn::Matrix dx_cache; // scratch shape holder
    std::size_t batch = 0;
    std::size_t others = 0;
  };

  // `own_obs` is (B, obs_dim); `others_sa` is (m·B, obs_dim + |A|) rows
  // ordered j-major (all rows of other-agent 0 first, then other-agent 1, …)
  // with the action one-hot appended to each observation.
  Pass forward(const nn::Matrix& own_obs, const nn::Matrix& others_sa);

  // Backward for dL/dQ; accumulates every internal parameter gradient.
  void backward(const Pass& pass, const nn::Matrix& dq);

  std::vector<nn::ParamRef> params();
  void zero_grad();
  void soft_update_from(AttentionCritic& src, double tau);
  double clip_grad_norm(double max_norm);

  std::size_t obs_dim() const { return obs_dim_; }
  std::size_t num_actions() const { return num_actions_; }
  std::size_t embed_dim() const { return embed_dim_; }

 private:
  std::size_t obs_dim_ = 0;
  std::size_t num_actions_ = 0;
  std::size_t embed_dim_ = 0;

  nn::Mlp state_enc_;  // obs → d
  nn::Mlp sa_enc_;     // obs + |A| → d
  nn::Linear wq_, wk_, wv_;
  nn::ReLU relu_v_;
  nn::Mlp head_;       // 2d → |A|
};

}  // namespace hero::algos
