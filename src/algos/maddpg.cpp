#include "algos/maddpg.h"

#include <algorithm>

#include "common/stats.h"
#include "nn/losses.h"
#include "obs/obs.h"
#include "rl/exploration.h"

namespace hero::algos {

MaddpgTrainer::MaddpgTrainer(const sim::Scenario& scenario, const MaddpgConfig& cfg,
                             Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      n_(world_.num_learners()),
      obs_dim_(baseline_obs_dim(world_)),
      act_dim_(primitive_lo().size()),
      buffer_(cfg.buffer_capacity) {
  const std::size_t joint = static_cast<std::size_t>(n_) * (obs_dim_ + act_dim_);
  for (int i = 0; i < n_; ++i) {
    actors_.emplace_back(obs_dim_, cfg_.hidden, primitive_lo(), primitive_hi(), rng);
    actor_targets_.emplace_back(actors_.back());
    critics_.emplace_back(joint, cfg_.hidden, 1, rng);
    critic_targets_.emplace_back(critics_.back());
    actor_opt_.push_back(std::make_unique<nn::Adam>(actors_.back().net().params(),
                                                    cfg_.lr * 0.5));
    critic_opt_.push_back(std::make_unique<nn::Adam>(critics_.back().params(), cfg_.lr));
  }
  scratch_.resize(static_cast<std::size_t>(n_));
  if (cfg_.num_workers > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(
        static_cast<std::size_t>(cfg_.num_workers));
  }
}

void MaddpgTrainer::for_agents(const std::function<void(std::size_t)>& fn) {
  if (pool_) {
    pool_->parallel_for(static_cast<std::size_t>(n_), fn);
  } else {
    for (std::size_t i = 0; i < static_cast<std::size_t>(n_); ++i) fn(i);
  }
}

void MaddpgTrainer::act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs,
                                  bool explore, sim::TwistCmd* cmds_out) {
  batched_act(batch, rngs, explore, cmds_out);
}

void MaddpgTrainer::batched_act(const rl::ObsBatch& batch, Rng* const* rngs,
                                bool explore, sim::TwistCmd* cmds_out) {
  OBS_PHASE("act_rows");
  const int n = batch.num_learners();
  HERO_CHECK_MSG(n == n_, "batch has " << n << " learners, trainer has " << n_);
  act_slots_.clear();
  for (std::size_t s = 0; s < batch.count(); ++s) {
    if (batch.slot(s).active) act_slots_.push_back(s);
  }
  if (act_slots_.empty()) return;
  const std::vector<double> lo = primitive_lo();
  const std::vector<double> hi = primitive_hi();
  for (int k = 0; k < n; ++k) {
    gather_baseline_rows(batch, k, act_slots_, act_obs_);
    // The forward buffer belongs to actor k and is fully consumed before the
    // next agent's forward.
    const nn::Matrix& a = actors_[static_cast<std::size_t>(k)].forward(act_obs_);
    for (std::size_t r = 0; r < act_slots_.size(); ++r) {
      const std::size_t s = act_slots_[r];
      const double* row = a.row_ptr(r);
      double lin = row[0];
      double ang = row[1];
      if (explore) {
        lin = std::clamp(lin + rngs[s]->normal(0.0, cfg_.act_noise), lo[0], hi[0]);
        ang = std::clamp(ang + rngs[s]->normal(0.0, cfg_.act_noise), lo[1], hi[1]);
      }
      cmds_out[s * static_cast<std::size_t>(n) + static_cast<std::size_t>(k)] = {
          lin, ang};
    }
  }
}

std::vector<double> MaddpgTrainer::actor_action(int agent,
                                                const std::vector<double>& obs,
                                                Rng& rng, bool explore) {
  std::vector<double> a = actors_[static_cast<std::size_t>(agent)].act1(obs);
  if (explore) {
    a = rl::gaussian_perturb(a, primitive_lo(), primitive_hi(), cfg_.act_noise, rng);
  }
  return a;
}

std::vector<sim::TwistCmd> MaddpgTrainer::act(const sim::LaneWorld& world, Rng& rng,
                                              bool explore) {
  std::vector<sim::TwistCmd> cmds;
  for (int k = 0; k < n_; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    auto a = actor_action(k, baseline_obs(world, vi), rng, explore);
    cmds.push_back({a[0], a[1]});
  }
  return cmds;
}

void MaddpgTrainer::update(Rng& rng) {
  OBS_SPAN("maddpg/update");
  OBS_PHASE("update");
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_steps))) return;
  auto batch = buffer_.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();
  const std::size_t N = static_cast<std::size_t>(n_);

  // Joint matrices reused by every agent's update, assembled directly into
  // persistent scratch (no per-row flatten vectors).
  joint_obs_.resize(B, N * obs_dim_);
  joint_next_obs_.resize(B, N * obs_dim_);
  joint_act_.resize(B, N * act_dim_);
  for (std::size_t b = 0; b < B; ++b) {
    const Transition& t = *batch[b];
    double* orow = joint_obs_.row_ptr(b);
    double* nrow = joint_next_obs_.row_ptr(b);
    double* arow = joint_act_.row_ptr(b);
    for (std::size_t j = 0; j < N; ++j) {
      std::copy(t.obs[j].begin(), t.obs[j].end(), orow + j * obs_dim_);
      std::copy(t.next_obs[j].begin(), t.next_obs[j].end(), nrow + j * obs_dim_);
      std::copy(t.actions[j].begin(), t.actions[j].end(), arow + j * act_dim_);
    }
  }

  // Target joint action a' = (μ'_1(o'_1), ..., μ'_N(o'_N)). Each agent's
  // target actor reads its own scratch and writes a disjoint column block —
  // index-addressed, so the fan-out below cannot reorder results.
  joint_next_act_.resize(B, N * act_dim_);
  for_agents([&](std::size_t j) {
    nn::Matrix& obs_j = scratch_[j].obs_j;
    obs_j.resize(B, obs_dim_);
    for (std::size_t b = 0; b < B; ++b) {
      const auto& o = batch[b]->next_obs[j];
      std::copy(o.begin(), o.end(), obs_j.row_ptr(b));
    }
    const nn::Matrix& aj = actor_targets_[j].forward(obs_j);
    for (std::size_t b = 0; b < B; ++b) {
      double* row = joint_next_act_.row_ptr(b) + j * act_dim_;
      const double* arow = aj.row_ptr(b);
      for (std::size_t c = 0; c < act_dim_; ++c) row[c] = arow[c];
    }
  });
  joint_next_obs_.hcat_into(joint_next_act_, next_in_);
  joint_obs_.hcat_into(joint_act_, cur_in_);

  for_agents([&](std::size_t i) { update_agent(static_cast<int>(i), batch); });
}

void MaddpgTrainer::update_agent(int i, const std::vector<const Transition*>& batch) {
  const std::size_t B = batch.size();
  const std::size_t N = static_cast<std::size_t>(n_);
  const std::size_t ii = static_cast<std::size_t>(i);
  AgentScratch& s = scratch_[ii];
  auto& critic = critics_[ii];

  // Critic i: y = r_i + γ(1−d) Q'_i(o', a').
  const nn::Matrix& tq = critic_targets_[ii].forward(next_in_);
  s.target.resize(B, 1);
  for (std::size_t b = 0; b < B; ++b) {
    s.target(b, 0) = batch[b]->rewards[ii] +
                     (batch[b]->done ? 0.0 : cfg_.gamma * tq(b, 0));
  }
  const nn::Matrix& pred = critic.forward(cur_in_);
  nn::mse_loss_into(pred, s.target, s.q_grad);
  critic.zero_grad();
  critic.backward(s.q_grad);
  critic.clip_grad_norm(cfg_.grad_clip);
  critic_opt_[ii]->step();

  // Actor i: ascend Q_i(o, [a_{-i} from buffer, a_i = μ_i(o_i)]).
  s.obs_j.resize(B, obs_dim_);
  for (std::size_t b = 0; b < B; ++b) {
    const auto& o = batch[b]->obs[ii];
    std::copy(o.begin(), o.end(), s.obs_j.row_ptr(b));
  }
  const nn::Matrix& a_i = actors_[ii].forward(s.obs_j);
  // [joint_obs | joint_act] with agent i's action block replaced by μ_i.
  s.mixed_in.copy_from(cur_in_);
  const std::size_t a_off = N * obs_dim_ + ii * act_dim_;
  for (std::size_t b = 0; b < B; ++b) {
    double* row = s.mixed_in.row_ptr(b) + a_off;
    const double* arow = a_i.row_ptr(b);
    for (std::size_t c = 0; c < act_dim_; ++c) row[c] = arow[c];
  }
  critic.forward(s.mixed_in);
  s.dq.resize(B, 1);
  s.dq.fill(-1.0 / static_cast<double>(B));
  // The critic is frozen here — only dQ/da is needed, so skip its
  // parameter-gradient accumulation.
  const nn::Matrix& din = critic.backward_input(s.dq);
  din.col_slice_into(a_off, a_off + act_dim_, s.da);
  auto& actor = actors_[ii];
  actor.net().zero_grad();
  actor.backward(s.da);
  actor.net().clip_grad_norm(cfg_.grad_clip);
  actor_opt_[ii]->step();

  actor_targets_[ii].net().soft_update_from(actor.net(), cfg_.tau);
  critic_targets_[ii].soft_update_from(critic, cfg_.tau);
}

void MaddpgTrainer::train(int episodes, Rng& rng, const EpisodeHook& hook) {
  for (int ep = 0; ep < episodes; ++ep) {
    OBS_SPAN("maddpg/episode");
    OBS_PHASE("episode");
    world_.reset(rng);
    rl::EpisodeStats stats;

    while (!world_.done()) {
      Transition t;
      t.obs.resize(static_cast<std::size_t>(n_));
      t.actions.resize(static_cast<std::size_t>(n_));
      std::vector<sim::TwistCmd> cmds;
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        t.obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
        t.actions[static_cast<std::size_t>(k)] =
            actor_action(k, t.obs[static_cast<std::size_t>(k)], rng, /*explore=*/true);
        cmds.push_back({t.actions[static_cast<std::size_t>(k)][0],
                        t.actions[static_cast<std::size_t>(k)][1]});
      }

      auto result = world_.step(cmds, rng);
      stats.team_reward += mean_of(result.reward);
      if (result.collision) stats.collision = true;
      ++total_steps_;

      t.rewards = result.reward;
      t.done = result.done;
      t.next_obs.resize(static_cast<std::size_t>(n_));
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        t.next_obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
      }
      buffer_.add(std::move(t));

      if (total_steps_ % cfg_.update_every == 0) update(rng);
    }

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());
    record_episode("maddpg", ep, stats);
    if (hook) hook(ep, stats);
  }
}

}  // namespace hero::algos
