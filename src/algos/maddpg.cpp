#include "algos/maddpg.h"

#include <algorithm>

#include "common/stats.h"
#include "nn/losses.h"
#include "rl/exploration.h"

namespace hero::algos {

namespace {
// Flattens per-agent rows into one joint row: [o_1 .. o_N] or [a_1 .. a_N].
std::vector<double> flatten(const std::vector<std::vector<double>>& parts) {
  std::vector<double> out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}
}  // namespace

MaddpgTrainer::MaddpgTrainer(const sim::Scenario& scenario, const MaddpgConfig& cfg,
                             Rng& rng)
    : scenario_(scenario),
      cfg_(cfg),
      world_(scenario.config),
      n_(world_.num_learners()),
      obs_dim_(baseline_obs_dim(world_)),
      act_dim_(primitive_lo().size()),
      buffer_(cfg.buffer_capacity) {
  const std::size_t joint = static_cast<std::size_t>(n_) * (obs_dim_ + act_dim_);
  for (int i = 0; i < n_; ++i) {
    actors_.emplace_back(obs_dim_, cfg_.hidden, primitive_lo(), primitive_hi(), rng);
    actor_targets_.emplace_back(actors_.back());
    critics_.emplace_back(joint, cfg_.hidden, 1, rng);
    critic_targets_.emplace_back(critics_.back());
    actor_opt_.push_back(std::make_unique<nn::Adam>(actors_.back().net().params(),
                                                    cfg_.lr * 0.5));
    critic_opt_.push_back(std::make_unique<nn::Adam>(critics_.back().params(), cfg_.lr));
  }
}

std::vector<double> MaddpgTrainer::actor_action(int agent,
                                                const std::vector<double>& obs,
                                                Rng& rng, bool explore) {
  std::vector<double> a = actors_[static_cast<std::size_t>(agent)].act1(obs);
  if (explore) {
    a = rl::gaussian_perturb(a, primitive_lo(), primitive_hi(), cfg_.act_noise, rng);
  }
  return a;
}

std::vector<sim::TwistCmd> MaddpgTrainer::act(const sim::LaneWorld& world, Rng& rng,
                                              bool explore) {
  std::vector<sim::TwistCmd> cmds;
  for (int k = 0; k < n_; ++k) {
    const int vi = world.learners()[static_cast<std::size_t>(k)];
    auto a = actor_action(k, baseline_obs(world, vi), rng, explore);
    cmds.push_back({a[0], a[1]});
  }
  return cmds;
}

void MaddpgTrainer::update(Rng& rng) {
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_steps))) return;
  auto batch = buffer_.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();

  // Joint matrices reused by every agent's update.
  std::vector<std::vector<double>> joint_obs_rows, joint_next_obs_rows, joint_act_rows;
  joint_obs_rows.reserve(B);
  for (const auto* t : batch) {
    joint_obs_rows.push_back(flatten(t->obs));
    joint_next_obs_rows.push_back(flatten(t->next_obs));
    joint_act_rows.push_back(flatten(t->actions));
  }
  nn::Matrix joint_obs = nn::Matrix::stack_rows(joint_obs_rows);
  nn::Matrix joint_act = nn::Matrix::stack_rows(joint_act_rows);

  // Target joint action a' = (μ'_1(o'_1), ..., μ'_N(o'_N)).
  nn::Matrix joint_next_act(B, static_cast<std::size_t>(n_) * act_dim_);
  for (int j = 0; j < n_; ++j) {
    std::vector<std::vector<double>> next_obs_j;
    next_obs_j.reserve(B);
    for (const auto* t : batch) next_obs_j.push_back(t->next_obs[static_cast<std::size_t>(j)]);
    nn::Matrix aj =
        actor_targets_[static_cast<std::size_t>(j)].forward(nn::Matrix::stack_rows(next_obs_j));
    for (std::size_t i = 0; i < B; ++i)
      for (std::size_t c = 0; c < act_dim_; ++c)
        joint_next_act(i, static_cast<std::size_t>(j) * act_dim_ + c) = aj(i, c);
  }
  nn::Matrix next_in =
      nn::Matrix::stack_rows(joint_next_obs_rows).hcat(joint_next_act);
  nn::Matrix cur_in = joint_obs.hcat(joint_act);

  for (int i = 0; i < n_; ++i) {
    auto& critic = critics_[static_cast<std::size_t>(i)];
    // Critic i: y = r_i + γ(1−d) Q'_i(o', a').
    nn::Matrix tq = critic_targets_[static_cast<std::size_t>(i)].forward(next_in);
    nn::Matrix target(B, 1);
    for (std::size_t b = 0; b < B; ++b) {
      target(b, 0) = batch[b]->rewards[static_cast<std::size_t>(i)] +
                     (batch[b]->done ? 0.0 : cfg_.gamma * tq(b, 0));
    }
    nn::Matrix pred = critic.forward(cur_in);
    auto loss = nn::mse_loss(pred, target);
    critic.zero_grad();
    critic.backward(loss.grad);
    critic.clip_grad_norm(cfg_.grad_clip);
    critic_opt_[static_cast<std::size_t>(i)]->step();

    // Actor i: ascend Q_i(o, [a_{-i} from buffer, a_i = μ_i(o_i)]).
    std::vector<std::vector<double>> obs_i;
    obs_i.reserve(B);
    for (const auto* t : batch) obs_i.push_back(t->obs[static_cast<std::size_t>(i)]);
    nn::Matrix obs_i_m = nn::Matrix::stack_rows(obs_i);
    nn::Matrix a_i = actors_[static_cast<std::size_t>(i)].forward(obs_i_m);
    nn::Matrix mixed_act = joint_act;
    for (std::size_t b = 0; b < B; ++b)
      for (std::size_t c = 0; c < act_dim_; ++c)
        mixed_act(b, static_cast<std::size_t>(i) * act_dim_ + c) = a_i(b, c);
    nn::Matrix q = critic.forward(joint_obs.hcat(mixed_act));
    (void)q;
    nn::Matrix dq(B, 1, -1.0 / static_cast<double>(B));
    critic.zero_grad();
    nn::Matrix din = critic.backward(dq);
    critic.zero_grad();
    const std::size_t a_off = static_cast<std::size_t>(n_) * obs_dim_ +
                              static_cast<std::size_t>(i) * act_dim_;
    auto& actor = actors_[static_cast<std::size_t>(i)];
    actor.net().zero_grad();
    actor.backward(din.col_slice(a_off, a_off + act_dim_));
    actor.net().clip_grad_norm(cfg_.grad_clip);
    actor_opt_[static_cast<std::size_t>(i)]->step();
  }

  for (int i = 0; i < n_; ++i) {
    actor_targets_[static_cast<std::size_t>(i)].net().soft_update_from(
        actors_[static_cast<std::size_t>(i)].net(), cfg_.tau);
    critic_targets_[static_cast<std::size_t>(i)].soft_update_from(
        critics_[static_cast<std::size_t>(i)], cfg_.tau);
  }
}

void MaddpgTrainer::train(int episodes, Rng& rng, const EpisodeHook& hook) {
  for (int ep = 0; ep < episodes; ++ep) {
    world_.reset(rng);
    rl::EpisodeStats stats;

    while (!world_.done()) {
      Transition t;
      t.obs.resize(static_cast<std::size_t>(n_));
      t.actions.resize(static_cast<std::size_t>(n_));
      std::vector<sim::TwistCmd> cmds;
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        t.obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
        t.actions[static_cast<std::size_t>(k)] =
            actor_action(k, t.obs[static_cast<std::size_t>(k)], rng, /*explore=*/true);
        cmds.push_back({t.actions[static_cast<std::size_t>(k)][0],
                        t.actions[static_cast<std::size_t>(k)][1]});
      }

      auto result = world_.step(cmds, rng);
      stats.team_reward += mean_of(result.reward);
      if (result.collision) stats.collision = true;
      ++total_steps_;

      t.rewards = result.reward;
      t.done = result.done;
      t.next_obs.resize(static_cast<std::size_t>(n_));
      for (int k = 0; k < n_; ++k) {
        const int vi = world_.learners()[static_cast<std::size_t>(k)];
        t.next_obs[static_cast<std::size_t>(k)] = baseline_obs(world_, vi);
      }
      buffer_.add(std::move(t));

      if (total_steps_ % cfg_.update_every == 0) update(rng);
    }

    stats.steps = world_.steps();
    stats.success = !stats.collision &&
                    world_.lane(scenario_.merger_index) == scenario_.merger_target_lane;
    double speed = 0.0;
    for (int vi : world_.learners()) speed += world_.mean_speed(vi);
    stats.mean_speed = speed / static_cast<double>(world_.num_learners());
    if (hook) hook(ep, stats);
  }
}

}  // namespace hero::algos
