#include "algos/sac.h"

#include <algorithm>

#include "nn/losses.h"

namespace hero::algos {

SacAgent::SacAgent(std::size_t obs_dim, std::vector<double> action_lo,
                   std::vector<double> action_hi, const SacConfig& cfg, Rng& rng)
    : cfg_(cfg),
      obs_dim_(obs_dim),
      actor_(obs_dim, cfg.hidden, std::move(action_lo), std::move(action_hi), rng),
      q1_(obs_dim + actor_.action_dim(), cfg.hidden, 1, rng),
      q2_(obs_dim + actor_.action_dim(), cfg.hidden, 1, rng),
      q1_target_(q1_),
      q2_target_(q2_),
      buffer_(cfg.buffer_capacity) {
  actor_opt_ = std::make_unique<nn::Adam>(actor_.net().params(), cfg_.lr);
  q1_opt_ = std::make_unique<nn::Adam>(q1_.params(), cfg_.lr);
  q2_opt_ = std::make_unique<nn::Adam>(q2_.params(), cfg_.lr);
}

std::vector<double> SacAgent::act(const std::vector<double>& obs, Rng& rng,
                                  bool deterministic) {
  HERO_CHECK(obs.size() == obs_dim_);
  return actor_.act1(obs, rng, deterministic);
}

SacUpdateStats SacAgent::observe(std::vector<double> obs, std::vector<double> action,
                                 double reward, std::vector<double> next_obs,
                                 bool done, Rng& rng) {
  buffer_.add({std::move(obs), std::move(action), reward, std::move(next_obs), done});
  ++total_steps_;
  if (total_steps_ % cfg_.update_every == 0) return update(rng);
  return {};
}

SacUpdateStats SacAgent::update(Rng& rng) {
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_steps))) return {};
  SacUpdateStats stats;
  stats.updated = true;

  auto batch = buffer_.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();
  const std::size_t k = actor_.action_dim();

  std::vector<std::vector<double>> obs_rows, next_rows, act_rows;
  obs_rows.reserve(B);
  for (const auto* t : batch) {
    obs_rows.push_back(t->obs);
    next_rows.push_back(t->next_obs);
    act_rows.push_back(t->action);
  }
  nn::Matrix obs_m = nn::Matrix::stack_rows(obs_rows);
  nn::Matrix next_m = nn::Matrix::stack_rows(next_rows);
  nn::Matrix act_m = nn::Matrix::stack_rows(act_rows);

  // ----- critic update: y = r + γ(1−d)[min Q'(s',ã') − α log π(ã'|s')] -----
  auto next_sample = actor_.sample(next_m, rng);
  nn::Matrix next_in = next_m.hcat(next_sample.actions);
  nn::Matrix tq1 = q1_target_.forward(next_in);
  nn::Matrix tq2 = q2_target_.forward(next_in);
  nn::Matrix target(B, 1);
  for (std::size_t i = 0; i < B; ++i) {
    const double soft_v =
        std::min(tq1(i, 0), tq2(i, 0)) - cfg_.alpha * next_sample.log_prob[i];
    target(i, 0) =
        batch[i]->reward + (batch[i]->done ? 0.0 : cfg_.gamma * soft_v);
  }

  nn::Matrix critic_in = obs_m.hcat(act_m);
  for (auto [q, opt] : {std::pair<nn::Mlp*, nn::Adam*>{&q1_, q1_opt_.get()},
                        std::pair<nn::Mlp*, nn::Adam*>{&q2_, q2_opt_.get()}}) {
    nn::Matrix pred = q->forward(critic_in);
    auto loss = nn::mse_loss(pred, target);
    stats.critic_loss += 0.5 * loss.loss;
    q->zero_grad();
    q->backward(loss.grad);
    q->clip_grad_norm(cfg_.grad_clip);
    opt->step();
  }

  // ----- actor update: minimize E[α log π(ã|s) − min Q(s, ã)] -----
  auto sample = actor_.sample(obs_m, rng);
  nn::Matrix actor_in = obs_m.hcat(sample.actions);
  nn::Matrix aq1 = q1_.forward(actor_in);
  nn::Matrix aq2 = q2_.forward(actor_in);

  // dL/dQ = −1/B through whichever critic attains the minimum per sample.
  const double inv_b = 1.0 / static_cast<double>(B);
  nn::Matrix dq1(B, 1), dq2(B, 1);
  double actor_loss = 0.0;
  for (std::size_t i = 0; i < B; ++i) {
    const double qmin = std::min(aq1(i, 0), aq2(i, 0));
    actor_loss += (cfg_.alpha * sample.log_prob[i] - qmin) * inv_b;
    (aq1(i, 0) <= aq2(i, 0) ? dq1 : dq2)(i, 0) = -inv_b;
  }
  stats.actor_loss = actor_loss;

  q1_.zero_grad();
  q2_.zero_grad();
  nn::Matrix din1 = q1_.backward(dq1);
  nn::Matrix din2 = q2_.backward(dq2);
  nn::Matrix dL_da = din1.col_slice(obs_dim_, obs_dim_ + k);
  dL_da += din2.col_slice(obs_dim_, obs_dim_ + k);
  // Discard the critic parameter grads accumulated by this pass.
  q1_.zero_grad();
  q2_.zero_grad();

  std::vector<double> dL_dlogp(B, cfg_.alpha * inv_b);
  actor_.net().zero_grad();
  actor_.backward(sample, dL_da, dL_dlogp);
  actor_.net().clip_grad_norm(cfg_.grad_clip);
  actor_opt_->step();

  double ent = 0.0;
  for (double lp : sample.log_prob) ent -= lp;
  stats.entropy = ent * inv_b;

  // ----- target networks -----
  q1_target_.soft_update_from(q1_, cfg_.tau);
  q2_target_.soft_update_from(q2_, cfg_.tau);
  return stats;
}

}  // namespace hero::algos
