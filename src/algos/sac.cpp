#include "algos/sac.h"

#include <algorithm>
#include <cmath>

#include "nn/losses.h"
#include "obs/phase.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hero::algos {

SacAgent::SacAgent(std::size_t obs_dim, std::vector<double> action_lo,
                   std::vector<double> action_hi, const SacConfig& cfg, Rng& rng)
    : cfg_(cfg),
      obs_dim_(obs_dim),
      actor_(obs_dim, cfg.hidden, std::move(action_lo), std::move(action_hi), rng),
      q1_(obs_dim + actor_.action_dim(), cfg.hidden, 1, rng),
      q2_(obs_dim + actor_.action_dim(), cfg.hidden, 1, rng),
      q1_target_(q1_),
      q2_target_(q2_),
      buffer_(cfg.buffer_capacity) {
  actor_opt_ = std::make_unique<nn::Adam>(actor_.net().params(), cfg_.lr);
  q1_opt_ = std::make_unique<nn::Adam>(q1_.params(), cfg_.lr);
  q2_opt_ = std::make_unique<nn::Adam>(q2_.params(), cfg_.lr);
}

std::vector<double> SacAgent::act(const std::vector<double>& obs, Rng& rng,
                                  bool deterministic) {
  HERO_CHECK(obs.size() == obs_dim_);
  return actor_.act1(obs, rng, deterministic);
}

SacUpdateStats SacAgent::observe(std::vector<double> obs, std::vector<double> action,
                                 double reward, std::vector<double> next_obs,
                                 bool done, Rng& rng) {
  buffer_.add({std::move(obs), std::move(action), reward, std::move(next_obs), done});
  ++total_steps_;
  if (total_steps_ % cfg_.update_every == 0) return update(rng);
  return {};
}

SacUpdateStats SacAgent::update(Rng& rng) {
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_steps))) return {};
  OBS_SPAN("sac/update");
  OBS_PHASE("update");
  if (obs::metrics_enabled()) {
    obs::Registry::instance().counter("sac.updates").inc();
  }
  SacUpdateStats stats;
  stats.updated = true;

  const auto batch = [&] {
    OBS_PHASE("replay");
    return buffer_.sample(cfg_.batch, rng);
  }();
  const std::size_t B = batch.size();
  const std::size_t k = actor_.action_dim();

  // Assemble the batch straight into reusable matrices (no row-vector stack).
  obs_m_.resize(B, obs_dim_);
  next_m_.resize(B, obs_dim_);
  act_m_.resize(B, k);
  for (std::size_t i = 0; i < B; ++i) {
    const Transition& t = *batch[i];
    std::copy(t.obs.begin(), t.obs.end(), obs_m_.row_ptr(i));
    std::copy(t.next_obs.begin(), t.next_obs.end(), next_m_.row_ptr(i));
    std::copy(t.action.begin(), t.action.end(), act_m_.row_ptr(i));
  }

  // ----- critic update: y = r + γ(1−d)[min Q'(s',ã') − α log π(ã'|s')] -----
  actor_.sample_into(next_m_, rng, /*deterministic=*/false, next_sample_);
  next_m_.hcat_into(next_sample_.actions, next_in_);
  const nn::Matrix& tq1 = q1_target_.forward(next_in_);
  const nn::Matrix& tq2 = q2_target_.forward(next_in_);
  target_.resize(B, 1);
  for (std::size_t i = 0; i < B; ++i) {
    const double soft_v =
        std::min(tq1(i, 0), tq2(i, 0)) - cfg_.alpha * next_sample_.log_prob[i];
    target_(i, 0) =
        batch[i]->reward + (batch[i]->done ? 0.0 : cfg_.gamma * soft_v);
  }
  HERO_DCHECK_FINITE(target_, "SacAgent::update critic TD target");

  obs_m_.hcat_into(act_m_, critic_in_);
  for (auto [q, opt] : {std::pair<nn::Mlp*, nn::Adam*>{&q1_, q1_opt_.get()},
                        std::pair<nn::Mlp*, nn::Adam*>{&q2_, q2_opt_.get()}}) {
    const nn::Matrix& pred = q->forward(critic_in_);
    stats.critic_loss += 0.5 * nn::mse_loss_into(pred, target_, q_grad_);
    q->zero_grad();
    q->backward(q_grad_);
    q->clip_grad_norm(cfg_.grad_clip);
    opt->step();
  }

  // ----- actor update: minimize E[α log π(ã|s) − min Q(s, ã)] -----
  actor_.sample_into(obs_m_, rng, /*deterministic=*/false, sample_);
  obs_m_.hcat_into(sample_.actions, critic_in_);
  const nn::Matrix& aq1 = q1_.forward(critic_in_);
  const nn::Matrix& aq2 = q2_.forward(critic_in_);

  // dL/dQ = −1/B through whichever critic attains the minimum per sample.
  const double inv_b = 1.0 / static_cast<double>(B);
  dq1_.resize(B, 1);
  dq2_.resize(B, 1);
  dq1_.fill(0.0);
  dq2_.fill(0.0);
  double actor_loss = 0.0;
  for (std::size_t i = 0; i < B; ++i) {
    const double qmin = std::min(aq1(i, 0), aq2(i, 0));
    actor_loss += (cfg_.alpha * sample_.log_prob[i] - qmin) * inv_b;
    (aq1(i, 0) <= aq2(i, 0) ? dq1_ : dq2_)(i, 0) = -inv_b;
  }
  stats.actor_loss = actor_loss;

  // Input-gradient-only backward: the critics are frozen in this step, so
  // skip their dW/db accumulation entirely (no zero_grad bracketing needed).
  const nn::Matrix& din1 = q1_.backward_input(dq1_);
  const nn::Matrix& din2 = q2_.backward_input(dq2_);
  din1.col_slice_into(obs_dim_, obs_dim_ + k, dL_da_);
  din2.col_slice_into(obs_dim_, obs_dim_ + k, dL_da_, /*accumulate=*/true);

  HERO_DCHECK_MSG(std::isfinite(actor_loss),
                  "SacAgent::update non-finite actor loss " << actor_loss);
  HERO_DCHECK_FINITE(dL_da_, "SacAgent::update dL/da");
  dL_dlogp_.assign(B, cfg_.alpha * inv_b);
  actor_.net().zero_grad();
  actor_.backward(sample_, dL_da_, dL_dlogp_);
  actor_.net().clip_grad_norm(cfg_.grad_clip);
  actor_opt_->step();

  double ent = 0.0;
  for (double lp : sample_.log_prob) ent -= lp;
  stats.entropy = ent * inv_b;

  // ----- target networks -----
  q1_target_.soft_update_from(q1_, cfg_.tau);
  q2_target_.soft_update_from(q2_, cfg_.tau);
  return stats;
}

}  // namespace hero::algos
