// Independent Deep Q-learning baseline (paper Sec. V-A).
//
// Each agent trains its own Q-network from its local observation and the
// shared team reward; there is no coordination signal beyond that reward —
// the canonical DTDE lower bound. Actions come from the discretized
// primitive grid (rl::ActionGrid).
#pragma once

#include <memory>
#include <vector>

#include "algos/common.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/discretizer.h"
#include "rl/prioritized_replay.h"
#include "rl/replay_buffer.h"
#include "runtime/batch_rollout.h"
#include "runtime/thread_pool.h"
#include "sim/batch_lane_world.h"

namespace hero::algos {

struct DqnConfig : TrainConfig {
  // Prioritized experience replay (Schaul et al. 2016); β anneals linearly
  // from per_beta0 to 1 over per_beta_steps gradient updates.
  bool prioritized = false;
  double per_alpha = 0.6;
  double per_beta0 = 0.4;
  long per_beta_steps = 20000;
};

class IndependentDqnTrainer : public rl::Controller {
 public:
  IndependentDqnTrainer(const sim::Scenario& scenario, const DqnConfig& cfg, Rng& rng);

  // Runs `episodes` training episodes (exploring, learning); invokes `hook`
  // with the stats of every episode.
  void train(int episodes, Rng& rng, const EpisodeHook& hook = {});

  // rl::Controller: greedy when explore == false.
  std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                 bool explore) override;
  // Batch-first deployment: one Q forward per agent over all active slots
  // instead of one per (slot, agent). Per-slot ε draws come from that slot's
  // own stream in the scalar act()'s order, so commands are bitwise-identical
  // to looping act() per slot in both modes (test_serve.cpp).
  void act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                     sim::TwistCmd* cmds_out) override;

  sim::LaneWorld& world() { return world_; }
  const sim::Scenario& scenario() const { return scenario_; }
  long total_steps() const { return total_steps_; }

 private:
  struct Transition {
    std::vector<double> obs;
    std::size_t action;
    double reward;
    std::vector<double> next_obs;
    bool done;
  };

  // Per-agent update scratch: one block per agent so the gradient math of
  // independent agents can run on pool workers without sharing matrices.
  struct UpdateScratch {
    nn::Matrix obs_m, next_m, loss_grad;
    std::vector<double> targets, td;
    std::vector<std::size_t> actions;
  };

  std::size_t select_action(int agent, const std::vector<double>& obs, Rng& rng,
                            bool explore);
  // act_rows_into body (the _into method stays allocation-free; scratch
  // grows here on batch-shape changes only).
  void batched_act(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                   sim::TwistCmd* cmds_out);
  double update_agent(int agent, Rng& rng);
  // The gradient step on agent's Q-net for an already-sampled batch — no RNG,
  // touches only agent-indexed state, so it can run on a pool worker.
  double update_math(int agent, const std::vector<const Transition*>& batch,
                     const std::vector<double>* weights, UpdateScratch& s,
                     std::vector<double>* out_td);
  // One update across all agents: serial per agent by default; with
  // num_workers > 1 and uniform replay, batches are drawn serially in agent
  // order and the math fans out (bitwise-identical results either way).
  void update_round(Rng& rng);
  // Batch-first collection (cfg_.batch_envs > 0): rounds of batch_envs
  // episodes step in lockstep through a BatchLaneWorld, ε-greedy over one
  // batched Q forward per agent per step, with the update and ε clocks
  // counting synchronized batch steps (docs/BATCHING.md).
  void train_batched(int episodes, Rng& rng, const EpisodeHook& hook);

  sim::Scenario scenario_;
  DqnConfig cfg_;
  sim::LaneWorld world_;
  rl::ActionGrid grid_;

  std::vector<nn::Mlp> q_;
  std::vector<nn::Mlp> q_target_;
  std::vector<std::unique_ptr<nn::Adam>> opt_;
  std::vector<rl::ReplayBuffer<Transition>> buffers_;
  std::vector<rl::PrioritizedReplayBuffer<Transition>> per_buffers_;
  long total_steps_ = 0;
  long updates_ = 0;

  std::vector<UpdateScratch> scratch_;  // one per agent
  std::vector<std::size_t> act_slots_;  // act_rows scratch: active slot list
  nn::Matrix act_obs_;                  // act_rows scratch: gathered obs rows
  std::vector<std::vector<const Transition*>> sampled_;  // parallel round staging
  std::unique_ptr<runtime::ThreadPool> pool_;  // null while num_workers <= 1

  // Batch-first collection state (null while batch_envs == 0).
  std::unique_ptr<sim::BatchLaneWorld> bworld_;
  std::unique_ptr<runtime::BatchRoundScheduler> bsched_;
};

}  // namespace hero::algos
