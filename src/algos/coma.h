// COMA baseline (Foerster et al. 2018): counterfactual multi-agent policy
// gradients. On-policy actors with a centralized critic that outputs
// Q(s, ·) over agent i's discrete actions given the other agents' actions;
// the counterfactual baseline b = Σ_a π_i(a|o_i) Q(s, a) marginalizes out
// agent i for per-agent credit assignment (paper Sec. V-A).
#pragma once

#include <memory>
#include <vector>

#include "algos/common.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/policy_heads.h"
#include "rl/discretizer.h"
#include "runtime/thread_pool.h"

namespace hero::algos {

struct ComaConfig : TrainConfig {
  double entropy_coef = 0.01;
  double critic_lr_scale = 2.0;  // critic learns faster than the actors
};

class ComaTrainer : public rl::Controller {
 public:
  ComaTrainer(const sim::Scenario& scenario, const ComaConfig& cfg, Rng& rng);

  void train(int episodes, Rng& rng, const EpisodeHook& hook = {});

  std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng& rng,
                                 bool explore) override;
  // Batch-first deployment: one actor forward per agent over all active
  // slots; explore-mode categorical draws come from each slot's own stream
  // in the scalar act()'s order, so commands are bitwise-identical to
  // looping act() per slot in both modes (test_serve.cpp).
  void act_rows_into(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                     sim::TwistCmd* cmds_out) override;

  sim::LaneWorld& world() { return world_; }

 private:
  // act_rows_into body (the _into method stays allocation-free; scratch
  // grows here on batch-shape changes only).
  void batched_act(const rl::ObsBatch& batch, Rng* const* rngs, bool explore,
                   sim::TwistCmd* cmds_out);
  // One time-step of on-policy experience for the whole team.
  struct StepRecord {
    std::vector<std::vector<double>> obs;  // per agent (local)
    std::vector<double> joint_obs;         // concatenated
    std::vector<std::size_t> actions;      // per agent
    double reward;                         // shared team reward
  };

  // Critic input for agent i at one step: [joint_obs | onehot(i) | onehot
  // actions of the other agents], written into a preallocated matrix row.
  void critic_input_into(const StepRecord& rec, int agent, double* row) const;
  void update_from_episode(const std::vector<StepRecord>& episode, Rng& rng);
  // Runs fn(t) for t in [0, n) — on the pool when num_workers > 1. Used for
  // the per-timestep batch-assembly loops (index-addressed row writes, so
  // results are bitwise identical at any worker count). The gradient chain
  // itself stays serial: COMA's critic is one shared network whose steps are
  // interleaved with the per-agent actor updates.
  void for_rows(std::size_t n, const std::function<void(std::size_t)>& fn);

  sim::Scenario scenario_;
  ComaConfig cfg_;
  sim::LaneWorld world_;
  rl::ActionGrid grid_;
  int n_;
  std::size_t obs_dim_;

  std::vector<nn::CategoricalPolicy> actors_;
  std::vector<std::unique_ptr<nn::Adam>> actor_opt_;
  nn::Mlp critic_, critic_target_;
  std::unique_ptr<nn::Adam> critic_opt_;

  // Update scratch, reused across episodes (resized in place).
  nn::Matrix critic_in_m_, obs_m_, dlogits_, probs_, logp_, closs_grad_;
  std::vector<std::size_t> act_slots_;   // act_rows scratch: active slot list
  nn::Matrix act_obs_, act_probs_;       // act_rows scratch
  std::vector<double> returns_;
  std::vector<std::size_t> taken_;
  std::unique_ptr<runtime::ThreadPool> pool_;  // null while num_workers <= 1
};

}  // namespace hero::algos
