// Deep deterministic policy gradient (Lillicrap et al. 2016), single-agent.
//
// Included both as a library component (the paper's preliminaries build on
// it) and as the per-agent core that MADDPG extends with a centralized
// critic. Environment-agnostic, same calling convention as SacAgent.
#pragma once

#include <memory>
#include <vector>

#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/policy_heads.h"
#include "rl/replay_buffer.h"

namespace hero::algos {

struct DdpgConfig {
  double gamma = 0.95;
  double lr_actor = 0.001;
  double lr_critic = 0.002;
  double tau = 0.01;
  std::size_t buffer_capacity = 100000;
  std::size_t batch = 128;
  std::size_t warmup_steps = 500;
  int update_every = 1;
  double grad_clip = 10.0;
  double noise_stddev = 0.1;  // Gaussian exploration noise
  std::vector<std::size_t> hidden = {32, 32};
};

struct DdpgUpdateStats {
  double critic_loss = 0.0;
  double actor_objective = 0.0;  // mean Q under the current policy
  bool updated = false;
};

class DdpgAgent {
 public:
  DdpgAgent(std::size_t obs_dim, std::vector<double> action_lo,
            std::vector<double> action_hi, const DdpgConfig& cfg, Rng& rng);

  std::vector<double> act(const std::vector<double>& obs, Rng& rng, bool explore);

  DdpgUpdateStats observe(std::vector<double> obs, std::vector<double> action,
                          double reward, std::vector<double> next_obs, bool done,
                          Rng& rng);
  DdpgUpdateStats update(Rng& rng);

  nn::DeterministicTanhPolicy& policy() { return actor_; }
  nn::Mlp& critic() { return q_; }

 private:
  struct Transition {
    std::vector<double> obs;
    std::vector<double> action;
    double reward;
    std::vector<double> next_obs;
    bool done;
  };

  DdpgConfig cfg_;
  std::size_t obs_dim_;
  nn::DeterministicTanhPolicy actor_;
  nn::DeterministicTanhPolicy actor_target_;
  nn::Mlp q_, q_target_;
  std::unique_ptr<nn::Adam> actor_opt_, q_opt_;
  rl::ReplayBuffer<Transition> buffer_;
  long total_steps_ = 0;
};

}  // namespace hero::algos
