#include "algos/attention_critic.h"

#include <cmath>

namespace hero::algos {

AttentionCritic::AttentionCritic(std::size_t obs_dim, std::size_t num_actions,
                                 std::size_t embed_dim,
                                 const std::vector<std::size_t>& hidden, Rng& rng)
    : obs_dim_(obs_dim),
      num_actions_(num_actions),
      embed_dim_(embed_dim),
      state_enc_(obs_dim, {embed_dim}, embed_dim, rng),
      sa_enc_(obs_dim + num_actions, {embed_dim}, embed_dim, rng),
      wq_(embed_dim, embed_dim, rng),
      wk_(embed_dim, embed_dim, rng),
      wv_(embed_dim, embed_dim, rng),
      relu_v_(embed_dim),
      head_(2 * embed_dim, hidden, num_actions, rng) {}

AttentionCritic::Pass AttentionCritic::forward(const nn::Matrix& own_obs,
                                               const nn::Matrix& others_sa) {
  const std::size_t B = own_obs.rows();
  HERO_CHECK(own_obs.cols() == obs_dim_);
  HERO_CHECK(others_sa.cols() == obs_dim_ + num_actions_);
  HERO_CHECK(others_sa.rows() % B == 0);
  const std::size_t m = others_sa.rows() / B;
  HERO_CHECK_MSG(m >= 1, "attention critic needs at least one other agent");

  Pass p;
  p.batch = B;
  p.others = m;

  nn::Matrix e = state_enc_.forward(own_obs);            // (B, d)
  nn::Matrix u = sa_enc_.forward(others_sa);             // (mB, d)
  p.qvec = wq_.forward(e);                               // (B, d)
  p.kvec = wk_.forward(u);                               // (mB, d)
  p.vvec = relu_v_.forward(wv_.forward(u));              // (mB, d)

  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(embed_dim_));
  // Attention scores and weights per batch row.
  p.attn = nn::Matrix(B, m);
  for (std::size_t b = 0; b < B; ++b) {
    double mx = -1e300;
    std::vector<double> scores(m);
    for (std::size_t j = 0; j < m; ++j) {
      double s = 0.0;
      const std::size_t row = j * B + b;
      for (std::size_t c = 0; c < embed_dim_; ++c) s += p.qvec(b, c) * p.kvec(row, c);
      scores[j] = s * inv_sqrt_d;
      mx = std::max(mx, scores[j]);
    }
    double z = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      scores[j] = std::exp(scores[j] - mx);
      z += scores[j];
    }
    for (std::size_t j = 0; j < m; ++j) p.attn(b, j) = scores[j] / z;
  }

  // Attended context x = Σ_j α_j v_j, then head([e ; x]).
  nn::Matrix head_in(B, 2 * embed_dim_);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t c = 0; c < embed_dim_; ++c) head_in(b, c) = e(b, c);
    for (std::size_t c = 0; c < embed_dim_; ++c) {
      double x = 0.0;
      for (std::size_t j = 0; j < m; ++j) x += p.attn(b, j) * p.vvec(j * B + b, c);
      head_in(b, embed_dim_ + c) = x;
    }
  }
  p.q = head_.forward(head_in);
  return p;
}

void AttentionCritic::backward(const Pass& p, const nn::Matrix& dq) {
  const std::size_t B = p.batch;
  const std::size_t m = p.others;
  const std::size_t d = embed_dim_;
  HERO_CHECK(dq.rows() == B && dq.cols() == num_actions_);

  nn::Matrix dhead_in = head_.backward(dq);  // (B, 2d)
  nn::Matrix de(B, d);                       // accumulates into state encoder
  nn::Matrix dx(B, d);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t c = 0; c < d; ++c) {
      de(b, c) = dhead_in(b, c);
      dx(b, c) = dhead_in(b, d + c);
    }
  }

  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));
  nn::Matrix dv(m * B, d);
  nn::Matrix dk(m * B, d);
  nn::Matrix dqvec(B, d);
  for (std::size_t b = 0; b < B; ++b) {
    // dα_j = dx · v_j ; softmax backward → dscore.
    std::vector<double> dalpha(m), dscore(m);
    double dot_sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < d; ++c) s += dx(b, c) * p.vvec(j * B + b, c);
      dalpha[j] = s;
      dot_sum += p.attn(b, j) * s;
    }
    for (std::size_t j = 0; j < m; ++j) {
      dscore[j] = p.attn(b, j) * (dalpha[j] - dot_sum);
    }
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t row = j * B + b;
      for (std::size_t c = 0; c < d; ++c) {
        dv(row, c) = p.attn(b, j) * dx(b, c);
        dk(row, c) = dscore[j] * p.qvec(b, c) * inv_sqrt_d;
        dqvec(b, c) += dscore[j] * p.kvec(row, c) * inv_sqrt_d;
      }
    }
  }

  // Route through the projection layers back into the encoders.
  de += wq_.backward(dqvec);
  nn::Matrix du = wk_.backward(dk);
  du += wv_.backward(relu_v_.backward(dv));
  sa_enc_.backward(du);
  state_enc_.backward(de);
}

std::vector<nn::ParamRef> AttentionCritic::params() {
  std::vector<nn::ParamRef> out;
  for (auto p : state_enc_.params()) out.push_back(p);
  for (auto p : sa_enc_.params()) out.push_back(p);
  for (auto p : wq_.params()) out.push_back(p);
  for (auto p : wk_.params()) out.push_back(p);
  for (auto p : wv_.params()) out.push_back(p);
  for (auto p : head_.params()) out.push_back(p);
  return out;
}

void AttentionCritic::zero_grad() {
  for (auto p : params()) p.grad->fill(0.0);
}

void AttentionCritic::soft_update_from(AttentionCritic& src, double tau) {
  auto dst_p = params();
  auto src_p = src.params();
  HERO_CHECK(dst_p.size() == src_p.size());
  for (std::size_t i = 0; i < dst_p.size(); ++i) {
    nn::Matrix& dstv = *dst_p[i].value;
    const nn::Matrix& srcv = *src_p[i].value;
    HERO_CHECK(dstv.same_shape(srcv));
    for (std::size_t k = 0; k < dstv.size(); ++k) {
      dstv.data()[k] = tau * srcv.data()[k] + (1.0 - tau) * dstv.data()[k];
    }
  }
}

double AttentionCritic::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  auto ps = params();
  for (auto p : ps)
    for (std::size_t k = 0; k < p.grad->size(); ++k)
      sq += p.grad->data()[k] * p.grad->data()[k];
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto p : ps)
      for (std::size_t k = 0; k < p.grad->size(); ++k) p.grad->data()[k] *= scale;
  }
  return norm;
}

}  // namespace hero::algos
