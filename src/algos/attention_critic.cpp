#include "algos/attention_critic.h"

#include <cmath>

namespace hero::algos {

AttentionCritic::AttentionCritic(std::size_t obs_dim, std::size_t num_actions,
                                 std::size_t embed_dim,
                                 const std::vector<std::size_t>& hidden, Rng& rng)
    : obs_dim_(obs_dim),
      num_actions_(num_actions),
      embed_dim_(embed_dim),
      state_enc_(obs_dim, {embed_dim}, embed_dim, rng),
      sa_enc_(obs_dim + num_actions, {embed_dim}, embed_dim, rng),
      wq_(embed_dim, embed_dim, rng),
      wk_(embed_dim, embed_dim, rng),
      wv_(embed_dim, embed_dim, rng),
      relu_v_(embed_dim),
      head_(2 * embed_dim, hidden, num_actions, rng) {}

AttentionCritic::AttentionCritic(const AttentionCritic& other)
    : obs_dim_(other.obs_dim_),
      num_actions_(other.num_actions_),
      embed_dim_(other.embed_dim_),
      state_enc_(other.state_enc_),
      sa_enc_(other.sa_enc_),
      wq_(other.wq_),
      wk_(other.wk_),
      wv_(other.wv_),
      relu_v_(other.relu_v_),
      head_(other.head_) {}

AttentionCritic& AttentionCritic::operator=(const AttentionCritic& other) {
  if (this == &other) return *this;
  obs_dim_ = other.obs_dim_;
  num_actions_ = other.num_actions_;
  embed_dim_ = other.embed_dim_;
  state_enc_ = other.state_enc_;
  sa_enc_ = other.sa_enc_;
  wq_ = other.wq_;
  wk_ = other.wk_;
  wv_ = other.wv_;
  relu_v_ = other.relu_v_;
  head_ = other.head_;
  param_cache_.clear();
  return *this;
}

void AttentionCritic::forward(const nn::Matrix& own_obs, const nn::Matrix& others_sa,
                              Pass& p) {
  const std::size_t B = own_obs.rows();
  HERO_CHECK(own_obs.cols() == obs_dim_);
  HERO_CHECK(others_sa.cols() == obs_dim_ + num_actions_);
  HERO_CHECK(others_sa.rows() % B == 0);
  const std::size_t m = others_sa.rows() / B;
  HERO_CHECK_MSG(m >= 1, "attention critic needs at least one other agent");

  p.batch = B;
  p.others = m;

  p.e.copy_from(state_enc_.forward(own_obs));  // (B, d)
  p.u.copy_from(sa_enc_.forward(others_sa));   // (mB, d)
  wq_.forward_into(p.e, p.qvec);               // (B, d)
  wk_.forward_into(p.u, p.kvec);               // (mB, d)
  wv_.forward_into(p.u, p.vpre);               // (mB, d)
  relu_v_.forward_into(p.vpre, p.vvec);

  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(embed_dim_));
  // Attention scores and weights per batch row.
  p.attn.resize(B, m);
  scores_.resize(m);
  for (std::size_t b = 0; b < B; ++b) {
    double mx = -1e300;
    for (std::size_t j = 0; j < m; ++j) {
      double s = 0.0;
      const double* krow = p.kvec.row_ptr(j * B + b);
      const double* qrow = p.qvec.row_ptr(b);
      for (std::size_t c = 0; c < embed_dim_; ++c) s += qrow[c] * krow[c];
      scores_[j] = s * inv_sqrt_d;
      mx = std::max(mx, scores_[j]);
    }
    double z = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      scores_[j] = std::exp(scores_[j] - mx);
      z += scores_[j];
    }
    for (std::size_t j = 0; j < m; ++j) p.attn(b, j) = scores_[j] / z;
  }

  // Attended context x = Σ_j α_j v_j, then head([e ; x]).
  p.head_in.resize(B, 2 * embed_dim_);
  for (std::size_t b = 0; b < B; ++b) {
    double* hrow = p.head_in.row_ptr(b);
    const double* erow = p.e.row_ptr(b);
    for (std::size_t c = 0; c < embed_dim_; ++c) hrow[c] = erow[c];
    for (std::size_t c = 0; c < embed_dim_; ++c) hrow[embed_dim_ + c] = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double a = p.attn(b, j);
      const double* vrow = p.vvec.row_ptr(j * B + b);
      for (std::size_t c = 0; c < embed_dim_; ++c) hrow[embed_dim_ + c] += a * vrow[c];
    }
  }
  p.q.copy_from(head_.forward(p.head_in));
}

AttentionCritic::Pass AttentionCritic::forward(const nn::Matrix& own_obs,
                                               const nn::Matrix& others_sa) {
  Pass p;
  forward(own_obs, others_sa, p);
  return p;
}

void AttentionCritic::backward(const Pass& p, const nn::Matrix& dq) {
  const std::size_t B = p.batch;
  const std::size_t m = p.others;
  const std::size_t d = embed_dim_;
  HERO_CHECK(dq.rows() == B && dq.cols() == num_actions_);

  const nn::Matrix& dhead_in = head_.backward(dq);  // (B, 2d)
  de_.resize(B, d);  // accumulates into state encoder
  dx_.resize(B, d);
  for (std::size_t b = 0; b < B; ++b) {
    const double* hrow = dhead_in.row_ptr(b);
    double* derow = de_.row_ptr(b);
    double* dxrow = dx_.row_ptr(b);
    for (std::size_t c = 0; c < d; ++c) {
      derow[c] = hrow[c];
      dxrow[c] = hrow[d + c];
    }
  }

  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));
  dv_.resize(m * B, d);
  dk_.resize(m * B, d);
  dqvec_.resize(B, d);
  dqvec_.fill(0.0);
  dalpha_.resize(m);
  dscore_.resize(m);
  for (std::size_t b = 0; b < B; ++b) {
    // dα_j = dx · v_j ; softmax backward → dscore.
    const double* dxrow = dx_.row_ptr(b);
    double dot_sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      double s = 0.0;
      const double* vrow = p.vvec.row_ptr(j * B + b);
      for (std::size_t c = 0; c < d; ++c) s += dxrow[c] * vrow[c];
      dalpha_[j] = s;
      dot_sum += p.attn(b, j) * s;
    }
    for (std::size_t j = 0; j < m; ++j) {
      dscore_[j] = p.attn(b, j) * (dalpha_[j] - dot_sum);
    }
    const double* qrow = p.qvec.row_ptr(b);
    double* dqrow = dqvec_.row_ptr(b);
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t row = j * B + b;
      const double a = p.attn(b, j);
      const double ds = dscore_[j] * inv_sqrt_d;
      double* dvrow = dv_.row_ptr(row);
      double* dkrow = dk_.row_ptr(row);
      const double* krow = p.kvec.row_ptr(row);
      for (std::size_t c = 0; c < d; ++c) {
        dvrow[c] = a * dxrow[c];
        dkrow[c] = ds * qrow[c];
        dqrow[c] += ds * krow[c];
      }
    }
  }

  // Route through the projection layers back into the encoders.
  wq_.backward_into(p.e, p.qvec, dqvec_, dtmp_);
  de_ += dtmp_;
  wk_.backward_into(p.u, p.kvec, dk_, du_);
  relu_v_.backward_into(p.vpre, p.vvec, dv_, dvpre_);
  wv_.backward_into(p.u, p.vpre, dvpre_, dtmp_);
  du_ += dtmp_;
  sa_enc_.backward(du_);
  state_enc_.backward(de_);
}

const std::vector<nn::ParamRef>& AttentionCritic::params() {
  if (param_cache_.empty()) {
    for (auto p : state_enc_.params()) param_cache_.push_back(p);
    for (auto p : sa_enc_.params()) param_cache_.push_back(p);
    for (auto p : wq_.params()) param_cache_.push_back(p);
    for (auto p : wk_.params()) param_cache_.push_back(p);
    for (auto p : wv_.params()) param_cache_.push_back(p);
    for (auto p : head_.params()) param_cache_.push_back(p);
  }
  return param_cache_;
}

void AttentionCritic::zero_grad() {
  for (auto p : params()) p.grad->fill(0.0);
}

void AttentionCritic::soft_update_from(AttentionCritic& src, double tau) {
  const auto& dst_p = params();
  const auto& src_p = src.params();
  HERO_CHECK(dst_p.size() == src_p.size());
  for (std::size_t i = 0; i < dst_p.size(); ++i) {
    nn::Matrix& dstv = *dst_p[i].value;
    const nn::Matrix& srcv = *src_p[i].value;
    HERO_CHECK(dstv.same_shape(srcv));
    for (std::size_t k = 0; k < dstv.size(); ++k) {
      dstv.data()[k] = tau * srcv.data()[k] + (1.0 - tau) * dstv.data()[k];
    }
  }
}

double AttentionCritic::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  const auto& ps = params();
  for (auto p : ps)
    for (std::size_t k = 0; k < p.grad->size(); ++k)
      sq += p.grad->data()[k] * p.grad->data()[k];
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto p : ps)
      for (std::size_t k = 0; k < p.grad->size(); ++k) p.grad->data()[k] *= scale;
  }
  return norm;
}

}  // namespace hero::algos
