#include "algos/ddpg.h"

#include <algorithm>

#include "nn/losses.h"
#include "rl/exploration.h"

namespace hero::algos {

DdpgAgent::DdpgAgent(std::size_t obs_dim, std::vector<double> action_lo,
                     std::vector<double> action_hi, const DdpgConfig& cfg, Rng& rng)
    : cfg_(cfg),
      obs_dim_(obs_dim),
      actor_(obs_dim, cfg.hidden, action_lo, action_hi, rng),
      actor_target_(actor_),
      q_(obs_dim + action_lo.size(), cfg.hidden, 1, rng),
      q_target_(q_),
      buffer_(cfg.buffer_capacity) {
  actor_opt_ = std::make_unique<nn::Adam>(actor_.net().params(), cfg_.lr_actor);
  q_opt_ = std::make_unique<nn::Adam>(q_.params(), cfg_.lr_critic);
}

std::vector<double> DdpgAgent::act(const std::vector<double>& obs, Rng& rng,
                                   bool explore) {
  std::vector<double> a = actor_.act1(obs);
  if (explore) {
    a = rl::gaussian_perturb(a, actor_.lo(), actor_.hi(), cfg_.noise_stddev, rng);
  }
  return a;
}

DdpgUpdateStats DdpgAgent::observe(std::vector<double> obs, std::vector<double> action,
                                   double reward, std::vector<double> next_obs,
                                   bool done, Rng& rng) {
  buffer_.add({std::move(obs), std::move(action), reward, std::move(next_obs), done});
  ++total_steps_;
  if (total_steps_ % cfg_.update_every == 0) return update(rng);
  return {};
}

DdpgUpdateStats DdpgAgent::update(Rng& rng) {
  if (!buffer_.ready(std::max(cfg_.batch, cfg_.warmup_steps))) return {};
  DdpgUpdateStats stats;
  stats.updated = true;

  auto batch = buffer_.sample(cfg_.batch, rng);
  const std::size_t B = batch.size();
  const std::size_t k = actor_.action_dim();

  std::vector<std::vector<double>> obs_rows, next_rows, act_rows;
  for (const auto* t : batch) {
    obs_rows.push_back(t->obs);
    next_rows.push_back(t->next_obs);
    act_rows.push_back(t->action);
  }
  nn::Matrix obs_m = nn::Matrix::stack_rows(obs_rows);
  nn::Matrix next_m = nn::Matrix::stack_rows(next_rows);
  nn::Matrix act_m = nn::Matrix::stack_rows(act_rows);

  // Critic: y = r + γ(1−d) Q'(s', μ'(s')).
  nn::Matrix next_a = actor_target_.forward(next_m);
  nn::Matrix tq = q_target_.forward(next_m.hcat(next_a));
  nn::Matrix target(B, 1);
  for (std::size_t i = 0; i < B; ++i) {
    target(i, 0) = batch[i]->reward + (batch[i]->done ? 0.0 : cfg_.gamma * tq(i, 0));
  }
  nn::Matrix pred = q_.forward(obs_m.hcat(act_m));
  auto loss = nn::mse_loss(pred, target);
  stats.critic_loss = loss.loss;
  q_.zero_grad();
  q_.backward(loss.grad);
  q_.clip_grad_norm(cfg_.grad_clip);
  q_opt_->step();

  // Actor: maximize Q(s, μ(s)) — gradient ascent via dQ/da chain rule.
  nn::Matrix cur_a = actor_.forward(obs_m);
  nn::Matrix qa = q_.forward(obs_m.hcat(cur_a));
  stats.actor_objective = qa.sum() / static_cast<double>(B);
  nn::Matrix dq(B, 1, -1.0 / static_cast<double>(B));  // minimize −Q
  // Input-gradient-only: the critic is frozen in the actor step, so skip its
  // parameter-gradient accumulation (nothing to discard afterwards).
  nn::Matrix din = q_.backward_input(dq);
  actor_.net().zero_grad();
  actor_.backward(din.col_slice(obs_dim_, obs_dim_ + k));
  actor_.net().clip_grad_norm(cfg_.grad_clip);
  actor_opt_->step();

  actor_target_.net().soft_update_from(actor_.net(), cfg_.tau);
  q_target_.soft_update_from(q_, cfg_.tau);
  return stats;
}

}  // namespace hero::algos
