// Shared plumbing for the end-to-end MARL baselines (Sec. V-A of the paper):
// the common observation each baseline consumes, the shared hyper-parameter
// block (paper Table I), and the per-episode training hook used by the
// learning-curve benches.
#pragma once

#include <functional>
#include <vector>

#include "rl/evaluation.h"
#include "sim/batch_lane_world.h"
#include "sim/scenario.h"

namespace hero::algos {

// Hyper-parameters shared by all trainers. Defaults follow paper Table I
// where it is specific (γ, τ, buffer, hidden width); learning rate and batch
// are tuned down for single-core wall-clock (Table I's lr 0.01 / batch 1024
// remain reachable via config).
struct TrainConfig {
  double gamma = 0.95;
  double lr = 0.002;
  double tau = 0.01;            // soft target-update rate
  std::size_t buffer_capacity = 100000;
  std::size_t batch = 128;
  std::size_t warmup_steps = 500;  // env steps before learning starts
  int update_every = 2;            // env steps between gradient updates
  double grad_clip = 10.0;
  std::vector<std::size_t> hidden = {32, 32};  // paper: hidden width 32

  // ε-greedy schedule (value-based methods). The decay horizon is sized for
  // the single-core episode budgets used in the benches (~1-2k episodes of
  // ~10-30 steps); the paper's 14k-episode runs would use a longer horizon.
  double eps_start = 1.0;
  double eps_end = 0.05;
  long eps_decay_steps = 8000;

  // Gaussian exploration noise (deterministic-policy methods).
  double act_noise = 0.1;

  // Worker threads for the update phase (runtime::ThreadPool). The parallel
  // paths draw every RNG value serially in agent order before fanning out,
  // and workers write only index-addressed state — so results are bitwise
  // identical to num_workers == 1 at any worker count
  // (docs/PARALLELISM.md §baselines).
  int num_workers = 1;

  // Batch-first collection (docs/BATCHING.md): > 0 rolls out that many
  // episodes in lockstep through one vectorized BatchLaneWorld, with policy
  // evaluation batched across environments and the update/ε clocks counting
  // synchronized batch steps. Trainers opt in per method (DQN today);
  // results are keyed to (seed, batch_envs).
  int batch_envs = 0;
};

// Per-episode callback: (episode index, training-episode stats).
using EpisodeHook = std::function<void(int, const rl::EpisodeStats&)>;

// Emits the per-episode observability record shared by the end-to-end
// baseline trainers: a "baseline/episode" telemetry line plus
// <method>.{episodes,steps,collisions,successes,episode_reward} metrics.
// No-op while both metrics and telemetry are disabled.
void record_episode(const char* method, int episode, const rl::EpisodeStats& stats);

// The local observation every end-to-end baseline receives: the high-level
// sensor state (lidar, speed, lane id) concatenated with the lane-camera
// features — i.e. the union of what HERO's two layers see, so no method has
// an information advantage.
std::vector<double> baseline_obs(const sim::LaneWorld& world, int vehicle);
std::size_t baseline_obs_dim(const sim::LaneWorld& world);

// Batched analogue: writes the same concatenated observation for vehicle of
// env `e` straight out of the SoA world's zero-alloc observation cores —
// the shared hook every baseline's batch_envs path collects through.
void baseline_obs_into(const sim::BatchLaneWorld& world, int e, int vehicle,
                       double* out);

// Deployment-batch analogue: row r of `out` becomes agent `k`'s baseline
// observation [hl | ll(current lane)] for slot slots[r] of the batch — the
// row gather behind every baseline's act_rows_into override. `out` is
// resized in place (slots.size() × baseline obs dim).
void gather_baseline_rows(const rl::ObsBatch& batch, int agent,
                          const std::vector<std::size_t>& slots, nn::Matrix& out);

// Primitive action bounds shared by the continuous-control baselines
// (the envelope of the paper's per-skill ranges).
std::vector<double> primitive_lo();
std::vector<double> primitive_hi();

}  // namespace hero::algos
