#include "obs/trace.h"

#include <chrono>
#include <fstream>

namespace hero::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

double now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder r;
  return r;
}

void TraceRecorder::record_complete(const char* name, double ts_us, double dur_us) {
  const std::uint32_t tid = current_tid();
  MutexLock lock(mu_);
  if (events_.size() >= cap_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, ts_us, dur_us, tid});
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  MutexLock lock(mu_);
  return events_;
}

std::size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return events_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void TraceRecorder::set_capacity(std::size_t cap) {
  MutexLock lock(mu_);
  cap_ = cap;
}

void TraceRecorder::clear() {
  MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  MutexLock lock(mu_);
  f << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    std::string name;
    json_escape_into(e.name, name);
    f << "  {\"name\": \"" << name << "\", \"cat\": \"hero\", \"ph\": \"X\""
      << ", \"ts\": " << json_number(e.ts_us)
      << ", \"dur\": " << json_number(e.dur_us)
      << ", \"pid\": 1, \"tid\": " << e.tid << "}"
      << (i + 1 == events_.size() ? "" : ",") << "\n";
  }
  f << "]}\n";
  return static_cast<bool>(f);
}

Histogram& span_histogram(const char* name) {
  HistogramOptions opt;
  opt.lo = 1.0;       // 1 us
  opt.hi = 1e9;       // 1000 s
  opt.buckets = 54;   // 6 buckets per decade
  opt.log_scale = true;
  return Registry::instance().histogram(std::string("span.") + name, opt);
}

}  // namespace hero::obs
