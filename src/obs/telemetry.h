// Structured run telemetry: a mutex-serialized JSONL event stream.
//
// Every line is one self-contained JSON object:
//
//   {"event": "episode", "t_s": 12.345, "method": "hero", "stage": 2,
//    "episode": 41, "reward": -3.2, ..., "seq": 173}
//
// "event" names the record type, "t_s" is monotonic seconds since process
// start, and "seq" is a process-wide line counter appended at write time —
// a consumer can detect interleaving or truncation. The full schema lives
// in docs/OBSERVABILITY.md.
//
// Call sites guard on telemetry_enabled() so that building the event costs
// nothing when no --telemetry-out sink is open:
//
//   if (obs::telemetry_enabled()) {
//     obs::Telemetry::instance().emit(
//         obs::TelemetryEvent("episode").field("reward", r).field("steps", n));
//   }
//
// emit() is safe from concurrent threads (stage-1 parallel skill training
// shares one sink).
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>

#include "common/sync.h"

namespace hero::obs {

// One JSONL line under construction. field() accepts numbers, bools and
// strings; NaN/inf serialize as null.
class TelemetryEvent {
 public:
  explicit TelemetryEvent(const char* event);

  TelemetryEvent& field(const char* key, double v);
  TelemetryEvent& field(const char* key, long long v);
  TelemetryEvent& field(const char* key, int v) {
    return field(key, static_cast<long long>(v));
  }
  TelemetryEvent& field(const char* key, long v) {
    return field(key, static_cast<long long>(v));
  }
  TelemetryEvent& field(const char* key, std::size_t v) {
    return field(key, static_cast<long long>(v));
  }
  TelemetryEvent& field(const char* key, bool v);
  TelemetryEvent& field(const char* key, const char* v);
  TelemetryEvent& field(const char* key, const std::string& v);

 private:
  friend class Telemetry;
  void key_into(const char* key);
  std::string line_;  // "{"event": ..., "t_s": ..." — closed by emit()
};

class Telemetry {
 public:
  static Telemetry& instance();

  // Opens (truncates) the JSONL sink and enables emission.
  bool open(const std::string& path) HERO_EXCLUDES(mu_);
  void close() HERO_EXCLUDES(mu_);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends the sequence number, closes the object and writes the line.
  // No-op when no sink is open.
  void emit(const TelemetryEvent& e) HERO_EXCLUDES(mu_);

  std::uint64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }

  // Lines that failed to reach the sink (stream error on write). Exported as
  // obs.telemetry.write_errors in the metrics snapshot; a nonzero value means
  // the JSONL stream is silently incomplete.
  std::uint64_t write_errors() const {
    return write_errors_.load(std::memory_order_relaxed);
  }

 private:
  Telemetry() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> lines_{0};
  std::atomic<std::uint64_t> write_errors_{0};
  Mutex mu_;
  std::ofstream out_ HERO_GUARDED_BY(mu_);
  std::uint64_t seq_ HERO_GUARDED_BY(mu_) = 0;
};

inline bool telemetry_enabled() { return Telemetry::instance().enabled(); }

}  // namespace hero::obs
