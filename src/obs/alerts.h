// Anomaly detection for training runs: declarative rules over per-episode
// health samples, structured `alert` telemetry events, and an end-of-run
// verdict embedded in the metrics snapshot.
//
// Trainers feed one EpisodeHealth per finished episode (the same place they
// emit episode telemetry); fields a trainer cannot produce stay at their
// "unknown" defaults and the rules that need them never fire. Rules
// (docs/OBSERVABILITY.md has the full table):
//
//   nan_loss             critic loss is NaN/inf
//   non_finite_grad      actor or critic grad norm is NaN/inf
//   exploding_grad       finite grad norm > factor x trailing-window mean
//   throughput_collapse  steps/sec < frac x trailing-window mean (wall-clock
//                        derived — stripped by the determinism gate)
//   replay_starvation    no learner update by episode N despite a replay path
//   opponent_collapse    opponent-model accuracy < frac x trailing max
//   option_thrash        sustained option-switch rate above threshold
//
// Each rule has a per-rule cooldown so one sick episode fires exactly one
// alert, not one per subsequent episode. Fired alerts emit an `alert`
// telemetry event, bump `obs.alerts.total` / `obs.alerts.<rule>`, and flip
// the end-of-run verdict to "sick"; tools/hero_monitor exits non-zero on
// unacknowledged alerts.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sync.h"

namespace hero::obs {

// One per-episode health sample. Defaults mean "unknown" — rules needing a
// field skip episodes where it is absent.
struct EpisodeHealth {
  long long episode = 0;
  double reward = 0.0;
  long long steps = 0;
  double steps_per_sec = 0.0;  // <=0: unknown (throughput rule skips)

  bool have_updates = false;  // loss/grad fields below are meaningful
  bool updated_this_episode = false;
  double critic_loss = 0.0;
  double critic_grad_norm = 0.0;
  double actor_grad_norm = 0.0;

  bool have_replay = false;  // trainer stages into a replay path

  long long opponent_predictions = 0;  // 0: no opponent model this episode
  double opponent_accuracy = 0.0;

  double option_switch_rate = -1.0;  // <0: unknown (thrash rule skips)
};

struct AlertConfig {
  // Re-fire suppression: a rule stays quiet for this many episodes after
  // firing.
  long long cooldown_episodes = 16;

  // exploding_grad: norm > factor x trailing mean of the last `window`
  // finite norms, requiring at least `min_samples` history.
  double grad_explode_factor = 50.0;
  std::size_t grad_window = 32;
  std::size_t grad_min_samples = 8;

  // throughput_collapse: rate < frac x trailing mean, only after
  // `min_episodes` rated episodes (keeps 2-4 episode smoke runs quiet).
  double throughput_collapse_frac = 0.25;
  std::size_t throughput_window = 16;
  std::size_t throughput_min_episodes = 24;

  // replay_starvation: zero updates observed by this episode count.
  long long replay_starvation_episodes = 64;

  // opponent_collapse: accuracy < frac x trailing-window max, after
  // `min_episodes` episodes with predictions and a meaningful peak.
  double opp_collapse_frac = 0.5;
  std::size_t opp_window = 32;
  std::size_t opp_min_episodes = 24;
  double opp_min_peak = 0.3;

  // option_thrash: switch rate >= threshold for `consecutive` episodes.
  double thrash_switch_rate = 0.6;
  std::size_t thrash_consecutive = 8;
};

struct Alert {
  std::string rule;
  long long episode = 0;
  double value = 0.0;      // the observed quantity that tripped the rule
  double threshold = 0.0;  // what it was compared against
  std::string message;
  bool wallclock = false;  // derived from wall-clock (not seed-deterministic)
};

// Process-global, thread-safe. Does nothing until fed; callers gate on
// health_enabled() (alerts ride on metrics or telemetry being on).
class AlertEngine {
 public:
  static AlertEngine& instance();

  // Clears all state and installs `cfg`. Tests use this for isolation.
  void reset(const AlertConfig& cfg = AlertConfig()) HERO_EXCLUDES(mu_);

  void observe_episode(const EpisodeHealth& h) HERO_EXCLUDES(mu_);

  std::vector<Alert> alerts() const HERO_EXCLUDES(mu_);
  long long episodes_seen() const HERO_EXCLUDES(mu_);
  bool healthy() const HERO_EXCLUDES(mu_);

  // {"verdict": "healthy"|"sick", "episodes": N, "alerts": [...]} — embedded
  // under "health" in the metrics snapshot.
  std::string health_json() const HERO_EXCLUDES(mu_);

 private:
  AlertEngine() = default;
  // Both helpers run inside observe_episode's critical section. fire()
  // emits telemetry and bumps counters while mu_ is held — safe because
  // Telemetry/Registry sit strictly below AlertEngine in the lock
  // hierarchy (docs/CORRECTNESS.md) and never call back into it.
  void fire(const char* rule, const EpisodeHealth& h, double value,
            double threshold, std::string message, bool wallclock)
      HERO_REQUIRES(mu_);
  bool in_cooldown(const std::string& rule, long long episode) const
      HERO_REQUIRES(mu_);

  mutable Mutex mu_;
  AlertConfig cfg_ HERO_GUARDED_BY(mu_);
  std::vector<Alert> alerts_ HERO_GUARDED_BY(mu_);
  // rule -> last fired episode
  std::vector<std::pair<std::string, long long>> last_fired_ HERO_GUARDED_BY(mu_);
  long long episodes_ HERO_GUARDED_BY(mu_) = 0;
  long long updates_seen_ HERO_GUARDED_BY(mu_) = 0;
  std::deque<double> grad_hist_ HERO_GUARDED_BY(mu_);
  std::deque<double> rate_hist_ HERO_GUARDED_BY(mu_);
  std::deque<double> opp_hist_ HERO_GUARDED_BY(mu_);
  std::size_t thrash_run_ HERO_GUARDED_BY(mu_) = 0;
};

}  // namespace hero::obs
