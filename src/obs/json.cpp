#include "obs/json.h"

#include <cstdlib>
#include <cstring>

namespace hero::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::get_number(const std::string& key, double def) const {
  const JsonValue* v = find(key);
  return v ? v->number_or(def) : def;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& def) const {
  const JsonValue* v = find(key);
  return v ? v->string_or(def) : def;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string* err;

  bool fail(const char* what) {
    if (err) {
      *err = what;
      *err += " at offset ";
      *err += std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return fail("bad literal");
    pos += len;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos;  // opening quote
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return fail("truncated escape");
        const char esc = text[pos + 1];
        pos += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two 3-byte sequences — good enough for our ASCII
            // artifact files).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      out.type = JsonValue::Type::Null;
      return literal("null", 4);
    }
    if (c == 't') {
      out.type = JsonValue::Type::Bool;
      out.bool_v = true;
      return literal("true", 4);
    }
    if (c == 'f') {
      out.type = JsonValue::Type::Bool;
      out.bool_v = false;
      return literal("false", 5);
    }
    if (c == '"') {
      out.type = JsonValue::Type::String;
      return parse_string(out.str_v);
    }
    if (c == '{') {
      out.type = JsonValue::Type::Object;
      ++pos;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skip_ws();
        if (pos >= text.size() || text[pos] != '"') return fail("expected key");
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
        ++pos;
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        out.members.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos >= text.size()) return fail("unterminated object");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == '}') {
          ++pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out.type = JsonValue::Type::Array;
      ++pos;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        out.items.push_back(std::move(v));
        skip_ws();
        if (pos >= text.size()) return fail("unterminated array");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == ']') {
          ++pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = text.c_str() + pos;
      char* end = nullptr;
      out.type = JsonValue::Type::Number;
      out.num_v = std::strtod(start, &end);
      if (end == start) return fail("bad number");
      pos += static_cast<std::size_t>(end - start);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

bool JsonValue::parse(const std::string& text, JsonValue& out,
                      std::string* err) {
  out = JsonValue();
  Parser p{text, 0, err};
  if (!p.parse_value(out, 0)) return false;
  p.skip_ws();
  if (p.pos != text.size()) return p.fail("trailing garbage");
  return true;
}

}  // namespace hero::obs
