// Minimal JSON reader for the observability artifacts this repo writes
// (metrics snapshots, telemetry JSONL lines). Used by tools/hero_monitor
// and the run-health tests; deliberately small — no streaming, no SAX, no
// number formats beyond strtod. Object member order is preserved.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace hero::obs {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Object, Array };

  Type type = Type::Null;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<std::pair<std::string, JsonValue>> members;  // Type::Object
  std::vector<JsonValue> items;                            // Type::Array

  bool is_null() const { return type == Type::Null; }
  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  double number_or(double def) const { return is_number() ? num_v : def; }
  std::string string_or(const std::string& def) const {
    return is_string() ? str_v : def;
  }
  bool bool_or(bool def) const { return type == Type::Bool ? bool_v : def; }

  // Convenience: member lookup + coercion in one step.
  double get_number(const std::string& key, double def) const;
  std::string get_string(const std::string& key, const std::string& def) const;

  // Parses one complete JSON document (trailing whitespace allowed, trailing
  // garbage rejected). Returns false on malformed input; `err`, when given,
  // receives a short description with the byte offset.
  static bool parse(const std::string& text, JsonValue& out,
                    std::string* err = nullptr);
};

}  // namespace hero::obs
