#include "obs/telemetry.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hero::obs {

TelemetryEvent::TelemetryEvent(const char* event) {
  line_.reserve(256);
  line_ += "{\"event\": \"";
  json_escape_into(event, line_);
  line_ += "\", \"t_s\": ";
  line_ += json_number(now_us() * 1e-6);
}

void TelemetryEvent::key_into(const char* key) {
  line_ += ", \"";
  json_escape_into(key, line_);
  line_ += "\": ";
}

TelemetryEvent& TelemetryEvent::field(const char* key, double v) {
  key_into(key);
  line_ += json_number(v);
  return *this;
}

TelemetryEvent& TelemetryEvent::field(const char* key, long long v) {
  key_into(key);
  line_ += std::to_string(v);
  return *this;
}

TelemetryEvent& TelemetryEvent::field(const char* key, bool v) {
  key_into(key);
  line_ += v ? "true" : "false";
  return *this;
}

TelemetryEvent& TelemetryEvent::field(const char* key, const char* v) {
  key_into(key);
  line_ += '"';
  json_escape_into(v, line_);
  line_ += '"';
  return *this;
}

TelemetryEvent& TelemetryEvent::field(const char* key, const std::string& v) {
  return field(key, v.c_str());
}

Telemetry& Telemetry::instance() {
  static Telemetry t;
  return t;
}

bool Telemetry::open(const std::string& path) {
  MutexLock lock(mu_);
  out_.open(path, std::ios::trunc);
  const bool ok = static_cast<bool>(out_);
  enabled_.store(ok, std::memory_order_relaxed);
  return ok;
}

void Telemetry::close() {
  MutexLock lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  if (out_.is_open()) out_.close();
}

void Telemetry::emit(const TelemetryEvent& e) {
  MutexLock lock(mu_);
  if (!out_.is_open()) return;
  out_ << e.line_ << ", \"seq\": " << seq_++ << "}\n";
  if (!out_) {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    out_.clear();  // keep trying — later writes may succeed (e.g. disk freed)
    return;
  }
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hero::obs
