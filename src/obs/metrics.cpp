#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace hero::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

namespace {

void atomic_fetch_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_fetch_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ------------------------------------------------------------ Histogram ---

Histogram::Histogram(const HistogramOptions& opt)
    : opt_(opt),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (opt_.buckets == 0) opt_.buckets = 1;
  if (opt_.log_scale && opt_.lo <= 0.0) opt_.lo = 1e-9;
  if (opt_.hi <= opt_.lo) opt_.hi = opt_.lo + 1.0;
  upper_.resize(opt_.buckets);
  const double n = static_cast<double>(opt_.buckets);
  for (std::size_t i = 0; i < opt_.buckets; ++i) {
    const double f = static_cast<double>(i + 1) / n;
    upper_[i] = opt_.log_scale
                    ? opt_.lo * std::pow(opt_.hi / opt_.lo, f)
                    : opt_.lo + (opt_.hi - opt_.lo) * f;
  }
  upper_.back() = opt_.hi;  // kill pow() rounding on the last edge
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(opt_.buckets + 1);
  for (std::size_t i = 0; i <= opt_.buckets; ++i) counts_[i].store(0);
}

double Histogram::lower_edge(std::size_t bucket) const {
  return bucket == 0 ? opt_.lo : upper_[bucket - 1];
}

void Histogram::observe(double x) {
  if (!metrics_enabled()) return;
  if (std::isnan(x)) {
    dropped_nan_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::size_t b;
  if (x > opt_.hi) {
    b = opt_.buckets;  // overflow
  } else {
    b = static_cast<std::size_t>(
        std::upper_bound(upper_.begin(), upper_.end(), x) - upper_.begin());
    if (b >= opt_.buckets) b = opt_.buckets - 1;  // x == hi lands inside
  }
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, x);
  atomic_fetch_min(min_, x);
  atomic_fetch_max(max_, x);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t b = 0; b <= opt_.buckets; ++b) {
    const double c = static_cast<double>(counts_[b].load(std::memory_order_relaxed));
    if (c == 0.0) continue;
    if (cum + c >= rank) {
      if (b == opt_.buckets) return std::min(max(), opt_.hi);  // overflow: saturate
      const double frac = std::clamp((rank - cum) / c, 0.0, 1.0);
      const double lo = std::max(lower_edge(b), min());
      const double hi = std::min(upper_[b], max());
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  return max();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= opt_.buckets; ++i) counts_[i].store(0);
  count_.store(0);
  dropped_nan_.store(0);
  sum_.store(0.0);
  min_.store(std::numeric_limits<double>::infinity());
  max_.store(-std::numeric_limits<double>::infinity());
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(opt_.buckets + 1);
  for (std::size_t i = 0; i <= opt_.buckets; ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

// ------------------------------------------------------------- Registry ---

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, const HistogramOptions& opt) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(opt);
  return *slot;
}

std::size_t Registry::size() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::reset_values() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::snapshot_json() const {
  MutexLock lock(mu_);
  std::string out;
  out.reserve(4096);
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(name, out);
    out += "\": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(name, out);
    out += "\": " + json_number(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(name, out);
    out += "\": {\"count\": " + std::to_string(h->count());
    out += ", \"sum\": " + json_number(h->sum());
    out += ", \"mean\": " + json_number(h->mean());
    out += ", \"min\": " + json_number(h->min());
    out += ", \"max\": " + json_number(h->max());
    out += ", \"p50\": " + json_number(h->percentile(50));
    out += ", \"p90\": " + json_number(h->percentile(90));
    out += ", \"p95\": " + json_number(h->percentile(95));
    out += ", \"p99\": " + json_number(h->percentile(99));
    out += ", \"dropped_nan\": " + std::to_string(h->dropped_nan());
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool Registry::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << snapshot_json();
  return static_cast<bool>(f);
}

// ----------------------------------------------------------- JSON utils ---

void json_escape_into(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace hero::obs
