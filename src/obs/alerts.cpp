#include "obs/alerts.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace hero::obs {

namespace {

double mean_of(const std::deque<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double max_of(const std::deque<double>& xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, x);
  return m;
}

void push_window(std::deque<double>& xs, double v, std::size_t cap) {
  xs.push_back(v);
  while (xs.size() > cap) xs.pop_front();
}

std::string format_msg(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return std::string(buf);
}

}  // namespace

AlertEngine& AlertEngine::instance() {
  static AlertEngine* engine = new AlertEngine();  // leaked: outlive threads
  return *engine;
}

void AlertEngine::reset(const AlertConfig& cfg) {
  MutexLock lock(mu_);
  cfg_ = cfg;
  alerts_.clear();
  last_fired_.clear();
  episodes_ = 0;
  updates_seen_ = 0;
  grad_hist_.clear();
  rate_hist_.clear();
  opp_hist_.clear();
  thrash_run_ = 0;
}

bool AlertEngine::in_cooldown(const std::string& rule, long long episode) const {
  for (const auto& [name, at] : last_fired_) {
    if (name == rule) return episode - at < cfg_.cooldown_episodes;
  }
  return false;
}

void AlertEngine::fire(const char* rule, const EpisodeHealth& h, double value,
                       double threshold, std::string message, bool wallclock) {
  if (in_cooldown(rule, h.episode)) return;
  bool found = false;
  for (auto& [name, at] : last_fired_) {
    if (name == rule) {
      at = h.episode;
      found = true;
      break;
    }
  }
  if (!found) last_fired_.emplace_back(rule, h.episode);

  Alert a;
  a.rule = rule;
  a.episode = h.episode;
  a.value = value;
  a.threshold = threshold;
  a.message = std::move(message);
  a.wallclock = wallclock;
  alerts_.push_back(a);

  if (metrics_enabled()) {
    Registry::instance().counter("obs.alerts.total").inc();
    Registry::instance().counter(std::string("obs.alerts.") + rule).inc();
  }
  if (telemetry_enabled()) {
    Telemetry::instance().emit(TelemetryEvent("alert")
                                   .field("rule", rule)
                                   .field("episode", a.episode)
                                   .field("value", a.value)
                                   .field("threshold", a.threshold)
                                   .field("message", a.message)
                                   .field("wallclock", a.wallclock));
  }
}

void AlertEngine::observe_episode(const EpisodeHealth& h) {
  MutexLock lock(mu_);
  ++episodes_;
  if (h.updated_this_episode) ++updates_seen_;

  if (h.have_updates && h.updated_this_episode) {
    if (!std::isfinite(h.critic_loss)) {
      fire("nan_loss", h, h.critic_loss, 0.0,
           "critic loss is non-finite — learner state is corrupt", false);
    }
    const bool grad_bad =
        !std::isfinite(h.critic_grad_norm) || !std::isfinite(h.actor_grad_norm);
    if (grad_bad) {
      const double v =
          !std::isfinite(h.critic_grad_norm) ? h.critic_grad_norm : h.actor_grad_norm;
      fire("non_finite_grad", h, v, 0.0,
           "gradient norm is non-finite — update skipped or poisoned", false);
    } else {
      const double gn = std::max(h.critic_grad_norm, h.actor_grad_norm);
      if (grad_hist_.size() >= cfg_.grad_min_samples) {
        const double trailing = mean_of(grad_hist_);
        const double limit = cfg_.grad_explode_factor * trailing;
        if (trailing > 0.0 && gn > limit) {
          fire("exploding_grad", h, gn, limit,
               format_msg("grad norm %.3g exceeds %.3g (trailing-mean gate)", gn,
                          limit),
               false);
        }
      }
      push_window(grad_hist_, gn, cfg_.grad_window);
    }
  }

  if (h.steps_per_sec > 0.0 && std::isfinite(h.steps_per_sec)) {
    if (rate_hist_.size() + 1 >= cfg_.throughput_min_episodes) {
      const double trailing = mean_of(rate_hist_);
      const double floor = cfg_.throughput_collapse_frac * trailing;
      if (trailing > 0.0 && h.steps_per_sec < floor) {
        fire("throughput_collapse", h, h.steps_per_sec, floor,
             format_msg("throughput %.1f steps/s below %.1f (trailing-window "
                        "floor)",
                        h.steps_per_sec, floor),
             /*wallclock=*/true);
      }
    }
    push_window(rate_hist_, h.steps_per_sec, cfg_.throughput_window);
  }

  if (h.have_replay && updates_seen_ == 0 &&
      episodes_ >= cfg_.replay_starvation_episodes) {
    fire("replay_starvation", h, static_cast<double>(episodes_),
         static_cast<double>(cfg_.replay_starvation_episodes),
         "no learner update yet — replay path appears starved", false);
  }

  if (h.opponent_predictions > 0) {
    const double acc = h.opponent_accuracy;
    if (opp_hist_.size() + 1 >= cfg_.opp_min_episodes) {
      const double peak = max_of(opp_hist_);
      const double floor = cfg_.opp_collapse_frac * peak;
      if (peak >= cfg_.opp_min_peak && acc < floor) {
        fire("opponent_collapse", h, acc, floor,
             format_msg("opponent accuracy %.3f below %.3f (half of trailing "
                        "peak)",
                        acc, floor),
             false);
      }
    }
    push_window(opp_hist_, acc, cfg_.opp_window);
  }

  if (h.option_switch_rate >= 0.0) {
    if (h.option_switch_rate >= cfg_.thrash_switch_rate) {
      ++thrash_run_;
      if (thrash_run_ >= cfg_.thrash_consecutive) {
        fire("option_thrash", h, h.option_switch_rate, cfg_.thrash_switch_rate,
             format_msg("option switch rate %.2f >= %.2f for a sustained run",
                        h.option_switch_rate, cfg_.thrash_switch_rate),
             false);
        thrash_run_ = 0;
      }
    } else {
      thrash_run_ = 0;
    }
  }
}

std::vector<Alert> AlertEngine::alerts() const {
  MutexLock lock(mu_);
  return alerts_;
}

long long AlertEngine::episodes_seen() const {
  MutexLock lock(mu_);
  return episodes_;
}

bool AlertEngine::healthy() const {
  MutexLock lock(mu_);
  return alerts_.empty();
}

std::string AlertEngine::health_json() const {
  MutexLock lock(mu_);
  std::string out;
  out.reserve(256);
  out += "{\"verdict\": \"";
  out += alerts_.empty() ? "healthy" : "sick";
  out += "\", \"episodes\": ";
  out += std::to_string(episodes_);
  out += ", \"alerts\": [";
  bool first = true;
  for (const auto& a : alerts_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"rule\": \"";
    json_escape_into(a.rule.c_str(), out);
    out += "\", \"episode\": ";
    out += std::to_string(a.episode);
    out += ", \"value\": ";
    out += json_number(a.value);
    out += ", \"threshold\": ";
    out += json_number(a.threshold);
    out += ", \"message\": \"";
    json_escape_into(a.message.c_str(), out);
    out += "\", \"wallclock\": ";
    out += a.wallclock ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace hero::obs
