// Hierarchical trace spans: RAII scoped timers that record a wall-clock
// tree and export Chrome trace_event JSON (loadable in chrome://tracing or
// https://ui.perfetto.dev).
//
//   OBS_SPAN("stage2/update/critic");
//
// opens a span for the rest of the enclosing scope. Spans nest naturally:
// the exported events are Chrome "complete" ('X') events on a per-thread
// track, which the viewers nest by time containment. Span names use '/'
// separated levels (docs/OBSERVABILITY.md has the naming convention).
//
// Each span also feeds a latency histogram "span.<name>" (microseconds) in
// the metrics registry when metrics are enabled, so one instrumentation
// point yields both a trace and p50/p95/p99 latency.
//
// When both tracing and metrics are disabled, constructing a span is two
// relaxed atomic-bool loads — no clock read, no allocation, no lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace hero::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on);

// Microseconds on the monotonic clock since the first call in this process.
double now_us();

// Small dense per-thread id (1, 2, ...) for the trace's tid column.
std::uint32_t current_tid();

struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // span start
  double dur_us = 0.0;  // span duration
  std::uint32_t tid = 0;
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  void record_complete(const char* name, double ts_us, double dur_us)
      HERO_EXCLUDES(mu_);

  // Chrome trace_event "JSON object format": {"traceEvents": [...]}.
  bool write_chrome_trace(const std::string& path) const HERO_EXCLUDES(mu_);

  std::vector<TraceEvent> snapshot() const HERO_EXCLUDES(mu_);
  std::size_t size() const HERO_EXCLUDES(mu_);
  // Events discarded after hitting capacity.
  std::uint64_t dropped() const HERO_EXCLUDES(mu_);
  void set_capacity(std::size_t cap) HERO_EXCLUDES(mu_);
  void clear() HERO_EXCLUDES(mu_);

 private:
  TraceRecorder() = default;

  mutable Mutex mu_;
  std::vector<TraceEvent> events_ HERO_GUARDED_BY(mu_);
  std::size_t cap_ HERO_GUARDED_BY(mu_) = 1u << 20;
  std::uint64_t dropped_ HERO_GUARDED_BY(mu_) = 0;
};

// Histogram "span.<name>" with microsecond log buckets (1us .. 1000s).
Histogram& span_histogram(const char* name);

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(name), active_(trace_enabled() || metrics_enabled()) {
    if (active_) start_us_ = now_us();
  }
  ~ScopedSpan() {
    if (!active_) return;
    const double dur = now_us() - start_us_;
    if (trace_enabled()) {
      TraceRecorder::instance().record_complete(name_, start_us_, dur);
    }
    if (metrics_enabled()) span_histogram(name_).observe(dur);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  double start_us_ = 0.0;
  bool active_;
};

}  // namespace hero::obs

#define HERO_OBS_CONCAT2(a, b) a##b
#define HERO_OBS_CONCAT(a, b) HERO_OBS_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::hero::obs::ScopedSpan HERO_OBS_CONCAT(hero_obs_span_, __COUNTER__)(name)
