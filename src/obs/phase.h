// Hierarchical phase-time attribution: low-overhead accumulating timers
// that answer "where did the wall-clock of this run go?".
//
//   void HeroTrainer::train_batched(...) {
//     OBS_PHASE("stage2");
//     ...
//     { OBS_PHASE("rollout"); batched_->run_round(...); }
//     { OBS_PHASE("learn");   merge_and_update(...);    }
//   }
//
// Unlike OBS_SPAN (which records one trace event per entry and feeds a
// latency histogram), OBS_PHASE only *accumulates*: each distinct nesting
// path keeps one counter (entries) and one total-duration cell, so a
// million entries cost a million clock-read pairs but O(paths) memory.
// The result is a phase tree — "stage2 spent 91% of its time under
// rollout, of which 40% was sim_step and 35% nn_forward" — exported in the
// metrics snapshot under "phases" and rendered by tools/hero_monitor.
//
// Threading model: every thread owns a private tree (registered with the
// global PhaseRegistry on first use and kept alive for the process
// lifetime). A scope's node is found/created under the owner thread's tree
// mutex only on first sighting of that (parent, name) edge; afterwards
// entering a phase is: one relaxed enabled-load, one child lookup by
// pointer identity, two clock reads and two relaxed atomic adds.
// PhaseRegistry::snapshot() merges all per-thread trees by name, so phases
// recorded on pool workers (docs/PARALLELISM.md) fold into one tree —
// worker-side phases appear as top-level entries of the merged tree because
// each worker's stack starts at its own root.
//
// When phases are disabled (the default — obs::configure enables them with
// --metrics-out), constructing a scope is a single relaxed atomic-bool
// load: no clock read, no allocation, no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace hero::obs {

namespace detail {
extern std::atomic<bool> g_phases_enabled;

struct PhaseNode {
  const char* name = nullptr;  // string literal from the OBS_PHASE site
  PhaseNode* parent = nullptr;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  // Guarded by the *owning tree's* mu — not expressible as HERO_GUARDED_BY
  // because the node has no back-pointer to its tree, so the thread-safety
  // analysis cannot check accesses and the invariant lives here instead:
  // only the owner thread appends (under the tree mutex, so snapshot
  // readers on other threads are safe), and the owner's deliberately
  // lock-free lookups in phase_enter cannot race its own appends.
  std::vector<std::unique_ptr<PhaseNode>> children;
};

struct PhaseThreadTree {
  PhaseNode root;           // unnamed sentinel; top-level phases hang off it
  PhaseNode* current = &root;  // owner-thread-only: its position in the tree
  Mutex mu;                 // guards children mutation vs snapshot readers
};

// Enters phase `name` under the calling thread's current node and returns
// the node; phase_exit() accumulates the duration and pops the stack.
PhaseNode* phase_enter(const char* name);
void phase_exit(PhaseNode* node, std::uint64_t dur_ns);
std::uint64_t phase_now_ns();
}  // namespace detail

inline bool phases_enabled() {
  return detail::g_phases_enabled.load(std::memory_order_relaxed);
}
void set_phases_enabled(bool on);

// One node of the merged (cross-thread) phase tree.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  std::vector<PhaseStat> children;  // sorted by name
};

class PhaseRegistry {
 public:
  static PhaseRegistry& instance();

  // Merged view of every thread's tree, children sorted by name. Phases
  // recorded on different threads under the same path fold together.
  std::vector<PhaseStat> snapshot() const HERO_EXCLUDES(mu_);

  // {"stage2": {"count": 1, "total_us": 123.4, "children": {...}}, ...}
  std::string json() const HERO_EXCLUDES(mu_);

  // Zeroes all counters and totals; keeps registered structure. In-flight
  // scopes still accumulate into their (now zeroed) nodes on exit.
  void reset() HERO_EXCLUDES(mu_);

  // Internal: called once per thread on first OBS_PHASE entry.
  void register_tree(std::shared_ptr<detail::PhaseThreadTree> tree)
      HERO_EXCLUDES(mu_);

 private:
  PhaseRegistry() = default;

  mutable Mutex mu_;
  std::vector<std::shared_ptr<detail::PhaseThreadTree>> trees_
      HERO_GUARDED_BY(mu_);
};

class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name) {
    if (phases_enabled()) {
      node_ = detail::phase_enter(name);
      start_ns_ = detail::phase_now_ns();
    }
  }
  ~ScopedPhase() {
    if (node_) detail::phase_exit(node_, detail::phase_now_ns() - start_ns_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  detail::PhaseNode* node_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace hero::obs

#ifndef HERO_OBS_CONCAT
#define HERO_OBS_CONCAT2(a, b) a##b
#define HERO_OBS_CONCAT(a, b) HERO_OBS_CONCAT2(a, b)
#endif
#define OBS_PHASE(name) \
  ::hero::obs::ScopedPhase HERO_OBS_CONCAT(hero_obs_phase_, __COUNTER__)(name)
