// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms with percentile estimation, exported as a JSON snapshot.
//
// Design goals (docs/OBSERVABILITY.md):
//   * near-zero cost when disabled — every mutating call first does one
//     relaxed atomic-bool load and bails;
//   * lock-cheap when enabled — counters/gauges are single relaxed atomic
//     ops, histogram observes touch one atomic bucket plus a few scalars;
//     the registry mutex is only taken on first registration and snapshot;
//   * handles are pointer-stable — cache the reference from counter() /
//     gauge() / histogram() in hot paths (a function-local static works).
//
// Metrics are process-global so instrumentation deep in the stack (nn, sim)
// and the exporting tool binary see the same registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace hero::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}

inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);

// Monotonically increasing event count.
class Counter {
 public:
  void inc(long long delta = 1) {
    if (metrics_enabled()) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Bucket layout chosen at registration time. Log-scale suits latencies
// (microseconds across 12 decades by default); linear suits bounded
// quantities like losses. Values below `lo` land in the first bucket and
// values above `hi` in an overflow bucket, so percentiles saturate at the
// configured range rather than losing samples.
struct HistogramOptions {
  double lo = 1e-3;
  double hi = 1e9;
  std::size_t buckets = 48;
  bool log_scale = true;
};

class Histogram {
 public:
  explicit Histogram(const HistogramOptions& opt);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  // NaN samples are not representable in any bucket; they are dropped but
  // counted here and exported in the JSON snapshot, so a poisoned metric is
  // visible instead of silently shrinking.
  std::uint64_t dropped_nan() const {
    return dropped_nan_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty

  // Linear interpolation inside the bucket containing rank p/100·count;
  // accuracy is bounded by the bucket width. p in [0, 100].
  double percentile(double p) const;

  void reset();

  const HistogramOptions& options() const { return opt_; }
  // Upper edge of each regular bucket (the overflow bucket has no edge).
  const std::vector<double>& upper_edges() const { return upper_; }
  std::vector<std::uint64_t> bucket_counts() const;  // size buckets + 1

 private:
  double lower_edge(std::size_t bucket) const;

  HistogramOptions opt_;
  std::vector<double> upper_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // buckets + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> dropped_nan_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

class Registry {
 public:
  static Registry& instance();

  // Find-or-create by name. References stay valid for the process lifetime
  // (metrics are never erased). Histogram options apply only on the call
  // that first registers the name.
  Counter& counter(const std::string& name) HERO_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) HERO_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name, const HistogramOptions& opt = {})
      HERO_EXCLUDES(mu_);

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  //  mean, min, max, p50, p90, p95, p99}}}
  std::string snapshot_json() const HERO_EXCLUDES(mu_);
  bool write_json(const std::string& path) const HERO_EXCLUDES(mu_);

  std::size_t size() const HERO_EXCLUDES(mu_);  // number of registered metrics
  void reset_values() HERO_EXCLUDES(mu_);       // zero everything, keep registrations

 private:
  Registry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ HERO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ HERO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      HERO_GUARDED_BY(mu_);
};

// Appends a JSON-escaped copy of `s` to `out` (shared by the trace and
// telemetry writers).
void json_escape_into(const std::string& s, std::string& out);
// Formats a double as JSON ("null" for NaN/inf, which JSON cannot carry).
std::string json_number(double v);

}  // namespace hero::obs
