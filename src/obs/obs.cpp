#include "obs/obs.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/logging.h"
#include "common/sync.h"

namespace hero::obs {

namespace {

Mutex g_state_mu;
RunManifest g_manifest HERO_GUARDED_BY(g_state_mu);
std::string g_rolling_path HERO_GUARDED_BY(g_state_mu);
int g_rolling_every HERO_GUARDED_BY(g_state_mu) = 0;
// Serializes rolling-snapshot writes; sits at the TOP of the lock hierarchy
// (snapshot_json acquires the registry/phase/alert/telemetry locks below
// it — docs/CORRECTNESS.md).
Mutex g_write_mu;
std::atomic<std::uint64_t> g_episode_ticks{0};
std::atomic<std::uint64_t> g_rolling_written{0};

void append_string_member(std::string& out, const char* key,
                          const std::string& v, bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += key;
  out += "\": \"";
  json_escape_into(v, out);
  out += '"';
}

}  // namespace

Outputs configure(Flags& flags) {
  Outputs out;
  out.metrics_path = flags.get_string("metrics-out", "");
  out.trace_path = flags.get_string("trace-out", "");
  out.telemetry_path = flags.get_string("telemetry-out", "");
  out.metrics_every = flags.get_int("metrics-every", 0);
  if (out.metrics_every > 0 && out.metrics_path.empty()) {
    LOG_ERROR << "--metrics-every " << out.metrics_every
              << " requires --metrics-out PATH (rolling snapshots need a "
                 "snapshot file to rewrite)";
    std::exit(2);
  }
  if (!out.metrics_path.empty()) {
    set_metrics_enabled(true);
    set_phases_enabled(true);
    set_rolling_snapshot(out.metrics_path, out.metrics_every);
  }
  if (!out.trace_path.empty()) set_trace_enabled(true);
  if (!out.telemetry_path.empty() &&
      !Telemetry::instance().open(out.telemetry_path)) {
    LOG_ERROR << "cannot open telemetry sink " << out.telemetry_path;
  }
  return out;
}

RunManifest default_manifest(const char* tool) {
  RunManifest m;
  m.tool = tool;
#ifdef HERO_GIT_SHA
  m.git_sha = HERO_GIT_SHA;
#else
  m.git_sha = "unknown";
#endif
#ifdef HERO_BUILD_TYPE
  m.build_type = HERO_BUILD_TYPE;
#endif
#ifdef HERO_BUILD_FLAGS
  m.build_flags = HERO_BUILD_FLAGS;
#endif
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    m.hostname = host;
  } else {
    m.hostname = "unknown";
  }
  return m;
}

std::string config_digest(const std::string& canonical) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV-1a prime
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return std::string(buf);
}

void set_run_manifest(const RunManifest& m) {
  {
    MutexLock lock(g_state_mu);
    g_manifest = m;
  }
  if (telemetry_enabled()) {
    Telemetry::instance().emit(TelemetryEvent("run_start")
                                   .field("tool", m.tool)
                                   .field("git_sha", m.git_sha)
                                   .field("build_type", m.build_type)
                                   .field("hostname", m.hostname)
                                   .field("config_digest", m.config_digest)
                                   .field("seed", m.seed)
                                   .field("num_workers", m.num_workers)
                                   .field("num_envs", m.num_envs)
                                   .field("batch_envs", m.batch_envs));
  }
}

// Waiver: returns an unlocked reference — the manifest is installed once at
// startup before worker threads exist, so read-only access after that is
// benign; tests that re-install take the lock via set_run_manifest.
const RunManifest& run_manifest() HERO_NO_THREAD_SAFETY_ANALYSIS {
  return g_manifest;
}

std::string manifest_json() {
  MutexLock lock(g_state_mu);
  std::string out;
  out.reserve(256);
  out += '{';
  append_string_member(out, "tool", g_manifest.tool, /*first=*/true);
  append_string_member(out, "git_sha", g_manifest.git_sha);
  append_string_member(out, "build_type", g_manifest.build_type);
  append_string_member(out, "build_flags", g_manifest.build_flags);
  append_string_member(out, "hostname", g_manifest.hostname);
  append_string_member(out, "config_digest", g_manifest.config_digest);
  out += ", \"seed\": ";
  out += std::to_string(g_manifest.seed);
  out += ", \"num_workers\": ";
  out += std::to_string(g_manifest.num_workers);
  out += ", \"num_envs\": ";
  out += std::to_string(g_manifest.num_envs);
  out += ", \"batch_envs\": ";
  out += std::to_string(g_manifest.batch_envs);
  out += '}';
  return out;
}

std::string snapshot_json() {
  // Refresh the silent-data-loss gauges so every snapshot carries them
  // (satellite: surface trace drops and telemetry write failures).
  Registry::instance().gauge("obs.trace.dropped")
      .set(static_cast<double>(TraceRecorder::instance().dropped()));
  Registry::instance().gauge("obs.telemetry.write_errors")
      .set(static_cast<double>(Telemetry::instance().write_errors()));

  std::string out;
  out.reserve(4096);
  out += "{\"manifest\": ";
  out += manifest_json();
  out += ", ";
  std::string reg = Registry::instance().snapshot_json();
  while (!reg.empty() && (reg.back() == '\n' || reg.back() == ' ')) reg.pop_back();
  if (reg.size() > 2) {  // splice the registry object's members
    out.append(reg, 1, reg.size() - 2);
    out += ", ";
  }
  out += "\"phases\": ";
  out += PhaseRegistry::instance().json();
  out += ", \"health\": ";
  out += AlertEngine::instance().health_json();
  out += '}';
  return out;
}

bool write_snapshot_atomic(const std::string& path) {
  const std::string json = snapshot_json();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) return false;
    f << json << '\n';
    f.flush();
    if (!f) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void set_rolling_snapshot(const std::string& path, int every) {
  MutexLock lock(g_state_mu);
  g_rolling_path = path;
  g_rolling_every = every;
  g_episode_ticks.store(0, std::memory_order_relaxed);
}

void note_episode() {
  if (!metrics_enabled()) return;
  int every;
  std::string path;
  {
    MutexLock lock(g_state_mu);
    every = g_rolling_every;
    path = g_rolling_path;
  }
  if (every <= 0 || path.empty()) return;
  const std::uint64_t n =
      g_episode_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % static_cast<std::uint64_t>(every) != 0) return;
  MutexLock lock(g_write_mu);  // one writer at a time; ticks keep counting
  if (write_snapshot_atomic(path)) {
    g_rolling_written.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t rolling_snapshots_written() {
  return g_rolling_written.load(std::memory_order_relaxed);
}

void finalize(const Outputs& out) {
  auto& engine = AlertEngine::instance();
  if (!out.telemetry_path.empty() && telemetry_enabled()) {
    const auto alerts = engine.alerts();
    Telemetry::instance().emit(
        TelemetryEvent("run_end")
            .field("verdict", engine.healthy() ? "healthy" : "sick")
            .field("episodes", engine.episodes_seen())
            .field("alerts", alerts.size()));
  }
  if (!out.metrics_path.empty()) {
    if (write_snapshot_atomic(out.metrics_path)) {
      LOG_INFO << "metrics snapshot written to " << out.metrics_path << " ("
               << Registry::instance().size() << " metrics)";
    } else {
      LOG_ERROR << "cannot write metrics snapshot " << out.metrics_path;
    }
  }
  if (!out.trace_path.empty()) {
    auto& rec = TraceRecorder::instance();
    if (rec.write_chrome_trace(out.trace_path)) {
      LOG_INFO << "trace written to " << out.trace_path << " (" << rec.size()
               << " spans" << (rec.dropped() ? ", some dropped at capacity" : "")
               << ") — open in chrome://tracing or ui.perfetto.dev";
    } else {
      LOG_ERROR << "cannot write trace " << out.trace_path;
    }
  }
  if (health_enabled() && engine.episodes_seen() > 0) {
    if (engine.healthy()) {
      LOG_INFO << "run health: healthy (" << engine.episodes_seen()
               << " episodes, 0 alerts)";
    } else {
      std::string rules;
      for (const auto& a : engine.alerts()) {
        if (!rules.empty()) rules += ", ";
        rules += a.rule;
      }
      LOG_WARN << "run health: SICK — " << engine.alerts().size()
               << " alert(s): " << rules;
    }
  }
  if (!out.telemetry_path.empty()) {
    LOG_INFO << "telemetry stream " << out.telemetry_path << " ("
             << Telemetry::instance().lines_written() << " events)";
    Telemetry::instance().close();
  }
}

}  // namespace hero::obs
