#include "obs/obs.h"

#include "common/logging.h"

namespace hero::obs {

Outputs configure(Flags& flags) {
  Outputs out;
  out.metrics_path = flags.get_string("metrics-out", "");
  out.trace_path = flags.get_string("trace-out", "");
  out.telemetry_path = flags.get_string("telemetry-out", "");
  if (!out.metrics_path.empty()) set_metrics_enabled(true);
  if (!out.trace_path.empty()) set_trace_enabled(true);
  if (!out.telemetry_path.empty() &&
      !Telemetry::instance().open(out.telemetry_path)) {
    LOG_ERROR << "cannot open telemetry sink " << out.telemetry_path;
  }
  return out;
}

void finalize(const Outputs& out) {
  if (!out.metrics_path.empty()) {
    if (Registry::instance().write_json(out.metrics_path)) {
      LOG_INFO << "metrics snapshot written to " << out.metrics_path << " ("
               << Registry::instance().size() << " metrics)";
    } else {
      LOG_ERROR << "cannot write metrics snapshot " << out.metrics_path;
    }
  }
  if (!out.trace_path.empty()) {
    auto& rec = TraceRecorder::instance();
    if (rec.write_chrome_trace(out.trace_path)) {
      LOG_INFO << "trace written to " << out.trace_path << " (" << rec.size()
               << " spans" << (rec.dropped() ? ", some dropped at capacity" : "")
               << ") — open in chrome://tracing or ui.perfetto.dev";
    } else {
      LOG_ERROR << "cannot write trace " << out.trace_path;
    }
  }
  if (!out.telemetry_path.empty()) {
    LOG_INFO << "telemetry stream " << out.telemetry_path << " ("
             << Telemetry::instance().lines_written() << " events)";
    Telemetry::instance().close();
  }
}

}  // namespace hero::obs
