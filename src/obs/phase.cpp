#include "obs/phase.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>

#include "obs/metrics.h"

namespace hero::obs {

namespace detail {

std::atomic<bool> g_phases_enabled{false};

std::uint64_t phase_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
// Each thread holds a shared_ptr so the registry's copy keeps the tree (and
// its accumulated totals) alive after the thread exits — snapshots taken
// after pool shutdown still see worker phases.
thread_local std::shared_ptr<PhaseThreadTree> t_tree;

PhaseThreadTree& local_tree() {
  if (!t_tree) {
    t_tree = std::make_shared<PhaseThreadTree>();
    PhaseRegistry::instance().register_tree(t_tree);
  }
  return *t_tree;
}
}  // namespace

PhaseNode* phase_enter(const char* name) {
  PhaseThreadTree& tree = local_tree();
  PhaseNode* cur = tree.current;
  // Lock-free child lookup: only the owner thread ever appends children, so
  // iterating the vector here cannot race with a concurrent writer. Pointer
  // identity catches the common case (same OBS_PHASE site); strcmp catches
  // distinct literals with equal text.
  for (const auto& child : cur->children) {
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      tree.current = child.get();
      return child.get();
    }
  }
  PhaseNode* node;
  {
    MutexLock lock(tree.mu);
    auto fresh = std::make_unique<PhaseNode>();
    fresh->name = name;
    fresh->parent = cur;
    node = fresh.get();
    cur->children.push_back(std::move(fresh));
  }
  tree.current = node;
  return node;
}

void phase_exit(PhaseNode* node, std::uint64_t dur_ns) {
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  local_tree().current = node->parent;
}

}  // namespace detail

void set_phases_enabled(bool on) {
  detail::g_phases_enabled.store(on, std::memory_order_relaxed);
}

PhaseRegistry& PhaseRegistry::instance() {
  static PhaseRegistry* reg = new PhaseRegistry();  // leaked: outlive threads
  return *reg;
}

void PhaseRegistry::register_tree(std::shared_ptr<detail::PhaseThreadTree> tree) {
  MutexLock lock(mu_);
  trees_.push_back(std::move(tree));
}

namespace {

void merge_node(const detail::PhaseNode& src, std::vector<PhaseStat>& out) {
  for (const auto& child : src.children) {
    const std::uint64_t count = child->count.load(std::memory_order_relaxed);
    const std::uint64_t ns = child->total_ns.load(std::memory_order_relaxed);
    PhaseStat* stat = nullptr;
    for (auto& existing : out) {
      if (existing.name == child->name) {
        stat = &existing;
        break;
      }
    }
    if (!stat) {
      out.emplace_back();
      stat = &out.back();
      stat->name = child->name;
    }
    stat->count += count;
    stat->total_us += static_cast<double>(ns) * 1e-3;
    merge_node(*child, stat->children);
  }
}

void sort_stats(std::vector<PhaseStat>& stats) {
  std::sort(stats.begin(), stats.end(),
            [](const PhaseStat& a, const PhaseStat& b) { return a.name < b.name; });
  for (auto& s : stats) sort_stats(s.children);
}

void stats_json_into(const std::vector<PhaseStat>& stats, std::string& out) {
  out += '{';
  bool first = true;
  for (const auto& s : stats) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    json_escape_into(s.name.c_str(), out);
    out += "\": {\"count\": ";
    out += std::to_string(s.count);
    out += ", \"total_us\": ";
    out += json_number(s.total_us);
    if (!s.children.empty()) {
      out += ", \"children\": ";
      stats_json_into(s.children, out);
    }
    out += '}';
  }
  out += '}';
}

void reset_node(detail::PhaseNode& node) {
  node.count.store(0, std::memory_order_relaxed);
  node.total_ns.store(0, std::memory_order_relaxed);
  for (auto& child : node.children) reset_node(*child);
}

}  // namespace

std::vector<PhaseStat> PhaseRegistry::snapshot() const {
  MutexLock lock(mu_);
  std::vector<PhaseStat> merged;
  for (const auto& tree : trees_) {
    MutexLock tree_lock(tree->mu);
    merge_node(tree->root, merged);
  }
  sort_stats(merged);
  return merged;
}

std::string PhaseRegistry::json() const {
  const auto stats = snapshot();
  std::string out;
  out.reserve(1024);
  stats_json_into(stats, out);
  return out;
}

void PhaseRegistry::reset() {
  MutexLock lock(mu_);
  for (const auto& tree : trees_) {
    MutexLock tree_lock(tree->mu);
    reset_node(tree->root);
  }
}

}  // namespace hero::obs
