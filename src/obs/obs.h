// Umbrella header and CLI wiring for the observability layer.
//
// Tool binaries opt the subsystems in with
//
//   hero::Flags flags(argc, argv);
//   auto outputs = obs::configure(flags);   // --metrics-out/--trace-out/
//                                           // --telemetry-out/--metrics-every
//   auto manifest = obs::default_manifest("hero_train");
//   manifest.seed = seed; ...               // stamp run parameters
//   obs::set_run_manifest(manifest);        // emits "run_start" telemetry
//   ... run ...                             // trainers call note_episode()
//   obs::finalize(outputs);                 // snapshot + run_end + verdict
//
// Each subsystem stays fully disabled (near-zero instrumentation cost)
// unless its flag was given. --metrics-out additionally enables phase-time
// attribution (obs/phase.h) and the run-health verdict (obs/alerts.h); the
// metrics snapshot is the composed document
//
//   {"manifest": ..., "counters": ..., "gauges": ..., "histograms": ...,
//    "phases": ..., "health": ...}
//
// written atomically (tmp + rename) so live readers such as
// tools/hero_monitor never observe torn JSON. With --metrics-every N the
// same document is rewritten every N finished episodes while the run is
// still going.
#pragma once

#include <cstdint>
#include <string>

#include "common/flags.h"
#include "obs/alerts.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace hero::obs {

struct Outputs {
  std::string metrics_path;    // JSON metrics snapshot
  std::string trace_path;      // Chrome trace_event JSON
  std::string telemetry_path;  // JSONL event stream
  int metrics_every = 0;       // episodes between rolling snapshots (0 = off)
};

// Identifies the run that produced an artifact: stamped into the metrics
// snapshot ("manifest") and the telemetry stream ("run_start" event) so any
// file on disk can be traced back to a (binary, commit, seed, topology).
struct RunManifest {
  std::string tool;           // producing binary, e.g. "hero_train"
  std::string git_sha;        // configure-time HEAD (stale if not re-cmaked)
  std::string build_type;     // CMAKE_BUILD_TYPE
  std::string build_flags;    // CMAKE_CXX_FLAGS
  std::string hostname;
  std::string config_digest;  // config_digest() over the canonical flag string
  long long seed = 0;
  int num_workers = 1;
  int num_envs = 0;
  int batch_envs = 0;
};

// Reads --metrics-out, --trace-out, --telemetry-out and --metrics-every from
// `flags` and enables the matching subsystems. --metrics-every without
// --metrics-out is a usage error: logs and exits with status 2. Call before
// flags.check_unknown().
Outputs configure(Flags& flags);

// Manifest skeleton with the build-determined fields filled in (git sha,
// build type/flags, hostname). The caller sets seed/topology/digest and then
// installs it with set_run_manifest().
RunManifest default_manifest(const char* tool);

// FNV-1a 64-bit digest of a canonical "key=value ..." flag string, as 16 hex
// chars. Same flags => same digest, so runs are groupable by configuration.
std::string config_digest(const std::string& canonical);

// Installs the manifest and, when telemetry is open, emits a "run_start"
// event carrying it.
void set_run_manifest(const RunManifest& m);
const RunManifest& run_manifest();
std::string manifest_json();

// The composed snapshot document (see file comment for the schema).
std::string snapshot_json();

// Writes snapshot_json() via write-to-tmp + rename: a concurrent reader
// sees either the previous complete document or the new one, never a torn
// mix. Returns false on I/O failure.
bool write_snapshot_atomic(const std::string& path);

// Programmatic form of --metrics-every (used by configure and tests):
// every `every`-th note_episode() call rewrites `path`. every<=0 disables.
void set_rolling_snapshot(const std::string& path, int every);

// Episode tick: trainers call once per finished episode. Cheap no-op unless
// metrics and a rolling path are configured.
void note_episode();
std::uint64_t rolling_snapshots_written();

// Run-health feeding is keyed off either sink being active.
inline bool health_enabled() { return metrics_enabled() || telemetry_enabled(); }

// Writes the final snapshot and trace (if requested), emits a "run_end"
// telemetry event with the health verdict, logs the verdict, and closes the
// telemetry stream. Safe to call with empty paths.
void finalize(const Outputs& out);

}  // namespace hero::obs
