// Umbrella header and CLI wiring for the observability layer.
//
// Tool binaries opt the three subsystems in with
//
//   hero::Flags flags(argc, argv);
//   auto outputs = obs::configure(flags);   // --metrics-out/--trace-out/--telemetry-out
//   ... run ...
//   obs::finalize(outputs);                 // write snapshots, close streams
//
// Each subsystem stays fully disabled (near-zero instrumentation cost)
// unless its flag was given.
#pragma once

#include <string>

#include "common/flags.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace hero::obs {

struct Outputs {
  std::string metrics_path;    // JSON metrics snapshot
  std::string trace_path;      // Chrome trace_event JSON
  std::string telemetry_path;  // JSONL event stream
};

// Reads --metrics-out, --trace-out and --telemetry-out from `flags` and
// enables the matching subsystems. Call before flags.check_unknown().
Outputs configure(Flags& flags);

// Writes the metrics snapshot and trace file (if requested) and closes the
// telemetry stream. Safe to call with empty paths.
void finalize(const Outputs& out);

}  // namespace hero::obs
