#include "serve/request_builder.h"

#include <algorithm>

namespace hero::serve {

void fill_request_from_world(const sim::LaneWorld& world, bool reset,
                             ActRequest* req) {
  const std::size_t n = static_cast<std::size_t>(world.num_learners());
  const std::size_t hl_dim = world.high_level_obs_dim();
  const std::size_t ll_dim = world.low_level_obs_dim();
  const int lanes = world.track().num_lanes();

  req->reset = reset ? 1 : 0;
  req->y.resize(n);
  req->heading.resize(n);
  req->speed.resize(n);
  req->lane.resize(n);
  req->hl.resize(n * hl_dim);
  req->ll.resize(n * static_cast<std::size_t>(lanes) * ll_dim);

  for (std::size_t k = 0; k < n; ++k) {
    const int vi = world.learners()[k];
    const auto& st = world.vehicle(vi).state();
    req->y[k] = st.y;
    req->heading[k] = st.heading;
    req->speed[k] = st.speed;
    req->lane[k] = world.lane(vi);

    const auto hl = world.high_level_obs(vi);
    std::copy(hl.begin(), hl.end(),
              req->hl.begin() + static_cast<std::ptrdiff_t>(k * hl_dim));
    for (int lane = 0; lane < lanes; ++lane) {
      const auto ll = world.low_level_obs(vi, lane);
      std::copy(ll.begin(), ll.end(),
                req->ll.begin() +
                    static_cast<std::ptrdiff_t>(
                        (k * static_cast<std::size_t>(lanes) +
                         static_cast<std::size_t>(lane)) *
                        ll_dim));
    }
  }
}

}  // namespace hero::serve
