// PolicyEngine: the model side of the policy server (docs/SERVING.md).
//
// Owns the live HERO model (a HeroTrainer restored from a frozen
// checkpoint), the fused HeroActEngine, the ObsBatch staging area, and the
// per-session semi-MDP state. The transport layer (server.h, or an
// in-process harness like hero_loadgen --in-process) hands it decoded
// ActRequests in whatever grouping the micro-batcher chose; one act_batch()
// call runs the cross-request fused pass and fills the responses.
//
// Hot reload: reload() restores the new checkpoint into a STANDBY trainer
// first — manifest validation and tensor loading happen entirely off the
// serving path — then swaps it in. Sessions hold no pointers into the model
// (HeroSession is pure option bookkeeping; the engine takes the model per
// call), so in-flight sessions continue seamlessly under the new weights,
// and a failed reload leaves the active model untouched.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hero/act_engine.h"
#include "hero/checkpoint.h"
#include "hero/hero_trainer.h"
#include "serve/protocol.h"

namespace hero::serve {

class PolicyEngine {
 public:
  // Builds the serving model for `scenario` + `cfg` and restores `ckpt_dir`
  // into it (throws std::runtime_error on a missing or incompatible
  // checkpoint — see hero/checkpoint.h).
  PolicyEngine(const sim::Scenario& scenario, const core::HeroConfig& cfg,
               const std::string& ckpt_dir);

  // --- model geometry (what Hello frames are validated against) ---
  int learners() const;
  std::size_t hl_dim() const;
  std::size_t ll_dim() const;
  int num_lanes() const;
  double dt() const;
  const core::CheckpointManifest& manifest() const { return manifest_; }
  // True when the active checkpoint predates manifests (loaded unvalidated).
  bool legacy_checkpoint() const { return legacy_; }

  // Empty when `hello` matches the model; otherwise a client-facing
  // description of every dimension mismatch.
  std::string hello_mismatch(const Hello& hello) const;

  // --- sessions ---
  std::uint32_t open_session(std::uint64_t seed, bool explore);
  void close_session(std::uint32_t id);
  bool has_session(std::uint32_t id) const {
    return sessions_.find(id) != sessions_.end();
  }
  std::size_t session_count() const { return sessions_.size(); }

  // --- inference ---
  // One scheduled batch: requests[i] belongs to session_ids[i] and its
  // response lands in (*responses)[i]. Mixed greedy/explore batches are
  // partitioned internally (one fused pass per mode); requests of the same
  // mode batch together regardless of session. Each response carries the
  // commands plus the option every agent holds after the tick.
  void act_batch(const std::vector<std::uint32_t>& session_ids,
                 const std::vector<const ActRequest*>& requests,
                 std::vector<ActResponse>* responses);

  // --- hot reload ---
  // Swaps in `ckpt_dir`. Throws std::runtime_error (active model untouched)
  // when the checkpoint is missing or incompatible.
  void reload(const std::string& ckpt_dir);
  long reloads() const { return reloads_; }

 private:
  struct Session {
    core::HeroSession hero;
    Rng rng;
    bool explore = false;
  };

  // One fused engine pass over the subset of `indices` (positions into the
  // act_batch arguments) whose sessions run in `explore` mode.
  void run_mode(const std::vector<std::uint32_t>& session_ids,
                const std::vector<const ActRequest*>& requests,
                std::vector<ActResponse>* responses,
                const std::vector<std::size_t>& indices, bool explore);

  sim::Scenario scenario_;
  core::HeroConfig cfg_;
  std::unique_ptr<core::HeroTrainer> model_;
  core::CheckpointManifest manifest_;
  bool legacy_ = false;
  long reloads_ = 0;

  core::HeroActEngine engine_;
  rl::ObsBatch batch_;
  std::map<std::uint32_t, Session> sessions_;
  std::uint32_t next_session_ = 1;

  // act_batch scratch (reused across calls).
  std::vector<std::size_t> greedy_idx_, explore_idx_;
  std::vector<core::HeroSession*> session_ptrs_;
  std::vector<Rng*> rng_ptrs_;
  std::vector<sim::TwistCmd> cmds_;
};

}  // namespace hero::serve
