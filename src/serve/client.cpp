#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace hero::serve {

ServeClient::ServeClient(const std::string& socket_path) {
  if (socket_path.empty() || socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("invalid serve socket path: \"" + socket_path + "\"");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::generic_category().message(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::generic_category().message(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect(" + socket_path + "): " + err);
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServeClient::send_all() {
  std::size_t off = 0;
  while (off < out_.size()) {
    const ssize_t wrote = ::write(fd_, out_.data() + off, out_.size() - off);
    if (wrote > 0) {
      off += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    throw std::runtime_error(std::string("serve client write(): ") +
                             std::generic_category().message(errno));
  }
  out_.clear();
}

bool ServeClient::read_frame(MsgType* type, std::vector<std::uint8_t>* payload) {
  while (true) {
    if (reader_.next(type, payload)) return true;
    if (reader_.bad()) {
      throw std::runtime_error("serve client: malformed frame from server");
    }
    read_buf_.resize(64 * 1024);
    const ssize_t got = ::read(fd_, read_buf_.data(), read_buf_.size());
    if (got > 0) {
      reader_.feed(read_buf_.data(), static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) return false;  // server closed
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("serve client read(): ") +
                             std::generic_category().message(errno));
  }
}

void ServeClient::throw_server_error(const std::vector<std::uint8_t>& payload) {
  ErrorMsg err;
  if (decode_error(payload.data(), payload.size(), &err)) {
    throw std::runtime_error("serve server error: " + err.message);
  }
  throw std::runtime_error("serve server error (unparseable)");
}

HelloAck ServeClient::hello(const Hello& h) {
  encode_hello(h, out_);
  send_all();
  MsgType type;
  if (!read_frame(&type, &payload_)) {
    throw std::runtime_error("serve server closed during Hello");
  }
  if (type == MsgType::kError) throw_server_error(payload_);
  HelloAck ack;
  if (type != MsgType::kHelloAck ||
      !decode_hello_ack(payload_.data(), payload_.size(), &ack)) {
    throw std::runtime_error("serve client: unexpected reply to Hello");
  }
  learners_ = h.learners;
  return ack;
}

ActResponse ServeClient::act(const ActRequest& req) {
  send_act(req);
  ActResponse resp = recv_act();
  if (resp.request_id != req.request_id) {
    throw std::runtime_error("serve client: response id mismatch");
  }
  return resp;
}

void ServeClient::send_act(const ActRequest& req) {
  encode_act(req, out_);
  send_all();
}

void ServeClient::queue_act(const ActRequest& req) { encode_act(req, out_); }

void ServeClient::flush() { send_all(); }

ActResponse ServeClient::recv_act() {
  MsgType type;
  if (!read_frame(&type, &payload_)) {
    throw std::runtime_error("serve server closed mid-request");
  }
  if (type == MsgType::kError) throw_server_error(payload_);
  ActResponse resp;
  if (type != MsgType::kActResponse ||
      !decode_act_response(payload_.data(), payload_.size(), learners_, &resp)) {
    throw std::runtime_error("serve client: unexpected reply to ActRequest");
  }
  return resp;
}

ReloadAck ServeClient::reload(const std::string& dir) {
  Reload r;
  r.dir = dir;
  encode_reload(r, out_);
  send_all();
  MsgType type;
  if (!read_frame(&type, &payload_)) {
    throw std::runtime_error("serve server closed during Reload");
  }
  if (type == MsgType::kError) throw_server_error(payload_);
  ReloadAck ack;
  if (type != MsgType::kReloadAck ||
      !decode_reload_ack(payload_.data(), payload_.size(), &ack)) {
    throw std::runtime_error("serve client: unexpected reply to Reload");
  }
  return ack;
}

void ServeClient::shutdown_server() {
  encode_shutdown(out_);
  send_all();
}

}  // namespace hero::serve
