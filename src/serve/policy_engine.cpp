#include "serve/policy_engine.h"

#include <algorithm>
#include <sstream>

#include "obs/phase.h"

namespace hero::serve {

namespace {
// The serving model's weights come entirely from the checkpoint; this seed
// only initializes the to-be-overwritten construction weights, and keeping
// it fixed keeps server startup deterministic.
constexpr std::uint64_t kModelInitSeed = 0x5e12e;
}  // namespace

PolicyEngine::PolicyEngine(const sim::Scenario& scenario,
                           const core::HeroConfig& cfg,
                           const std::string& ckpt_dir)
    : scenario_(scenario), cfg_(cfg) {
  // The manifest makes the checkpoint self-describing: adopt its network
  // widths before constructing the model, so one server binary serves
  // checkpoints of any --hidden size.
  core::CheckpointManifest peek;
  if (core::read_manifest(ckpt_dir, &peek)) {
    core::apply_manifest_geometry(peek, &cfg_);
  }
  Rng rng(kModelInitSeed);
  model_ = std::make_unique<core::HeroTrainer>(scenario_, cfg_, rng);
  manifest_ = core::load_checkpoint(*model_, ckpt_dir, &legacy_);
  batch_.configure(learners(), hl_dim(), ll_dim(), num_lanes());
}

int PolicyEngine::learners() const { return model_->num_agents(); }
std::size_t PolicyEngine::hl_dim() const { return model_->world().high_level_obs_dim(); }
std::size_t PolicyEngine::ll_dim() const { return model_->world().low_level_obs_dim(); }
int PolicyEngine::num_lanes() const { return model_->world().track().num_lanes(); }
double PolicyEngine::dt() const { return model_->world().config().dt; }

std::string PolicyEngine::hello_mismatch(const Hello& hello) const {
  std::ostringstream err;
  int problems = 0;
  const auto check = [&](const char* what, std::uint32_t got, std::size_t want) {
    if (got != static_cast<std::uint32_t>(want)) {
      err << (problems++ ? "; " : "") << what << ": client has " << got
          << ", server has " << want;
    }
  };
  check("learners", hello.learners, static_cast<std::size_t>(learners()));
  check("hl_dim", hello.hl_dim, hl_dim());
  check("ll_dim", hello.ll_dim, ll_dim());
  check("num_lanes", hello.num_lanes, static_cast<std::size_t>(num_lanes()));
  return err.str();
}

std::uint32_t PolicyEngine::open_session(std::uint64_t seed, bool explore) {
  const std::uint32_t id = next_session_++;
  Session& s = sessions_[id];
  s.rng = Rng(seed);
  s.explore = explore;
  return id;
}

void PolicyEngine::close_session(std::uint32_t id) { sessions_.erase(id); }

void PolicyEngine::act_batch(const std::vector<std::uint32_t>& session_ids,
                             const std::vector<const ActRequest*>& requests,
                             std::vector<ActResponse>* responses) {
  OBS_PHASE("serve_act");
  HERO_CHECK(session_ids.size() == requests.size());
  responses->resize(requests.size());
  greedy_idx_.clear();
  explore_idx_.clear();
  for (std::size_t i = 0; i < session_ids.size(); ++i) {
    auto it = sessions_.find(session_ids[i]);
    HERO_CHECK_MSG(it != sessions_.end(),
                   "act_batch: unknown session " << session_ids[i]);
    (it->second.explore ? explore_idx_ : greedy_idx_).push_back(i);
  }
  if (!greedy_idx_.empty()) {
    run_mode(session_ids, requests, responses, greedy_idx_, /*explore=*/false);
  }
  if (!explore_idx_.empty()) {
    run_mode(session_ids, requests, responses, explore_idx_, /*explore=*/true);
  }
}

void PolicyEngine::run_mode(const std::vector<std::uint32_t>& session_ids,
                            const std::vector<const ActRequest*>& requests,
                            std::vector<ActResponse>* responses,
                            const std::vector<std::size_t>& indices, bool explore) {
  const int n = learners();
  const std::size_t hl = hl_dim();
  const std::size_t ll = ll_dim();
  const int lanes = num_lanes();
  const sim::Track& track = model_->world().track();
  const double step_dt = dt();

  batch_.set_count(indices.size());
  session_ptrs_.resize(indices.size());
  rng_ptrs_.resize(indices.size());
  for (std::size_t s = 0; s < indices.size(); ++s) {
    const ActRequest& req = *requests[indices[s]];
    Session& sess = sessions_.at(session_ids[indices[s]]);
    session_ptrs_[s] = &sess.hero;
    rng_ptrs_[s] = &sess.rng;

    auto& meta = batch_.slot(s);
    meta.track = &track;
    meta.dt = step_dt;
    meta.reset = req.reset != 0;
    for (int k = 0; k < n; ++k) {
      auto& sc = batch_.scalars(s, k);
      const std::size_t uk = static_cast<std::size_t>(k);
      sc.y = req.y[uk];
      sc.heading = req.heading[uk];
      sc.speed = req.speed[uk];
      sc.lane = req.lane[uk];
      HERO_CHECK_MSG(sc.lane >= 0 && sc.lane < lanes,
                     "act request lane " << sc.lane << " out of range");
      std::copy(req.hl.begin() + static_cast<std::ptrdiff_t>(uk * hl),
                req.hl.begin() + static_cast<std::ptrdiff_t>((uk + 1) * hl),
                batch_.hl_row(s, k));
      for (int lane = 0; lane < lanes; ++lane) {
        const std::size_t row =
            (uk * static_cast<std::size_t>(lanes) + static_cast<std::size_t>(lane)) *
            ll;
        std::copy(req.ll.begin() + static_cast<std::ptrdiff_t>(row),
                  req.ll.begin() + static_cast<std::ptrdiff_t>(row + ll),
                  batch_.ll_row(s, k, lane));
      }
    }
  }

  cmds_.resize(indices.size() * static_cast<std::size_t>(n));
  engine_.act_rows(model_->skills(), model_->agents(), cfg_.high,
                   cfg_.skill.termination, batch_, session_ptrs_.data(),
                   rng_ptrs_.data(), explore, cmds_.data());

  for (std::size_t s = 0; s < indices.size(); ++s) {
    const ActRequest& req = *requests[indices[s]];
    ActResponse& resp = (*responses)[indices[s]];
    resp.request_id = req.request_id;
    resp.linear.resize(static_cast<std::size_t>(n));
    resp.angular.resize(static_cast<std::size_t>(n));
    resp.option.resize(static_cast<std::size_t>(n));
    const core::HeroSession& hero = *session_ptrs_[s];
    for (int k = 0; k < n; ++k) {
      const sim::TwistCmd& cmd = cmds_[s * static_cast<std::size_t>(n) +
                                       static_cast<std::size_t>(k)];
      resp.linear[static_cast<std::size_t>(k)] = cmd.linear;
      resp.angular[static_cast<std::size_t>(k)] = cmd.angular;
      resp.option[static_cast<std::size_t>(k)] =
          hero.options[static_cast<std::size_t>(k)];
    }
  }
}

void PolicyEngine::reload(const std::string& ckpt_dir) {
  OBS_PHASE("serve_reload");
  // Build and restore the standby entirely before touching the active model:
  // any throw below leaves serving exactly as it was. The new checkpoint's
  // manifest supplies its own network widths, so hot reload works even
  // across differently-sized checkpoints (the obs dims must still match —
  // validate_manifest enforces that).
  core::HeroConfig standby_cfg = cfg_;
  core::CheckpointManifest peek;
  if (core::read_manifest(ckpt_dir, &peek)) {
    core::apply_manifest_geometry(peek, &standby_cfg);
  }
  Rng rng(kModelInitSeed);
  auto standby = std::make_unique<core::HeroTrainer>(scenario_, standby_cfg, rng);
  bool legacy = false;
  core::CheckpointManifest manifest = core::load_checkpoint(*standby, ckpt_dir,
                                                            &legacy);
  model_ = std::move(standby);
  cfg_ = standby_cfg;
  manifest_ = manifest;
  legacy_ = legacy;
  ++reloads_;
}

}  // namespace hero::serve
