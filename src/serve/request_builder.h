// Fills an ActRequest from a live sim::LaneWorld — the client-side feature
// extraction mirroring ObsBatch::set_slot_from_world on the server side.
// Used by hero_loadgen's simulated vehicles and by the serving-equivalence
// tests, so both feed the server byte-identical features to what in-process
// evaluation computes.
#pragma once

#include "serve/protocol.h"
#include "sim/lane_world.h"

namespace hero::serve {

// Overwrites every field of `req` except request_id. `reset` flags the start
// of a fresh episode. Vectors are resized in place (steady-state reuse
// allocates nothing once the dims stabilize).
void fill_request_from_world(const sim::LaneWorld& world, bool reset,
                             ActRequest* req);

}  // namespace hero::serve
