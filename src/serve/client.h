// ServeClient: a blocking unix-socket client for the hero_serve protocol —
// what hero_loadgen's simulated vehicles and the serving tests speak
// (docs/SERVING.md). One connection = one session; the client itself is
// single-threaded (loadgen achieves concurrency by giving each simulated
// client its own connection on a runtime::ThreadPool worker).
#pragma once

#include <string>
#include <vector>

#include "serve/protocol.h"

namespace hero::serve {

class ServeClient {
 public:
  // Connects to the server's unix socket; throws std::runtime_error on
  // failure.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Opens the session. Throws std::runtime_error when the server rejects the
  // Hello (dimension mismatch) or the connection breaks.
  HelloAck hello(const Hello& h);

  // One blocking act round-trip. The request's learner/feature vectors must
  // match the dims negotiated in hello().
  ActResponse act(const ActRequest& req);

  // Pipelined operation: send_act queues a request without waiting;
  // recv_act blocks for the next response. The server answers each
  // connection's requests in order, so responses come back FIFO — callers
  // match them to requests by request_id. A window of in-flight requests is
  // how loadgen keeps cross-request batches full (docs/SERVING.md).
  void send_act(const ActRequest& req);
  ActResponse recv_act();

  // Burst variant: queue_act only encodes into the output buffer; flush()
  // writes every queued frame with one syscall. A window burst costs one
  // write() instead of one per request — the client-side mirror of the
  // server's per-connection write coalescing.
  void queue_act(const ActRequest& req);
  void flush();

  // Admin: hot-swap the server's checkpoint / stop the server.
  ReloadAck reload(const std::string& dir);
  void shutdown_server();

 private:
  // Sends everything buffered in out_, then blocks for one frame.
  void send_all();
  bool read_frame(MsgType* type, std::vector<std::uint8_t>* payload);
  [[noreturn]] void throw_server_error(const std::vector<std::uint8_t>& payload);

  int fd_ = -1;
  std::uint32_t learners_ = 0;
  FrameReader reader_;
  std::vector<std::uint8_t> out_;
  std::vector<std::uint8_t> payload_;
  std::vector<std::uint8_t> read_buf_;
};

}  // namespace hero::serve
