// Micro-batching scheduler for the policy server (docs/SERVING.md §Batching).
//
// Pure decision logic — no clocks, no I/O: the caller passes `now_us`
// (obs::now_us() in the server, synthetic time in tests), the batcher
// answers two questions:
//
//   * should the pending requests flush NOW?  (batch full, or the oldest
//     request has waited max_wait_us)
//   * if not, how long until they must?       (the poll timeout)
//
// The classic latency/throughput dial: max_wait_us = 0 degenerates to
// serve-immediately (minimum latency, batch = whatever arrived in one poll
// round), large max_wait_us approaches fixed-size batching (maximum
// throughput). Requests flush strictly in arrival order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace hero::serve {

struct BatcherConfig {
  std::size_t max_batch = 16;    // flush as soon as this many are pending
  long long max_wait_us = 1000;  // ...or when the oldest has waited this long
};

class MicroBatcher {
 public:
  explicit MicroBatcher(const BatcherConfig& cfg = {}) : cfg_(cfg) {
    HERO_CHECK(cfg_.max_batch > 0);
    HERO_CHECK(cfg_.max_wait_us >= 0);
  }

  const BatcherConfig& config() const { return cfg_; }

  // Registers request `tag` (an opaque caller handle) arriving at `now_us`.
  void enqueue(std::uint64_t tag, long long now_us) {
    pending_.push_back({tag, now_us});
  }

  std::size_t pending() const { return pending_.size(); }

  bool should_flush(long long now_us) const {
    if (pending_.empty()) return false;
    if (pending_.size() >= cfg_.max_batch) return true;
    return now_us - pending_.front().arrival_us >= cfg_.max_wait_us;
  }

  // Microseconds until the oldest pending request hits its deadline (0 when
  // already due); -1 when nothing is pending (no deadline — block freely).
  long long wait_budget_us(long long now_us) const {
    if (pending_.empty()) return -1;
    const long long due = pending_.front().arrival_us + cfg_.max_wait_us;
    return due > now_us ? due - now_us : 0;
  }

  // Drains up to max_batch tags in arrival order into `out` (cleared first).
  void take(std::vector<std::uint64_t>& out) {
    out.clear();
    const std::size_t n = pending_.size() < cfg_.max_batch ? pending_.size()
                                                           : cfg_.max_batch;
    for (std::size_t i = 0; i < n; ++i) out.push_back(pending_[i].tag);
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(n));
  }

 private:
  struct Pending {
    std::uint64_t tag;
    long long arrival_us;
  };
  BatcherConfig cfg_;
  std::vector<Pending> pending_;
};

}  // namespace hero::serve
