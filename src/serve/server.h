// ServeServer: the transport layer of hero_serve (docs/SERVING.md).
//
// A single-threaded poll() event loop over a unix-domain stream socket —
// deliberately thread-free (the repo's threading lives in src/runtime; one
// core runs the whole serving stack, which also makes served answers
// trivially deterministic). Concurrency comes from the protocol instead:
// N clients multiplex onto the loop, their requests queue in the
// MicroBatcher, and each scheduling tick answers a whole batch through one
// fused PolicyEngine pass.
//
// Request lifecycle:
//   readable fd → FrameReader → decoded ActRequest → micro-batch queue
//   (deadline = arrival + max_wait_us) → flush tick → PolicyEngine
//   act_batch → responses encoded into per-connection write buffers →
//   writable fd drains them.
//
// Admin frames ride the same connections: Reload flushes the pending batch
// (requests that arrived before the reload are answered by the old model),
// swaps the checkpoint via PolicyEngine::reload — in-flight sessions
// continue under the new weights, nothing is dropped — and acks. Shutdown
// answers everything still queued, drains the write buffers, and returns
// from run().
//
// Observability (when --metrics-out is set): serve.latency_us /
// serve.batch_size / serve.queue_depth histograms plus request/response/
// connection/reload counters — the p50/p99 and QPS numbers BENCH_serve.json
// reports come from these.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/batcher.h"
#include "serve/policy_engine.h"
#include "serve/protocol.h"

namespace hero::serve {

struct ServerConfig {
  std::string socket_path;
  BatcherConfig batcher;
  std::size_t max_clients = 64;
};

class ServeServer {
 public:
  // Binds and listens (unlinking a stale socket file first); throws
  // std::runtime_error on socket errors.
  ServeServer(PolicyEngine& engine, const ServerConfig& cfg);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Serves until a Shutdown frame arrives.
  void run();

  long responses_sent() const { return responses_sent_; }
  long requests_received() const { return requests_received_; }

 private:
  struct Conn {
    int fd = -1;
    std::uint32_t id = 0;
    FrameReader reader;
    std::vector<std::uint8_t> out;  // encoded frames awaiting the socket
    std::size_t out_off = 0;
    bool has_session = false;
    std::uint32_t session = 0;
    bool close_after_flush = false;  // terminal error sent; close once drained
  };

  struct PendingReq {
    std::uint32_t conn_id;
    ActRequest req;
    long long arrival_us;
  };

  void accept_clients();
  // Reads whatever the socket has and processes complete frames. Returns
  // false when the connection died.
  bool service_readable(Conn& c);
  void handle_frame(Conn& c, MsgType type, const std::vector<std::uint8_t>& payload);
  // Answers up to max_batch queued requests through one fused pass.
  void flush_batch();
  // Flushes until the request queue is empty (reload/shutdown barriers).
  void flush_all();
  // Returns the request's vectors to req_pool_ and removes the map entry.
  void recycle_pending(std::map<std::uint64_t, PendingReq>::iterator it);
  bool drain_writes(Conn& c);  // false when the connection died
  void close_conn(std::uint32_t id);
  void send_error(Conn& c, const std::string& message);

  PolicyEngine& engine_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  std::map<std::uint32_t, std::unique_ptr<Conn>> conns_;
  std::uint32_t next_conn_ = 1;

  MicroBatcher batcher_;  // tags are tickets into pending_
  std::map<std::uint64_t, PendingReq> pending_;
  // Retired ActRequests, recycled so their feature vectors keep their
  // capacity: steady-state request handling does no heap allocation beyond
  // the map node.
  std::vector<ActRequest> req_pool_;
  std::uint64_t next_ticket_ = 1;
  bool shutting_down_ = false;

  long requests_received_ = 0;
  long responses_sent_ = 0;

  // flush_batch scratch.
  std::vector<std::uint64_t> tickets_;
  std::vector<std::uint32_t> batch_sessions_;
  std::vector<const ActRequest*> batch_requests_;
  std::vector<std::map<std::uint64_t, PendingReq>::iterator> batch_its_;
  std::vector<ActResponse> batch_responses_;
  std::vector<std::uint32_t> touched_conns_;
  std::vector<std::uint8_t> read_buf_;
};

}  // namespace hero::serve
