#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hero::serve {

namespace {

long long now_us_ll() { return static_cast<long long>(obs::now_us()); }

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void count(const char* name, long long delta = 1) {
  if (!obs::metrics_enabled()) return;
  obs::Registry::instance().counter(name).inc(delta);
}

void observe(const char* name, const obs::HistogramOptions& opts, double value) {
  if (!obs::metrics_enabled()) return;
  obs::Registry::instance().histogram(name, opts).observe(value);
}

const obs::HistogramOptions kLatencyHist{/*lo=*/1.0, /*hi=*/1e7, /*buckets=*/64,
                                         /*log_scale=*/true};
const obs::HistogramOptions kBatchHist{/*lo=*/0.0, /*hi=*/64.0, /*buckets=*/64,
                                       /*log_scale=*/false};
const obs::HistogramOptions kDepthHist{/*lo=*/0.0, /*hi=*/256.0, /*buckets=*/64,
                                       /*log_scale=*/false};

}  // namespace

ServeServer::ServeServer(PolicyEngine& engine, const ServerConfig& cfg)
    : engine_(engine), cfg_(cfg), batcher_(cfg.batcher) {
  if (cfg_.socket_path.empty() ||
      cfg_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("invalid serve socket path: \"" + cfg_.socket_path +
                             "\"");
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::generic_category().message(errno));
  }
  ::unlink(cfg_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::generic_category().message(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(" + cfg_.socket_path + "): " + err);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::generic_category().message(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen(" + cfg_.socket_path + "): " + err);
  }
  set_nonblocking(listen_fd_);
}

ServeServer::~ServeServer() {
  for (auto& [id, c] : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(cfg_.socket_path.c_str());
  }
}

void ServeServer::run() {
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> fd_conn;  // fds[i+1] belongs to conn fd_conn[i]
  while (true) {
    if (batcher_.should_flush(now_us_ll())) flush_batch();
    if (shutting_down_) {
      flush_all();
      // Best-effort drain of every write buffer, then exit.
      for (auto& [id, c] : conns_) {
        while (c->out_off < c->out.size()) {
          pollfd pw{c->fd, POLLOUT, 0};
          if (::poll(&pw, 1, 1000) <= 0) break;
          if (!drain_writes(*c)) break;
        }
      }
      return;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({listen_fd_,
                   conns_.size() < cfg_.max_clients ? static_cast<short>(POLLIN)
                                                    : static_cast<short>(0),
                   0});
    for (auto& [id, c] : conns_) {
      short events = POLLIN;
      if (c->out_off < c->out.size()) events |= POLLOUT;
      fds.push_back({c->fd, events, 0});
      fd_conn.push_back(id);
    }

    const long long budget = batcher_.wait_budget_us(now_us_ll());
    // µs → ms, rounding up so a deadline never fires early; -1 blocks.
    const int timeout_ms =
        budget < 0 ? -1 : static_cast<int>((budget + 999) / 1000);
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("poll(): ") + std::generic_category().message(errno));
    }

    if ((fds[0].revents & POLLIN) != 0) accept_clients();
    for (std::size_t i = 0; i < fd_conn.size(); ++i) {
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;  // closed earlier this round
      Conn& c = *it->second;
      const short re = fds[i + 1].revents;
      // POLLHUP often arrives together with the peer's final bytes — drain
      // POLLIN first so a frame sent right before close() is not lost.
      if ((re & POLLIN) != 0 && !service_readable(c)) {
        close_conn(c.id);
        continue;
      }
      if ((re & (POLLERR | POLLNVAL)) != 0 ||
          ((re & POLLHUP) != 0 && (re & POLLIN) == 0 &&
           c.out_off >= c.out.size())) {
        close_conn(c.id);
        continue;
      }
      if ((re & POLLOUT) != 0 && !drain_writes(c)) {
        close_conn(c.id);
        continue;
      }
      if (c.close_after_flush && c.out_off >= c.out.size()) close_conn(c.id);
    }
  }
}

void ServeServer::accept_clients() {
  while (conns_.size() < cfg_.max_clients) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: nothing more to accept
    set_nonblocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_++;
    count("serve.connections");
    conns_.emplace(conn->id, std::move(conn));
  }
}

bool ServeServer::service_readable(Conn& c) {
  read_buf_.resize(64 * 1024);
  while (true) {
    const ssize_t got = ::read(c.fd, read_buf_.data(), read_buf_.size());
    if (got > 0) {
      c.reader.feed(read_buf_.data(), static_cast<std::size_t>(got));
      if (static_cast<std::size_t>(got) < read_buf_.size()) break;
      continue;
    }
    if (got == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  MsgType type;
  std::vector<std::uint8_t> payload;
  while (c.reader.next(&type, &payload)) {
    handle_frame(c, type, payload);
    if (c.close_after_flush || shutting_down_) break;
  }
  if (c.reader.bad()) {
    count("serve.protocol_errors");
    send_error(c, "malformed frame (bad length prefix)");
  }
  return true;
}

void ServeServer::handle_frame(Conn& c, MsgType type,
                               const std::vector<std::uint8_t>& payload) {
  switch (type) {
    case MsgType::kHello: {
      Hello hello;
      if (!decode_hello(payload.data(), payload.size(), &hello)) {
        count("serve.protocol_errors");
        send_error(c, "malformed Hello");
        return;
      }
      if (c.has_session) {
        send_error(c, "Hello on a connection that already has a session");
        return;
      }
      const std::string mismatch = engine_.hello_mismatch(hello);
      if (!mismatch.empty()) {
        count("serve.hello_rejects");
        send_error(c, "model/client mismatch: " + mismatch);
        return;
      }
      c.session = engine_.open_session(hello.seed, hello.explore != 0);
      c.has_session = true;
      HelloAck ack;
      ack.session_id = c.session;
      encode_hello_ack(ack, c.out);
      drain_writes(c);
      return;
    }
    case MsgType::kAct: {
      if (!c.has_session) {
        send_error(c, "ActRequest before Hello");
        return;
      }
      const std::uint64_t ticket = next_ticket_++;
      PendingReq& p = pending_[ticket];
      p.conn_id = c.id;
      p.arrival_us = now_us_ll();
      if (!req_pool_.empty()) {
        // Recycled request: its vectors already have the right capacity, so
        // decode_act below resizes without touching the heap.
        p.req = std::move(req_pool_.back());
        req_pool_.pop_back();
      }
      if (!decode_act(payload.data(), payload.size(),
                      static_cast<std::uint32_t>(engine_.learners()),
                      static_cast<std::uint32_t>(engine_.hl_dim()),
                      static_cast<std::uint32_t>(engine_.ll_dim()),
                      static_cast<std::uint32_t>(engine_.num_lanes()), &p.req)) {
        recycle_pending(pending_.find(ticket));
        count("serve.protocol_errors");
        send_error(c, "malformed ActRequest");
        return;
      }
      ++requests_received_;
      count("serve.requests");
      batcher_.enqueue(ticket, p.arrival_us);
      observe("serve.queue_depth", kDepthHist,
              static_cast<double>(batcher_.pending()));
      return;
    }
    case MsgType::kReload: {
      Reload reload;
      if (!decode_reload(payload.data(), payload.size(), &reload)) {
        count("serve.protocol_errors");
        send_error(c, "malformed Reload");
        return;
      }
      // Answer everything that arrived before the reload with the old model,
      // then swap. In-flight sessions carry over untouched.
      flush_all();
      ReloadAck ack;
      try {
        engine_.reload(reload.dir);
        ack.ok = 1;
        ack.message = "reloaded " + reload.dir;
        count("serve.reloads");
      } catch (const std::exception& e) {
        ack.ok = 0;
        ack.message = e.what();
        count("serve.reload_failures");
      }
      encode_reload_ack(ack, c.out);
      drain_writes(c);
      return;
    }
    case MsgType::kShutdown:
      shutting_down_ = true;
      return;
    default:
      count("serve.protocol_errors");
      send_error(c, "unexpected frame type");
      return;
  }
}

void ServeServer::flush_batch() {
  batcher_.take(tickets_);
  if (tickets_.empty()) return;
  batch_sessions_.clear();
  batch_requests_.clear();
  batch_its_.clear();
  for (std::uint64_t t : tickets_) {
    auto it = pending_.find(t);
    if (it == pending_.end()) continue;
    auto conn = conns_.find(it->second.conn_id);
    if (conn == conns_.end()) {
      // Client vanished while queued; nothing to answer.
      recycle_pending(it);
      continue;
    }
    batch_sessions_.push_back(conn->second->session);
    batch_requests_.push_back(&it->second.req);
    batch_its_.push_back(it);
  }
  if (batch_requests_.empty()) return;

  engine_.act_batch(batch_sessions_, batch_requests_, &batch_responses_);
  observe("serve.batch_size", kBatchHist,
          static_cast<double>(batch_requests_.size()));
  count("serve.batches");

  const long long done_us = now_us_ll();
  touched_conns_.clear();
  for (std::size_t i = 0; i < batch_its_.size(); ++i) {
    const auto it = batch_its_[i];
    auto conn = conns_.find(it->second.conn_id);
    if (conn != conns_.end()) {
      encode_act_response(batch_responses_[i], conn->second->out);
      observe("serve.latency_us", kLatencyHist,
              static_cast<double>(done_us - it->second.arrival_us));
      ++responses_sent_;
      count("serve.responses");
      if (std::find(touched_conns_.begin(), touched_conns_.end(),
                    conn->first) == touched_conns_.end()) {
        touched_conns_.push_back(conn->first);
      }
    }
    recycle_pending(it);
  }
  // One drain per connection per batch: pipelined clients get all their
  // responses in a single write() instead of one syscall per response.
  for (std::uint32_t id : touched_conns_) {
    auto conn = conns_.find(id);
    if (conn != conns_.end()) drain_writes(*conn->second);
  }
}

void ServeServer::flush_all() {
  while (batcher_.pending() > 0) flush_batch();
}

void ServeServer::recycle_pending(std::map<std::uint64_t, PendingReq>::iterator it) {
  req_pool_.push_back(std::move(it->second.req));
  pending_.erase(it);
}

bool ServeServer::drain_writes(Conn& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t wrote =
        ::write(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off);
    if (wrote > 0) {
      c.out_off += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (wrote < 0 && errno == EINTR) continue;
    return false;
  }
  c.out.clear();
  c.out_off = 0;
  return true;
}

void ServeServer::close_conn(std::uint32_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second->has_session) engine_.close_session(it->second->session);
  if (it->second->fd >= 0) ::close(it->second->fd);
  conns_.erase(it);
}

void ServeServer::send_error(Conn& c, const std::string& message) {
  ErrorMsg err;
  err.message = message;
  encode_error(err, c.out);
  c.close_after_flush = true;
  drain_writes(c);
}

}  // namespace hero::serve
