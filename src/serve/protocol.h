// hero_serve wire protocol (docs/SERVING.md §Protocol).
//
// Length-prefixed binary frames over a stream transport (unix-domain socket
// in this repo):
//
//   [u32 length][u8 type][payload ...]
//
// `length` counts the type byte plus the payload, little-endian, capped at
// kMaxFrameBytes. All integers are little-endian fixed-width; doubles travel
// as their IEEE-754 bit patterns — the protocol is exact, which is what lets
// the serving-equivalence tests compare served commands bitwise against
// in-process inference.
//
// Session flow:
//   client → Hello        (dims + RNG seed + explore mode)
//   server → HelloAck     (session id) or Error (dim mismatch; then close)
//   client → ActRequest*  (observations; `reset` starts a fresh episode)
//   server → ActResponse  (one command per learner + the options held)
//   client → Reload       (admin: swap in a new checkpoint directory)
//   server → ReloadAck    (ok flag + message; in-flight sessions unaffected)
//   client → Shutdown     (admin: server drains and exits its run loop)
//
// Encoding appends to a caller-owned byte vector (reused across frames, so a
// steady-state client/server allocates nothing per frame); decoding is
// tolerant of torn frames via FrameReader and rejects malformed payloads by
// returning false, never by reading out of bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hero::serve {

// Frames larger than this are a protocol violation (covers any sane batch of
// lane observations by orders of magnitude).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kAct = 3,
  kActResponse = 4,
  kReload = 5,
  kReloadAck = 6,
  kShutdown = 7,
  kError = 8,
};

struct Hello {
  std::uint32_t learners = 0;
  std::uint32_t hl_dim = 0;
  std::uint32_t ll_dim = 0;
  std::uint32_t num_lanes = 0;
  std::uint8_t explore = 0;   // 0 = greedy (deterministic), 1 = stochastic
  std::uint64_t seed = 0;     // session draw stream (explore mode only)
};

struct HelloAck {
  std::uint32_t session_id = 0;
};

struct ActRequest {
  std::uint64_t request_id = 0;
  std::uint8_t reset = 0;  // 1 = begin a fresh episode before acting
  // Per learner (size = learners):
  std::vector<double> y, heading, speed;
  std::vector<std::int32_t> lane;
  // Row-major feature blocks: hl is learners × hl_dim; ll is
  // learners × num_lanes × ll_dim (one row per candidate reference lane).
  std::vector<double> hl;
  std::vector<double> ll;
};

struct ActResponse {
  std::uint64_t request_id = 0;
  // Per learner:
  std::vector<double> linear, angular;
  std::vector<std::int32_t> option;  // option held after this tick
};

struct Reload {
  std::string dir;
};

struct ReloadAck {
  std::uint8_t ok = 0;
  std::string message;
};

struct ErrorMsg {
  std::string message;
};

// --- encoding (appends one complete frame to `out`) ---
void encode_hello(const Hello& m, std::vector<std::uint8_t>& out);
void encode_hello_ack(const HelloAck& m, std::vector<std::uint8_t>& out);
void encode_act(const ActRequest& m, std::vector<std::uint8_t>& out);
void encode_act_response(const ActResponse& m, std::vector<std::uint8_t>& out);
void encode_reload(const Reload& m, std::vector<std::uint8_t>& out);
void encode_reload_ack(const ReloadAck& m, std::vector<std::uint8_t>& out);
void encode_shutdown(std::vector<std::uint8_t>& out);
void encode_error(const ErrorMsg& m, std::vector<std::uint8_t>& out);

// --- decoding (payload excludes the type byte; false on malformed) ---
// The ActRequest overload needs the session dims to know the expected row
// counts; its vectors are resized in place so a reused request struct
// allocates nothing at steady state.
bool decode_hello(const std::uint8_t* p, std::size_t n, Hello* out);
bool decode_hello_ack(const std::uint8_t* p, std::size_t n, HelloAck* out);
bool decode_act(const std::uint8_t* p, std::size_t n, std::uint32_t learners,
                std::uint32_t hl_dim, std::uint32_t ll_dim,
                std::uint32_t num_lanes, ActRequest* out);
bool decode_act_response(const std::uint8_t* p, std::size_t n,
                         std::uint32_t learners, ActResponse* out);
bool decode_reload(const std::uint8_t* p, std::size_t n, Reload* out);
bool decode_reload_ack(const std::uint8_t* p, std::size_t n, ReloadAck* out);
bool decode_error(const std::uint8_t* p, std::size_t n, ErrorMsg* out);

// Incremental deframer: feed() arbitrary byte chunks as they arrive, then
// drain complete frames with next(). Frames whose declared length exceeds
// kMaxFrameBytes poison the reader (bad() turns true; the connection should
// be dropped).
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);

  // Copies the next complete frame's type + payload out (payload reused
  // across calls). Returns false when no complete frame is buffered.
  bool next(MsgType* type, std::vector<std::uint8_t>* payload);

  bool bad() const { return bad_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  // consumed prefix of buf_
  bool bad_ = false;
};

}  // namespace hero::serve
