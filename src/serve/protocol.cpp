#include "serve/protocol.h"

#include <cstring>

namespace hero::serve {

namespace {

// --- little-endian primitive writers (append) ---

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_f64s(std::vector<std::uint8_t>& out, const std::vector<double>& v) {
  for (double d : v) put_f64(out, d);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- bounds-checked primitive readers ---

struct Cursor {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t off = 0;
  bool ok = true;

  bool take(std::size_t bytes) {
    if (!ok || n - off < bytes) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return p[off++];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = static_cast<std::uint32_t>(p[off]) |
                      static_cast<std::uint32_t>(p[off + 1]) << 8 |
                      static_cast<std::uint32_t>(p[off + 2]) << 16 |
                      static_cast<std::uint32_t>(p[off + 3]) << 24;
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
    off += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void f64s(std::size_t count, std::vector<double>* out) {
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) (*out)[i] = f64();
  }
  bool string(std::string* out) {
    const std::uint32_t len = u32();
    if (!take(len)) return false;
    out->assign(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return true;
  }
  // Decode succeeded iff every read was in bounds and the payload is spent.
  bool done() const { return ok && off == n; }
};

// Reserves the 4-byte length slot, returns its offset.
std::size_t begin_frame(std::vector<std::uint8_t>& out, MsgType type) {
  const std::size_t at = out.size();
  put_u32(out, 0);
  put_u8(out, static_cast<std::uint8_t>(type));
  return at;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t at) {
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - at - 4);
  out[at] = static_cast<std::uint8_t>(len);
  out[at + 1] = static_cast<std::uint8_t>(len >> 8);
  out[at + 2] = static_cast<std::uint8_t>(len >> 16);
  out[at + 3] = static_cast<std::uint8_t>(len >> 24);
}

}  // namespace

void encode_hello(const Hello& m, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, MsgType::kHello);
  put_u32(out, m.learners);
  put_u32(out, m.hl_dim);
  put_u32(out, m.ll_dim);
  put_u32(out, m.num_lanes);
  put_u8(out, m.explore);
  put_u64(out, m.seed);
  end_frame(out, at);
}

void encode_hello_ack(const HelloAck& m, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, MsgType::kHelloAck);
  put_u32(out, m.session_id);
  end_frame(out, at);
}

void encode_act(const ActRequest& m, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, MsgType::kAct);
  put_u64(out, m.request_id);
  put_u8(out, m.reset);
  put_f64s(out, m.y);
  put_f64s(out, m.heading);
  put_f64s(out, m.speed);
  for (std::int32_t l : m.lane) put_i32(out, l);
  put_f64s(out, m.hl);
  put_f64s(out, m.ll);
  end_frame(out, at);
}

void encode_act_response(const ActResponse& m, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, MsgType::kActResponse);
  put_u64(out, m.request_id);
  put_f64s(out, m.linear);
  put_f64s(out, m.angular);
  for (std::int32_t o : m.option) put_i32(out, o);
  end_frame(out, at);
}

void encode_reload(const Reload& m, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, MsgType::kReload);
  put_string(out, m.dir);
  end_frame(out, at);
}

void encode_reload_ack(const ReloadAck& m, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, MsgType::kReloadAck);
  put_u8(out, m.ok);
  put_string(out, m.message);
  end_frame(out, at);
}

void encode_shutdown(std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, MsgType::kShutdown);
  end_frame(out, at);
}

void encode_error(const ErrorMsg& m, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, MsgType::kError);
  put_string(out, m.message);
  end_frame(out, at);
}

bool decode_hello(const std::uint8_t* p, std::size_t n, Hello* out) {
  Cursor c{p, n};
  out->learners = c.u32();
  out->hl_dim = c.u32();
  out->ll_dim = c.u32();
  out->num_lanes = c.u32();
  out->explore = c.u8();
  out->seed = c.u64();
  return c.done();
}

bool decode_hello_ack(const std::uint8_t* p, std::size_t n, HelloAck* out) {
  Cursor c{p, n};
  out->session_id = c.u32();
  return c.done();
}

bool decode_act(const std::uint8_t* p, std::size_t n, std::uint32_t learners,
                std::uint32_t hl_dim, std::uint32_t ll_dim,
                std::uint32_t num_lanes, ActRequest* out) {
  Cursor c{p, n};
  out->request_id = c.u64();
  out->reset = c.u8();
  c.f64s(learners, &out->y);
  c.f64s(learners, &out->heading);
  c.f64s(learners, &out->speed);
  out->lane.resize(learners);
  for (std::uint32_t k = 0; k < learners; ++k) out->lane[k] = c.i32();
  c.f64s(static_cast<std::size_t>(learners) * hl_dim, &out->hl);
  c.f64s(static_cast<std::size_t>(learners) * num_lanes * ll_dim, &out->ll);
  return c.done();
}

bool decode_act_response(const std::uint8_t* p, std::size_t n,
                         std::uint32_t learners, ActResponse* out) {
  Cursor c{p, n};
  out->request_id = c.u64();
  c.f64s(learners, &out->linear);
  c.f64s(learners, &out->angular);
  out->option.resize(learners);
  for (std::uint32_t k = 0; k < learners; ++k) out->option[k] = c.i32();
  return c.done();
}

bool decode_reload(const std::uint8_t* p, std::size_t n, Reload* out) {
  Cursor c{p, n};
  if (!c.string(&out->dir)) return false;
  return c.done();
}

bool decode_reload_ack(const std::uint8_t* p, std::size_t n, ReloadAck* out) {
  Cursor c{p, n};
  out->ok = c.u8();
  if (!c.string(&out->message)) return false;
  return c.done();
}

bool decode_error(const std::uint8_t* p, std::size_t n, ErrorMsg* out) {
  Cursor c{p, n};
  if (!c.string(&out->message)) return false;
  return c.done();
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (bad_) return;
  // Compact the consumed prefix before growing (keeps the buffer bounded by
  // one partial frame plus whatever arrived in this chunk).
  if (off_ > 0 && off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  } else if (off_ > kMaxFrameBytes) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameReader::next(MsgType* type, std::vector<std::uint8_t>* payload) {
  if (bad_) return false;
  const std::size_t avail = buf_.size() - off_;
  if (avail < 5) return false;
  const std::uint8_t* p = buf_.data() + off_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            static_cast<std::uint32_t>(p[1]) << 8 |
                            static_cast<std::uint32_t>(p[2]) << 16 |
                            static_cast<std::uint32_t>(p[3]) << 24;
  if (len == 0 || len > kMaxFrameBytes) {
    bad_ = true;
    return false;
  }
  if (avail < 4u + len) return false;
  *type = static_cast<MsgType>(p[4]);
  payload->assign(p + 5, p + 4 + len);
  off_ += 4u + len;
  return true;
}

}  // namespace hero::serve
