// Sharded experience buffer for multi-worker collection.
//
// One shard per worker slot: a worker only ever pushes to its own shard, so
// collection never contends on a single mutex — each shard's lock has a
// single producer and is uncontended in steady state (the learner touches it
// only at the merge/sample barrier between rounds). Shards are bounded
// rings: when full, the oldest item is overwritten, like rl::ReplayBuffer.
//
// Determinism contract (docs/PARALLELISM.md): every read-side operation
// visits shards in a fixed order —
//   * sample(batch, rng) draws round-robin across the non-empty shards
//     (draw k comes from non-empty shard k mod S', the in-shard index from
//     the caller's rng), so the sampled sequence depends only on shard
//     contents and the rng state, never on thread timing;
//   * drain_front(shard, n, fn) pops the n oldest items of one shard FIFO,
//     letting the learner merge a round's episodes back into canonical
//     episode order regardless of which worker ran which episode.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/sync.h"

namespace hero::runtime {

template <typename T>
class ShardedReplay {
 public:
  // Total capacity is split evenly across shards (rounded up).
  ShardedReplay(std::size_t total_capacity, std::size_t num_shards)
      : shard_capacity_((total_capacity + num_shards - 1) / num_shards),
        shards_(num_shards) {
    HERO_CHECK(num_shards > 0);
    HERO_CHECK(total_capacity >= num_shards);
  }

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_capacity() const { return shard_capacity_; }

  void push(std::size_t shard, T item) {
    Shard& s = at(shard);
    MutexLock lock(s.mu);
    if (s.items.size() < shard_capacity_) {
      s.items.push_back(std::move(item));
    } else {
      s.items[s.head] = std::move(item);  // overwrite oldest
      s.head = (s.head + 1) % shard_capacity_;
    }
  }

  std::size_t shard_size(std::size_t shard) const {
    const Shard& s = at(shard);
    MutexLock lock(s.mu);
    return s.items.size();
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) total += shard_size(i);
    return total;
  }

  // Deterministic round-robin sample with replacement (copies items out).
  void sample(std::size_t batch, Rng& rng, std::vector<T>& out) const {
    out.clear();
    out.reserve(batch);
    // Snapshot the set of non-empty shards in index order.
    std::vector<std::size_t> live;
    live.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shard_size(i) > 0) live.push_back(i);
    }
    HERO_CHECK_MSG(!live.empty(), "sample() on an empty ShardedReplay");
    for (std::size_t k = 0; k < batch; ++k) {
      const Shard& s = at(live[k % live.size()]);
      MutexLock lock(s.mu);
      // Size may have grown since the snapshot; index against the live size.
      out.push_back(s.items[(s.head + rng.index(s.items.size())) % s.items.size()]);
    }
  }

  // Pops the `n` oldest items of `shard` in FIFO order through `fn(T&&)`.
  // The caller must know n <= shard_size(shard) — staging rounds track
  // per-episode item counts exactly.
  template <class Fn>
  void drain_front(std::size_t shard, std::size_t n, Fn&& fn) {
    Shard& s = at(shard);
    MutexLock lock(s.mu);
    HERO_CHECK_MSG(n <= s.items.size(), "drain_front(" << n << ") from shard with "
                                                       << s.items.size() << " items");
    for (std::size_t k = 0; k < n; ++k) {
      fn(std::move(s.items[(s.head + k) % s.items.size()]));
    }
    if (n == s.items.size()) {
      s.items.clear();
      s.head = 0;
    } else {
      // Compact the survivors to the front so head stays meaningful. Staging
      // use drains whole rounds, so this path is cold.
      std::vector<T> rest;
      rest.reserve(s.items.size() - n);
      for (std::size_t k = n; k < s.items.size(); ++k) {
        rest.push_back(std::move(s.items[(s.head + k) % s.items.size()]));
      }
      s.items = std::move(rest);
      s.head = 0;
    }
  }

  void clear() {
    for (auto& sp : shards_) {
      MutexLock lock(sp.mu);
      sp.items.clear();
      sp.head = 0;
    }
  }

 private:
  struct Shard {
    mutable Mutex mu;
    std::vector<T> items HERO_GUARDED_BY(mu);  // ring once full
    std::size_t head HERO_GUARDED_BY(mu) = 0;  // index of the oldest item
  };

  Shard& at(std::size_t i) {
    HERO_DCHECK(i < shards_.size());
    return shards_[i];
  }
  const Shard& at(std::size_t i) const {
    HERO_DCHECK(i < shards_.size());
    return shards_[i];
  }

  std::size_t shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace hero::runtime
