// BatchRoundScheduler: round scheduling over environment batches — the
// batch-first analogue of RolloutRunner (docs/BATCHING.md).
//
// A round maps episodes [first, first + count) onto `count` lanes of a
// vectorized environment (lane i ↔ episode first + i). Lane i draws every
// per-episode random value from the counter-based stream
// stream_rng(root_seed, first + i) — the same stream addressing the
// multi-worker runtime uses for its slots — so a batched run is bitwise
// reproducible for a fixed (seed, batch width), and collected episodes come
// out in canonical episode order by construction (lane order IS episode
// order; no merge step needed).
//
// Lanes finish independently (episodes end at different steps); finish()
// retires a lane and the active mask feeds straight into the batched draw
// APIs (BatchLaneWorld::step_all, SquashedGaussianPolicy::act_rows_into).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "runtime/rng_stream.h"

namespace hero::runtime {

class BatchRoundScheduler {
 public:
  explicit BatchRoundScheduler(std::size_t num_lanes)
      : lanes_(num_lanes),
        rngs_(num_lanes, Rng(0)),
        rng_ptrs_(num_lanes, nullptr),
        active_(num_lanes, 0) {
    for (std::size_t i = 0; i < num_lanes; ++i) rng_ptrs_[i] = &rngs_[i];
  }

  std::size_t num_lanes() const { return lanes_; }
  std::size_t round_size() const { return round_; }
  std::size_t episode(std::size_t lane) const { return first_ + lane; }

  // Starts a round over episodes [first, first + count); count ≤ num_lanes.
  // `root_seed` is the training run's root draw (one per train() call), so
  // repeated rounds of one run stay on disjoint episode streams.
  void begin_round(std::uint64_t root_seed, std::size_t first, std::size_t count) {
    HERO_CHECK(count <= lanes_);
    first_ = first;
    round_ = count;
    live_ = count;
    for (std::size_t i = 0; i < lanes_; ++i) {
      active_[i] = i < count ? 1 : 0;
      if (i < count) rngs_[i] = stream_rng(root_seed, first + i);
    }
  }

  bool active(std::size_t lane) const { return active_[lane] != 0; }
  const std::uint8_t* active_mask() const { return active_.data(); }
  std::size_t live() const { return live_; }

  void finish(std::size_t lane) {
    if (active_[lane] != 0) {
      active_[lane] = 0;
      --live_;
    }
  }

  Rng& rng(std::size_t lane) { return rngs_[lane]; }
  // Per-lane stream pointers in lane order for the batched draw APIs.
  Rng* const* rng_ptrs() const { return rng_ptrs_.data(); }

 private:
  std::size_t lanes_;
  std::size_t first_ = 0;
  std::size_t round_ = 0;
  std::size_t live_ = 0;
  std::vector<Rng> rngs_;
  std::vector<Rng*> rng_ptrs_;
  std::vector<std::uint8_t> active_;
};

}  // namespace hero::runtime
