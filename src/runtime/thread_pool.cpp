#include "runtime/thread_pool.h"

#include <atomic>
#include <memory>

#include "common/check.h"
#include "obs/phase.h"
#include "obs/metrics.h"

namespace hero::runtime {

namespace {

// Completion latch shared between the submitting thread and the pool tasks
// of one parallel_for call. Owned by shared_ptr so stray wakeups after the
// caller returns cannot touch a dead object. `remaining` is atomic (not
// guarded) — count_down only takes the mutex to pair the final notify with
// a waiter that checked between load and sleep.
struct Latch {
  explicit Latch(std::size_t total) : remaining(total) {}
  std::atomic<std::size_t> remaining;
  Mutex mu;
  CondVar cv;

  void count_down(std::size_t n) HERO_EXCLUDES(mu) {
    if (remaining.fetch_sub(n, std::memory_order_acq_rel) == n) {
      MutexLock lock(mu);
      cv.notify_all();
    }
  }
  void wait() HERO_EXCLUDES(mu) {
    MutexLock lock(mu);
    cv.wait(mu, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (obs::metrics_enabled()) {
    obs::Registry::instance().gauge("runtime.pool.threads").set(static_cast<double>(n));
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      OBS_PHASE("pool_idle");  // time this worker spent parked waiting for work
      MutexLock lock(mu_);
      // Hand-rolled predicate loop (not the CondVar predicate overload): the
      // predicate reads mu_-guarded state, which the analysis can only see
      // in a plain loop body, not through a lambda.
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  HERO_CHECK(task != nullptr);
  std::size_t depth;
  {
    MutexLock lock(mu_);
    HERO_CHECK_MSG(!stop_, "submit() on a stopped ThreadPool");
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    reg.counter("runtime.pool.tasks").inc();
    // Linear buckets: queue depth is a small bounded integer in practice.
    reg.histogram("runtime.pool.queue_depth",
                  {/*lo=*/0.0, /*hi=*/256.0, /*buckets=*/64, /*log_scale=*/false})
        .observe(static_cast<double>(depth));
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || size() == 1) {
    // Nothing to overlap — run inline and skip the dispatch round-trip.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto latch = std::make_shared<Latch>(n);
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t tasks = std::min(n, size());
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([latch, next, n, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
        latch->count_down(1);
      }
    });
  }
  latch->wait();
}

void ThreadPool::parallel_for_slots(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t slots = std::min(size(), n);
  if (slots == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  auto latch = std::make_shared<Latch>(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    submit([latch, s, slots, n, &fn] {
      for (std::size_t i = s; i < n; i += slots) fn(i, s);
      latch->count_down(1);
    });
  }
  latch->wait();
}

}  // namespace hero::runtime
