// RolloutRunner: deterministic multi-worker episode collection.
//
// The runner owns the episode → (RNG stream, worker slot) mapping for a
// training run. Episodes are numbered globally (0, 1, 2, …); episode e
// always draws from counter-based stream e of the run's root seed
// (rng_stream.h), and runs on slot e mod S under parallel_for_slots, so a
// trainer keeps one environment/policy replica per slot and never shares it
// between concurrent episodes.
//
// Because the stream is addressed by the episode index — not by the thread
// that happens to run it — the collected trajectories are bitwise identical
// for a fixed (seed, num_envs) regardless of scheduling, and the learner
// restores canonical episode order at the merge barrier (ShardedReplay
// drain_front per episode). See docs/PARALLELISM.md.
//
// Instrumentation: per-slot `runtime.worker.<slot>.steps_per_sec` gauges via
// record_worker_rate(), plus the pool's own queue metrics. Wall-clock rates
// go to metrics/trace only — never telemetry — so telemetry stays
// byte-comparable across same-seed runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/rng_stream.h"
#include "runtime/thread_pool.h"

namespace hero::runtime {

class RolloutRunner {
 public:
  RolloutRunner(ThreadPool& pool, std::uint64_t root_seed)
      : pool_(pool), root_seed_(root_seed) {}

  ThreadPool& pool() { return pool_; }
  std::uint64_t root_seed() const { return root_seed_; }

  // Maximum number of concurrently-live slots a round can use; trainers size
  // their replica arrays to this.
  std::size_t max_slots() const { return pool_.size(); }

  // Runs episodes [first, first + count) across the pool. fn receives
  // (episode_index, slot, episode_rng); slot < max_slots() is exclusive to
  // one in-flight episode at a time. Blocks until the round completes.
  void run_round(std::size_t first, std::size_t count,
                 const std::function<void(std::size_t, std::size_t, Rng&)>& fn) {
    pool_.parallel_for_slots(count, [&](std::size_t i, std::size_t slot) {
      Rng rng = stream_rng(root_seed_, static_cast<std::uint64_t>(first + i));
      fn(first + i, slot, rng);
    });
  }

  // Publishes a worker-throughput gauge for one finished episode.
  static void record_worker_rate(std::size_t slot, long steps, double wall_s) {
    if (!obs::metrics_enabled() || wall_s <= 0.0) return;
    obs::Registry::instance()
        .gauge("runtime.worker." + std::to_string(slot) + ".steps_per_sec")
        .set(static_cast<double>(steps) / wall_s);
  }

 private:
  ThreadPool& pool_;
  std::uint64_t root_seed_;
};

// Monotonic wall-clock helper shared by the rollout/learn span bookkeeping.
// Start marks come from obs::now_us() — the one sanctioned monotonic clock
// outside src/obs (lint rule R7, docs/CORRECTNESS.md).
inline double seconds_since(double start_us) {
  return (obs::now_us() - start_us) * 1e-6;
}

}  // namespace hero::runtime
