// Counter-based RNG stream splitting for the parallel runtime.
//
// Worker streams must be reproducible for a fixed (seed, num_workers) pair
// and statistically independent of each other. Deriving child seeds by
// jumping a shared engine would serialize stream creation and couple a
// stream's identity to creation order; instead each stream is addressed by a
// counter: stream k of root seed s is seeded with a splitmix64-style hash of
// (s, k). Any worker can construct its stream without touching shared state,
// and stream k is the same no matter how many workers exist or which thread
// asks for it (docs/PARALLELISM.md).
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace hero::runtime {

// splitmix64 finalizer (Steele et al., "Fast splittable pseudorandom number
// generators") — a bijective avalanche mix, so distinct (seed, stream)
// pairs never collide for a fixed seed.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Seed for stream `stream` of root seed `root_seed`. Two rounds of mixing
// decorrelate nearby roots and nearby stream ids simultaneously.
inline std::uint64_t stream_seed(std::uint64_t root_seed, std::uint64_t stream) {
  return mix64(root_seed ^ mix64(stream));
}

// Independent generator for (root_seed, stream).
inline Rng stream_rng(std::uint64_t root_seed, std::uint64_t stream) {
  return Rng(stream_seed(root_seed, stream));
}

}  // namespace hero::runtime
