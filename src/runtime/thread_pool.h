// Fixed-size worker pool for the parallel training runtime.
//
// This is the only place in src/ allowed to own raw std::thread objects
// (enforced by tools/lint.py rule R5): every other subsystem expresses
// parallelism as parallel_for / parallel_for_slots calls so the determinism
// contract in docs/PARALLELISM.md is auditable in one file.
//
// Scheduling model:
//   * submit()              — fire-and-forget task on the shared FIFO queue.
//   * parallel_for(n, fn)   — runs fn(i) for i in [0, n); indices are claimed
//                             dynamically (atomic counter), so work product is
//                             deterministic as long as fn(i) writes only to
//                             index-addressed state. Blocks until all done.
//   * parallel_for_slots    — static round-robin partition: slot s runs
//                             indices s, s + S, s + 2S, … and no two indices
//                             of the same slot ever run concurrently. Callers
//                             use the slot id to pick a worker-exclusive
//                             replica (env, network clone, RNG scratch).
//
// Tasks must not throw (errors in this codebase abort via HERO_CHECK) and
// must not submit nested parallel_for calls from inside pool workers — the
// learner thread is the single orchestrator.
//
// Instrumented via src/obs: `runtime.pool.threads` gauge,
// `runtime.pool.tasks` counter and a `runtime.pool.queue_depth` histogram
// observed at submit time (docs/OBSERVABILITY.md naming scheme).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace hero::runtime {

class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task) HERO_EXCLUDES(mu_);

  // Dynamic-claim parallel loop; blocks until every index has run.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Static-partition parallel loop over min(size(), n) slots; fn receives
  // (index, slot). Blocks until every index has run.
  void parallel_for_slots(std::size_t n,
                          const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop() HERO_EXCLUDES(mu_);

  // workers_ is written only by the constructor (before any worker can call
  // back into the pool) and joined by the destructor — main-thread-only.
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ HERO_GUARDED_BY(mu_);
  bool stop_ HERO_GUARDED_BY(mu_) = false;
};

}  // namespace hero::runtime
