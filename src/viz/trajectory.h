// Episode trajectory recording and rendering.
//
// TrajectoryRecorder snapshots every vehicle pose each step; the renderer
// unrolls the ring track into a straight band and draws fading footprints,
// giving a quick visual check of cooperative behaviour (who yielded, when
// the merge happened, where a collision occurred).
#pragma once

#include <string>
#include <vector>

#include "sim/lane_world.h"

namespace hero::viz {

struct PoseSnapshot {
  double x, y, heading, speed;
  int lane;
};

class TrajectoryRecorder {
 public:
  // Call after world.reset(); snapshots the initial poses.
  void start(const sim::LaneWorld& world);
  // Call after each world.step().
  void record(const sim::LaneWorld& world, bool collision);

  int steps() const { return static_cast<int>(frames_.size()) - 1; }
  int num_vehicles() const {
    return frames_.empty() ? 0 : static_cast<int>(frames_.front().size());
  }
  const std::vector<std::vector<PoseSnapshot>>& frames() const { return frames_; }
  bool had_collision() const { return collision_step_ >= 0; }
  int collision_step() const { return collision_step_; }

  // Renders the episode into an SVG file: one horizontal band per lane,
  // vehicle footprints fading from light (start) to saturated (end).
  void render_svg(const std::string& path, const sim::Track& track) const;

 private:
  std::vector<std::vector<PoseSnapshot>> frames_;  // frames_[t][vehicle]
  int collision_step_ = -1;
};

}  // namespace hero::viz
