#include "viz/svg.h"

#include <fstream>
#include <stdexcept>

#include "common/check.h"

namespace hero::viz {

SvgDocument::SvgDocument(double width, double height) : width_(width), height_(height) {
  HERO_CHECK(width > 0 && height > 0);
}

void SvgDocument::line(Point a, Point b, const std::string& stroke, double width,
                       const std::string& dash) {
  body_ << "<line x1='" << a.x << "' y1='" << a.y << "' x2='" << b.x << "' y2='"
        << b.y << "' stroke='" << stroke << "' stroke-width='" << width << "'";
  if (!dash.empty()) body_ << " stroke-dasharray='" << dash << "'";
  body_ << "/>\n";
}

void SvgDocument::polyline(const std::vector<Point>& pts, const std::string& stroke,
                           double width) {
  if (pts.size() < 2) return;
  body_ << "<polyline fill='none' stroke='" << stroke << "' stroke-width='" << width
        << "' points='";
  for (const auto& p : pts) body_ << p.x << ',' << p.y << ' ';
  body_ << "'/>\n";
}

void SvgDocument::rect(Point top_left, double w, double h, const std::string& fill,
                       const std::string& stroke, double opacity) {
  body_ << "<rect x='" << top_left.x << "' y='" << top_left.y << "' width='" << w
        << "' height='" << h << "' fill='" << fill << "' stroke='" << stroke
        << "' opacity='" << opacity << "'/>\n";
}

void SvgDocument::rotated_rect(Point center, double w, double h, double angle_deg,
                               const std::string& fill, double opacity) {
  body_ << "<rect x='" << center.x - w / 2 << "' y='" << center.y - h / 2
        << "' width='" << w << "' height='" << h << "' fill='" << fill
        << "' opacity='" << opacity << "' transform='rotate(" << angle_deg << ' '
        << center.x << ' ' << center.y << ")'/>\n";
}

void SvgDocument::circle(Point center, double r, const std::string& fill) {
  body_ << "<circle cx='" << center.x << "' cy='" << center.y << "' r='" << r
        << "' fill='" << fill << "'/>\n";
}

void SvgDocument::text(Point at, const std::string& content, int font_size,
                       const std::string& fill, const std::string& anchor) {
  body_ << "<text x='" << at.x << "' y='" << at.y << "' font-size='" << font_size
        << "' fill='" << fill << "' text-anchor='" << anchor
        << "' font-family='sans-serif'>" << content << "</text>\n";
}

std::string SvgDocument::str() const {
  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width_ << "' height='"
     << height_ << "' viewBox='0 0 " << width_ << ' ' << height_ << "'>\n"
     << "<rect width='100%' height='100%' fill='white'/>\n"
     << body_.str() << "</svg>\n";
  return os.str();
}

void SvgDocument::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("SvgDocument::save: cannot open " + path);
  f << str();
}

const std::vector<std::string>& series_palette() {
  static const std::vector<std::string> kPalette = {
      "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb"};
  return kPalette;
}

}  // namespace hero::viz
