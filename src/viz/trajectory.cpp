#include "viz/trajectory.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "viz/svg.h"

namespace hero::viz {

namespace {

std::vector<PoseSnapshot> snapshot(const sim::LaneWorld& world) {
  std::vector<PoseSnapshot> out;
  out.reserve(static_cast<std::size_t>(world.num_vehicles()));
  for (int i = 0; i < world.num_vehicles(); ++i) {
    const auto& st = world.vehicle(i).state();
    out.push_back({st.x, st.y, st.heading, st.speed, world.lane(i)});
  }
  return out;
}

}  // namespace

void TrajectoryRecorder::start(const sim::LaneWorld& world) {
  frames_.clear();
  collision_step_ = -1;
  frames_.push_back(snapshot(world));
}

void TrajectoryRecorder::record(const sim::LaneWorld& world, bool collision) {
  HERO_CHECK_MSG(!frames_.empty(), "call start() before record()");
  frames_.push_back(snapshot(world));
  if (collision && collision_step_ < 0) {
    collision_step_ = static_cast<int>(frames_.size()) - 1;
  }
}

void TrajectoryRecorder::render_svg(const std::string& path,
                                    const sim::Track& track) const {
  HERO_CHECK(!frames_.empty());
  const double scale = 90.0;  // pixels per metre
  const double road_lo = -0.5 * track.lane_width();
  const double road_hi =
      track.lane_center(track.num_lanes() - 1) + 0.5 * track.lane_width();
  const double margin = 24.0;
  const double width = track.circumference() * scale + 2 * margin;
  const double height = (road_hi - road_lo) * scale + 2 * margin + 20;

  SvgDocument svg(width, height);
  auto X = [&](double x) { return margin + x * scale; };
  // y grows upward in road coordinates; SVG grows downward.
  auto Y = [&](double y) { return margin + (road_hi - y) * scale; };

  // Road surface and lane markings.
  svg.rect({X(0), Y(road_hi)}, track.circumference() * scale,
           (road_hi - road_lo) * scale, "#f2f2f2", "#888");
  for (int l = 0; l + 1 < track.num_lanes(); ++l) {
    const double boundary = 0.5 * (track.lane_center(l) + track.lane_center(l + 1));
    svg.line({X(0), Y(boundary)}, {X(track.circumference()), Y(boundary)}, "#bbb",
             1.5, "8,6");
  }

  const auto& palette = series_palette();
  const std::size_t T = frames_.size();
  for (std::size_t v = 0; v < frames_.front().size(); ++v) {
    const std::string& color = palette[v % palette.size()];
    std::vector<Point> centers;
    for (std::size_t t = 0; t < T; ++t) {
      const auto& p = frames_[t][v];
      const double opacity = 0.15 + 0.75 * static_cast<double>(t) / T;
      svg.rotated_rect({X(p.x), Y(p.y)}, 0.30 * scale, 0.18 * scale,
                       -p.heading * 180.0 / M_PI, color, opacity);
      centers.push_back({X(p.x), Y(p.y)});
    }
    // Label at the final pose.
    std::ostringstream label;
    label << 'v' << (v + 1);
    svg.text({centers.back().x, centers.back().y - 10}, label.str(), 11, color,
             "middle");
  }

  if (collision_step_ >= 0) {
    std::ostringstream note;
    note << "collision at step " << collision_step_;
    svg.text({margin, height - 8}, note.str(), 12, "#cc0000");
  }
  svg.save(path);
}

}  // namespace hero::viz
