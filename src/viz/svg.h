// Minimal SVG document builder — enough for learning-curve plots and
// track/trajectory renderings without any external dependency.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace hero::viz {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

class SvgDocument {
 public:
  SvgDocument(double width, double height);

  void line(Point a, Point b, const std::string& stroke, double width = 1.0,
            const std::string& dash = "");
  void polyline(const std::vector<Point>& pts, const std::string& stroke,
                double width = 1.5);
  void rect(Point top_left, double w, double h, const std::string& fill,
            const std::string& stroke = "none", double opacity = 1.0);
  // Rectangle rotated by `angle_deg` around its centre.
  void rotated_rect(Point center, double w, double h, double angle_deg,
                    const std::string& fill, double opacity = 1.0);
  void circle(Point center, double r, const std::string& fill);
  void text(Point at, const std::string& content, int font_size = 12,
            const std::string& fill = "#333", const std::string& anchor = "start");

  double width() const { return width_; }
  double height() const { return height_; }

  std::string str() const;
  void save(const std::string& path) const;

 private:
  double width_, height_;
  std::ostringstream body_;
};

// The categorical palette used by every plot (one color per method/series).
const std::vector<std::string>& series_palette();

}  // namespace hero::viz
