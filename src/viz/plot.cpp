#include "viz/plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace hero::viz {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  if (std::abs(v) >= 100 || v == std::floor(v)) {
    os << std::fixed << std::setprecision(0) << v;
  } else {
    os << std::fixed << std::setprecision(2) << v;
  }
  return os.str();
}

}  // namespace

void plot_series(const std::vector<Series>& series, const PlotOptions& options,
                 const std::string& path) {
  HERO_CHECK_MSG(!series.empty(), "plot_series needs at least one series");
  std::size_t n = 0;
  double ymin = 1e300, ymax = -1e300;
  for (const auto& s : series) {
    n = std::max(n, s.values.size());
    for (double v : s.values) {
      ymin = std::min(ymin, v);
      ymax = std::max(ymax, v);
    }
  }
  HERO_CHECK_MSG(n >= 2, "plot_series needs at least two points");
  if (ymax - ymin < 1e-12) {
    ymax += 1.0;
    ymin -= 1.0;
  }
  const double pad = 0.05 * (ymax - ymin);
  ymin -= pad;
  ymax += pad;

  const double ml = 60, mr = 20, mt = 36, mb = 46;  // margins
  SvgDocument svg(options.width, options.height);
  const double pw = options.width - ml - mr;
  const double ph = options.height - mt - mb;

  auto xpos = [&](double i) { return ml + pw * i / static_cast<double>(n - 1); };
  auto ypos = [&](double v) { return mt + ph * (1.0 - (v - ymin) / (ymax - ymin)); };

  // Frame + grid + ticks.
  svg.rect({ml, mt}, pw, ph, "none", "#999");
  for (int t = 0; t <= options.y_ticks; ++t) {
    const double v = ymin + (ymax - ymin) * t / options.y_ticks;
    const double y = ypos(v);
    svg.line({ml, y}, {ml + pw, y}, "#eee", 1.0);
    svg.text({ml - 6, y + 4}, fmt(v), 11, "#555", "end");
  }
  for (int t = 0; t <= options.x_ticks; ++t) {
    const double i = static_cast<double>(n - 1) * t / options.x_ticks;
    const double x = xpos(i);
    svg.line({x, mt + ph}, {x, mt + ph + 4}, "#999", 1.0);
    svg.text({x, mt + ph + 18}, fmt(i + 1), 11, "#555", "middle");
  }
  svg.text({ml + pw / 2, options.height - 8}, options.x_label, 12, "#333", "middle");
  svg.text({ml + pw / 2, 20}, options.title, 14, "#111", "middle");
  svg.text({14, mt + ph / 2}, options.y_label, 12, "#333", "middle");

  // Series + legend.
  const auto& palette = series_palette();
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    const std::string& color = palette[si % palette.size()];
    std::vector<Point> pts;
    pts.reserve(s.values.size());
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      pts.push_back({xpos(static_cast<double>(i)), ypos(s.values[i])});
    }
    svg.polyline(pts, color);
    const double lx = ml + 10;
    const double ly = mt + 14 + 16 * static_cast<double>(si);
    svg.line({lx, ly - 4}, {lx + 18, ly - 4}, color, 2.5);
    svg.text({lx + 24, ly}, s.label, 11, "#333");
  }

  svg.save(path);
}

}  // namespace hero::viz
