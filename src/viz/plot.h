// Learning-curve plotting: multi-series line charts with axes, ticks and a
// legend, written as standalone SVG files. The bench harnesses use this to
// render Fig. 7/8/10-style charts next to their CSV output.
#pragma once

#include <string>
#include <vector>

#include "viz/svg.h"

namespace hero::viz {

struct Series {
  std::string label;
  std::vector<double> values;  // y per x-index (x = 1..n)
};

struct PlotOptions {
  std::string title;
  std::string x_label = "episode";
  std::string y_label;
  double width = 640;
  double height = 400;
  int x_ticks = 5;
  int y_ticks = 5;
};

// Renders all series on shared axes (x = sample index, auto-scaled y) and
// writes the SVG to `path`.
void plot_series(const std::vector<Series>& series, const PlotOptions& options,
                 const std::string& path);

}  // namespace hero::viz
