// Pointwise activation layers. Stateless: backward uses the workspace
// buffers handed in by the owning network (ReLU masks on its input, Tanh
// differentiates through its output).
#pragma once

#include "nn/layer.h"

namespace hero::nn {

enum class Activation { kReLU, kTanh, kIdentity };

class ReLU final : public Layer {
 public:
  explicit ReLU(std::size_t dim) : dim_(dim) {}
  void forward_into(const Matrix& x, Matrix& y) override;
  void backward_into(const Matrix& x, const Matrix& y, const Matrix& grad_out,
                     Matrix& grad_in) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<ReLU>(*this); }
  std::size_t in_dim() const override { return dim_; }
  std::size_t out_dim() const override { return dim_; }

 private:
  std::size_t dim_;
};

class Tanh final : public Layer {
 public:
  explicit Tanh(std::size_t dim) : dim_(dim) {}
  void forward_into(const Matrix& x, Matrix& y) override;
  void backward_into(const Matrix& x, const Matrix& y, const Matrix& grad_out,
                     Matrix& grad_in) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(*this); }
  std::size_t in_dim() const override { return dim_; }
  std::size_t out_dim() const override { return dim_; }

 private:
  std::size_t dim_;
};

}  // namespace hero::nn
