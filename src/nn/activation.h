// Pointwise activation layers.
#pragma once

#include "nn/layer.h"

namespace hero::nn {

enum class Activation { kReLU, kTanh, kIdentity };

class ReLU final : public Layer {
 public:
  explicit ReLU(std::size_t dim) : dim_(dim) {}
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<ReLU>(*this); }
  std::size_t in_dim() const override { return dim_; }
  std::size_t out_dim() const override { return dim_; }

 private:
  std::size_t dim_;
  Matrix cached_input_;
};

class Tanh final : public Layer {
 public:
  explicit Tanh(std::size_t dim) : dim_(dim) {}
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(*this); }
  std::size_t in_dim() const override { return dim_; }
  std::size_t out_dim() const override { return dim_; }

 private:
  std::size_t dim_;
  Matrix cached_output_;
};

}  // namespace hero::nn
