// Finite-difference gradient verification, used by the test suite to pin
// down every analytic backward pass in the library.
#pragma once

#include <functional>

#include "nn/mlp.h"

namespace hero::nn {

// Compares the analytic parameter gradients of `net` (already accumulated by
// a backward pass of `loss_fn`'s computation) against central finite
// differences of `loss_fn`. Returns the maximum absolute relative error.
//
// `loss_fn` must recompute the full scalar loss from scratch (it is invoked
// with perturbed parameters).
double max_param_grad_error(Mlp& net, const std::function<double()>& loss_fn,
                            double h = 1e-5);

}  // namespace hero::nn
