#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

namespace hero::nn {

Matrix Matrix::row(const std::vector<double>& v) {
  Matrix m(1, v.size());
  std::copy(v.begin(), v.end(), m.data_.begin());
  return m;
}

Matrix Matrix::stack_rows(const std::vector<std::vector<double>>& rows) {
  HERO_CHECK(!rows.empty());
  const std::size_t n = rows.front().size();
  Matrix m(rows.size(), n);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    HERO_CHECK_MSG(rows[r].size() == n, "stack_rows: ragged input at row " << r);
    std::copy(rows[r].begin(), rows[r].end(), m.data_.begin() + r * n);
  }
  return m;
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.data_) v = rng.uniform(-bound, bound);
  return m;
}

std::vector<double> Matrix::row_vec(std::size_t r) const {
  HERO_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_);
}

void Matrix::set_row(std::size_t r, const std::vector<double>& v) {
  HERO_CHECK(r < rows_ && v.size() == cols_);
  std::copy(v.begin(), v.end(), data_.begin() + r * cols_);
}

Matrix Matrix::matmul(const Matrix& other) const {
  HERO_CHECK_MSG(cols_ == other.rows_, "matmul shape mismatch: (" << rows_ << "x" << cols_
                                        << ") * (" << other.rows_ << "x" << other.cols_
                                        << ")");
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both inputs.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::hcat(const Matrix& other) const {
  HERO_CHECK(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(i, j);
    for (std::size_t j = 0; j < other.cols_; ++j) out(i, cols_ + j) = other(i, j);
  }
  return out;
}

Matrix Matrix::col_slice(std::size_t c0, std::size_t c1) const {
  HERO_CHECK(c0 <= c1 && c1 <= cols_);
  Matrix out(rows_, c1 - c0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = c0; j < c1; ++j) out(i, j - c0) = (*this)(i, j);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  HERO_CHECK(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  HERO_CHECK(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator+(const Matrix& o) const {
  Matrix r = *this;
  r += o;
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  Matrix r = *this;
  r -= o;
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r = *this;
  r *= s;
  return r;
}

Matrix Matrix::hadamard(const Matrix& o) const {
  HERO_CHECK(same_shape(o));
  Matrix r = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] *= o.data_[i];
  return r;
}

Matrix& Matrix::apply(const std::function<double(double)>& f) {
  for (auto& v : data_) v = f(v);
  return *this;
}

Matrix Matrix::map(const std::function<double(double)>& f) const {
  Matrix r = *this;
  r.apply(f);
  return r;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::abs_max() const {
  double s = 0.0;
  for (double v : data_) s = std::max(s, std::abs(v));
  return s;
}

}  // namespace hero::nn
