#include "nn/matrix.h"

#include <cmath>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

namespace hero::nn {
namespace {

// Runtime ISA dispatch for the dense kernels: each loop body is an
// always_inline helper instantiated twice — a baseline x86-64 version and an
// AVX2+FMA version — and a function pointer picked once at static-init by
// __builtin_cpu_supports. Release binaries stay portable without giving up
// the wide units when they exist. (Feature-based dispatch, not
// target_clones("arch=..."): arch clones match the CPU *model*, which
// virtualized CPUs with a generic model string fail even when they expose
// every needed feature bit.)
#if defined(__x86_64__) && defined(__GNUC__)
#define HERO_KERNEL_DISPATCH 1
#define HERO_KERNEL_INLINE __attribute__((always_inline)) inline
#else
#define HERO_KERNEL_DISPATCH 0
#define HERO_KERNEL_INLINE inline
#endif

// o (m×n) += a (m×k) · b (k×n); every matrix row-major and contiguous, `o`
// already initialized. k is register-blocked by 4 so each pass over the
// output row folds in four rank-1 updates — one out-row load/store per four
// multiply-adds instead of one per multiply-add, which is what the
// vectorized loop is otherwise bound by.
HERO_KERNEL_INLINE
void mm_accum_body(const double* a, std::size_t m, std::size_t k, const double* b,
                   std::size_t n, double* o) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = o + i * n;
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
      const double a0 = arow[c], a1 = arow[c + 1], a2 = arow[c + 2], a3 = arow[c + 3];
      const double* b0 = b + c * n;
      const double* b1 = b0 + n;
      const double* b2 = b1 + n;
      const double* b3 = b2 + n;
      for (std::size_t j = 0; j < n; ++j) {
        orow[j] += (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
      }
    }
    for (; c < k; ++c) {
      const double ac = arow[c];
      const double* brow = b + c * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += ac * brow[j];
    }
  }
}

// o (k×n) += aᵀ·b with a (m×k), b (m×n): rank-1 updates over the shared row
// index, blocked by 4 batch rows — same load/store amortization as mm_accum.
// Neither transpose is ever materialized.
HERO_KERNEL_INLINE
void mm_transA_accum_body(const double* a, std::size_t m, std::size_t k, const double* b,
                     std::size_t n, double* o) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    const double* b0 = b + i * n;
    const double* b1 = b0 + n;
    const double* b2 = b1 + n;
    const double* b3 = b2 + n;
    for (std::size_t r = 0; r < k; ++r) {
      const double w0 = a0[r], w1 = a1[r], w2 = a2[r], w3 = a3[r];
      double* orow = o + r * n;
      for (std::size_t j = 0; j < n; ++j) {
        orow[j] += (w0 * b0[j] + w1 * b1[j]) + (w2 * b2[j] + w3 * b3[j]);
      }
    }
  }
  for (; i < m; ++i) {
    const double* arow = a + i * k;
    const double* brow = b + i * n;
    for (std::size_t r = 0; r < k; ++r) {
      const double w = arow[r];
      double* orow = o + r * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += w * brow[j];
    }
  }
}

// o (m×n) = (or +=) a (m×k) · bᵀ with b (n×k): row-dot-row, four dots in
// flight with two partial sums each — eight independent accumulation chains,
// so the serial FP-add latency of a lone dot product never gates throughput.
HERO_KERNEL_INLINE
void mm_transB_body(const double* a, std::size_t m, std::size_t k, const double* b,
               std::size_t n, double* o, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = o + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      double s0a = 0.0, s0b = 0.0, s1a = 0.0, s1b = 0.0;
      double s2a = 0.0, s2b = 0.0, s3a = 0.0, s3b = 0.0;
      std::size_t c = 0;
      for (; c + 2 <= k; c += 2) {
        const double x0 = arow[c], x1 = arow[c + 1];
        s0a += x0 * b0[c];
        s0b += x1 * b0[c + 1];
        s1a += x0 * b1[c];
        s1b += x1 * b1[c + 1];
        s2a += x0 * b2[c];
        s2b += x1 * b2[c + 1];
        s3a += x0 * b3[c];
        s3b += x1 * b3[c + 1];
      }
      if (c < k) {
        const double x = arow[c];
        s0a += x * b0[c];
        s1a += x * b1[c];
        s2a += x * b2[c];
        s3a += x * b3[c];
      }
      if (accumulate) {
        orow[j] += s0a + s0b;
        orow[j + 1] += s1a + s1b;
        orow[j + 2] += s2a + s2b;
        orow[j + 3] += s3a + s3b;
      } else {
        orow[j] = s0a + s0b;
        orow[j + 1] = s1a + s1b;
        orow[j + 2] = s2a + s2b;
        orow[j + 3] = s3a + s3b;
      }
    }
    for (; j < n; ++j) {
      const double* brow = b + j * k;
      double sa = 0.0, sb = 0.0;
      std::size_t c = 0;
      for (; c + 2 <= k; c += 2) {
        sa += arow[c] * brow[c];
        sb += arow[c + 1] * brow[c + 1];
      }
      if (c < k) sa += arow[c] * brow[c];
      if (accumulate) {
        orow[j] += sa + sb;
      } else {
        orow[j] = sa + sb;
      }
    }
  }
}

// o (m×n) = a (m×k) · w (k×n) + bias (1×n): each output row is seeded with
// the broadcast bias, then accumulated in place — fusing the two passes
// halves the traffic over `o`.
//
// The k loop is OUTER and the sample loop inner, so each 4-row strip of `w`
// is loaded once and folded into every sample row while it is L1-hot: `w` is
// streamed exactly once per call no matter how many rows are batched — the
// difference between batch-oblivious and genuinely batched inference once
// the weights outgrow cache (docs/SERVING.md §Throughput). The extra traffic
// this moves onto `o` (re-swept once per k-block) stays L1-resident for any
// realistic batch. Every row's accumulation order is identical to the m=1
// path (k-blocks of 4 in order with the same pairwise sums, then a
// sequential tail), so results are bitwise independent of both the batch
// size and a row's position within it — the batched-equals-serial guarantees
// elsewhere in the repo rely on this.
HERO_KERNEL_INLINE
void mm_affine_body(const double* a, std::size_t m, std::size_t k, const double* w,
               std::size_t n, const double* bias, double* o) {
  for (std::size_t i = 0; i < m; ++i) {
    double* orow = o + i * n;
    for (std::size_t j = 0; j < n; ++j) orow[j] = bias[j];
  }
  std::size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    const double* w0 = w + c * n;
    const double* w1 = w0 + n;
    const double* w2 = w1 + n;
    const double* w3 = w2 + n;
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double* orow = o + i * n;
      const double a0 = arow[c], a1 = arow[c + 1], a2 = arow[c + 2], a3 = arow[c + 3];
      for (std::size_t j = 0; j < n; ++j) {
        orow[j] += (a0 * w0[j] + a1 * w1[j]) + (a2 * w2[j] + a3 * w3[j]);
      }
    }
  }
  for (; c < k; ++c) {
    const double* wrow = w + c * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double ac = a[i * k + c];
      double* orow = o + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += ac * wrow[j];
    }
  }
}

using MmAccumFn = void (*)(const double*, std::size_t, std::size_t, const double*,
                           std::size_t, double*);
using MmTransBFn = void (*)(const double*, std::size_t, std::size_t, const double*,
                            std::size_t, double*, bool);
using MmAffineFn = void (*)(const double*, std::size_t, std::size_t, const double*,
                            std::size_t, const double*, double*);

void mm_accum_base(const double* a, std::size_t m, std::size_t k, const double* b,
                   std::size_t n, double* o) {
  mm_accum_body(a, m, k, b, n, o);
}
void mm_transA_accum_base(const double* a, std::size_t m, std::size_t k,
                          const double* b, std::size_t n, double* o) {
  mm_transA_accum_body(a, m, k, b, n, o);
}
void mm_transB_base(const double* a, std::size_t m, std::size_t k, const double* b,
                    std::size_t n, double* o, bool accumulate) {
  mm_transB_body(a, m, k, b, n, o, accumulate);
}
void mm_affine_base(const double* a, std::size_t m, std::size_t k, const double* w,
                    std::size_t n, const double* bias, double* o) {
  mm_affine_body(a, m, k, w, n, bias, o);
}

#if HERO_KERNEL_DISPATCH
#define HERO_TARGET_AVX2 __attribute__((target("avx2,fma")))
HERO_TARGET_AVX2 void mm_accum_avx2(const double* a, std::size_t m, std::size_t k,
                                    const double* b, std::size_t n, double* o) {
  mm_accum_body(a, m, k, b, n, o);
}
HERO_TARGET_AVX2 void mm_transA_accum_avx2(const double* a, std::size_t m,
                                           std::size_t k, const double* b,
                                           std::size_t n, double* o) {
  mm_transA_accum_body(a, m, k, b, n, o);
}
// The row-dot-row contraction is the one kernel auto-vectorization cannot
// touch: its inner loop is a reduction, and reassociating it is off-limits
// without -ffast-math. Hand-vectorized here — four dot products with 256-bit
// accumulators, folded by a 4-vector horizontal sum.
HERO_TARGET_AVX2 void mm_transB_avx2(const double* a, std::size_t m, std::size_t k,
                                     const double* b, std::size_t n, double* o,
                                     bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = o + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      __m256d v0 = _mm256_setzero_pd();
      __m256d v1 = _mm256_setzero_pd();
      __m256d v2 = _mm256_setzero_pd();
      __m256d v3 = _mm256_setzero_pd();
      std::size_t c = 0;
      for (; c + 4 <= k; c += 4) {
        const __m256d x = _mm256_loadu_pd(arow + c);
        v0 = _mm256_fmadd_pd(x, _mm256_loadu_pd(b0 + c), v0);
        v1 = _mm256_fmadd_pd(x, _mm256_loadu_pd(b1 + c), v1);
        v2 = _mm256_fmadd_pd(x, _mm256_loadu_pd(b2 + c), v2);
        v3 = _mm256_fmadd_pd(x, _mm256_loadu_pd(b3 + c), v3);
      }
      // Fold [v0 v1 v2 v3] into one vector of the four dot products.
      const __m256d h01 = _mm256_hadd_pd(v0, v1);  // [v0_0+v0_1, v1_0+v1_1, v0_2+v0_3, v1_2+v1_3]
      const __m256d h23 = _mm256_hadd_pd(v2, v3);
      const __m256d swap = _mm256_permute2f128_pd(h01, h23, 0x21);
      const __m256d blnd = _mm256_blend_pd(h01, h23, 0b1100);
      __m256d sums = _mm256_add_pd(swap, blnd);  // [s0, s1, s2, s3]
      if (c < k) {
        double tail[4];
        _mm256_storeu_pd(tail, sums);
        for (; c < k; ++c) {
          const double x = arow[c];
          tail[0] += x * b0[c];
          tail[1] += x * b1[c];
          tail[2] += x * b2[c];
          tail[3] += x * b3[c];
        }
        sums = _mm256_loadu_pd(tail);
      }
      if (accumulate) sums = _mm256_add_pd(sums, _mm256_loadu_pd(orow + j));
      _mm256_storeu_pd(orow + j, sums);
    }
    for (; j < n; ++j) {
      const double* brow = b + j * k;
      __m256d acc = _mm256_setzero_pd();
      std::size_t c = 0;
      for (; c + 4 <= k; c += 4) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(arow + c), _mm256_loadu_pd(brow + c), acc);
      }
      const __m128d lo = _mm256_castpd256_pd128(acc);
      const __m128d hi = _mm256_extractf128_pd(acc, 1);
      const __m128d pair = _mm_add_pd(lo, hi);
      double s = _mm_cvtsd_f64(_mm_hadd_pd(pair, pair));
      for (; c < k; ++c) s += arow[c] * brow[c];
      if (accumulate) {
        orow[j] += s;
      } else {
        orow[j] = s;
      }
    }
  }
}
// Hand-vectorized: the auto-vectorizer cannot prove `o` never aliases `w`,
// so the shared body compiles to scalar FP even under the avx2 target. The
// inner loop is elementwise over j (no reduction), and every row runs the
// exact same instruction sequence, so results remain bitwise independent of
// the batch size and a row's position within it.
HERO_TARGET_AVX2 void mm_affine_avx2(const double* a, std::size_t m, std::size_t k,
                                     const double* w, std::size_t n,
                                     const double* bias, double* o) {
  for (std::size_t i = 0; i < m; ++i) {
    double* orow = o + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) _mm256_storeu_pd(orow + j, _mm256_loadu_pd(bias + j));
    for (; j < n; ++j) orow[j] = bias[j];
  }
  std::size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    const double* w0 = w + c * n;
    const double* w1 = w0 + n;
    const double* w2 = w1 + n;
    const double* w3 = w2 + n;
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double* orow = o + i * n;
      const __m256d a0 = _mm256_set1_pd(arow[c]);
      const __m256d a1 = _mm256_set1_pd(arow[c + 1]);
      const __m256d a2 = _mm256_set1_pd(arow[c + 2]);
      const __m256d a3 = _mm256_set1_pd(arow[c + 3]);
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m256d t01 = _mm256_fmadd_pd(a1, _mm256_loadu_pd(w1 + j),
                                            _mm256_mul_pd(a0, _mm256_loadu_pd(w0 + j)));
        const __m256d t23 = _mm256_fmadd_pd(a3, _mm256_loadu_pd(w3 + j),
                                            _mm256_mul_pd(a2, _mm256_loadu_pd(w2 + j)));
        const __m256d acc = _mm256_add_pd(_mm256_loadu_pd(orow + j),
                                          _mm256_add_pd(t01, t23));
        _mm256_storeu_pd(orow + j, acc);
      }
      for (; j < n; ++j) {
        orow[j] += (arow[c] * w0[j] + arow[c + 1] * w1[j]) +
                   (arow[c + 2] * w2[j] + arow[c + 3] * w3[j]);
      }
    }
  }
  for (; c < k; ++c) {
    const double* wrow = w + c * n;
    for (std::size_t i = 0; i < m; ++i) {
      const __m256d ac = _mm256_set1_pd(a[i * k + c]);
      double* orow = o + i * n;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        _mm256_storeu_pd(orow + j, _mm256_fmadd_pd(ac, _mm256_loadu_pd(wrow + j),
                                                   _mm256_loadu_pd(orow + j)));
      }
      for (; j < n; ++j) orow[j] += a[i * k + c] * wrow[j];
    }
  }
}
#undef HERO_TARGET_AVX2

bool cpu_has_avx2_fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
const bool kUseAvx2 = cpu_has_avx2_fma();
const MmAccumFn mm_accum = kUseAvx2 ? mm_accum_avx2 : mm_accum_base;
const MmAccumFn mm_transA_accum = kUseAvx2 ? mm_transA_accum_avx2 : mm_transA_accum_base;
const MmTransBFn mm_transB = kUseAvx2 ? mm_transB_avx2 : mm_transB_base;
const MmAffineFn mm_affine = kUseAvx2 ? mm_affine_avx2 : mm_affine_base;
#else
constexpr MmAccumFn mm_accum = mm_accum_base;
constexpr MmAccumFn mm_transA_accum = mm_transA_accum_base;
constexpr MmTransBFn mm_transB = mm_transB_base;
constexpr MmAffineFn mm_affine = mm_affine_base;
#endif

}  // namespace

Matrix Matrix::row(const std::vector<double>& v) {
  Matrix m(1, v.size());
  std::copy(v.begin(), v.end(), m.data_.begin());
  return m;
}

Matrix Matrix::stack_rows(const std::vector<std::vector<double>>& rows) {
  HERO_CHECK(!rows.empty());
  const std::size_t n = rows.front().size();
  Matrix m(rows.size(), n);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    HERO_CHECK_MSG(rows[r].size() == n, "stack_rows: ragged input at row " << r);
    std::copy(rows[r].begin(), rows[r].end(), m.data_.begin() + r * n);
  }
  return m;
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.data_) v = rng.uniform(-bound, bound);
  return m;
}

std::vector<double> Matrix::row_vec(std::size_t r) const {
  HERO_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_);
}

void Matrix::set_row(std::size_t r, const std::vector<double>& v) {
  HERO_CHECK(r < rows_ && v.size() == cols_);
  std::copy(v.begin(), v.end(), data_.begin() + r * cols_);
}

Matrix Matrix::matmul(const Matrix& other) const {
  Matrix out;
  matmul_into(other, out);
  return out;
}

void Matrix::matmul_into(const Matrix& other, Matrix& out, bool accumulate) const {
  HERO_CHECK_MSG(cols_ == other.rows_, "matmul shape mismatch: (" << rows_ << "x" << cols_
                                        << ") * (" << other.rows_ << "x" << other.cols_
                                        << ")");
  HERO_CHECK_MSG(&out != this && &out != &other, "matmul_into: out aliases an operand");
  if (accumulate) {
    HERO_CHECK(out.rows_ == rows_ && out.cols_ == other.cols_);
  } else {
    out.resize(rows_, other.cols_);
    out.fill(0.0);
  }
  mm_accum(data(), rows_, cols_, other.data(), other.cols_, out.data());
}

void Matrix::matmul_transA_into(const Matrix& other, Matrix& out,
                                bool accumulate) const {
  HERO_CHECK_MSG(rows_ == other.rows_, "matmul_transA shape mismatch: ("
                                           << rows_ << "x" << cols_ << ")ᵀ * ("
                                           << other.rows_ << "x" << other.cols_ << ")");
  HERO_CHECK_MSG(&out != this && &out != &other,
                 "matmul_transA_into: out aliases an operand");
  if (accumulate) {
    HERO_CHECK(out.rows_ == cols_ && out.cols_ == other.cols_);
  } else {
    out.resize(cols_, other.cols_);
    out.fill(0.0);
  }
  mm_transA_accum(data(), rows_, cols_, other.data(), other.cols_, out.data());
}

void Matrix::matmul_transB_into(const Matrix& other, Matrix& out,
                                bool accumulate) const {
  HERO_CHECK_MSG(cols_ == other.cols_, "matmul_transB shape mismatch: ("
                                           << rows_ << "x" << cols_ << ") * ("
                                           << other.rows_ << "x" << other.cols_ << ")ᵀ");
  HERO_CHECK_MSG(&out != this && &out != &other,
                 "matmul_transB_into: out aliases an operand");
  if (accumulate) {
    HERO_CHECK(out.rows_ == rows_ && out.cols_ == other.rows_);
  } else {
    out.resize(rows_, other.rows_);
  }
  mm_transB(data(), rows_, cols_, other.data(), other.rows_, out.data(), accumulate);
}

void Matrix::affine_into(const Matrix& w, const Matrix& bias, Matrix& out) const {
  HERO_CHECK_MSG(cols_ == w.rows_, "affine shape mismatch: (" << rows_ << "x" << cols_
                                    << ") * (" << w.rows_ << "x" << w.cols_ << ")");
  HERO_CHECK(bias.rows_ == 1 && bias.cols_ == w.cols_);
  HERO_CHECK_MSG(&out != this && &out != &w && &out != &bias,
                 "affine_into: out aliases an operand");
  out.resize(rows_, w.cols_);
  mm_affine(data(), rows_, cols_, w.data(), w.cols_, bias.data(), out.data());
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

void Matrix::hcat_into(const Matrix& other, Matrix& out) const {
  HERO_CHECK(rows_ == other.rows_);
  HERO_CHECK_MSG(&out != this && &out != &other, "hcat_into: out aliases an operand");
  out.resize(rows_, cols_ + other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double* orow = out.row_ptr(i);
    std::copy(row_ptr(i), row_ptr(i) + cols_, orow);
    std::copy(other.row_ptr(i), other.row_ptr(i) + other.cols_, orow + cols_);
  }
}

Matrix Matrix::hcat(const Matrix& other) const {
  Matrix out;
  hcat_into(other, out);
  return out;
}

void Matrix::col_slice_into(std::size_t c0, std::size_t c1, Matrix& out,
                            bool accumulate) const {
  HERO_CHECK(c0 <= c1 && c1 <= cols_);
  HERO_CHECK_MSG(&out != this, "col_slice_into: out aliases the source");
  const std::size_t n = c1 - c0;
  if (accumulate) {
    HERO_CHECK(out.rows_ == rows_ && out.cols_ == n);
  } else {
    out.resize(rows_, n);
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = row_ptr(i) + c0;
    double* dst = out.row_ptr(i);
    if (accumulate) {
      for (std::size_t j = 0; j < n; ++j) dst[j] += src[j];
    } else {
      std::copy(src, src + n, dst);
    }
  }
}

Matrix Matrix::col_slice(std::size_t c0, std::size_t c1) const {
  Matrix out;
  col_slice_into(c0, c1, out);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  HERO_CHECK(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  HERO_CHECK(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator+(const Matrix& o) const {
  Matrix r = *this;
  r += o;
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  Matrix r = *this;
  r -= o;
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r = *this;
  r *= s;
  return r;
}

Matrix Matrix::hadamard(const Matrix& o) const {
  HERO_CHECK(same_shape(o));
  Matrix r = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] *= o.data_[i];
  return r;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::abs_max() const {
  double s = 0.0;
  for (double v : data_) s = std::max(s, std::abs(v));
  return s;
}

bool Matrix::all_finite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void Matrix::check_finite(const char* what) const {
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (!std::isfinite(data_[i])) [[unlikely]] {
      std::ostringstream os;
      os << what << ": non-finite value " << data_[i] << " at ("
         << i / std::max<std::size_t>(cols_, 1) << ", "
         << i % std::max<std::size_t>(cols_, 1) << ") of " << rows_ << "x" << cols_
         << " matrix";
      check_failed("all_finite()", __FILE__, __LINE__, os.str());
    }
  }
}

}  // namespace hero::nn
