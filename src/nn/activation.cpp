#include "nn/activation.h"

#include <cmath>

namespace hero::nn {

Matrix ReLU::forward(const Matrix& x) {
  cached_input_ = x;
  return x.map([](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix ReLU::backward(const Matrix& grad_out) {
  HERO_CHECK(grad_out.same_shape(cached_input_));
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.rows(); ++i)
    for (std::size_t j = 0; j < g.cols(); ++j)
      if (cached_input_(i, j) <= 0.0) g(i, j) = 0.0;
  return g;
}

Matrix Tanh::forward(const Matrix& x) {
  cached_output_ = x.map([](double v) { return std::tanh(v); });
  return cached_output_;
}

Matrix Tanh::backward(const Matrix& grad_out) {
  HERO_CHECK(grad_out.same_shape(cached_output_));
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.rows(); ++i)
    for (std::size_t j = 0; j < g.cols(); ++j) {
      double t = cached_output_(i, j);
      g(i, j) *= (1.0 - t * t);
    }
  return g;
}

}  // namespace hero::nn
