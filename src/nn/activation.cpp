#include "nn/activation.h"

#include <cmath>

namespace hero::nn {

void ReLU::forward_into(const Matrix& x, Matrix& y) {
  y.resize(x.rows(), x.cols());
  const double* src = x.data();
  double* dst = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) dst[i] = src[i] > 0.0 ? src[i] : 0.0;
}

void ReLU::backward_into(const Matrix& x, const Matrix& y, const Matrix& grad_out,
                         Matrix& grad_in) {
  (void)y;
  HERO_CHECK(grad_out.same_shape(x));
  grad_in.resize(x.rows(), x.cols());
  const double* xs = x.data();
  const double* g = grad_out.data();
  double* out = grad_in.data();
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = xs[i] > 0.0 ? g[i] : 0.0;
}

void Tanh::forward_into(const Matrix& x, Matrix& y) {
  y.resize(x.rows(), x.cols());
  const double* src = x.data();
  double* dst = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) dst[i] = std::tanh(src[i]);
}

void Tanh::backward_into(const Matrix& x, const Matrix& y, const Matrix& grad_out,
                         Matrix& grad_in) {
  (void)x;
  HERO_CHECK(grad_out.same_shape(y));
  grad_in.resize(y.rows(), y.cols());
  const double* t = y.data();
  const double* g = grad_out.data();
  double* out = grad_in.data();
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = g[i] * (1.0 - t[i] * t[i]);
}

}  // namespace hero::nn
