// Loss functions returning both the scalar loss and the gradient w.r.t. the
// network output, ready to feed Mlp::backward().
//
// All losses average over the batch so learning rates are batch-invariant.
#pragma once

#include <vector>

#include "nn/matrix.h"

namespace hero::nn {

struct LossResult {
  double loss;
  Matrix grad;  // dL/d(prediction), same shape as the prediction
};

// Each loss comes in two forms: a convenience value-returning form and a
// `_into` form that writes the gradient into a caller-owned buffer (resized
// in place — reuse one across update steps for a zero-allocation hot path)
// and returns the scalar loss.

// Mean squared error against a dense target.
double mse_loss_into(const Matrix& pred, const Matrix& target, Matrix& grad);
LossResult mse_loss(const Matrix& pred, const Matrix& target);

// MSE evaluated only on one selected column per row (Q-learning: only the
// taken action's Q-value receives gradient).
double mse_loss_selected_into(const Matrix& pred, const std::vector<std::size_t>& cols,
                              const std::vector<double>& targets, Matrix& grad);
LossResult mse_loss_selected(const Matrix& pred, const std::vector<std::size_t>& cols,
                             const std::vector<double>& targets);

// Softmax cross-entropy with integer class targets; grad is w.r.t. logits.
// `weights` optionally rescales each row's contribution (e.g. importance).
double softmax_cross_entropy_into(const Matrix& logits,
                                  const std::vector<std::size_t>& targets,
                                  const std::vector<double>* weights, Matrix& grad);
LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<std::size_t>& targets,
                                 const std::vector<double>* weights = nullptr);

// Numerically-stable row-wise softmax / log-softmax.
void softmax_into(const Matrix& logits, Matrix& out);
void log_softmax_into(const Matrix& logits, Matrix& out);
Matrix softmax(const Matrix& logits);
Matrix log_softmax(const Matrix& logits);

// Row-wise entropy of softmax(logits).
std::vector<double> softmax_entropy(const Matrix& logits);

// Huber (smooth-L1) loss on selected columns, used by DQN for robustness to
// early-training TD-error spikes. `weights` optionally rescales each row
// (importance-sampling correction for prioritized replay).
double huber_loss_selected_into(const Matrix& pred, const std::vector<std::size_t>& cols,
                                const std::vector<double>& targets, double delta,
                                const std::vector<double>* weights, Matrix& grad);
LossResult huber_loss_selected(const Matrix& pred, const std::vector<std::size_t>& cols,
                               const std::vector<double>& targets, double delta = 1.0,
                               const std::vector<double>* weights = nullptr);

}  // namespace hero::nn
