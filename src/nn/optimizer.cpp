#include "nn/optimizer.h"

#include <cmath>

namespace hero::nn {

Sgd::Sgd(std::vector<ParamRef> params, double lr, double momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (auto& p : params_) velocity_.emplace_back(p.value->rows(), p.value->cols());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& w = *params_[i].value;
    Matrix& g = *params_[i].grad;
    HERO_DCHECK_FINITE(g, "Sgd::step gradient");
    Matrix& vel = velocity_[i];
    for (std::size_t k = 0; k < w.size(); ++k) {
      vel.data()[k] = momentum_ * vel.data()[k] + g.data()[k];
      w.data()[k] -= lr_ * vel.data()[k];
    }
    HERO_DCHECK_FINITE(w, "Sgd::step updated weights");
    g.fill(0.0);
  }
}

Adam::Adam(std::vector<ParamRef> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& w = *params_[i].value;
    Matrix& g = *params_[i].grad;
    HERO_DCHECK_FINITE(g, "Adam::step gradient");
    for (std::size_t k = 0; k < w.size(); ++k) {
      double gk = g.data()[k];
      m_[i].data()[k] = beta1_ * m_[i].data()[k] + (1.0 - beta1_) * gk;
      v_[i].data()[k] = beta2_ * v_[i].data()[k] + (1.0 - beta2_) * gk * gk;
      double mhat = m_[i].data()[k] / bc1;
      double vhat = v_[i].data()[k] / bc2;
      w.data()[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    HERO_DCHECK_FINITE(w, "Adam::step updated weights");
    g.fill(0.0);
  }
}

}  // namespace hero::nn
