#include "nn/linear.h"

namespace hero::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : in_(in),
      out_(out),
      w_(Matrix::xavier(in, out, rng)),
      b_(1, out, 0.0),
      grad_w_(in, out, 0.0),
      grad_b_(1, out, 0.0) {
  // Tiny bias noise instead of exact zeros: breaks dead-ReLU ties at
  // initialization (a fully-dead hidden row would otherwise propagate
  // *exactly* zero pre-activations into every downstream ReLU, parking the
  // network on the kink where gradients are ill-defined).
  for (std::size_t j = 0; j < out; ++j) b_(0, j) = rng.uniform(-0.01, 0.01);
}

Matrix Linear::forward(const Matrix& x) {
  HERO_CHECK_MSG(x.cols() == in_, "Linear: input dim " << x.cols() << " != " << in_);
  cached_input_ = x;
  Matrix y = x.matmul(w_);
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (std::size_t j = 0; j < out_; ++j) y(i, j) += b_(0, j);
  return y;
}

Matrix Linear::backward(const Matrix& grad_out) {
  HERO_CHECK(grad_out.rows() == cached_input_.rows() && grad_out.cols() == out_);
  grad_w_ += cached_input_.transpose().matmul(grad_out);
  for (std::size_t i = 0; i < grad_out.rows(); ++i)
    for (std::size_t j = 0; j < out_; ++j) grad_b_(0, j) += grad_out(i, j);
  return grad_out.matmul(w_.transpose());
}

std::vector<ParamRef> Linear::params() {
  return {{&w_, &grad_w_}, {&b_, &grad_b_}};
}

std::unique_ptr<Layer> Linear::clone() const { return std::make_unique<Linear>(*this); }

}  // namespace hero::nn
