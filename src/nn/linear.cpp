#include "nn/linear.h"

namespace hero::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : in_(in),
      out_(out),
      w_(Matrix::xavier(in, out, rng)),
      b_(1, out, 0.0),
      grad_w_(in, out, 0.0),
      grad_b_(1, out, 0.0) {
  // Tiny bias noise instead of exact zeros: breaks dead-ReLU ties at
  // initialization (a fully-dead hidden row would otherwise propagate
  // *exactly* zero pre-activations into every downstream ReLU, parking the
  // network on the kink where gradients are ill-defined).
  for (std::size_t j = 0; j < out; ++j) b_(0, j) = rng.uniform(-0.01, 0.01);
}

void Linear::forward_into(const Matrix& x, Matrix& y) {
  HERO_CHECK_MSG(x.cols() == in_, "Linear: input dim " << x.cols() << " != " << in_);
  x.affine_into(w_, b_, y);
}

void Linear::backward_into(const Matrix& x, const Matrix& y, const Matrix& grad_out,
                           Matrix& grad_in) {
  (void)y;
  HERO_CHECK(grad_out.rows() == x.rows() && grad_out.cols() == out_);
  // dW += xᵀ · dy, transpose-free.
  x.matmul_transA_into(grad_out, grad_w_, /*accumulate=*/true);
  // db += column sums of dy.
  double* gb = grad_b_.data();
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    const double* grow = grad_out.row_ptr(i);
    for (std::size_t j = 0; j < out_; ++j) gb[j] += grow[j];
  }
  // dx = dy · Wᵀ, transpose-free.
  grad_out.matmul_transB_into(w_, grad_in);
}

void Linear::backward_input_into(const Matrix& x, const Matrix& y,
                                 const Matrix& grad_out, Matrix& grad_in) {
  (void)y;
  HERO_CHECK(grad_out.rows() == x.rows() && grad_out.cols() == out_);
  // Only dx = dy · Wᵀ — no dW/db accumulation.
  grad_out.matmul_transB_into(w_, grad_in);
}

std::vector<ParamRef> Linear::params() {
  return {{&w_, &grad_w_}, {&b_, &grad_b_}};
}

std::vector<ConstParamRef> Linear::params() const {
  return {{&w_, &grad_w_}, {&b_, &grad_b_}};
}

std::unique_ptr<Layer> Linear::clone() const { return std::make_unique<Linear>(*this); }

}  // namespace hero::nn
