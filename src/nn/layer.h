// Layer abstraction: explicit forward / backward with cached activations.
//
// The library deliberately avoids a tape-based autograd — the paper's models
// are short feed-forward stacks and the explicit form keeps every gradient
// auditable (tests/nn finite-difference-checks each layer).
#pragma once

#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace hero::nn {

// View over one trainable parameter and its gradient accumulator.
struct ParamRef {
  Matrix* value;
  Matrix* grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output for a (batch, in) input and caches whatever
  // backward() needs.
  virtual Matrix forward(const Matrix& x) = 0;

  // Given dL/d(output), accumulates parameter gradients and returns
  // dL/d(input). Must be called after forward() with the matching batch.
  virtual Matrix backward(const Matrix& grad_out) = 0;

  // Trainable parameters (empty for activations).
  virtual std::vector<ParamRef> params() { return {}; }

  virtual std::unique_ptr<Layer> clone() const = 0;

  virtual std::size_t in_dim() const = 0;
  virtual std::size_t out_dim() const = 0;
};

}  // namespace hero::nn
