// Layer abstraction: explicit forward / backward over caller-owned buffers.
//
// The library deliberately avoids a tape-based autograd — the paper's models
// are short feed-forward stacks and the explicit form keeps every gradient
// auditable (tests/nn finite-difference-checks each layer).
//
// Layers are *stateless between calls*: they no longer cache their inputs.
// The owning network (Mlp, AttentionCritic) keeps every activation in a
// reusable workspace and hands the relevant buffers back to backward_into().
// That is what makes the steady-state hot path allocation-free: the
// activation produced by forward IS the cached input of the next layer — no
// deep copy, and all buffers are reused across iterations.
#pragma once

#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace hero::nn {

// View over one trainable parameter and its gradient accumulator.
struct ParamRef {
  Matrix* value;
  Matrix* grad;
};

// Read-only view, for const traversals (parameter counting, inspection).
struct ConstParamRef {
  const Matrix* value;
  const Matrix* grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output for a (batch, in) input into `y` (resized as
  // needed, allocation-free once capacity has settled). `y` must not alias
  // `x`.
  virtual void forward_into(const Matrix& x, Matrix& y) = 0;

  // Given the input `x` and output `y` of the matching forward_into call and
  // dL/d(output), accumulates parameter gradients and writes dL/d(input)
  // into `grad_in`. `grad_in` must not alias any other argument.
  virtual void backward_into(const Matrix& x, const Matrix& y,
                             const Matrix& grad_out, Matrix& grad_in) = 0;

  // Like backward_into, but skips parameter-gradient accumulation — for
  // callers that only need dL/d(input), e.g. differentiating a frozen critic
  // w.r.t. its action inputs in a deterministic-policy-gradient update.
  // Parameterless layers inherit the default (their backward has no
  // parameter work to skip).
  virtual void backward_input_into(const Matrix& x, const Matrix& y,
                                   const Matrix& grad_out, Matrix& grad_in) {
    backward_into(x, y, grad_out, grad_in);
  }

  // Trainable parameters (empty for activations).
  virtual std::vector<ParamRef> params() { return {}; }
  // Const overload — lets const code (e.g. Mlp::num_params) walk the
  // parameters without const_cast.
  virtual std::vector<ConstParamRef> params() const { return {}; }

  virtual std::unique_ptr<Layer> clone() const = 0;

  virtual std::size_t in_dim() const = 0;
  virtual std::size_t out_dim() const = 0;
};

}  // namespace hero::nn
