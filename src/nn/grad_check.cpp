#include "nn/grad_check.h"

#include <algorithm>
#include <cmath>

namespace hero::nn {

double max_param_grad_error(Mlp& net, const std::function<double()>& loss_fn,
                            double h) {
  double worst = 0.0;
  for (auto p : net.params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      const double saved = p.value->data()[i];
      p.value->data()[i] = saved + h;
      const double up = loss_fn();
      p.value->data()[i] = saved - h;
      const double down = loss_fn();
      p.value->data()[i] = saved;
      const double numeric = (up - down) / (2.0 * h);
      const double analytic = p.grad->data()[i];
      const double denom = std::max({std::abs(numeric), std::abs(analytic), 1e-8});
      worst = std::max(worst, std::abs(numeric - analytic) / denom);
    }
  }
  return worst;
}

}  // namespace hero::nn
