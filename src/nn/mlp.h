// Multi-layer perceptron: the workhorse network of every policy and critic
// in this reproduction (the paper uses hidden width 32 throughout).
//
// The network owns a reusable Workspace: one activation buffer per layer
// boundary plus matching gradient buffers. forward()/backward() return
// references INTO that workspace — valid until the next forward()/backward()
// on the same network. Copy the result if you need it to survive another
// pass (assigning to a `Matrix` value does exactly that). With stable batch
// shapes, steady-state forward/backward perform zero heap allocations (see
// docs/PERFORMANCE.md for the full contract).
#pragma once

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/linear.h"

namespace hero::nn {

class Mlp {
 public:
  Mlp() = default;

  // Builds in -> hidden[0] -> ... -> hidden[n-1] -> out with `act` between
  // linear layers and `out_act` after the last one.
  Mlp(std::size_t in, const std::vector<std::size_t>& hidden, std::size_t out, Rng& rng,
      Activation act = Activation::kReLU, Activation out_act = Activation::kIdentity);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  // Forward pass for a (batch, in) matrix. Returns the output activation in
  // the workspace (invalidated by the next forward on this network).
  const Matrix& forward(const Matrix& x);
  // Convenience single-sample forward.
  std::vector<double> forward1(const std::vector<double>& x);

  // Backpropagates dL/d(output); accumulates parameter grads, returns
  // dL/d(input) — callers use the input gradient to chain through
  // concatenated inputs (e.g. dQ/da for deterministic policy gradients).
  // The returned reference lives in the workspace (invalidated by the next
  // backward on this network). Requires the matching forward() to have run.
  const Matrix& backward(const Matrix& grad_out);

  // Like backward, but computes only dL/d(input) and leaves parameter
  // gradients untouched — for differentiating through a frozen network
  // (e.g. dQ/da through the critics in an actor update). Roughly a third
  // cheaper than backward + discarding the grads.
  const Matrix& backward_input(const Matrix& grad_out);

  // Flat parameter list; built once and cached (pointer-stable: layers are
  // held by unique_ptr, so Matrix addresses survive moves of the Mlp).
  const std::vector<ParamRef>& params();
  void zero_grad();

  // Polyak averaging: θ ← τ·θ_src + (1−τ)·θ (target-network update).
  void soft_update_from(Mlp& src, double tau);
  // Hard copy of all parameters (architectures must match).
  void copy_params_from(Mlp& src);

  // Global-norm gradient clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  std::size_t in_dim() const;
  std::size_t out_dim() const;
  std::size_t num_params() const;
  // Linear-layer widths in order: {in, hidden..., out}. The architecture
  // fingerprint recorded in checkpoint manifests (hero/checkpoint.h).
  std::vector<std::size_t> layer_dims() const;
  bool empty() const { return layers_.empty(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;

  // Workspace: acts_[0] holds the (copied) input, acts_[i+1] the output of
  // layer i; grads_ mirrors acts_ with dL/d(activation). All buffers are
  // resized in place, so capacity is reused across iterations.
  std::vector<Matrix> acts_;
  std::vector<Matrix> grads_;
  Matrix in_row_;  // forward1 scratch

  std::vector<ParamRef> param_cache_;
};

}  // namespace hero::nn
