// Multi-layer perceptron: the workhorse network of every policy and critic
// in this reproduction (the paper uses hidden width 32 throughout).
#pragma once

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/linear.h"

namespace hero::nn {

class Mlp {
 public:
  Mlp() = default;

  // Builds in -> hidden[0] -> ... -> hidden[n-1] -> out with `act` between
  // linear layers and `out_act` after the last one.
  Mlp(std::size_t in, const std::vector<std::size_t>& hidden, std::size_t out, Rng& rng,
      Activation act = Activation::kReLU, Activation out_act = Activation::kIdentity);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  // Forward pass for a (batch, in) matrix; caches activations for backward().
  Matrix forward(const Matrix& x);
  // Convenience single-sample forward.
  std::vector<double> forward1(const std::vector<double>& x);

  // Backpropagates dL/d(output); accumulates parameter grads, returns
  // dL/d(input) — callers use the input gradient to chain through
  // concatenated inputs (e.g. dQ/da for deterministic policy gradients).
  Matrix backward(const Matrix& grad_out);

  std::vector<ParamRef> params();
  void zero_grad();

  // Polyak averaging: θ ← τ·θ_src + (1−τ)·θ (target-network update).
  void soft_update_from(Mlp& src, double tau);
  // Hard copy of all parameters (architectures must match).
  void copy_params_from(Mlp& src);

  // Global-norm gradient clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  std::size_t in_dim() const;
  std::size_t out_dim() const;
  std::size_t num_params() const;
  bool empty() const { return layers_.empty(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace hero::nn
