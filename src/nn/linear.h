// Fully-connected layer: y = x W + b with W of shape (in, out).
#pragma once

#include "nn/layer.h"

namespace hero::nn {

class Linear final : public Layer {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_dim() const override { return in_; }
  std::size_t out_dim() const override { return out_; }

  Matrix& weight() { return w_; }
  Matrix& bias() { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Matrix w_;       // (in, out)
  Matrix b_;       // (1, out)
  Matrix grad_w_;  // accumulated dL/dW
  Matrix grad_b_;
  Matrix cached_input_;
};

}  // namespace hero::nn
