// Fully-connected layer: y = x W + b with W of shape (in, out).
//
// forward_into is the fused affine kernel (matmul + bias broadcast in one
// pass); backward_into contracts against the transposed operands in place
// (matmul_transA_into / matmul_transB_into), so no transpose is ever
// materialized and steady-state calls allocate nothing.
#pragma once

#include "nn/layer.h"

namespace hero::nn {

class Linear final : public Layer {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng);

  void forward_into(const Matrix& x, Matrix& y) override;
  void backward_into(const Matrix& x, const Matrix& y, const Matrix& grad_out,
                     Matrix& grad_in) override;
  void backward_input_into(const Matrix& x, const Matrix& y,
                           const Matrix& grad_out, Matrix& grad_in) override;
  std::vector<ParamRef> params() override;
  std::vector<ConstParamRef> params() const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_dim() const override { return in_; }
  std::size_t out_dim() const override { return out_; }

  Matrix& weight() { return w_; }
  Matrix& bias() { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Matrix w_;       // (in, out)
  Matrix b_;       // (1, out)
  Matrix grad_w_;  // accumulated dL/dW
  Matrix grad_b_;
};

}  // namespace hero::nn
