#include "nn/losses.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hero::nn {

LossResult mse_loss(const Matrix& pred, const Matrix& target) {
  HERO_CHECK(pred.same_shape(target));
  const double inv_n = 1.0 / static_cast<double>(pred.rows());
  Matrix grad(pred.rows(), pred.cols());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    for (std::size_t j = 0; j < pred.cols(); ++j) {
      double d = pred(i, j) - target(i, j);
      loss += d * d;
      grad(i, j) = 2.0 * d * inv_n;
    }
  }
  return {loss * inv_n, std::move(grad)};
}

LossResult mse_loss_selected(const Matrix& pred, const std::vector<std::size_t>& cols,
                             const std::vector<double>& targets) {
  HERO_CHECK(cols.size() == pred.rows() && targets.size() == pred.rows());
  const double inv_n = 1.0 / static_cast<double>(pred.rows());
  Matrix grad(pred.rows(), pred.cols());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    HERO_CHECK(cols[i] < pred.cols());
    double d = pred(i, cols[i]) - targets[i];
    loss += d * d;
    grad(i, cols[i]) = 2.0 * d * inv_n;
  }
  return {loss * inv_n, std::move(grad)};
}

Matrix softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    double mx = logits(i, 0);
    for (std::size_t j = 1; j < logits.cols(); ++j) mx = std::max(mx, logits(i, j));
    double z = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      out(i, j) = std::exp(logits(i, j) - mx);
      z += out(i, j);
    }
    for (std::size_t j = 0; j < logits.cols(); ++j) out(i, j) /= z;
  }
  return out;
}

Matrix log_softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    double mx = logits(i, 0);
    for (std::size_t j = 1; j < logits.cols(); ++j) mx = std::max(mx, logits(i, j));
    double z = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) z += std::exp(logits(i, j) - mx);
    double logz = mx + std::log(z);
    for (std::size_t j = 0; j < logits.cols(); ++j) out(i, j) = logits(i, j) - logz;
  }
  return out;
}

std::vector<double> softmax_entropy(const Matrix& logits) {
  Matrix logp = log_softmax(logits);
  std::vector<double> ent(logits.rows(), 0.0);
  for (std::size_t i = 0; i < logits.rows(); ++i)
    for (std::size_t j = 0; j < logits.cols(); ++j)
      ent[i] -= std::exp(logp(i, j)) * logp(i, j);
  return ent;
}

LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<std::size_t>& targets,
                                 const std::vector<double>* weights) {
  HERO_CHECK(targets.size() == logits.rows());
  if (weights) HERO_CHECK(weights->size() == logits.rows());
  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  Matrix p = softmax(logits);
  Matrix logp = log_softmax(logits);
  Matrix grad(logits.rows(), logits.cols());
  double loss = 0.0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    HERO_CHECK(targets[i] < logits.cols());
    double w = weights ? (*weights)[i] : 1.0;
    loss += -w * logp(i, targets[i]);
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      grad(i, j) = w * p(i, j) * inv_n;
    }
    grad(i, targets[i]) -= w * inv_n;
  }
  return {loss * inv_n, std::move(grad)};
}

LossResult huber_loss_selected(const Matrix& pred, const std::vector<std::size_t>& cols,
                               const std::vector<double>& targets, double delta,
                               const std::vector<double>* weights) {
  HERO_CHECK(cols.size() == pred.rows() && targets.size() == pred.rows());
  if (weights) HERO_CHECK(weights->size() == pred.rows());
  const double inv_n = 1.0 / static_cast<double>(pred.rows());
  Matrix grad(pred.rows(), pred.cols());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    const double w = weights ? (*weights)[i] : 1.0;
    double d = pred(i, cols[i]) - targets[i];
    if (std::abs(d) <= delta) {
      loss += w * 0.5 * d * d;
      grad(i, cols[i]) = w * d * inv_n;
    } else {
      loss += w * delta * (std::abs(d) - 0.5 * delta);
      grad(i, cols[i]) = w * (d > 0 ? delta : -delta) * inv_n;
    }
  }
  return {loss * inv_n, std::move(grad)};
}

}  // namespace hero::nn
