#include "nn/losses.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hero::nn {

double mse_loss_into(const Matrix& pred, const Matrix& target, Matrix& grad) {
  HERO_CHECK(pred.same_shape(target));
  const double inv_n = 1.0 / static_cast<double>(pred.rows());
  grad.resize(pred.rows(), pred.cols());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    for (std::size_t j = 0; j < pred.cols(); ++j) {
      double d = pred(i, j) - target(i, j);
      loss += d * d;
      grad(i, j) = 2.0 * d * inv_n;
    }
  }
  return loss * inv_n;
}

LossResult mse_loss(const Matrix& pred, const Matrix& target) {
  LossResult r;
  r.loss = mse_loss_into(pred, target, r.grad);
  return r;
}

double mse_loss_selected_into(const Matrix& pred, const std::vector<std::size_t>& cols,
                              const std::vector<double>& targets, Matrix& grad) {
  HERO_CHECK(cols.size() == pred.rows() && targets.size() == pred.rows());
  const double inv_n = 1.0 / static_cast<double>(pred.rows());
  grad.resize(pred.rows(), pred.cols());
  grad.fill(0.0);
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    HERO_CHECK(cols[i] < pred.cols());
    double d = pred(i, cols[i]) - targets[i];
    loss += d * d;
    grad(i, cols[i]) = 2.0 * d * inv_n;
  }
  return loss * inv_n;
}

LossResult mse_loss_selected(const Matrix& pred, const std::vector<std::size_t>& cols,
                             const std::vector<double>& targets) {
  LossResult r;
  r.loss = mse_loss_selected_into(pred, cols, targets, r.grad);
  return r;
}

void softmax_into(const Matrix& logits, Matrix& out) {
  out.resize(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* lrow = logits.row_ptr(i);
    double* orow = out.row_ptr(i);
    double mx = lrow[0];
    for (std::size_t j = 1; j < logits.cols(); ++j) mx = std::max(mx, lrow[j]);
    double z = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      orow[j] = std::exp(lrow[j] - mx);
      z += orow[j];
    }
    for (std::size_t j = 0; j < logits.cols(); ++j) orow[j] /= z;
  }
}

void log_softmax_into(const Matrix& logits, Matrix& out) {
  out.resize(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double* lrow = logits.row_ptr(i);
    double* orow = out.row_ptr(i);
    double mx = lrow[0];
    for (std::size_t j = 1; j < logits.cols(); ++j) mx = std::max(mx, lrow[j]);
    double z = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) z += std::exp(lrow[j] - mx);
    double logz = mx + std::log(z);
    for (std::size_t j = 0; j < logits.cols(); ++j) orow[j] = lrow[j] - logz;
  }
}

Matrix softmax(const Matrix& logits) {
  Matrix out;
  softmax_into(logits, out);
  return out;
}

Matrix log_softmax(const Matrix& logits) {
  Matrix out;
  log_softmax_into(logits, out);
  return out;
}

std::vector<double> softmax_entropy(const Matrix& logits) {
  Matrix logp = log_softmax(logits);
  std::vector<double> ent(logits.rows(), 0.0);
  for (std::size_t i = 0; i < logits.rows(); ++i)
    for (std::size_t j = 0; j < logits.cols(); ++j)
      ent[i] -= std::exp(logp(i, j)) * logp(i, j);
  return ent;
}

double softmax_cross_entropy_into(const Matrix& logits,
                                  const std::vector<std::size_t>& targets,
                                  const std::vector<double>* weights, Matrix& grad) {
  HERO_CHECK(targets.size() == logits.rows());
  if (weights) HERO_CHECK(weights->size() == logits.rows());
  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  grad.resize(logits.rows(), logits.cols());
  double loss = 0.0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    HERO_CHECK(targets[i] < logits.cols());
    const double* lrow = logits.row_ptr(i);
    double* grow = grad.row_ptr(i);
    const double w = weights ? (*weights)[i] : 1.0;
    // Fused softmax + log-softmax on the row (two passes, no temporaries).
    double mx = lrow[0];
    for (std::size_t j = 1; j < logits.cols(); ++j) mx = std::max(mx, lrow[j]);
    double z = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      grow[j] = std::exp(lrow[j] - mx);
      z += grow[j];
    }
    const double logz = mx + std::log(z);
    loss += -w * (lrow[targets[i]] - logz);
    const double inv_z = 1.0 / z;
    for (std::size_t j = 0; j < logits.cols(); ++j) grow[j] *= w * inv_z * inv_n;
    grow[targets[i]] -= w * inv_n;
  }
  return loss * inv_n;
}

LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<std::size_t>& targets,
                                 const std::vector<double>* weights) {
  LossResult r;
  r.loss = softmax_cross_entropy_into(logits, targets, weights, r.grad);
  return r;
}

double huber_loss_selected_into(const Matrix& pred, const std::vector<std::size_t>& cols,
                                const std::vector<double>& targets, double delta,
                                const std::vector<double>* weights, Matrix& grad) {
  HERO_CHECK(cols.size() == pred.rows() && targets.size() == pred.rows());
  if (weights) HERO_CHECK(weights->size() == pred.rows());
  const double inv_n = 1.0 / static_cast<double>(pred.rows());
  grad.resize(pred.rows(), pred.cols());
  grad.fill(0.0);
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    const double w = weights ? (*weights)[i] : 1.0;
    double d = pred(i, cols[i]) - targets[i];
    if (std::abs(d) <= delta) {
      loss += w * 0.5 * d * d;
      grad(i, cols[i]) = w * d * inv_n;
    } else {
      loss += w * delta * (std::abs(d) - 0.5 * delta);
      grad(i, cols[i]) = w * (d > 0 ? delta : -delta) * inv_n;
    }
  }
  return loss * inv_n;
}

LossResult huber_loss_selected(const Matrix& pred, const std::vector<std::size_t>& cols,
                               const std::vector<double>& targets, double delta,
                               const std::vector<double>* weights) {
  LossResult r;
  r.loss = huber_loss_selected_into(pred, cols, targets, delta, weights, r.grad);
  return r;
}

}  // namespace hero::nn
