#include "nn/mlp.h"

#include <cmath>

#include "obs/phase.h"
#include "obs/metrics.h"

namespace hero::nn {

namespace {

// Hot-path throughput counters; the references are resolved once, and each
// pass costs one relaxed bool load when metrics are disabled.
void count_forward(std::size_t rows) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& calls = obs::Registry::instance().counter("nn.forward_calls");
  static obs::Counter& row_count = obs::Registry::instance().counter("nn.forward_rows");
  calls.inc();
  row_count.inc(static_cast<long long>(rows));
}

void count_backward(std::size_t rows) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& calls = obs::Registry::instance().counter("nn.backward_calls");
  static obs::Counter& row_count = obs::Registry::instance().counter("nn.backward_rows");
  calls.inc();
  row_count.inc(static_cast<long long>(rows));
}
std::unique_ptr<Layer> make_activation(Activation act, std::size_t dim) {
  switch (act) {
    case Activation::kReLU: return std::make_unique<ReLU>(dim);
    case Activation::kTanh: return std::make_unique<Tanh>(dim);
    case Activation::kIdentity: return nullptr;
  }
  return nullptr;
}
}  // namespace

Mlp::Mlp(std::size_t in, const std::vector<std::size_t>& hidden, std::size_t out,
         Rng& rng, Activation act, Activation out_act) {
  std::size_t prev = in;
  for (std::size_t h : hidden) {
    layers_.push_back(std::make_unique<Linear>(prev, h, rng));
    if (auto a = make_activation(act, h)) layers_.push_back(std::move(a));
    prev = h;
  }
  layers_.push_back(std::make_unique<Linear>(prev, out, rng));
  if (auto a = make_activation(out_act, out)) layers_.push_back(std::move(a));
}

Mlp::Mlp(const Mlp& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  acts_.clear();
  grads_.clear();
  param_cache_.clear();
  return *this;
}

const Matrix& Mlp::forward(const Matrix& x) {
  OBS_PHASE("nn_forward");
  HERO_CHECK(!layers_.empty());
  HERO_DCHECK_MSG(x.cols() == in_dim(),
                  "Mlp::forward: input dim " << x.cols() << " != " << in_dim());
  HERO_DCHECK_FINITE(x, "Mlp::forward input");
  count_forward(x.rows());
  if (acts_.size() != layers_.size() + 1) acts_.resize(layers_.size() + 1);
  acts_[0].copy_from(x);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward_into(acts_[i], acts_[i + 1]);
  }
  HERO_DCHECK_FINITE(acts_.back(), "Mlp::forward output");
  return acts_.back();
}

std::vector<double> Mlp::forward1(const std::vector<double>& x) {
  in_row_.resize(1, x.size());
  std::copy(x.begin(), x.end(), in_row_.data());
  return forward(in_row_).row_vec(0);
}

const Matrix& Mlp::backward(const Matrix& grad_out) {
  OBS_PHASE("nn_backward");
  HERO_CHECK(!layers_.empty());
  count_backward(grad_out.rows());
  HERO_CHECK_MSG(acts_.size() == layers_.size() + 1,
                 "Mlp::backward called before forward");
  HERO_CHECK(grad_out.same_shape(acts_.back()));
  HERO_DCHECK_FINITE(grad_out, "Mlp::backward grad_out");
  if (grads_.size() != acts_.size()) grads_.resize(acts_.size());
  grads_.back().copy_from(grad_out);
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward_into(acts_[i], acts_[i + 1], grads_[i + 1], grads_[i]);
  }
  HERO_DCHECK_FINITE(grads_.front(), "Mlp::backward grad_in");
  return grads_.front();
}

const Matrix& Mlp::backward_input(const Matrix& grad_out) {
  HERO_CHECK(!layers_.empty());
  HERO_CHECK_MSG(acts_.size() == layers_.size() + 1,
                 "Mlp::backward_input called before forward");
  HERO_CHECK(grad_out.same_shape(acts_.back()));
  if (grads_.size() != acts_.size()) grads_.resize(acts_.size());
  grads_.back().copy_from(grad_out);
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward_input_into(acts_[i], acts_[i + 1], grads_[i + 1], grads_[i]);
  }
  return grads_.front();
}

const std::vector<ParamRef>& Mlp::params() {
  if (param_cache_.empty()) {
    for (auto& l : layers_)
      for (auto p : l->params()) param_cache_.push_back(p);
  }
  return param_cache_;
}

void Mlp::zero_grad() {
  for (auto p : params()) p.grad->fill(0.0);
}

void Mlp::soft_update_from(Mlp& src, double tau) {
  const auto& dst_params = params();
  const auto& src_params = src.params();
  HERO_CHECK(dst_params.size() == src_params.size());
  for (std::size_t i = 0; i < dst_params.size(); ++i) {
    Matrix& d = *dst_params[i].value;
    const Matrix& s = *src_params[i].value;
    HERO_CHECK(d.same_shape(s));
    for (std::size_t k = 0; k < d.size(); ++k)
      d.data()[k] = tau * s.data()[k] + (1.0 - tau) * d.data()[k];
  }
}

void Mlp::copy_params_from(Mlp& src) { soft_update_from(src, 1.0); }

double Mlp::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  const auto& ps = params();
  for (auto p : ps)
    for (std::size_t k = 0; k < p.grad->size(); ++k)
      sq += p.grad->data()[k] * p.grad->data()[k];
  double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    double scale = max_norm / norm;
    for (auto p : ps)
      for (std::size_t k = 0; k < p.grad->size(); ++k) p.grad->data()[k] *= scale;
  }
  return norm;
}

std::size_t Mlp::in_dim() const {
  HERO_CHECK(!layers_.empty());
  return layers_.front()->in_dim();
}

std::size_t Mlp::out_dim() const {
  HERO_CHECK(!layers_.empty());
  return layers_.back()->out_dim();
}

std::vector<std::size_t> Mlp::layer_dims() const {
  std::vector<std::size_t> dims;
  if (layers_.empty()) return dims;
  dims.push_back(layers_.front()->in_dim());
  for (const auto& l : layers_) {
    const Layer& layer = *l;
    // Only parameterized (Linear) layers change the width; activations are
    // width-preserving and would just duplicate entries.
    if (!layer.params().empty()) dims.push_back(layer.out_dim());
  }
  return dims;
}

std::size_t Mlp::num_params() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    const Layer& layer = *l;
    for (auto p : layer.params()) n += p.value->size();
  }
  return n;
}

}  // namespace hero::nn
