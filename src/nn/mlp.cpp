#include "nn/mlp.h"

#include <cmath>

namespace hero::nn {

namespace {
std::unique_ptr<Layer> make_activation(Activation act, std::size_t dim) {
  switch (act) {
    case Activation::kReLU: return std::make_unique<ReLU>(dim);
    case Activation::kTanh: return std::make_unique<Tanh>(dim);
    case Activation::kIdentity: return nullptr;
  }
  return nullptr;
}
}  // namespace

Mlp::Mlp(std::size_t in, const std::vector<std::size_t>& hidden, std::size_t out,
         Rng& rng, Activation act, Activation out_act) {
  std::size_t prev = in;
  for (std::size_t h : hidden) {
    layers_.push_back(std::make_unique<Linear>(prev, h, rng));
    if (auto a = make_activation(act, h)) layers_.push_back(std::move(a));
    prev = h;
  }
  layers_.push_back(std::make_unique<Linear>(prev, out, rng));
  if (auto a = make_activation(out_act, out)) layers_.push_back(std::move(a));
}

Mlp::Mlp(const Mlp& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  return *this;
}

Matrix Mlp::forward(const Matrix& x) {
  HERO_CHECK(!layers_.empty());
  Matrix h = x;
  for (auto& l : layers_) h = l->forward(h);
  return h;
}

std::vector<double> Mlp::forward1(const std::vector<double>& x) {
  return forward(Matrix::row(x)).row_vec(0);
}

Matrix Mlp::backward(const Matrix& grad_out) {
  HERO_CHECK(!layers_.empty());
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<ParamRef> Mlp::params() {
  std::vector<ParamRef> out;
  for (auto& l : layers_)
    for (auto p : l->params()) out.push_back(p);
  return out;
}

void Mlp::zero_grad() {
  for (auto p : params()) p.grad->fill(0.0);
}

void Mlp::soft_update_from(Mlp& src, double tau) {
  auto dst_params = params();
  auto src_params = src.params();
  HERO_CHECK(dst_params.size() == src_params.size());
  for (std::size_t i = 0; i < dst_params.size(); ++i) {
    Matrix& d = *dst_params[i].value;
    const Matrix& s = *src_params[i].value;
    HERO_CHECK(d.same_shape(s));
    for (std::size_t k = 0; k < d.size(); ++k)
      d.data()[k] = tau * s.data()[k] + (1.0 - tau) * d.data()[k];
  }
}

void Mlp::copy_params_from(Mlp& src) { soft_update_from(src, 1.0); }

double Mlp::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  auto ps = params();
  for (auto p : ps)
    for (std::size_t k = 0; k < p.grad->size(); ++k)
      sq += p.grad->data()[k] * p.grad->data()[k];
  double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    double scale = max_norm / norm;
    for (auto p : ps)
      for (std::size_t k = 0; k < p.grad->size(); ++k) p.grad->data()[k] *= scale;
  }
  return norm;
}

std::size_t Mlp::in_dim() const {
  HERO_CHECK(!layers_.empty());
  return layers_.front()->in_dim();
}

std::size_t Mlp::out_dim() const {
  HERO_CHECK(!layers_.empty());
  return layers_.back()->out_dim();
}

std::size_t Mlp::num_params() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    auto& mut = const_cast<Layer&>(*l);
    for (auto p : mut.params()) n += p.value->size();
  }
  return n;
}

}  // namespace hero::nn
