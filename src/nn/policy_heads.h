// Policy parameterizations on top of Mlp.
//
//  * CategoricalPolicy — discrete actor (HERO high-level layer, COMA actor,
//    opponent-model predictor).
//  * SquashedGaussianPolicy — tanh-squashed diagonal Gaussian with the
//    reparameterization trick (SAC low-level skills). Gradients through the
//    sample and through log π are derived analytically; tests finite-
//    difference-check them.
//  * DeterministicTanhPolicy — DDPG/MADDPG actor, a = c + s·tanh(f(x)).
//
// Hot-path contract: sample_into / forward reuse caller- or policy-owned
// buffers, and backward() returns a reference into the trunk workspace —
// zero steady-state allocations end to end.
#pragma once

#include <optional>
#include <vector>

#include "nn/losses.h"
#include "nn/mlp.h"

namespace hero::nn {

// ---------------------------------------------------------------------------

class CategoricalPolicy {
 public:
  CategoricalPolicy() = default;
  CategoricalPolicy(std::size_t in, const std::vector<std::size_t>& hidden,
                    std::size_t num_actions, Rng& rng);

  std::size_t num_actions() const { return net_.out_dim(); }

  // Action probabilities for a single observation.
  std::vector<double> probs1(const std::vector<double>& obs);
  // Samples an action; `greedy` takes the argmax instead.
  std::size_t act(const std::vector<double>& obs, Rng& rng, bool greedy = false);

  Mlp& net() { return net_; }

 private:
  Mlp net_;
};

// ---------------------------------------------------------------------------

class SquashedGaussianPolicy {
 public:
  // Everything backward() needs to route gradients, captured at sample time.
  struct Sample {
    Matrix actions;   // (batch, k), already scaled into [lo, hi]
    std::vector<double> log_prob;  // per row
    // caches
    Matrix eps;      // standard-normal draws
    Matrix t;        // tanh(pre-squash)
    Matrix std;      // exp(clamped log-std)
    Matrix dls_draw; // d(clamped logstd)/d(raw logstd) per element
  };

  SquashedGaussianPolicy() = default;
  SquashedGaussianPolicy(std::size_t obs_dim, const std::vector<std::size_t>& hidden,
                         std::vector<double> lo, std::vector<double> hi, Rng& rng);

  std::size_t action_dim() const { return lo_.size(); }

  // Reparameterized sample; deterministic=true returns the squashed mean
  // (evaluation mode). The `_into` form resizes `s` in place so a reused
  // Sample allocates nothing at steady state.
  void sample_into(const Matrix& obs, Rng& rng, bool deterministic, Sample& s);
  Sample sample(const Matrix& obs, Rng& rng, bool deterministic = false);
  std::vector<double> act1(const std::vector<double>& obs, Rng& rng,
                           bool deterministic = false);

  // Batched rollout sampling: one trunk forward over all rows, one RNG
  // stream per row — row i draws its normals from rngs[i] in dimension
  // order, exactly like act1 with that stream, so per-env action draws are
  // independent of the batch composition (docs/BATCHING.md). Writes only
  // the squashed actions (no backward caches, no log-prob).
  void act_rows_into(const Matrix& obs, Rng* const* rngs, bool deterministic,
                     Matrix& actions);

  // Backprop given dL/d(action) (batch, k) and dL/d(log_prob) (batch).
  // Accumulates trunk parameter gradients; returns dL/d(obs) — a reference
  // into the trunk workspace, invalidated by the next backward.
  const Matrix& backward(const Sample& s, const Matrix& dL_da,
                         const std::vector<double>& dL_dlogp);

  Mlp& net() { return trunk_; }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

 private:
  Mlp trunk_;  // outputs [mean | raw_logstd], width 2k
  std::vector<double> lo_, hi_;
  Matrix obs_row_;    // act1 scratch
  Matrix grad_out_;   // backward scratch (batch, 2k)
};

// ---------------------------------------------------------------------------

class DeterministicTanhPolicy {
 public:
  DeterministicTanhPolicy() = default;
  DeterministicTanhPolicy(std::size_t obs_dim, const std::vector<std::size_t>& hidden,
                          std::vector<double> lo, std::vector<double> hi, Rng& rng);

  std::size_t action_dim() const { return lo_.size(); }

  // a = center + scale * tanh(f(obs)). Returns a reference to an internal
  // buffer (invalidated by the next forward on this policy).
  const Matrix& forward(const Matrix& obs);
  std::vector<double> act1(const std::vector<double>& obs);

  // Backprop dL/d(action); accumulates trunk grads, returns dL/d(obs) — a
  // reference into the trunk workspace.
  const Matrix& backward(const Matrix& dL_da);

  Mlp& net() { return trunk_; }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

 private:
  Mlp trunk_;  // ends in Tanh
  std::vector<double> lo_, hi_;
  Matrix obs_row_;  // act1 scratch
  Matrix action_;   // forward output buffer
  Matrix grad_;     // backward scratch
};

}  // namespace hero::nn
