#include "nn/serialize.h"

#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace hero::nn {

void save_params(Mlp& net, std::ostream& os) {
  auto ps = net.params();
  os << "herockpt 1 " << ps.size() << "\n";
  os << std::setprecision(17);
  for (auto p : ps) {
    os << p.value->rows() << ' ' << p.value->cols() << '\n';
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      os << p.value->data()[i] << (i + 1 == p.value->size() ? '\n' : ' ');
    }
  }
}

void load_params(Mlp& net, std::istream& is) {
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  is >> magic >> version >> count;
  if (magic != "herockpt" || version != 1) {
    throw std::runtime_error("load_params: not a herockpt v1 stream");
  }
  auto ps = net.params();
  if (count != ps.size()) {
    throw std::runtime_error("load_params: parameter count mismatch");
  }
  for (auto p : ps) {
    std::size_t r = 0, c = 0;
    is >> r >> c;
    if (r != p.value->rows() || c != p.value->cols()) {
      throw std::runtime_error("load_params: shape mismatch");
    }
    for (std::size_t i = 0; i < p.value->size(); ++i) is >> p.value->data()[i];
  }
  if (!is) throw std::runtime_error("load_params: truncated stream");
}

void save_params_file(Mlp& net, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_params_file: cannot open " + path);
  save_params(net, f);
}

void load_params_file(Mlp& net, const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_params_file: cannot open " + path);
  load_params(net, f);
}

}  // namespace hero::nn
