#include "nn/policy_heads.h"

#include <algorithm>
#include <cmath>

namespace hero::nn {

namespace {
constexpr double kLogStdMid = -1.5;   // soft-clamp centre of log σ
constexpr double kLogStdHalf = 3.5;   // log σ ∈ (-5, 2)
constexpr double kHalfLog2Pi = 0.9189385332046727;
constexpr double kSquashEps = 1e-6;   // keeps log(1 - t²) finite at |t|→1
}  // namespace

// --------------------------- CategoricalPolicy ------------------------------

CategoricalPolicy::CategoricalPolicy(std::size_t in,
                                     const std::vector<std::size_t>& hidden,
                                     std::size_t num_actions, Rng& rng)
    : net_(in, hidden, num_actions, rng) {}

std::vector<double> CategoricalPolicy::probs1(const std::vector<double>& obs) {
  // Softmax over the single logits row, in place.
  std::vector<double> p = net_.forward1(obs);
  const double mx = *std::max_element(p.begin(), p.end());
  double z = 0.0;
  for (double& v : p) {
    v = std::exp(v - mx);
    z += v;
  }
  for (double& v : p) v /= z;
  return p;
}

std::size_t CategoricalPolicy::act(const std::vector<double>& obs, Rng& rng,
                                   bool greedy) {
  std::vector<double> p = probs1(obs);
  if (greedy) {
    return static_cast<std::size_t>(
        std::max_element(p.begin(), p.end()) - p.begin());
  }
  return rng.categorical(p);
}

// ------------------------ SquashedGaussianPolicy ----------------------------

SquashedGaussianPolicy::SquashedGaussianPolicy(std::size_t obs_dim,
                                               const std::vector<std::size_t>& hidden,
                                               std::vector<double> lo,
                                               std::vector<double> hi, Rng& rng)
    : trunk_(obs_dim, hidden, 2 * lo.size(), rng),
      lo_(std::move(lo)),
      hi_(std::move(hi)) {
  HERO_CHECK(lo_.size() == hi_.size() && !lo_.empty());
  for (std::size_t k = 0; k < lo_.size(); ++k) HERO_CHECK(lo_[k] < hi_[k]);
}

void SquashedGaussianPolicy::sample_into(const Matrix& obs, Rng& rng,
                                         bool deterministic, Sample& s) {
  const std::size_t k = action_dim();
  const Matrix& out = trunk_.forward(obs);
  HERO_CHECK(out.cols() == 2 * k);
  const std::size_t n = out.rows();

  s.actions.resize(n, k);
  s.log_prob.assign(n, 0.0);
  s.eps.resize(n, k);
  s.t.resize(n, k);
  s.std.resize(n, k);
  s.dls_draw.resize(n, k);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const double mean = out(i, j);
      const double raw_ls = out(i, k + j);
      // Soft clamp: logσ = mid + half·tanh(raw); smooth gradient everywhere.
      const double tls = std::tanh(raw_ls);
      const double logstd = kLogStdMid + kLogStdHalf * tls;
      const double dls = kLogStdHalf * (1.0 - tls * tls);
      const double std = std::exp(logstd);
      const double eps = deterministic ? 0.0 : rng.normal();
      const double pre = mean + std * eps;
      const double t = std::tanh(pre);
      const double center = 0.5 * (hi_[j] + lo_[j]);
      const double scale = 0.5 * (hi_[j] - lo_[j]);
      s.actions(i, j) = center + scale * t;
      s.eps(i, j) = eps;
      s.t(i, j) = t;
      s.std(i, j) = std;
      s.dls_draw(i, j) = dls;
      // log N(pre; mean, σ) − log |da/dpre| with a = c + s·tanh(pre)
      s.log_prob[i] += -0.5 * eps * eps - logstd - kHalfLog2Pi -
                       std::log(scale * (1.0 - t * t) + kSquashEps);
    }
  }
}

void SquashedGaussianPolicy::act_rows_into(const Matrix& obs, Rng* const* rngs,
                                           bool deterministic, Matrix& actions) {
  const std::size_t k = action_dim();
  const Matrix& out = trunk_.forward(obs);
  HERO_CHECK(out.cols() == 2 * k);
  const std::size_t n = out.rows();

  actions.resize(n, k);
  // Same per-element expressions as sample_into so a batched draw with
  // stream R reproduces the serial act1 draw with stream R bitwise.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const double mean = out(i, j);
      const double raw_ls = out(i, k + j);
      const double tls = std::tanh(raw_ls);
      const double logstd = kLogStdMid + kLogStdHalf * tls;
      const double std = std::exp(logstd);
      const double eps = deterministic ? 0.0 : rngs[i]->normal();
      const double pre = mean + std * eps;
      const double t = std::tanh(pre);
      const double center = 0.5 * (hi_[j] + lo_[j]);
      const double scale = 0.5 * (hi_[j] - lo_[j]);
      actions(i, j) = center + scale * t;
    }
  }
}

SquashedGaussianPolicy::Sample SquashedGaussianPolicy::sample(const Matrix& obs,
                                                              Rng& rng,
                                                              bool deterministic) {
  Sample s;
  sample_into(obs, rng, deterministic, s);
  return s;
}

std::vector<double> SquashedGaussianPolicy::act1(const std::vector<double>& obs,
                                                 Rng& rng, bool deterministic) {
  obs_row_.resize(1, obs.size());
  std::copy(obs.begin(), obs.end(), obs_row_.data());
  return sample(obs_row_, rng, deterministic).actions.row_vec(0);
}

const Matrix& SquashedGaussianPolicy::backward(const Sample& s, const Matrix& dL_da,
                                               const std::vector<double>& dL_dlogp) {
  const std::size_t k = action_dim();
  const std::size_t n = s.actions.rows();
  HERO_CHECK(dL_da.rows() == n && dL_da.cols() == k && dL_dlogp.size() == n);

  grad_out_.resize(n, 2 * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const double t = s.t(i, j);
      const double std = s.std(i, j);
      const double eps = s.eps(i, j);
      const double scale = 0.5 * (hi_[j] - lo_[j]);
      const double sech2 = 1.0 - t * t;          // d tanh / d pre
      const double da_dpre = scale * sech2;      // d action / d pre-squash
      // d log π / d pre (holding eps fixed): from −log(scale·(1−t²)+ε)
      const double dlogp_dpre = 2.0 * t * scale * sech2 / (scale * sech2 + kSquashEps);
      const double g_pre = dL_da(i, j) * da_dpre + dL_dlogp[i] * dlogp_dpre;
      // mean path: dpre/dmean = 1
      grad_out_(i, j) = g_pre;
      // logstd path: dpre/dlogσ = σ·eps; plus the explicit −logσ term of logπ,
      // both routed through the soft-clamp derivative.
      const double g_logstd = g_pre * std * eps + dL_dlogp[i] * (-1.0);
      grad_out_(i, k + j) = g_logstd * s.dls_draw(i, j);
    }
  }
  return trunk_.backward(grad_out_);
}

// ------------------------ DeterministicTanhPolicy ---------------------------

DeterministicTanhPolicy::DeterministicTanhPolicy(
    std::size_t obs_dim, const std::vector<std::size_t>& hidden,
    std::vector<double> lo, std::vector<double> hi, Rng& rng)
    : trunk_(obs_dim, hidden, lo.size(), rng, Activation::kReLU, Activation::kTanh),
      lo_(std::move(lo)),
      hi_(std::move(hi)) {
  HERO_CHECK(lo_.size() == hi_.size() && !lo_.empty());
}

const Matrix& DeterministicTanhPolicy::forward(const Matrix& obs) {
  const Matrix& t = trunk_.forward(obs);
  action_.resize(t.rows(), t.cols());
  for (std::size_t i = 0; i < t.rows(); ++i) {
    for (std::size_t j = 0; j < t.cols(); ++j) {
      const double center = 0.5 * (hi_[j] + lo_[j]);
      const double scale = 0.5 * (hi_[j] - lo_[j]);
      action_(i, j) = center + scale * t(i, j);
    }
  }
  return action_;
}

std::vector<double> DeterministicTanhPolicy::act1(const std::vector<double>& obs) {
  obs_row_.resize(1, obs.size());
  std::copy(obs.begin(), obs.end(), obs_row_.data());
  return forward(obs_row_).row_vec(0);
}

const Matrix& DeterministicTanhPolicy::backward(const Matrix& dL_da) {
  grad_.copy_from(dL_da);
  for (std::size_t i = 0; i < grad_.rows(); ++i) {
    for (std::size_t j = 0; j < grad_.cols(); ++j) {
      grad_(i, j) *= 0.5 * (hi_[j] - lo_[j]);
    }
  }
  return trunk_.backward(grad_);
}

}  // namespace hero::nn
