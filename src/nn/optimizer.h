// First-order optimizers over a flat list of ParamRefs.
//
// The optimizer binds to the parameter list once; state (Adam moments) is
// kept positionally, so the network's parameter order must not change after
// construction — which holds for all models in this library.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace hero::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update using the currently-accumulated gradients and then
  // zeroes them.
  virtual void step() = 0;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<ParamRef> params, double lr, double momentum = 0.0);
  void step() override;

 private:
  std::vector<ParamRef> params_;
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  std::vector<ParamRef> params_;
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Matrix> m_, v_;
};

}  // namespace hero::nn
