// Checkpointing: saves/loads the flat parameter list of a network to a
// simple self-describing text format (shape header + values). Used to carry
// trained low-level skills into the high-level training stage and to deploy
// simulation policies onto the "real-world" (domain-shifted) evaluation.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/mlp.h"

namespace hero::nn {

void save_params(Mlp& net, std::ostream& os);
void load_params(Mlp& net, std::istream& is);

void save_params_file(Mlp& net, const std::string& path);
void load_params_file(Mlp& net, const std::string& path);

}  // namespace hero::nn
