// Dense row-major matrix of doubles — the single tensor type of the NN
// library. Shapes in this codebase are tiny (hidden width 32, batch ≤ 1024),
// so clarity wins over BLAS: all kernels are straightforward loops.
//
// Convention used throughout: activations are (batch, features); a Linear
// layer stores its weight as (in, out) so that forward is `x * W + b`.
//
// Two kernel families coexist:
//   * value-returning ops (matmul, transpose, hcat, ...) — convenient, they
//     allocate their result;
//   * `*_into` ops — the hot path. They write into a caller-owned output
//     matrix, resizing it without releasing capacity, so steady-state calls
//     with stable shapes perform zero heap allocations. The transposed
//     variants (`matmul_transA_into`, `matmul_transB_into`) contract against
//     A or B transposed *without materializing the transpose*, which is what
//     makes Linear::backward allocation- and copy-free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace hero::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // 1×n row vector from a list / std::vector.
  static Matrix row(const std::vector<double>& v);
  static Matrix row(std::initializer_list<double> v) {
    return row(std::vector<double>(v));
  }

  // Stacks equal-length rows into a (rows.size(), n) matrix.
  static Matrix stack_rows(const std::vector<std::vector<double>>& rows);

  // Xavier/Glorot-uniform initialization for a (rows, cols) weight.
  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Reshapes to (rows, cols). Existing element values are NOT preserved
  // across a reshape; capacity is never released, so repeated resizes to the
  // same (or smaller) shape are allocation-free.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  // Resizes to src's shape and copies its contents (no allocation once
  // capacity suffices).
  void copy_from(const Matrix& src) {
    if (this == &src) return;
    resize(src.rows_, src.cols_);
    std::copy(src.data_.begin(), src.data_.end(), data_.begin());
  }

  double& at(std::size_t r, std::size_t c) {
    HERO_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    HERO_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  // Unchecked fast path for inner loops.
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  // Extracts row r as a std::vector (copies).
  std::vector<double> row_vec(std::size_t r) const;
  // Overwrites row r.
  void set_row(std::size_t r, const std::vector<double>& v);

  // this (m×k) * other (k×n) -> (m×n).
  Matrix matmul(const Matrix& other) const;
  Matrix transpose() const;

  // ----- fused zero-allocation kernels ------------------------------------
  // All `*_into` kernels resize `out` to the result shape; `out` must not
  // alias either operand. With accumulate=true the product is added to the
  // existing contents of `out` (which must already have the result shape).

  // out (m×n) = this (m×k) · other (k×n).
  void matmul_into(const Matrix& other, Matrix& out, bool accumulate = false) const;
  // out (k×n) = thisᵀ · other, with this (m×k), other (m×n). Transpose-free:
  // reads A row-major, accumulating rank-1 updates — the Linear weight
  // gradient dW += xᵀ·dy without materializing xᵀ.
  void matmul_transA_into(const Matrix& other, Matrix& out,
                          bool accumulate = false) const;
  // out (m×n) = this · otherᵀ, with this (m×k), other (n×k). Row-dot-row —
  // the Linear input gradient dx = dy·Wᵀ without materializing Wᵀ.
  void matmul_transB_into(const Matrix& other, Matrix& out,
                          bool accumulate = false) const;
  // Fused affine: out = this · w + bias, bias a (1×n) row broadcast over the
  // batch. One pass, no intermediate.
  void affine_into(const Matrix& w, const Matrix& bias, Matrix& out) const;

  // out = [this | other] (matching row counts).
  void hcat_into(const Matrix& other, Matrix& out) const;
  // out = columns [c0, c1) of this.
  void col_slice_into(std::size_t c0, std::size_t c1, Matrix& out,
                      bool accumulate = false) const;

  // Horizontal concatenation: [this | other], matching row counts.
  Matrix hcat(const Matrix& other) const;
  // Columns [c0, c1) as a new matrix.
  Matrix col_slice(std::size_t c0, std::size_t c1) const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(double s) const;

  // Elementwise product (Hadamard).
  Matrix hadamard(const Matrix& o) const;

  // Applies f to every element in place; returns *this. Templated so the
  // compiler inlines the functor — no std::function dispatch per element.
  template <class F>
  Matrix& apply(F&& f) {
    for (auto& v : data_) v = f(v);
    return *this;
  }
  // Applied copy.
  template <class F>
  Matrix map(F&& f) const {
    Matrix r = *this;
    r.apply(std::forward<F>(f));
    return r;
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  double sum() const;
  double abs_max() const;

  bool same_shape(const Matrix& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  // ----- finite guards (docs/CORRECTNESS.md) ------------------------------
  // True iff every element is neither NaN nor infinite.
  bool all_finite() const;
  // Throws std::logic_error naming `what`, the offending (row, col) and its
  // value if any element is non-finite. Call sites on hot paths wrap this in
  // HERO_DCHECK_FINITE so release builds pay nothing.
  void check_finite(const char* what) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hero::nn

// Debug-only NaN/inf sweep of a whole matrix — the workhorse of the finite-
// guard layer. Expands to nothing unless HERO_DEBUG_CHECKS is on.
#if HERO_DEBUG_CHECKS_ENABLED
#define HERO_DCHECK_FINITE(m, what) (m).check_finite(what)
#else
#define HERO_DCHECK_FINITE(m, what) \
  do {                              \
  } while (0)
#endif
