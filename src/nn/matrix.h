// Dense row-major matrix of doubles — the single tensor type of the NN
// library. Shapes in this codebase are tiny (hidden width 32, batch ≤ 1024),
// so clarity wins over BLAS: all kernels are straightforward loops.
//
// Convention used throughout: activations are (batch, features); a Linear
// layer stores its weight as (in, out) so that forward is `x * W + b`.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace hero::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // 1×n row vector from a list / std::vector.
  static Matrix row(const std::vector<double>& v);
  static Matrix row(std::initializer_list<double> v) {
    return row(std::vector<double>(v));
  }

  // Stacks equal-length rows into a (rows.size(), n) matrix.
  static Matrix stack_rows(const std::vector<std::vector<double>>& rows);

  // Xavier/Glorot-uniform initialization for a (rows, cols) weight.
  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) {
    HERO_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    HERO_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  // Unchecked fast path for inner loops.
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Extracts row r as a std::vector (copies).
  std::vector<double> row_vec(std::size_t r) const;
  // Overwrites row r.
  void set_row(std::size_t r, const std::vector<double>& v);

  // this (m×k) * other (k×n) -> (m×n).
  Matrix matmul(const Matrix& other) const;
  Matrix transpose() const;

  // Horizontal concatenation: [this | other], matching row counts.
  Matrix hcat(const Matrix& other) const;
  // Columns [c0, c1) as a new matrix.
  Matrix col_slice(std::size_t c0, std::size_t c1) const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(double s) const;

  // Elementwise product (Hadamard).
  Matrix hadamard(const Matrix& o) const;

  // Applies f to every element in place; returns *this.
  Matrix& apply(const std::function<double(double)>& f);
  // Applied copy.
  Matrix map(const std::function<double(double)>& f) const;

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  double sum() const;
  double abs_max() const;

  bool same_shape(const Matrix& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hero::nn
