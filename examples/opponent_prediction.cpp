// opponent_prediction: the opponent-modeling mechanism in isolation.
//
// A scripted "opponent" picks options from a state-dependent rule; the
// OpponentModel must learn to predict them from the observer's own
// high-level observation — the same machinery that stabilizes HERO's
// distributed Q-learning (paper Sec. III-C, Fig. 10).
//
// Run:  ./opponent_prediction [--steps 4000] [--seed S]
#include <cstdio>

#include "common/flags.h"
#include "common/stats.h"
#include "hero/opponent_model.h"
#include "sim/scenario.h"

namespace {

// A deterministic opponent policy the model has to uncover: change lane when
// the forward beam is short, slow down when mid-range, else accelerate.
hero::core::Option scripted_option(const std::vector<double>& obs) {
  const double front = obs[0];  // beam 0 points straight ahead
  if (front < 0.2) return hero::core::Option::kLaneChange;
  if (front < 0.5) return hero::core::Option::kSlowDown;
  return hero::core::Option::kAccelerate;
}

}  // namespace

int main(int argc, char** argv) {
  hero::Flags flags(argc, argv);
  const int steps = flags.get_int("steps", 4000);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  flags.check_unknown();

  hero::Rng rng(seed);
  auto scenario = hero::sim::cooperative_lane_change();
  hero::sim::LaneWorld world(scenario.config);

  hero::core::OpponentModelConfig cfg;
  hero::core::OpponentModel model(world.high_level_obs_dim(), /*num_opponents=*/1,
                                  cfg, rng);

  hero::MovingAverage loss_avg(100);
  hero::MovingAverage acc_avg(100);
  for (int t = 0; t < steps; ++t) {
    world.reset(rng);  // fresh random placements each sample
    const auto obs = world.high_level_obs(0);
    const auto label = scripted_option(obs);

    // How often does the current model already predict the label?
    auto p = model.predict(0, obs);
    const auto argmax =
        std::max_element(p.begin(), p.end()) - p.begin();
    acc_avg.add(argmax == static_cast<long>(label) ? 1.0 : 0.0);

    model.observe(0, obs, label);
    const double loss = model.update(0, rng);
    if (loss > 0.0) loss_avg.add(loss);

    if ((t + 1) % 500 == 0) {
      std::printf("step %5d  CE loss (100-avg) %.4f  top-1 accuracy %.2f\n", t + 1,
                  loss_avg.value(), acc_avg.value());
    }
  }
  std::printf("final accuracy %.2f (chance = 0.25)\n", acc_avg.value());
  return acc_avg.value() > 0.5 ? 0 : 1;
}
