// Quickstart: the complete HERO pipeline in one file.
//
//   1. Build the cooperative lane-change scenario (Fig. 6 / Fig. 9).
//   2. Stage 1 — train the low-level skills against intrinsic rewards.
//   3. Stage 2 — train the high-level cooperative policy with opponent
//      modeling.
//   4. Evaluate greedily and print the paper's four metrics.
//
// Run:  ./quickstart [--skill-episodes N] [--episodes N] [--seed S]
//                    [--num-workers N] [--num-envs E]
//
// `--num-workers N` collects stage-2 episodes on N worker threads (and
// trains the stage-1 skills on the same pool). Results are keyed to
// (seed, num_envs) and invariant to the worker count; the default of 1
// keeps the single-threaded code path (docs/PARALLELISM.md).
#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "common/logging.h"
#include "hero/hero_trainer.h"
#include "rl/evaluation.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  hero::Flags flags(argc, argv);
  const int skill_episodes = flags.get_int("skill-episodes", 400);
  const int episodes = flags.get_int("episodes", 400);
  const int eval_episodes = flags.get_int("eval-episodes", 50);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  const int num_workers = flags.get_int("num-workers", 1);
  const int num_envs = flags.get_int("num-envs", 0);
  flags.check_unknown();

  hero::Rng rng(seed);
  hero::sim::Scenario scenario = hero::sim::cooperative_lane_change();
  hero::core::HeroConfig cfg;
  cfg.num_workers = std::max(1, num_workers);
  cfg.num_envs = std::max(0, num_envs);

  std::printf("== Stage 1: low-level skills (%d episodes each) ==\n", skill_episodes);
  hero::core::HeroTrainer trainer(scenario, cfg, rng);
  trainer.train_skills(skill_episodes, rng,
                       [&](hero::core::Option o, int ep, double r) {
                         if ((ep + 1) % 100 == 0) {
                           std::printf("  %-11s ep %4d  reward %8.2f\n",
                                       hero::core::option_name(o), ep + 1, r);
                         }
                       });

  std::printf("== Stage 2: high-level cooperation (%d episodes) ==\n", episodes);
  double window_reward = 0.0;
  int window_coll = 0, window_succ = 0, window_n = 0;
  trainer.train(episodes, rng, [&](int ep, const hero::rl::EpisodeStats& s) {
    window_reward += s.team_reward;
    window_coll += s.collision ? 1 : 0;
    window_succ += s.success ? 1 : 0;
    ++window_n;
    if ((ep + 1) % 50 == 0) {
      std::printf("  ep %4d  reward %7.2f  collision %.2f  success %.2f\n", ep + 1,
                  window_reward / window_n,
                  static_cast<double>(window_coll) / window_n,
                  static_cast<double>(window_succ) / window_n);
      window_reward = 0.0;
      window_coll = window_succ = window_n = 0;
    }
  });

  std::printf("== Greedy evaluation (%d episodes) ==\n", eval_episodes);
  hero::sim::LaneWorld eval_world(scenario.config);
  auto summary = hero::rl::evaluate(eval_world, trainer, rng, eval_episodes,
                                    scenario.merger_index, scenario.merger_target_lane);
  std::printf("  mean reward     %8.3f\n", summary.mean_reward);
  std::printf("  collision rate  %8.3f\n", summary.collision_rate);
  std::printf("  success rate    %8.3f\n", summary.success_rate);
  std::printf("  mean speed      %8.4f m/s\n", summary.mean_speed);
  return 0;
}
