// skill_gym: train a single low-level skill with SAC against its intrinsic
// reward (stage 1 in isolation) and watch the learning curve — the
// single-skill version of the paper's Fig. 8 experiment.
//
// Run:  ./skill_gym --skill lane_change --episodes 1500 [--seed S]
//       (--skill ∈ {slow_down, accelerate, lane_change})
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/stats.h"
#include "hero/skills.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  hero::Flags flags(argc, argv);
  const std::string skill_name = flags.get_string("skill", "lane_change");
  const int episodes = flags.get_int("episodes", 1000);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  flags.check_unknown();

  hero::core::Option option;
  if (skill_name == "slow_down") {
    option = hero::core::Option::kSlowDown;
  } else if (skill_name == "accelerate") {
    option = hero::core::Option::kAccelerate;
  } else if (skill_name == "lane_change") {
    option = hero::core::Option::kLaneChange;
  } else {
    std::fprintf(stderr, "unknown --skill %s\n", skill_name.c_str());
    return 1;
  }

  hero::Rng rng(seed);
  hero::sim::LaneWorld world(hero::sim::skill_training_world());
  hero::core::SkillConfig cfg;
  hero::core::SkillBank bank(world.low_level_obs_dim(), cfg, rng);

  std::printf("training skill '%s' for %d episodes\n",
              hero::core::option_name(option), episodes);
  hero::MovingAverage avg(50);
  bank.train_skill(option, world, episodes, rng, [&](int ep, double r) {
    const double m = avg.add(r);
    if ((ep + 1) % 100 == 0) {
      std::printf("  ep %5d  reward %8.2f  (50-ep avg %8.2f)\n", ep + 1, r, m);
    }
  });
  std::printf("final 50-episode average intrinsic reward: %.2f\n", avg.value());
  return 0;
}
