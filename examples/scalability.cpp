// scalability: HERO's distributed design has no centralized critic, so cost
// and learning should scale gracefully with the number of vehicles. This
// example sweeps the learner count, trains a short HERO run per setting and
// reports wall-clock, final training metrics and the per-agent network
// sizes — the practical argument Sec. I of the paper makes against
// centralized critics.
//
// Run:  ./scalability [--learners 2,3,4,5] [--episodes 300] [--seed 1]
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "common/table.h"
#include "hero/hero_trainer.h"
#include "sim/scenario.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string learners_arg = flags.get_string("learners", "2,3,4,5");
  const int episodes = flags.get_int("episodes", 300);
  const int skill_episodes = flags.get_int("skill-episodes", 200);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  flags.check_unknown();

  std::vector<int> counts;
  std::stringstream ss(learners_arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) counts.push_back(std::stoi(tok));

  // Skills are agent-independent: train once on the single-vehicle world and
  // reuse the bank across team sizes (exactly HERO's stage-1/stage-2 split).
  TablePrinter table({"learners", "train s", "s/episode", "reward", "collision",
                      "high-level params/agent"});

  for (int n : counts) {
    Rng rng(seed);
    auto scenario = sim::cooperative_lane_change(n);
    core::HeroConfig cfg;
    core::HeroTrainer trainer(scenario, cfg, rng);
    trainer.train_skills(skill_episodes, rng);

    const auto t0 = std::chrono::steady_clock::now();
    double reward = 0, collision = 0;
    int counted = 0;
    trainer.train(episodes, rng, [&](int ep, const rl::EpisodeStats& s) {
      if (ep >= episodes - 100) {
        reward += s.team_reward;
        collision += s.collision ? 1.0 : 0.0;
        ++counted;
      }
    });
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();

    // The per-agent model grows only with the (fixed) option count and the
    // number of *opponents'* distributions — linear, never exponential.
    const std::size_t params = trainer.agent(0).high_level().critic().num_params() +
                               trainer.agent(0).high_level().actor().net().num_params();

    table.add_row({std::to_string(n), TablePrinter::num(secs, 1),
                   TablePrinter::num(secs / episodes, 3),
                   TablePrinter::num(reward / counted, 2),
                   TablePrinter::num(collision / counted, 2),
                   std::to_string(params)});
  }
  table.print(std::cout);
  return 0;
}
