// overtaking: HERO on a second, harder workload — the overtaking gauntlet
// (slow traffic blocking BOTH lanes at staggered positions). Demonstrates
// that the hierarchical decomposition transfers across scenarios: the same
// skills trained once in the single-vehicle world drive a new cooperative
// task; only the high-level layer re-trains.
//
// Run:  ./overtaking [--episodes 800] [--skill-episodes 300] [--seed 3]
#include <cstdio>

#include "common/flags.h"
#include "common/stats.h"
#include "hero/hero_trainer.h"
#include "rl/evaluation.h"
#include "sim/scenario.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int episodes = flags.get_int("episodes", 800);
  const int skill_episodes = flags.get_int("skill-episodes", 300);
  const int eval_episodes = flags.get_int("eval-episodes", 40);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 3));
  flags.check_unknown();

  Rng rng(seed);
  auto scenario = sim::overtaking_gauntlet(2);
  core::HeroConfig cfg;
  core::HeroTrainer trainer(scenario, cfg, rng);

  std::printf("stage 1: skills (%d episodes each)...\n", skill_episodes);
  trainer.train_skills(skill_episodes, rng);

  std::printf("stage 2: overtaking gauntlet (%d episodes)...\n", episodes);
  MovingAverage rew(100), col(100);
  trainer.train(episodes, rng, [&](int ep, const rl::EpisodeStats& s) {
    rew.add(s.team_reward);
    col.add(s.collision ? 1.0 : 0.0);
    if ((ep + 1) % std::max(1, episodes / 8) == 0) {
      std::printf("  ep %5d  reward %7.2f  collision %.2f\n", ep + 1, rew.value(),
                  col.value());
    }
  });

  sim::LaneWorld eval_world(scenario.config);
  auto summary = rl::evaluate(eval_world, trainer, rng, eval_episodes,
                              scenario.merger_index, scenario.merger_target_lane);
  std::printf("greedy evaluation (%d episodes):\n", eval_episodes);
  std::printf("  mean reward     %8.3f\n", summary.mean_reward);
  std::printf("  collision rate  %8.3f\n", summary.collision_rate);
  std::printf("  first-pass rate %8.3f\n", summary.success_rate);
  std::printf("  mean speed      %8.4f m/s\n", summary.mean_speed);
  return 0;
}
