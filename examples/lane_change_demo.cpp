// lane_change_demo: renders cooperative lane-change episodes as ASCII
// frames. Drives the scenario either with a hand-written rule controller
// (default, instant) or with a freshly-trained HERO policy (--train).
//
// Run:  ./lane_change_demo [--train] [--episodes 2] [--seed S]
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "hero/hero_trainer.h"
#include "rl/controller.h"
#include "sim/scenario.h"
#include "viz/trajectory.h"

namespace {

using hero::sim::LaneWorld;
using hero::sim::TwistCmd;

// A transparent scripted policy: the blocked vehicle changes lane when the
// gap ahead closes; vehicles in the target lane yield (slow) while anyone is
// mid-manoeuvre. Useful as a readable reference behaviour.
class RuleController : public hero::rl::Controller {
 public:
  explicit RuleController(int merger_index) : merger_(merger_index) {}

  void begin_episode(const LaneWorld& world) override {
    (void)world;
    merging_ = false;  // the "option" state: commit to a started lane change
  }

  std::vector<TwistCmd> act(const LaneWorld& world, hero::Rng& rng,
                            bool explore) override {
    (void)rng;
    (void)explore;
    const auto& mst = world.vehicle(merger_).state();
    const double target_c = world.track().lane_center(1);
    // Commit/terminate the merge manoeuvre (mirrors an option's β_o): start
    // when blocked, finish only when settled in the target lane.
    const auto merger_obs = world.high_level_obs(merger_);
    if (!merging_ && world.lane(merger_) == 0 && merger_obs[0] < 0.45) {
      merging_ = true;
    }
    if (merging_ && std::abs(mst.y - target_c) < 0.05 &&
        std::abs(mst.heading) < 0.15) {
      merging_ = false;
    }

    std::vector<TwistCmd> cmds;
    for (int k = 0; k < world.num_learners(); ++k) {
      const int vi = world.learners()[static_cast<std::size_t>(k)];
      const auto obs = world.high_level_obs(vi);
      const double front_gap = obs[0];  // beam 0: straight ahead, normalized
      if (vi == merger_) {
        const int goal_lane = merging_ ? 1 : world.lane(vi);
        const double y_err = world.track().lane_center(goal_lane) -
                             world.vehicle(vi).state().y;
        const double theta_des = std::clamp(2.5 * y_err, -0.6, 0.6);
        const double w_cap = merging_ ? 0.25 : 0.1;
        const double w = std::clamp(
            (theta_des - world.vehicle(vi).state().heading) / world.config().dt,
            -w_cap, w_cap);
        const double v = merging_ ? 0.14 : (front_gap < 0.2 ? 0.05 : 0.12);
        cmds.push_back({v, w});
      } else {
        // Yield while the merger is manoeuvring; never tailgate.
        double v = merging_ ? 0.06 : 0.12;
        if (front_gap < 0.15) v = 0.05;
        cmds.push_back({v, 0.0});
      }
    }
    return cmds;
  }

 private:
  int merger_;
  bool merging_ = false;
};

void render(const LaneWorld& world) {
  constexpr int kCols = 72;
  const double c = world.track().circumference();
  std::vector<std::string> rows(2, std::string(kCols, '.'));
  for (int i = 0; i < world.num_vehicles(); ++i) {
    const auto& st = world.vehicle(i).state();
    const int col =
        std::min(kCols - 1, static_cast<int>(st.x / c * kCols));
    const int lane = world.lane(i);
    rows[static_cast<std::size_t>(1 - lane)][static_cast<std::size_t>(col)] =
        static_cast<char>('1' + i);
  }
  std::printf("t=%2d  lane1 |%s|\n", world.steps(), rows[0].c_str());
  std::printf("      lane0 |%s|\n", rows[1].c_str());
}

}  // namespace

int main(int argc, char** argv) {
  hero::Flags flags(argc, argv);
  const bool train = flags.get_bool("train", false);
  const int episodes = flags.get_int("episodes", 2);
  const int train_episodes = flags.get_int("train-episodes", 300);
  const int skill_episodes = flags.get_int("skill-episodes", 300);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 7));
  const std::string svg = flags.get_string("svg", "");
  flags.check_unknown();

  hero::Rng rng(seed);
  auto scenario = hero::sim::cooperative_lane_change();

  std::unique_ptr<hero::rl::Controller> controller;
  std::unique_ptr<hero::core::HeroTrainer> trainer;
  if (train) {
    std::printf("training HERO (%d skill episodes/skill, %d cooperative episodes)...\n",
                skill_episodes, train_episodes);
    trainer = std::make_unique<hero::core::HeroTrainer>(scenario,
                                                        hero::core::HeroConfig{}, rng);
    trainer->train_skills(skill_episodes, rng);
    trainer->train(train_episodes, rng);
    controller = std::move(trainer);
  } else {
    controller = std::make_unique<RuleController>(scenario.merger_index);
  }

  hero::sim::LaneWorld world(scenario.config);
  for (int ep = 0; ep < episodes; ++ep) {
    std::printf("--- episode %d ---\n", ep + 1);
    world.reset(rng);
    controller->begin_episode(world);
    hero::viz::TrajectoryRecorder rec;
    rec.start(world);
    render(world);
    bool collided = false;
    while (!world.done()) {
      auto cmds = controller->act(world, rng, /*explore=*/false);
      auto result = world.step(cmds, rng);
      collided = collided || result.collision;
      rec.record(world, result.collision);
      render(world);
    }
    const bool success = !collided &&
                         world.lane(scenario.merger_index) == scenario.merger_target_lane;
    std::printf("episode %d: %s (merger lane %d%s)\n", ep + 1,
                success ? "SUCCESS" : "no merge", world.lane(scenario.merger_index),
                collided ? ", collision!" : "");
    if (!svg.empty() && ep == 0) {
      rec.render_svg(svg, world.track());
      std::printf("trajectory rendered to %s\n", svg.c_str());
    }
  }
  return 0;
}
