// Table II — "real-world" evaluation: policies trained in the clean
// simulator are deployed on the domain-shifted world (sensor noise,
// actuation noise + latency, per-episode dynamics mismatch — the sim-to-real
// gap of the paper's physical testbed) for 20 episodes per method with
// random initial positions, reporting collision rate, lane-merge success
// rate and mean speed.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/flags.h"
#include "common/table.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const int episodes = flags.get_int("episodes", quick ? 200 : 800);
  const int skill_episodes = flags.get_int("skill-episodes", quick ? 100 : 300);
  const int eval_episodes = flags.get_int("eval-episodes", 20);  // paper: 20
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  flags.check_unknown();

  std::printf(
      "=== Table II reproduction: domain-shifted (real-world) evaluation, %d "
      "episodes/method ===\n",
      eval_episodes);
  auto scenario = sim::cooperative_lane_change();
  const auto shifted_cfg = sim::with_real_world_shift(scenario.config);

  TablePrinter table({"Method", "Collision Rate", "Successful Rate", "Mean Speed"});
  Rng eval_rng(seed + 2000);
  for (const auto& m : bench::all_methods()) {
    bench::TrainOptions opts;
    opts.episodes = episodes;
    opts.skill_episodes = skill_episodes;
    opts.seed = seed;
    auto run = bench::train_method(m, scenario, opts);

    sim::LaneWorld real_world(shifted_cfg);
    auto summary = rl::evaluate(real_world, *run.controller, eval_rng, eval_episodes,
                                scenario.merger_index, scenario.merger_target_lane);
    table.add_row({m, TablePrinter::num(summary.collision_rate, 2),
                   TablePrinter::num(summary.success_rate, 2),
                   TablePrinter::num(summary.mean_speed, 5)});
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\npaper Table II (for shape comparison):\n"
      "  COMA            collision 0.35  success 0.65  speed 0.06344\n"
      "  Independent DQN collision 1.00  success 0.00  speed 0.05395\n"
      "  MAAC            collision 0.25  success 0.65  speed 0.06250\n"
      "  MADDPG          collision 0.95  success 0.50  speed 0.07029\n"
      "  Ours (HERO)     collision 0.20  success 0.80  speed 0.07200\n");
  return 0;
}
