// Fig. 7 — learning curves of all five methods on cooperative lane change:
// (a) mean episode reward, (b) collision rate, (c) lane-change success rate.
//
// Prints a downsampled, moving-average-smoothed series per method per metric
// and writes the raw per-episode data to fig7_<metric>.csv.
//
// Defaults are single-core friendly; --episodes raises fidelity toward the
// paper's 14k. Pass --methods dqn,hero to restrict; --ablate-opponent adds
// the HERO-without-opponent-model ablation (DESIGN.md §5.1).
#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/stats.h"
#include "viz/plot.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const int episodes = flags.get_int("episodes", quick ? 200 : 1200);
  const int skill_episodes = flags.get_int("skill-episodes", quick ? 100 : 300);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  const int seeds = flags.get_int("seeds", 1);  // independent runs per method
  const int window = flags.get_int("window", 50);
  const int points = flags.get_int("points", 16);
  const bool ablate = flags.get_bool("ablate-opponent", false);
  std::string methods_arg = flags.get_string("methods", "");
  flags.check_unknown();

  std::vector<std::string> methods;
  if (methods_arg.empty()) {
    methods = bench::all_methods();
  } else {
    std::stringstream ss(methods_arg);
    std::string tok;
    while (std::getline(ss, tok, ',')) methods.push_back(tok);
  }
  if (ablate) methods.push_back("hero_noopp");

  std::printf(
      "=== Fig. 7 reproduction: learning curves (%d episodes/method, %d seed%s) "
      "===\n",
      episodes, seeds, seeds > 1 ? "s" : "");
  auto scenario = sim::cooperative_lane_change();

  // One MethodRun per method; with --seeds N the per-episode stats are the
  // element-wise mean over N independent runs.
  std::vector<bench::MethodRun> runs;
  for (const auto& m : methods) {
    std::vector<bench::MethodRun> per_seed;
    for (int s = 0; s < seeds; ++s) {
      bench::TrainOptions opts;
      opts.episodes = episodes;
      opts.skill_episodes = skill_episodes;
      opts.seed = seed + static_cast<unsigned>(s);
      per_seed.push_back(bench::train_method(m, scenario, opts));
    }
    bench::MethodRun merged;
    merged.name = m;
    merged.train_stats.resize(per_seed[0].train_stats.size());
    for (std::size_t ep = 0; ep < merged.train_stats.size(); ++ep) {
      rl::EpisodeStats avg;
      double coll = 0, succ = 0;
      for (const auto& r : per_seed) {
        avg.team_reward += r.train_stats[ep].team_reward;
        coll += r.train_stats[ep].collision ? 1.0 : 0.0;
        succ += r.train_stats[ep].success ? 1.0 : 0.0;
        avg.mean_speed += r.train_stats[ep].mean_speed;
      }
      const double n = static_cast<double>(per_seed.size());
      avg.team_reward /= n;
      avg.mean_speed /= n;
      // Majority vote keeps the bool fields meaningful for the series
      // extractors (for seeds == 1 this is the raw flag).
      avg.collision = coll * 2.0 > n;
      avg.success = succ * 2.0 > n;
      merged.train_stats[ep] = avg;
    }
    merged.controller = std::move(per_seed.back().controller);
    runs.push_back(std::move(merged));
  }

  struct Metric {
    const char* title;
    const char* csv;
    std::vector<double> (*extract)(const std::vector<rl::EpisodeStats>&);
  };
  const Metric metrics[] = {
      {"Fig. 7(a) mean episode reward", "fig7_reward.csv", bench::reward_series},
      {"Fig. 7(b) collision rate", "fig7_collision.csv", bench::collision_series},
      {"Fig. 7(c) lane-change success rate", "fig7_success.csv",
       bench::success_series},
  };

  for (const auto& metric : metrics) {
    // SVG companion plot next to the CSV.
    {
      std::vector<viz::Series> plot_data;
      for (const auto& r : runs) {
        plot_data.push_back({r.name, bench::smooth(metric.extract(r.train_stats),
                                                   static_cast<std::size_t>(window))});
      }
      viz::PlotOptions popts;
      popts.title = metric.title;
      popts.y_label = metric.title;
      std::string svg_path = metric.csv;
      svg_path.replace(svg_path.find(".csv"), 4, ".svg");
      viz::plot_series(plot_data, popts, svg_path);
    }
    std::printf("\n--- %s (window-%d moving average) ---\n", metric.title, window);
    std::vector<std::string> cols = {"episode"};
    for (const auto& r : runs) cols.push_back(r.name);
    CsvWriter csv(metric.csv, cols);

    std::vector<std::vector<double>> smoothed;
    for (const auto& r : runs) {
      smoothed.push_back(
          bench::smooth(metric.extract(r.train_stats), static_cast<std::size_t>(window)));
      bench::print_series("  [" + r.name + "]", smoothed.back(),
                          static_cast<std::size_t>(points));
    }
    for (std::size_t ep = 0; ep < smoothed[0].size(); ++ep) {
      std::vector<double> row = {static_cast<double>(ep + 1)};
      for (const auto& s : smoothed) row.push_back(s[ep]);
      csv.row(row);
    }
    std::printf("  (raw series -> %s)\n", metric.csv);
  }

  // Final-window summary: the ordering the paper reports.
  std::printf("\n--- final %d-episode window summary ---\n", window);
  std::printf("%-12s %10s %10s %10s\n", "method", "reward", "collision", "success");
  for (const auto& r : runs) {
    auto rew = bench::smooth(bench::reward_series(r.train_stats),
                             static_cast<std::size_t>(window));
    auto col = bench::smooth(bench::collision_series(r.train_stats),
                             static_cast<std::size_t>(window));
    auto suc = bench::smooth(bench::success_series(r.train_stats),
                             static_cast<std::size_t>(window));
    std::printf("%-12s %10.3f %10.3f %10.3f\n", r.name.c_str(), rew.back(),
                col.back(), suc.back());
  }
  return 0;
}
