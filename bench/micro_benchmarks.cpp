// Infrastructure micro-benchmarks (google-benchmark): simulator step rate,
// lidar scan, NN forward/backward, replay sampling, attention critic, SAC
// update. These bound the wall-clock cost of every experiment in
// EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "algos/attention_critic.h"
#include "algos/sac.h"
#include "hero/high_level.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/mlp.h"
#include "rl/replay_buffer.h"
#include "sim/scenario.h"

using namespace hero;

static void BM_LaneWorldStep(benchmark::State& state) {
  auto sc = sim::cooperative_lane_change();
  sim::LaneWorld world(sc.config);
  Rng rng(1);
  world.reset(rng);
  std::vector<sim::TwistCmd> cmds(3, {0.04, 0.0});
  for (auto _ : state) {
    if (world.done()) world.reset(rng);
    benchmark::DoNotOptimize(world.step(cmds, rng));
  }
}
BENCHMARK(BM_LaneWorldStep);

static void BM_LidarObservation(benchmark::State& state) {
  auto sc = sim::cooperative_lane_change();
  sim::LaneWorld world(sc.config);
  Rng rng(1);
  world.reset(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.high_level_obs(1));
  }
}
BENCHMARK(BM_LidarObservation);

static void BM_MlpForward(benchmark::State& state) {
  Rng rng(1);
  nn::Mlp net(26, {32, 32}, 25, rng);
  nn::Matrix x = nn::Matrix::xavier(static_cast<std::size_t>(state.range(0)), 26, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(128)->Arg(1024);

static void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(1);
  nn::Mlp net(26, {32, 32}, 25, rng);
  nn::Matrix x = nn::Matrix::xavier(static_cast<std::size_t>(state.range(0)), 26, rng);
  nn::Matrix target(x.rows(), 25, 0.1);
  for (auto _ : state) {
    auto loss = nn::mse_loss(net.forward(x), target);
    net.zero_grad();
    benchmark::DoNotOptimize(net.backward(loss.grad));
  }
}
BENCHMARK(BM_MlpForwardBackward)->Arg(128)->Arg(1024);

static void BM_LinearBackward(benchmark::State& state) {
  Rng rng(1);
  const std::size_t B = static_cast<std::size_t>(state.range(0));
  nn::Linear layer(64, 32, rng);
  nn::Matrix x = nn::Matrix::xavier(B, 64, rng);
  nn::Matrix y, grad_out(B, 32, 0.01), grad_in;
  layer.forward_into(x, y);
  auto params = layer.params();
  for (auto _ : state) {
    for (auto& p : params) p.grad->fill(0.0);
    layer.backward_into(x, y, grad_out, grad_in);
    benchmark::DoNotOptimize(grad_in.data());
  }
}
BENCHMARK(BM_LinearBackward)->Arg(128)->Arg(1024);

static void BM_ReplaySample(benchmark::State& state) {
  rl::ReplayBuffer<std::vector<double>> buf(100000);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) buf.add(std::vector<double>(26, 0.1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.sample(128, rng));
  }
}
BENCHMARK(BM_ReplaySample);

static void BM_AttentionCriticForwardBackward(benchmark::State& state) {
  Rng rng(1);
  algos::AttentionCritic critic(26, 25, 32, {32, 32}, rng);
  const std::size_t B = 128, m = 2;
  nn::Matrix own = nn::Matrix::xavier(B, 26, rng);
  nn::Matrix others(m * B, 26 + 25);
  for (std::size_t r = 0; r < m * B; ++r) {
    for (std::size_t c = 0; c < 26; ++c) others(r, c) = rng.normal(0, 0.5);
    others(r, 26 + rng.index(25)) = 1.0;
  }
  nn::Matrix dq(B, 25, 0.01);
  for (auto _ : state) {
    auto pass = critic.forward(own, others);
    critic.zero_grad();
    critic.backward(pass, dq);
  }
}
BENCHMARK(BM_AttentionCriticForwardBackward);

static void BM_SacUpdate(benchmark::State& state) {
  Rng rng(1);
  algos::SacConfig cfg;
  cfg.batch = static_cast<std::size_t>(state.range(0));
  cfg.warmup_steps = 1;
  algos::SacAgent agent(8, {0.04, -0.1}, {0.2, 0.1}, cfg, rng);
  const int fill = static_cast<int>(cfg.batch) * 4;
  for (int i = 0; i < fill; ++i) {
    agent.observe(std::vector<double>(8, 0.1), {0.1, 0.0}, 0.5,
                  std::vector<double>(8, 0.2), false, rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.update(rng));
  }
}
BENCHMARK(BM_SacUpdate)->Arg(128)->Arg(1024);

static void BM_HighLevelUpdate(benchmark::State& state) {
  Rng rng(1);
  core::HighLevelConfig cfg;
  cfg.warmup_transitions = 1;
  const std::size_t obs_dim = 11;
  const int opp = 2;
  core::HighLevelAgent agent(obs_dim, opp, cfg, rng);
  core::OpponentModel opponents(obs_dim, opp, core::OpponentModelConfig{}, rng);
  std::vector<double> obs(obs_dim, 0.1);
  for (int i = 0; i < 512; ++i) {
    obs[0] = 0.01 * (i % 100);
    agent.store({obs,
                 std::vector<double>(static_cast<std::size_t>(opp) * core::kNumOptions,
                                     1.0 / core::kNumOptions),
                 i % core::kNumOptions, 0.5, 0.9, obs, i % 10 == 0});
    opponents.observe(i % opp, obs, core::option_from_index(i % core::kNumOptions));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.update(opponents, rng));
  }
}
BENCHMARK(BM_HighLevelUpdate);

BENCHMARK_MAIN();
