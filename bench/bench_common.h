// Shared plumbing for the per-figure/per-table bench harnesses: a uniform
// "train method X on the cooperative lane-change scenario" entry point used
// by Fig. 7, Fig. 11 and Table II, plus curve-printing helpers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hero/hero_trainer.h"
#include "rl/evaluation.h"

namespace hero::bench {

// Method identifiers in the order the paper lists them.
const std::vector<std::string>& all_methods();  // dqn, coma, maddpg, maac, hero

struct MethodRun {
  std::string name;
  std::unique_ptr<rl::Controller> controller;       // trained; greedy-evaluable
  std::vector<rl::EpisodeStats> train_stats;        // one entry per episode
};

struct TrainOptions {
  int episodes = 2000;
  int skill_episodes = 400;       // HERO stage-1 budget per skill
  unsigned seed = 1;
  bool use_opponent_model = true; // HERO ablation switch
  bool log_progress = true;       // stderr progress every 10% of episodes
};

// Trains `method` on the cooperative lane-change scenario and returns the
// controller plus the full training trace. Hyper-parameters follow paper
// Table I where applicable (γ=0.95, τ=0.01, hidden 32, buffer 100k); batch
// and learning rate are the single-core defaults documented in
// EXPERIMENTS.md.
MethodRun train_method(const std::string& method, const sim::Scenario& scenario,
                       const TrainOptions& opts);

// Moving-average smoothing (window `w`) of a per-episode metric.
std::vector<double> smooth(const std::vector<double>& xs, std::size_t w);

// Extracts a metric series from training stats.
std::vector<double> reward_series(const std::vector<rl::EpisodeStats>& s);
std::vector<double> collision_series(const std::vector<rl::EpisodeStats>& s);
std::vector<double> success_series(const std::vector<rl::EpisodeStats>& s);

// Prints a downsampled curve as aligned "episode value" rows.
void print_series(const std::string& label, const std::vector<double>& series,
                  std::size_t points);

}  // namespace hero::bench
