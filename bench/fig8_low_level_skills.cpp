// Fig. 8 — episode reward while learning each low-level skill with SAC
// against its intrinsic reward function (stage 1 of HERO).
//
// The paper trains lane tracking and lane change; we report all three
// learned skills (slow down / accelerate share the driving-in-lane reward,
// lane change has the ±20 terminal bonus). Raw curves go to fig8_skills.csv.
#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "sim/scenario.h"
#include "viz/plot.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const int episodes = flags.get_int("episodes", quick ? 200 : 1000);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  const int window = flags.get_int("window", 50);
  const int points = flags.get_int("points", 16);
  flags.check_unknown();

  std::printf("=== Fig. 8 reproduction: low-level skill learning (%d episodes) ===\n",
              episodes);

  Rng rng(seed);
  auto scenario = sim::cooperative_lane_change();
  core::HeroConfig cfg;
  core::HeroTrainer trainer(scenario, cfg, rng);

  std::map<core::Option, std::vector<double>> curves =
      trainer.train_skills(episodes, rng, [&](core::Option o, int ep, double r) {
        if ((ep + 1) % std::max(1, episodes / 5) == 0) {
          std::fprintf(stderr, "[%s] ep %d/%d reward %.2f\n", core::option_name(o),
                       ep + 1, episodes, r);
        }
      });

  CsvWriter csv("fig8_skills.csv",
                {"episode", "slow_down", "accelerate", "lane_change"});
  std::vector<std::vector<double>> smoothed;
  for (core::Option o : {core::Option::kSlowDown, core::Option::kAccelerate,
                         core::Option::kLaneChange}) {
    smoothed.push_back(bench::smooth(curves[o], static_cast<std::size_t>(window)));
    std::printf("\n--- %s (window-%d moving average) ---\n", core::option_name(o),
                window);
    bench::print_series("  episode reward", smoothed.back(),
                        static_cast<std::size_t>(points));
  }
  for (std::size_t ep = 0; ep < smoothed[0].size(); ++ep) {
    csv.row(std::vector<double>{static_cast<double>(ep + 1), smoothed[0][ep],
                                smoothed[1][ep], smoothed[2][ep]});
  }
  viz::PlotOptions popts;
  popts.title = "Fig. 8: low-level skill learning (SAC, intrinsic rewards)";
  popts.y_label = "episode reward";
  viz::plot_series({{"slow_down", smoothed[0]},
                    {"accelerate", smoothed[1]},
                    {"lane_change", smoothed[2]}},
                   popts, "fig8_skills.svg");
  std::printf("\n(raw series -> fig8_skills.csv, plot -> fig8_skills.svg)\n");

  // The paper's qualitative claim: SAC converges on both skill families.
  for (std::size_t i = 0; i < smoothed.size(); ++i) {
    const auto& s = smoothed[i];
    const double early = s[std::min<std::size_t>(window, s.size() - 1)];
    const double late = s.back();
    std::printf("skill %zu: early %.2f -> late %.2f (%s)\n", i, early, late,
                late > early ? "improved" : "flat");
  }
  return 0;
}
