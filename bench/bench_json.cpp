// JSON perf-trajectory reporter.
//
// Times the NN hot-path operations (op level) and short training slices of
// HERO plus every baseline (steps/sec), then writes two machine-readable
// snapshots:
//
//   BENCH_nn.json    — op-level numbers (ns/iter), google-benchmark-style
//   BENCH_train.json — environment-steps-per-second per training method
//
// Every perf PR re-runs `tools/run_benchmarks.sh` and commits the refreshed
// snapshots, so the repo carries its own performance trajectory.
//
// Single-core container caveat: CI and the reference container expose one
// core, so every number here — including the BM_BatchStep/E* and
// BM_BatchedRollout/E* batch-first entries — measures single-thread
// throughput. Batching wins come from amortized forward passes and update
// cadence (docs/BATCHING.md), not from parallel hardware; the "/wN" worker
// variants likewise record dispatch overhead, not speedup.
//
// Run:  ./bench_json [--nn-out F] [--train-out F] [--min-time SECONDS]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algos/attention_critic.h"
#include "algos/coma.h"
#include "algos/dqn.h"
#include "algos/maac.h"
#include "algos/maddpg.h"
#include "algos/sac.h"
#include "common/flags.h"
#include "hero/hero_trainer.h"
#include "nn/losses.h"
#include "nn/mlp.h"
#include "obs/phase.h"
#include "runtime/rollout.h"
#include "sim/batch_lane_world.h"
#include "sim/lane_world.h"
#include "sim/scenario.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct BenchResult {
  std::string name;
  double ns_per_iter = 0.0;
  long iterations = 0;
};

// Adaptive timing loop: grows the iteration count until the measured wall
// time exceeds `min_seconds`, then reports ns per iteration.
template <class F>
BenchResult time_case(const std::string& name, double min_seconds, F&& fn) {
  fn();  // warm caches, settle lazily-sized workspaces
  long iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (long i = 0; i < iters; ++i) fn();
    const double secs = seconds_since(t0);
    if (secs >= min_seconds || iters >= (1L << 30)) {
      BenchResult r;
      r.name = name;
      r.ns_per_iter = secs * 1e9 / static_cast<double>(iters);
      r.iterations = iters;
      std::fprintf(stderr, "  %-34s %12.1f ns/iter  (%ld iters)\n", name.c_str(),
                   r.ns_per_iter, iters);
      return r;
    }
    const double grow = secs > 0.0 ? std::min(10.0, 1.3 * min_seconds / secs) : 10.0;
    iters = static_cast<long>(static_cast<double>(iters) * std::max(2.0, grow));
  }
}

void write_json(const std::string& path, const std::string& kind,
                const std::vector<std::pair<std::string, double>>& entries,
                const std::string& unit, const std::vector<long>& iters) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  f << "{\n  \"kind\": \"" << kind << "\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    f << "    {\"name\": \"" << entries[i].first << "\", \"" << unit
      << "\": " << entries[i].second;
    if (i < iters.size()) f << ", \"iterations\": " << iters[i];
    f << "}" << (i + 1 == entries.size() ? "" : ",") << "\n";
  }
  f << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

// ------------------------------ op-level cases ------------------------------

std::vector<BenchResult> run_nn_cases(double min_time) {
  using namespace hero;
  std::vector<BenchResult> out;

  // The paper's workhorse shape: obs 26 → 32 → 32 → 25 actions.
  for (std::size_t batch : {std::size_t{1}, std::size_t{128}, std::size_t{1024}}) {
    Rng rng(1);
    nn::Mlp net(26, {32, 32}, 25, rng);
    nn::Matrix x = nn::Matrix::xavier(batch, 26, rng);
    out.push_back(time_case("BM_MlpForward/" + std::to_string(batch), min_time,
                            [&] { net.forward(x); }));
  }

  for (std::size_t batch : {std::size_t{128}, std::size_t{1024}}) {
    Rng rng(1);
    nn::Mlp net(26, {32, 32}, 25, rng);
    nn::Matrix x = nn::Matrix::xavier(batch, 26, rng);
    nn::Matrix target(batch, 25, 0.1);
    out.push_back(
        time_case("BM_MlpForwardBackward/" + std::to_string(batch), min_time, [&] {
          auto loss = nn::mse_loss(net.forward(x), target);
          net.zero_grad();
          net.backward(loss.grad);
        }));
  }

  {
    // Phase-attribution scope cost (obs/phase.h). "off" is what every
    // uninstrumented run pays at each OBS_PHASE site — one relaxed
    // atomic-bool load, asserted to stay in the noise by
    // tools/run_benchmarks.sh. "on" adds two clock reads and two relaxed
    // atomic adds (the --metrics-out price).
    out.push_back(time_case("BM_PhaseScope/off", min_time, [&] {
      OBS_PHASE("bench_phase");
    }));
    obs::set_phases_enabled(true);
    out.push_back(time_case("BM_PhaseScope/on", min_time, [&] {
      OBS_PHASE("bench_phase");
    }));
    obs::set_phases_enabled(false);
    obs::PhaseRegistry::instance().reset();
  }

  {
    // A single Linear layer (hidden-free Mlp) at batch 1024: isolates the
    // transpose-free backward kernels from activation costs.
    Rng rng(1);
    nn::Mlp lin(26, {}, 32, rng);
    nn::Matrix x = nn::Matrix::xavier(1024, 26, rng);
    nn::Matrix target(1024, 32, 0.1);
    out.push_back(time_case("BM_LinearBackward/1024", min_time, [&] {
      auto loss = nn::mse_loss(lin.forward(x), target);
      lin.zero_grad();
      lin.backward(loss.grad);
    }));
  }

  {
    Rng rng(1);
    algos::AttentionCritic critic(26, 25, 32, {32, 32}, rng);
    const std::size_t B = 128, m = 2;
    nn::Matrix own = nn::Matrix::xavier(B, 26, rng);
    nn::Matrix others(m * B, 26 + 25);
    for (std::size_t r = 0; r < m * B; ++r) {
      for (std::size_t c = 0; c < 26; ++c) others(r, c) = rng.normal(0, 0.5);
      others(r, 26 + rng.index(25)) = 1.0;
    }
    nn::Matrix dq(B, 25, 0.01);
    out.push_back(time_case("BM_AttentionCriticForwardBackward", min_time, [&] {
      auto pass = critic.forward(own, others);
      critic.zero_grad();
      critic.backward(pass, dq);
    }));
  }

  {
    // The stage-2 cooperation layer: one actor+critic+opponent-conditioned
    // gradient step at the default batch (the per-update cost the obs layer
    // must not regress).
    Rng rng(1);
    core::HighLevelConfig cfg;
    cfg.warmup_transitions = 1;
    const std::size_t obs_dim = 11;
    const int opp = 2;
    core::HighLevelAgent agent(obs_dim, opp, cfg, rng);
    core::OpponentModel opponents(obs_dim, opp, core::OpponentModelConfig{}, rng);
    std::vector<double> obs(obs_dim, 0.1);
    for (int i = 0; i < 512; ++i) {
      obs[0] = 0.01 * (i % 100);
      agent.store({obs,
                   std::vector<double>(static_cast<std::size_t>(opp) * core::kNumOptions,
                                       1.0 / core::kNumOptions),
                   i % core::kNumOptions, 0.5, 0.9, obs, i % 10 == 0});
      opponents.observe(i % opp, obs, core::option_from_index(i % core::kNumOptions));
    }
    out.push_back(time_case("BM_HighLevelUpdate", min_time,
                            [&] { agent.update(opponents, rng); }));
  }

  // One RolloutRunner round: 8 episodes of raw environment stepping across
  // per-slot LaneWorld replicas. Measures the runtime layer's dispatch +
  // stream-split overhead; on a single-core host the multi-worker variants
  // show scheduling cost, not speedup (docs/PARALLELISM.md).
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    const sim::Scenario scenario = sim::cooperative_lane_change();
    runtime::ThreadPool pool(workers);
    runtime::RolloutRunner runner(pool, /*root_seed=*/1);
    std::vector<std::unique_ptr<sim::LaneWorld>> worlds;
    for (std::size_t s = 0; s < runner.max_slots(); ++s) {
      worlds.push_back(std::make_unique<sim::LaneWorld>(scenario.config));
    }
    out.push_back(time_case("BM_ParallelRollout/w" + std::to_string(workers),
                            min_time, [&] {
      runner.run_round(0, 8, [&](std::size_t, std::size_t slot, Rng& rng) {
        sim::LaneWorld& w = *worlds[slot];
        w.reset(rng);
        const std::vector<sim::TwistCmd> cmds(
            static_cast<std::size_t>(w.num_learners()), sim::TwistCmd{0.12, 0.0});
        while (!w.done()) w.step(cmds, rng);
      });
    }));
  }

  for (std::size_t batch : {std::size_t{128}, std::size_t{1024}}) {
    Rng rng(1);
    algos::SacConfig cfg;
    cfg.batch = batch;
    cfg.warmup_steps = 1;
    algos::SacAgent agent(8, {0.04, -0.1}, {0.2, 0.1}, cfg, rng);
    for (int i = 0; i < 2000; ++i) {
      agent.observe(std::vector<double>(8, 0.1), {0.1, 0.0}, 0.5,
                    std::vector<double>(8, 0.2), false, rng);
    }
    const std::string name =
        batch == 128 ? "BM_SacUpdate" : "BM_SacUpdate/" + std::to_string(batch);
    out.push_back(time_case(name, min_time, [&] { agent.update(rng); }));
  }

  return out;
}

// ------------------------- training-slice cases -----------------------------

struct TrainSlice {
  std::string name;
  double steps_per_sec = 0.0;
  long steps = 0;
};

template <class TrainFn>
TrainSlice time_train(const std::string& name, TrainFn&& fn) {
  TrainSlice s;
  s.name = name;
  const auto t0 = Clock::now();
  s.steps = fn();
  const double secs = seconds_since(t0);
  s.steps_per_sec = secs > 0.0 ? static_cast<double>(s.steps) / secs : 0.0;
  std::fprintf(stderr, "  %-10s %10.1f env steps/sec  (%ld steps)\n", name.c_str(),
               s.steps_per_sec, s.steps);
  return s;
}

// One pass over all five trainers at a fixed worker count. Names carry a
// "/wN" suffix for N > 1 so the single-worker entries keep their historical
// names (and their seed baselines). On a single-core host the multi-worker
// numbers measure dispatch overhead, not speedup — the snapshot records what
// the hardware actually delivered (docs/PARALLELISM.md).
void run_train_cases(int episodes, int workers, std::vector<TrainSlice>& out) {
  using namespace hero;
  const sim::Scenario scenario = sim::cooperative_lane_change();
  const std::string suffix = workers > 1 ? "/w" + std::to_string(workers) : "";

  auto step_counter = [](long& steps) {
    return [&steps](int, const rl::EpisodeStats& s) { steps += s.steps; };
  };

  out.push_back(time_train("dqn" + suffix, [&] {
    Rng rng(1);
    algos::DqnConfig cfg;
    cfg.warmup_steps = 64;
    cfg.num_workers = workers;
    algos::IndependentDqnTrainer t(scenario, cfg, rng);
    long steps = 0;
    t.train(episodes, rng, step_counter(steps));
    return steps;
  }));

  out.push_back(time_train("coma" + suffix, [&] {
    Rng rng(1);
    algos::ComaConfig cfg;
    cfg.num_workers = workers;
    algos::ComaTrainer t(scenario, cfg, rng);
    long steps = 0;
    t.train(episodes, rng, step_counter(steps));
    return steps;
  }));

  out.push_back(time_train("maddpg" + suffix, [&] {
    Rng rng(1);
    algos::MaddpgConfig cfg;
    cfg.warmup_steps = 64;
    cfg.num_workers = workers;
    algos::MaddpgTrainer t(scenario, cfg, rng);
    long steps = 0;
    t.train(episodes, rng, step_counter(steps));
    return steps;
  }));

  out.push_back(time_train("maac" + suffix, [&] {
    Rng rng(1);
    algos::MaacConfig cfg;
    cfg.warmup_steps = 64;
    cfg.num_workers = workers;
    algos::MaacTrainer t(scenario, cfg, rng);
    long steps = 0;
    t.train(episodes, rng, step_counter(steps));
    return steps;
  }));

  out.push_back(time_train("hero" + suffix, [&] {
    Rng rng(1);
    core::HeroConfig cfg;
    cfg.high.warmup_transitions = 16;
    if (workers == 1) {
      // The single-worker HERO slice collects through the batch-first
      // rollout engine (docs/BATCHING.md): 16 lockstep envs share each
      // policy/opponent forward and the gradient clock counts batch steps.
      cfg.batch_envs = 16;
    } else {
      cfg.num_workers = workers;
    }
    core::HeroTrainer t(scenario, cfg, rng);
    t.train_skills(/*episodes_per_skill=*/2, rng);
    long steps = 0;
    t.train(episodes, rng, step_counter(steps));
    return steps;
  }));
}

// Batch-first entries (docs/BATCHING.md), reported as env steps/sec so the
// regression gate compares them with the same higher-is-better polarity as
// the trainer slices. BM_BatchStep isolates the SoA sim (step_all with
// constant keep-lane commands, done envs re-seeded in place); BM_BatchedRollout
// runs one full-width HERO round — selection, skills, and opponent
// predictions batched across E lockstep episodes.
void run_batch_cases(std::vector<TrainSlice>& out) {
  using namespace hero;
  const sim::Scenario scenario = sim::cooperative_lane_change();

  for (int envs : {1, 16, 64, 256}) {
    out.push_back(time_train("BM_BatchStep/E" + std::to_string(envs), [&] {
      sim::BatchLaneWorld world(scenario.config, envs);
      std::vector<Rng> rngs;
      rngs.reserve(static_cast<std::size_t>(envs));
      for (int e = 0; e < envs; ++e) rngs.emplace_back(static_cast<unsigned>(e) + 1);
      std::vector<Rng*> rng_ptrs;
      for (int e = 0; e < envs; ++e) {
        rng_ptrs.push_back(&rngs[static_cast<std::size_t>(e)]);
        world.reset_env(e, rngs[static_cast<std::size_t>(e)]);
      }
      const std::vector<std::uint8_t> active(static_cast<std::size_t>(envs), 1);
      const std::vector<sim::TwistCmd> cmds(
          static_cast<std::size_t>(envs) *
              static_cast<std::size_t>(world.num_learners()),
          sim::TwistCmd{0.12, 0.0});
      sim::BatchStepResult res;
      const long batch_steps = 200000 / envs + 256;
      for (long s = 0; s < batch_steps; ++s) {
        for (int e = 0; e < envs; ++e) {
          if (world.done(e)) world.reset_env(e, rngs[static_cast<std::size_t>(e)]);
        }
        world.step_all(cmds.data(), rng_ptrs.data(), active.data(), res);
      }
      return batch_steps * envs;
    }));
  }

  for (int envs : {16, 64}) {
    out.push_back(
        time_train("BM_BatchedRollout/E" + std::to_string(envs), [&] {
          Rng rng(1);
          core::HeroConfig cfg;
          cfg.high.warmup_transitions = 16;
          cfg.batch_envs = envs;
          core::HeroTrainer t(scenario, cfg, rng);
          t.train_skills(/*episodes_per_skill=*/2, rng);
          long steps = 0;
          t.train(/*episodes=*/envs, rng,
                  [&](int, const rl::EpisodeStats& s) { steps += s.steps; });
          return steps;
        }));
  }
}

// Dense-traffic sensing entries (docs/PERFORMANCE.md, "Spatial neighbor
// index"): one env of the declarative dense scenario at V vehicles, where
// each measured step is a step_all PLUS a full sensing pass — high- and
// low-level obs for every learner, the per-step perception cost a rollout
// actually pays and the part that is O(V²) without the index.
// BM_BatchStep/V128_allpairs re-times V=128 with use_spatial_index off
// (all-pairs staging, uncull lidar narrow phase) in the same run;
// tools/run_benchmarks.sh asserts the indexed entry is ≥ 4× faster.
void run_dense_cases(const std::string& scenario_path,
                     std::vector<TrainSlice>& out) {
  using namespace hero;

  const auto dense_case = [&](const std::string& name, int vehicles,
                              bool use_index, long steps_target) {
    out.push_back(time_train(name, [&] {
      sim::Scenario sc = sim::load_scenario(scenario_path, vehicles);
      sc.config.use_spatial_index = use_index;
      sim::BatchLaneWorld world(sc.config, /*num_envs=*/1);
      Rng rng(1);
      Rng* rng_ptr = &rng;
      world.reset_env(0, rng);
      const std::uint8_t active = 1;
      const std::vector<sim::TwistCmd> cmds(
          static_cast<std::size_t>(world.num_learners()),
          sim::TwistCmd{0.12, 0.0});
      std::vector<double> hl(world.high_level_obs_dim());
      std::vector<double> ll(world.low_level_obs_dim());
      sim::BatchStepResult res;
      for (long s = 0; s < steps_target; ++s) {
        if (world.done(0)) world.reset_env(0, rng);
        world.step_all(cmds.data(), &rng_ptr, &active, res);
        for (int k = 0; k < world.num_learners(); ++k) {
          const int vi = world.learners()[static_cast<std::size_t>(k)];
          world.high_level_obs_into(0, vi, hl.data());
          world.low_level_obs_into(0, vi, world.lane(0, vi), ll.data());
        }
      }
      return steps_target;
    }));
  };

  dense_case("BM_BatchStep/V64", 64, /*use_index=*/true, 3000);
  dense_case("BM_BatchStep/V128", 128, /*use_index=*/true, 1500);
  dense_case("BM_BatchStep/V256", 256, /*use_index=*/true, 750);
  dense_case("BM_BatchStep/V128_allpairs", 128, /*use_index=*/false, 1500);

  // Full HERO batched rollout on the dense scene: 48 learners × 4 lockstep
  // envs through selection, skills and opponent prediction.
  out.push_back(time_train("BM_BatchedRollout/dense64", [&] {
    sim::Scenario sc = sim::load_scenario(scenario_path, /*num_vehicles=*/64);
    Rng rng(1);
    core::HeroConfig cfg;
    cfg.high.warmup_transitions = 16;
    cfg.batch_envs = 4;
    core::HeroTrainer t(sc, cfg, rng);
    t.train_skills(/*episodes_per_skill=*/1, rng);
    long steps = 0;
    t.train(/*episodes=*/4, rng,
            [&](int, const rl::EpisodeStats& s) { steps += s.steps; });
    return steps;
  }));
}

}  // namespace

int main(int argc, char** argv) {
  hero::Flags flags(argc, argv);
  const std::string nn_out = flags.get_string("nn-out", "BENCH_nn.json");
  const std::string train_out = flags.get_string("train-out", "BENCH_train.json");
  const double min_time = flags.get_double("min-time", 0.25);
  const int train_episodes = flags.get_int("train-episodes", 8);
  // Largest worker count for the "/wN" training slices; 1 keeps the run to
  // the historical single-worker set.
  const int max_workers = flags.get_int("max-workers", 8);
  // Declarative config behind the BM_BatchStep/V* density sweep; empty
  // skips the dense entries (a missing file is a hard error — a silently
  // absent entry would make the regression gate vacuous).
  const std::string dense_scenario =
      flags.get_string("dense-scenario", "scenarios/dense_traffic.json");
  flags.check_unknown();

  std::fprintf(stderr, "== op-level benchmarks ==\n");
  auto nn = run_nn_cases(min_time);
  std::vector<std::pair<std::string, double>> nn_entries;
  std::vector<long> nn_iters;
  for (const auto& r : nn) {
    nn_entries.emplace_back(r.name, r.ns_per_iter);
    nn_iters.push_back(r.iterations);
  }
  write_json(nn_out, "nn_ops_ns_per_iter", nn_entries, "real_time_ns", nn_iters);

  if (train_episodes <= 0) {
    // Don't write an all-zeros snapshot — that would read as a catastrophic
    // regression if it ever got committed.
    std::fprintf(stderr, "== training-slice benchmarks skipped (--train-episodes %d) ==\n",
                 train_episodes);
    return 0;
  }
  std::fprintf(stderr, "== training-slice benchmarks (%d episodes each) ==\n",
               train_episodes);
  std::vector<TrainSlice> train;
  for (int w = 1; w <= max_workers; w *= 2) run_train_cases(train_episodes, w, train);
  run_batch_cases(train);
  if (!dense_scenario.empty()) run_dense_cases(dense_scenario, train);
  std::vector<std::pair<std::string, double>> train_entries;
  for (const auto& s : train) train_entries.emplace_back(s.name, s.steps_per_sec);
  write_json(train_out, "train_steps_per_sec", train_entries, "steps_per_sec", {});
  return 0;
}
