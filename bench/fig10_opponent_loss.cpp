// Fig. 10 — opponent-model training loss from vehicle 2's perspective while
// the high-level cooperative policy trains: one curve per modeled partner
// (vehicle 1 and vehicle 3 in the paper's numbering).
//
// Reproduces the qualitative claim that different partners' policies
// converge at different speeds, reflecting their different interaction
// patterns with the merger. Raw curves go to fig10_opponent_loss.csv.
#include <cstdio>

#include "bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "viz/plot.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const int episodes = flags.get_int("episodes", quick ? 200 : 1000);
  const int skill_episodes = flags.get_int("skill-episodes", quick ? 100 : 300);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  const int window = flags.get_int("window", 200);
  const int points = flags.get_int("points", 16);
  flags.check_unknown();

  std::printf(
      "=== Fig. 10 reproduction: opponent-model loss, vehicle 2's view (%d "
      "episodes) ===\n",
      episodes);

  Rng rng(seed);
  auto scenario = sim::cooperative_lane_change();
  core::HeroConfig cfg;
  core::HeroTrainer trainer(scenario, cfg, rng);
  std::fprintf(stderr, "stage 1: skills (%d eps each)...\n", skill_episodes);
  trainer.train_skills(skill_episodes, rng);
  std::fprintf(stderr, "stage 2: cooperative training...\n");
  trainer.train(episodes, rng);

  // Vehicle 2 is the merger (agent index = scenario.merger_index); its
  // opponent slots are vehicle 1 (agent 0) and vehicle 3 (agent 2).
  const auto& hist =
      trainer.agent(scenario.merger_index).opponents().loss_history();
  const char* labels[] = {"vehicle 1 prediction loss", "vehicle 3 prediction loss"};

  std::vector<std::vector<double>> smoothed;
  for (std::size_t j = 0; j < hist.size(); ++j) {
    smoothed.push_back(bench::smooth(hist[j], static_cast<std::size_t>(window)));
    std::printf("\n--- %s (window-%d moving average, %zu updates) ---\n",
                j < 2 ? labels[j] : "partner", window, hist[j].size());
    bench::print_series("  CE loss", smoothed.back(),
                        static_cast<std::size_t>(points));
  }

  CsvWriter csv("fig10_opponent_loss.csv", {"update", "vehicle1", "vehicle3"});
  const std::size_t n = std::min(smoothed[0].size(), smoothed[1].size());
  for (std::size_t i = 0; i < n; ++i) {
    csv.row(std::vector<double>{static_cast<double>(i + 1), smoothed[0][i],
                                smoothed[1][i]});
  }
  if (n >= 2) {
    viz::PlotOptions popts;
    popts.title = "Fig. 10: opponent-model loss (vehicle 2's perspective)";
    popts.x_label = "update";
    popts.y_label = "cross-entropy loss";
    viz::plot_series({{"vehicle 1", smoothed[0]}, {"vehicle 3", smoothed[1]}}, popts,
                     "fig10_opponent_loss.svg");
  }
  std::printf("\n(raw series -> fig10_opponent_loss.csv, plot -> .svg)\n");

  for (std::size_t j = 0; j < smoothed.size() && j < 2; ++j) {
    const auto& s = smoothed[j];
    if (s.size() < 2) continue;
    std::printf("%s: initial %.4f -> final %.4f (%s)\n", labels[j],
                s[std::min<std::size_t>(window, s.size() - 1)], s.back(),
                s.back() < s.front() ? "converging" : "not converging");
  }
  return 0;
}
