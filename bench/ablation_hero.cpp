// Ablation bench for the design decisions DESIGN.md §5 calls out:
//   1. opponent modeling in the high-level layer (vs a uniform prior);
//   2. asynchronous option termination (vs the synchronous mode the paper
//      rejects for distributed systems);
//   3. (reference) full HERO.
//
// Trains each variant on the cooperative lane-change scenario and reports
// final-window training metrics plus greedy evaluation.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/flags.h"
#include "common/table.h"

using namespace hero;

namespace {

struct Variant {
  std::string name;
  bool use_opponent_model;
  bool synchronous_termination;
  core::Bootstrap bootstrap = core::Bootstrap::kMax;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const int episodes = flags.get_int("episodes", quick ? 200 : 600);
  const int skill_episodes = flags.get_int("skill-episodes", quick ? 100 : 300);
  const int eval_episodes = flags.get_int("eval-episodes", 50);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  flags.check_unknown();

  std::printf("=== HERO ablations (%d episodes/variant) ===\n", episodes);
  auto scenario = sim::cooperative_lane_change();

  const Variant variants[] = {
      {"hero (full)", true, false, core::Bootstrap::kMax},
      {"no opponent model", false, false, core::Bootstrap::kMax},
      {"synchronous termination", true, true, core::Bootstrap::kMax},
      {"expected-sarsa bootstrap", true, false, core::Bootstrap::kExpected},
  };

  TablePrinter table({"variant", "train reward", "train collision", "train success",
                      "eval collision", "eval success"});
  for (const auto& v : variants) {
    Rng rng(seed);
    core::HeroConfig cfg;
    cfg.high.use_opponent_model = v.use_opponent_model;
    cfg.skill.termination.synchronous = v.synchronous_termination;
    cfg.high.bootstrap = v.bootstrap;
    core::HeroTrainer trainer(scenario, cfg, rng);
    std::fprintf(stderr, "[%s] stage 1...\n", v.name.c_str());
    trainer.train_skills(skill_episodes, rng);
    std::fprintf(stderr, "[%s] stage 2...\n", v.name.c_str());

    std::vector<rl::EpisodeStats> stats;
    trainer.train(episodes, rng,
                  [&](int, const rl::EpisodeStats& s) { stats.push_back(s); });

    const std::size_t w = std::min<std::size_t>(100, stats.size());
    double rew = 0, col = 0, suc = 0;
    for (std::size_t i = stats.size() - w; i < stats.size(); ++i) {
      rew += stats[i].team_reward;
      col += stats[i].collision;
      suc += stats[i].success;
    }

    Rng eval_rng(seed + 500);
    sim::LaneWorld eval_world(scenario.config);
    auto summary = rl::evaluate(eval_world, trainer, eval_rng, eval_episodes,
                                scenario.merger_index, scenario.merger_target_lane);

    table.add_row({v.name, TablePrinter::num(rew / w, 2),
                   TablePrinter::num(col / w, 2), TablePrinter::num(suc / w, 2),
                   TablePrinter::num(summary.collision_rate, 2),
                   TablePrinter::num(summary.success_rate, 2)});
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nexpected: the full model dominates; removing the opponent model slows\n"
      "convergence / destabilizes the critic; synchronous termination interrupts\n"
      "lane changes mid-manoeuvre and hurts success.\n");
  return 0;
}
