// Fig. 11 — mean vehicle speed per method after training, greedy evaluation
// in the simulation environment. The paper reports HERO highest (~0.08 in
// its units) and MAAC lowest; the ordering, not the absolute scale, is the
// reproduction target.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/flags.h"
#include "common/table.h"

using namespace hero;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const int episodes = flags.get_int("episodes", quick ? 200 : 800);
  const int skill_episodes = flags.get_int("skill-episodes", quick ? 100 : 300);
  const int eval_episodes = flags.get_int("eval-episodes", 50);
  const unsigned seed = static_cast<unsigned>(flags.get_int("seed", 1));
  flags.check_unknown();

  std::printf(
      "=== Fig. 11 reproduction: mean speed after training (%d train / %d eval "
      "episodes) ===\n",
      episodes, eval_episodes);
  auto scenario = sim::cooperative_lane_change();

  TablePrinter table({"method", "mean speed (m/s)", "collision", "success"});
  Rng eval_rng(seed + 1000);
  for (const auto& m : bench::all_methods()) {
    bench::TrainOptions opts;
    opts.episodes = episodes;
    opts.skill_episodes = skill_episodes;
    opts.seed = seed;
    auto run = bench::train_method(m, scenario, opts);

    sim::LaneWorld eval_world(scenario.config);
    auto summary = rl::evaluate(eval_world, *run.controller, eval_rng, eval_episodes,
                                scenario.merger_index, scenario.merger_target_lane);
    table.add_row({m, TablePrinter::num(summary.mean_speed, 4),
                   TablePrinter::num(summary.collision_rate, 2),
                   TablePrinter::num(summary.success_rate, 2)});
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\npaper's qualitative claim: HERO fastest; MAAC slowest; crawling policies"
      "\n(e.g. independent DQN) sit near the plodder's 0.04 m/s.\n");
  return 0;
}
