#include "bench_common.h"

#include <cstdio>

#include "algos/coma.h"
#include "algos/dqn.h"
#include "algos/maac.h"
#include "algos/maddpg.h"
#include "common/stats.h"

namespace hero::bench {

const std::vector<std::string>& all_methods() {
  static const std::vector<std::string> kMethods = {"dqn", "coma", "maddpg", "maac",
                                                    "hero"};
  return kMethods;
}

namespace {

algos::EpisodeHook make_hook(MethodRun& run, const std::string& name, int episodes,
                             bool log_progress) {
  return [&run, name, episodes, log_progress](int ep, const rl::EpisodeStats& s) {
    run.train_stats.push_back(s);
    const int stride = std::max(1, episodes / 10);
    if (log_progress && (ep + 1) % stride == 0) {
      double coll = 0, succ = 0, rew = 0;
      const int lo = std::max(0, ep + 1 - stride);
      for (int i = lo; i <= ep; ++i) {
        const auto& st = run.train_stats[static_cast<std::size_t>(i)];
        coll += st.collision;
        succ += st.success;
        rew += st.team_reward;
      }
      const double n = ep + 1 - lo;
      std::fprintf(stderr, "[%s] ep %d/%d  reward %.2f  collision %.2f  success %.2f\n",
                   name.c_str(), ep + 1, episodes, rew / n, coll / n, succ / n);
    }
  };
}

}  // namespace

MethodRun train_method(const std::string& method, const sim::Scenario& scenario,
                       const TrainOptions& opts) {
  MethodRun run;
  run.name = method;
  Rng rng(opts.seed);
  auto hook = [&](MethodRun& r) {
    return make_hook(r, method, opts.episodes, opts.log_progress);
  };

  if (method == "dqn") {
    auto trainer = std::make_unique<algos::IndependentDqnTrainer>(
        scenario, algos::DqnConfig{}, rng);
    trainer->train(opts.episodes, rng, hook(run));
    run.controller = std::move(trainer);
  } else if (method == "coma") {
    auto trainer =
        std::make_unique<algos::ComaTrainer>(scenario, algos::ComaConfig{}, rng);
    trainer->train(opts.episodes, rng, hook(run));
    run.controller = std::move(trainer);
  } else if (method == "maddpg") {
    auto trainer = std::make_unique<algos::MaddpgTrainer>(scenario,
                                                          algos::MaddpgConfig{}, rng);
    trainer->train(opts.episodes, rng, hook(run));
    run.controller = std::move(trainer);
  } else if (method == "maac") {
    auto trainer =
        std::make_unique<algos::MaacTrainer>(scenario, algos::MaacConfig{}, rng);
    trainer->train(opts.episodes, rng, hook(run));
    run.controller = std::move(trainer);
  } else if (method == "hero" || method == "hero_noopp") {
    core::HeroConfig cfg;
    cfg.high.use_opponent_model = opts.use_opponent_model && method != "hero_noopp";
    auto trainer = std::make_unique<core::HeroTrainer>(scenario, cfg, rng);
    if (opts.log_progress) {
      std::fprintf(stderr, "[%s] stage 1: training skills (%d eps each)...\n",
                   method.c_str(), opts.skill_episodes);
    }
    trainer->train_skills(opts.skill_episodes, rng);
    trainer->train(opts.episodes, rng, hook(run));
    run.controller = std::move(trainer);
  } else {
    throw std::invalid_argument("unknown method: " + method);
  }
  return run;
}

std::vector<double> smooth(const std::vector<double>& xs, std::size_t w) {
  MovingAverage ma(w);
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(ma.add(x));
  return out;
}

std::vector<double> reward_series(const std::vector<rl::EpisodeStats>& s) {
  std::vector<double> out;
  out.reserve(s.size());
  for (const auto& e : s) out.push_back(e.team_reward);
  return out;
}

std::vector<double> collision_series(const std::vector<rl::EpisodeStats>& s) {
  std::vector<double> out;
  out.reserve(s.size());
  for (const auto& e : s) out.push_back(e.collision ? 1.0 : 0.0);
  return out;
}

std::vector<double> success_series(const std::vector<rl::EpisodeStats>& s) {
  std::vector<double> out;
  out.reserve(s.size());
  for (const auto& e : s) out.push_back(e.success ? 1.0 : 0.0);
  return out;
}

void print_series(const std::string& label, const std::vector<double>& series,
                  std::size_t points) {
  auto pts = downsample(series, points);
  std::printf("%s\n", label.c_str());
  for (const auto& [idx, value] : pts) {
    std::printf("  ep %5zu  %9.4f\n", idx + 1, value);
  }
}

}  // namespace hero::bench
