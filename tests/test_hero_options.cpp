// Tests for HERO's option machinery: action spaces (paper Sec. IV-C),
// asynchronous termination (Sec. III-B), intrinsic rewards, and the skill
// bank's twist mapping.
#include <gtest/gtest.h>

#include <filesystem>

#include "hero/skills.h"
#include "runtime/thread_pool.h"
#include "sim/scenario.h"

namespace hero::core {
namespace {

// --------------------------------------------------------------- options --

TEST(Options, NamesAndIndices) {
  EXPECT_STREQ(option_name(Option::kKeepLane), "keep_lane");
  EXPECT_STREQ(option_name(Option::kLaneChange), "lane_change");
  for (int i = 0; i < kNumOptions; ++i) {
    EXPECT_EQ(static_cast<int>(option_from_index(i)), i);
  }
  EXPECT_THROW(option_from_index(4), std::logic_error);
  EXPECT_THROW(option_from_index(-1), std::logic_error);
}

TEST(Options, ActionSpacesMatchPaper) {
  auto slow = option_action_space(Option::kSlowDown);
  EXPECT_DOUBLE_EQ(slow.lo[0], 0.04);
  EXPECT_DOUBLE_EQ(slow.hi[0], 0.08);
  EXPECT_DOUBLE_EQ(slow.lo[1], -0.10);
  EXPECT_DOUBLE_EQ(slow.hi[1], 0.10);

  auto acc = option_action_space(Option::kAccelerate);
  EXPECT_DOUBLE_EQ(acc.lo[0], 0.08);
  EXPECT_DOUBLE_EQ(acc.hi[0], 0.14);

  auto lc = option_action_space(Option::kLaneChange);
  EXPECT_DOUBLE_EQ(lc.lo[0], 0.10);
  EXPECT_DOUBLE_EQ(lc.hi[0], 0.20);
  EXPECT_DOUBLE_EQ(lc.lo[1], 0.12);
  EXPECT_DOUBLE_EQ(lc.hi[1], 0.25);
}

// ---------------------------------------------------------- termination ---

sim::LaneWorld make_world() {
  return sim::LaneWorld(sim::skill_training_world(false));
}

TEST(Termination, InLaneOptionEndsAfterFixedDuration) {
  auto world = make_world();
  Rng rng(1);
  world.reset(rng);
  TerminationConfig cfg;
  OptionExecution exec;
  exec.option = Option::kAccelerate;
  exec.steps = cfg.in_lane_duration - 1;
  EXPECT_FALSE(option_terminated(exec, world, 0, cfg));
  exec.steps = cfg.in_lane_duration;
  EXPECT_TRUE(option_terminated(exec, world, 0, cfg));
}

TEST(Termination, LaneChangeSucceedsWhenAlignedInTargetLane) {
  auto world = make_world();
  Rng rng(2);
  world.reset(rng);
  TerminationConfig cfg;
  OptionExecution exec;
  exec.option = Option::kLaneChange;
  exec.target_lane = 1;
  exec.steps = 3;

  // Vehicle still in lane 0: in progress.
  EXPECT_EQ(lane_change_outcome(exec, world, 0, cfg), LaneChangeOutcome::kInProgress);
  EXPECT_FALSE(option_terminated(exec, world, 0, cfg));

  // Teleport into the target lane, aligned: success.
  auto& st = world.mutable_vehicle(0).mutable_state();
  st.y = world.track().lane_center(1) + 0.01;
  st.heading = 0.05;
  EXPECT_EQ(lane_change_outcome(exec, world, 0, cfg), LaneChangeOutcome::kSuccess);
  EXPECT_TRUE(option_terminated(exec, world, 0, cfg));
}

TEST(Termination, LaneChangeTiltedDoesNotCountAsSuccess) {
  auto world = make_world();
  Rng rng(3);
  world.reset(rng);
  TerminationConfig cfg;
  OptionExecution exec;
  exec.option = Option::kLaneChange;
  exec.target_lane = 1;
  auto& st = world.mutable_vehicle(0).mutable_state();
  st.y = world.track().lane_center(1);
  st.heading = 0.5;  // too tilted
  EXPECT_EQ(lane_change_outcome(exec, world, 0, cfg), LaneChangeOutcome::kInProgress);
}

TEST(Termination, LaneChangeFailsAtDeadline) {
  auto world = make_world();
  Rng rng(4);
  world.reset(rng);
  TerminationConfig cfg;
  OptionExecution exec;
  exec.option = Option::kLaneChange;
  exec.target_lane = 1;
  exec.steps = cfg.lane_change_max_steps;
  EXPECT_EQ(lane_change_outcome(exec, world, 0, cfg), LaneChangeOutcome::kFail);
  EXPECT_TRUE(option_terminated(exec, world, 0, cfg));
}

// ------------------------------------------------------ intrinsic reward --

TEST(IntrinsicReward, DrivingInLanePenalizesDeviation) {
  auto world = make_world();
  Rng rng(5);
  world.reset(rng);
  IntrinsicRewardConfig cfg;

  const double centred = driving_in_lane_reward(world, 0, 0.05, cfg);
  world.mutable_vehicle(0).mutable_state().y = 0.1;
  const double offset = driving_in_lane_reward(world, 0, 0.05, cfg);
  EXPECT_GT(centred, offset);
  // centred at travel 0.05: 0.5·0 + 0.5·(0.05/0.1) = 0.25
  EXPECT_NEAR(centred, 0.25, 1e-9);
}

TEST(IntrinsicReward, DrivingInLaneRewardsTravel) {
  auto world = make_world();
  Rng rng(6);
  world.reset(rng);
  IntrinsicRewardConfig cfg;
  EXPECT_GT(driving_in_lane_reward(world, 0, 0.1, cfg),
            driving_in_lane_reward(world, 0, 0.02, cfg));
}

TEST(IntrinsicReward, LaneChangeTerminalBonuses) {
  IntrinsicRewardConfig cfg;
  EXPECT_DOUBLE_EQ(lane_change_reward(LaneChangeOutcome::kSuccess, 0.05, cfg), 20.0);
  EXPECT_DOUBLE_EQ(lane_change_reward(LaneChangeOutcome::kFail, 0.05, cfg), -20.0);
  EXPECT_NEAR(lane_change_reward(LaneChangeOutcome::kInProgress, 0.05, cfg), 0.5,
              1e-12);
}

// ------------------------------------------------------------ SkillBank ---

TEST(SkillBank, KeepLaneHoldsSpeed) {
  Rng rng(7);
  auto world = make_world();
  world.reset(rng);
  SkillConfig cfg;
  SkillBank bank(world.low_level_obs_dim(), cfg, rng);
  OptionExecution exec;
  exec.option = Option::kKeepLane;
  exec.hold_speed = 0.123;
  auto cmd = bank.to_twist(exec, world, 0, {});
  EXPECT_DOUBLE_EQ(cmd.linear, 0.123);
  EXPECT_DOUBLE_EQ(cmd.angular, 0.0);
}

TEST(SkillBank, KeepLaneHasNoLearnedAgent) {
  Rng rng(8);
  SkillConfig cfg;
  SkillBank bank(8, cfg, rng);
  EXPECT_FALSE(bank.has_agent(Option::kKeepLane));
  EXPECT_TRUE(bank.has_agent(Option::kLaneChange));
  EXPECT_THROW(bank.agent(Option::kKeepLane), std::logic_error);
}

TEST(SkillBank, LaneChangeSteersTowardTargetLane) {
  Rng rng(9);
  auto world = make_world();
  world.reset(rng);
  SkillConfig cfg;
  SkillBank bank(world.low_level_obs_dim(), cfg, rng);

  OptionExecution up;
  up.option = Option::kLaneChange;
  up.target_lane = 1;  // target is above (y grows)
  auto cmd_up = bank.to_twist(up, world, 0, {0.15, 0.25});
  EXPECT_GT(cmd_up.angular, 0.0);

  // From lane 1 down to lane 0 the sign flips.
  world.mutable_vehicle(0).mutable_state().y = world.track().lane_center(1);
  OptionExecution down;
  down.option = Option::kLaneChange;
  down.target_lane = 0;
  auto cmd_down = bank.to_twist(down, world, 0, {0.15, 0.25});
  EXPECT_LT(cmd_down.angular, 0.0);
}

TEST(SkillBank, LaneChangeSteeringBoundedByCommandedMagnitude) {
  Rng rng(10);
  auto world = make_world();
  world.reset(rng);
  SkillConfig cfg;
  SkillBank bank(world.low_level_obs_dim(), cfg, rng);
  OptionExecution exec;
  exec.option = Option::kLaneChange;
  exec.target_lane = 1;
  auto cmd = bank.to_twist(exec, world, 0, {0.15, 0.13});
  EXPECT_LE(std::abs(cmd.angular), 0.13 + 1e-12);
}

TEST(SkillBank, LaneChangeStraightensNearTarget) {
  Rng rng(11);
  auto world = make_world();
  world.reset(rng);
  auto& st = world.mutable_vehicle(0).mutable_state();
  st.y = world.track().lane_center(1) - 0.01;  // nearly there
  st.heading = 0.3;                            // still tilted
  SkillConfig cfg;
  SkillBank bank(world.low_level_obs_dim(), cfg, rng);
  OptionExecution exec;
  exec.option = Option::kLaneChange;
  exec.target_lane = 1;
  auto cmd = bank.to_twist(exec, world, 0, {0.15, 0.25});
  EXPECT_LT(cmd.angular, 0.0);  // counter-steer to align
}

TEST(SkillBank, InLaneSkillPassesActionThrough) {
  Rng rng(12);
  auto world = make_world();
  world.reset(rng);
  SkillConfig cfg;
  SkillBank bank(world.low_level_obs_dim(), cfg, rng);
  OptionExecution exec;
  exec.option = Option::kSlowDown;
  auto cmd = bank.to_twist(exec, world, 0, {0.06, -0.07});
  EXPECT_DOUBLE_EQ(cmd.linear, 0.06);
  EXPECT_DOUBLE_EQ(cmd.angular, -0.07);
}

TEST(SkillBank, PolicyActionsRespectOptionBounds) {
  Rng rng(13);
  auto world = make_world();
  world.reset(rng);
  SkillConfig cfg;
  SkillBank bank(world.low_level_obs_dim(), cfg, rng);
  auto obs = world.low_level_obs(0, 0);
  for (int i = 0; i < 50; ++i) {
    auto a = bank.policy_action(Option::kSlowDown, obs, rng, false);
    EXPECT_GE(a[0], 0.04);
    EXPECT_LE(a[0], 0.08);
    auto b = bank.policy_action(Option::kLaneChange, obs, rng, false);
    EXPECT_GE(b[1], 0.12);
    EXPECT_LE(b[1], 0.25);
  }
}

TEST(SkillBank, SkillObsUsesTargetLaneDuringChange) {
  Rng rng(14);
  auto world = make_world();
  world.reset(rng);
  SkillConfig cfg;
  SkillBank bank(world.low_level_obs_dim(), cfg, rng);
  OptionExecution keep;
  keep.option = Option::kSlowDown;
  OptionExecution change;
  change.option = Option::kLaneChange;
  change.target_lane = 1;
  auto o1 = bank.skill_obs(keep, world, 0);
  auto o2 = bank.skill_obs(change, world, 0);
  // Lateral-offset feature differs by exactly one lane width ratio.
  EXPECT_NEAR(o1[0] - o2[0], 1.0, 1e-9);
}

TEST(SkillBank, ParallelTrainingProducesAllCurves) {
  Rng rng(16);
  SkillConfig cfg;
  cfg.sac.batch = 32;
  cfg.sac.warmup_steps = 64;
  SkillBank bank(8, cfg, rng);
  int hook_calls = 0;
  runtime::ThreadPool pool(3);
  auto curves = bank.train_all_parallel(12, /*seed=*/7, pool,
                                        [&](Option, int, double) { ++hook_calls; });
  ASSERT_EQ(curves.size(), 3u);
  for (const auto& [o, curve] : curves) {
    EXPECT_TRUE(bank.has_agent(o));
    EXPECT_EQ(curve.size(), 12u);
  }
  EXPECT_EQ(hook_calls, 3 * 12);
}

TEST(SkillBank, ParallelTrainingDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Rng rng(31);
    SkillConfig cfg;
    cfg.sac.batch = 16;
    cfg.sac.warmup_steps = 32;
    SkillBank bank(8, cfg, rng);
    runtime::ThreadPool pool(2);
    return bank.train_all_parallel(8, seed, pool);
  };
  auto a = run(5);
  auto b = run(5);
  for (const auto& [o, curve] : a) {
    EXPECT_EQ(curve, b[o]) << option_name(o);
  }
}

TEST(SkillBank, SaveLoadRoundTrip) {
  Rng rng(15);
  SkillConfig cfg;
  SkillBank a(8, cfg, rng);
  SkillBank b(8, cfg, rng);
  const auto dir = std::filesystem::temp_directory_path() / "hero_skills_test";
  std::filesystem::create_directories(dir);
  a.save(dir.string());
  b.load(dir.string());
  std::vector<double> obs(8, 0.1);
  Rng r1(1), r2(1);
  auto a1 = a.policy_action(Option::kLaneChange, obs, r1, true);
  auto a2 = b.policy_action(Option::kLaneChange, obs, r2, true);
  EXPECT_NEAR(a1[0], a2[0], 1e-12);
  EXPECT_NEAR(a1[1], a2[1], 1e-12);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hero::core
