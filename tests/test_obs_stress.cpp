// Multi-threaded stress tests over the observability layer — the
// -fsanitize=thread CI job drives these to surface data races in the
// metrics registry, trace spans and telemetry stream (docs/CORRECTNESS.md).
// They are also ordinary correctness tests: all counts must balance after
// the threads join.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace {

using hero::obs::Registry;

constexpr int kThreads = 8;
constexpr int kItersPerThread = 2000;

class ObsStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hero::obs::set_metrics_enabled(true);
    Registry::instance().reset_values();
  }
  void TearDown() override {
    hero::obs::set_metrics_enabled(false);
    hero::obs::set_trace_enabled(false);
    Registry::instance().reset_values();
  }
};

TEST_F(ObsStressTest, ConcurrentRegistrationAndMutation) {
  // Every thread find-or-creates the same metric names while mutating them:
  // registration (map insert under mutex) races against hot-path increments
  // on already-registered handles.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      auto& reg = Registry::instance();
      for (int i = 0; i < kItersPerThread; ++i) {
        reg.counter("stress.shared_counter").inc();
        reg.counter("stress.counter." + std::to_string(i % 7)).inc();
        reg.gauge("stress.gauge").set(static_cast<double>(t));
        reg.histogram("stress.histogram").observe(static_cast<double>(i % 100));
        if (i % 5 == 0) {
          reg.histogram("stress.histogram").observe(std::nan(""));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  auto& reg = Registry::instance();
  EXPECT_EQ(reg.counter("stress.shared_counter").value(),
            static_cast<long long>(kThreads) * kItersPerThread);
  long long mod_total = 0;
  for (int i = 0; i < 7; ++i) {
    mod_total += reg.counter("stress.counter." + std::to_string(i)).value();
  }
  EXPECT_EQ(mod_total, static_cast<long long>(kThreads) * kItersPerThread);
  auto& h = reg.histogram("stress.histogram");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(h.dropped_nan(),
            static_cast<std::uint64_t>(kThreads) * (kItersPerThread / 5));
}

TEST_F(ObsStressTest, SnapshotWhileMutating) {
  // One thread repeatedly renders the JSON snapshot while others mutate and
  // register: the snapshot must never observe a torn registry.
  std::atomic<bool> stop{false};
  std::thread snapshotter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = Registry::instance().snapshot_json();
      ASSERT_FALSE(json.empty());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      auto& reg = Registry::instance();
      for (int i = 0; i < kItersPerThread; ++i) {
        reg.counter("snap.counter." + std::to_string((t * 31 + i) % 13)).inc();
        reg.histogram("snap.hist." + std::to_string(i % 3))
            .observe(static_cast<double>(i));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
}

TEST_F(ObsStressTest, ConcurrentSpansAndTraceExport) {
  hero::obs::set_trace_enabled(true);
  hero::obs::TraceRecorder::instance().clear();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kItersPerThread / 10; ++i) {
        OBS_SPAN("stress/outer");
        {
          OBS_SPAN("stress/inner");
        }
      }
    });
  }
  // Concurrent snapshot + size polling while spans are recorded.
  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)hero::obs::TraceRecorder::instance().size();
      (void)hero::obs::TraceRecorder::instance().snapshot();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const auto events = hero::obs::TraceRecorder::instance().snapshot();
  const std::size_t expected =
      static_cast<std::size_t>(kThreads) * (kItersPerThread / 10) * 2;
  EXPECT_EQ(events.size() + hero::obs::TraceRecorder::instance().dropped(), expected);
  hero::obs::TraceRecorder::instance().clear();
}

TEST_F(ObsStressTest, ConcurrentTelemetryEmission) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "hero_obs_stress_telemetry.jsonl";
  auto& tel = hero::obs::Telemetry::instance();
  ASSERT_TRUE(tel.open(path.string()));
  const std::uint64_t base = tel.lines_written();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kItersPerThread / 4; ++i) {
        hero::obs::Telemetry::instance().emit(
            hero::obs::TelemetryEvent("stress/event")
                .field("thread", t)
                .field("i", i)
                .field("value", static_cast<double>(i) * 0.5));
      }
    });
  }
  for (auto& th : threads) th.join();
  tel.close();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * (kItersPerThread / 4);
  EXPECT_EQ(tel.lines_written() - base, expected);

  // Every line must be a complete, un-torn JSON object.
  std::ifstream in(path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"event\": \"stress/event\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, expected);
  fs::remove(path);
}

TEST_F(ObsStressTest, EnableDisableToggleUnderLoad) {
  // Toggling the global enable flag while other threads mutate: exercises the
  // relaxed-load fast path against concurrent stores.
  std::atomic<bool> stop{false};
  std::thread toggler([&stop] {
    bool on = true;
    while (!stop.load(std::memory_order_relaxed)) {
      hero::obs::set_metrics_enabled(on);
      on = !on;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      auto& c = Registry::instance().counter("toggle.counter");
      auto& h = Registry::instance().histogram("toggle.hist");
      for (int i = 0; i < kItersPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(i));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  hero::obs::set_metrics_enabled(true);
  // No exact count possible (the toggle drops some); the invariant is no
  // crash/race and a value within the possible range.
  EXPECT_LE(Registry::instance().counter("toggle.counter").value(),
            static_cast<long long>(kThreads) * kItersPerThread);
}

}  // namespace
