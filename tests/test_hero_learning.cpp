// Tests for HERO's learning components: the opponent model, the high-level
// actor–critic, and the per-agent semi-MDP bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>

#include "hero/hero_agent.h"
#include "sim/scenario.h"

namespace hero::core {
namespace {

// ------------------------------------------------------- OpponentModel ----

TEST(OpponentModel, UniformBeforeEnoughSamples) {
  Rng rng(1);
  OpponentModelConfig cfg;
  OpponentModel model(4, 2, cfg, rng);
  auto p = model.predict(0, {0.1, 0.2, 0.3, 0.4});
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_EQ(model.feature_dim(), 2u * kNumOptions);
}

TEST(OpponentModel, LearnsDeterministicRule) {
  Rng rng(2);
  OpponentModelConfig cfg;
  cfg.min_samples = 32;
  OpponentModel model(2, 1, cfg, rng);

  // Rule: obs[0] > 0 → kLaneChange, else kSlowDown.
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    model.observe(0, {x, 0.5},
                  x > 0 ? Option::kLaneChange : Option::kSlowDown);
    model.update(0, rng);
  }
  auto p_pos = model.predict(0, {0.8, 0.5});
  auto p_neg = model.predict(0, {-0.8, 0.5});
  EXPECT_GT(p_pos[static_cast<int>(Option::kLaneChange)], 0.8);
  EXPECT_GT(p_neg[static_cast<int>(Option::kSlowDown)], 0.8);
}

TEST(OpponentModel, LossDecreasesOverTraining) {
  Rng rng(3);
  OpponentModelConfig cfg;
  cfg.min_samples = 32;
  OpponentModel model(2, 1, cfg, rng);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    model.observe(0, {x, 0.0}, x > 0 ? Option::kAccelerate : Option::kKeepLane);
    model.update(0, rng);
  }
  const auto& hist = model.loss_history()[0];
  ASSERT_GT(hist.size(), 100u);
  double early = 0, late = 0;
  for (std::size_t i = 0; i < 20; ++i) early += hist[i];
  for (std::size_t i = hist.size() - 20; i < hist.size(); ++i) late += hist[i];
  EXPECT_LT(late, early);
}

TEST(OpponentModel, PredictAllConcatenates) {
  Rng rng(4);
  OpponentModelConfig cfg;
  OpponentModel model(3, 2, cfg, rng);
  auto all = model.predict_all({0.0, 0.0, 0.0});
  EXPECT_EQ(all.size(), 2u * kNumOptions);
  double s = 0;
  for (double v : all) s += v;
  EXPECT_NEAR(s, 2.0, 1e-9);  // two distributions
}

TEST(OpponentModel, EntropyRegularizationKeepsPredictionsSoft) {
  // With a high λ the model must not saturate to one-hot even on a
  // deterministic rule.
  Rng rng(5);
  OpponentModelConfig sharp;
  sharp.entropy_lambda = 0.0;
  sharp.min_samples = 32;
  OpponentModelConfig soft;
  soft.entropy_lambda = 1.0;
  soft.min_samples = 32;
  OpponentModel m_sharp(1, 1, sharp, rng);
  OpponentModel m_soft(1, 1, soft, rng);
  for (int i = 0; i < 800; ++i) {
    m_sharp.observe(0, {0.5}, Option::kLaneChange);
    m_soft.observe(0, {0.5}, Option::kLaneChange);
    m_sharp.update(0, rng);
    m_soft.update(0, rng);
  }
  const double p_sharp = m_sharp.predict(0, {0.5})[static_cast<int>(Option::kLaneChange)];
  const double p_soft = m_soft.predict(0, {0.5})[static_cast<int>(Option::kLaneChange)];
  EXPECT_GT(p_sharp, p_soft);
  EXPECT_LT(p_soft, 0.95);
}

// ------------------------------------------------------ HighLevelAgent ----

HighLevelConfig fast_high() {
  HighLevelConfig cfg;
  cfg.batch = 16;
  cfg.warmup_transitions = 16;
  return cfg;
}

TEST(HighLevelAgent, SelectsValidOptions) {
  Rng rng(6);
  HighLevelAgent agent(4, 2, fast_high(), rng);
  std::vector<double> obs = {0.1, 0.2, 0.3, 0.4};
  std::vector<double> block(2 * kNumOptions, 0.25);
  for (int i = 0; i < 50; ++i) {
    int o = agent.select_option(obs, block, rng, /*explore=*/true);
    EXPECT_GE(o, 0);
    EXPECT_LT(o, kNumOptions);
  }
}

TEST(HighLevelAgent, GreedyIsArgmaxOfProbs) {
  Rng rng(7);
  HighLevelConfig cfg = fast_high();
  cfg.eps_start = 0.0;  // pure policy
  HighLevelAgent agent(4, 1, cfg, rng);
  std::vector<double> obs = {0.5, -0.5, 0.1, 0.0};
  std::vector<double> block(kNumOptions, 0.25);
  auto probs = agent.option_probs(obs, block);
  int greedy = agent.select_option(obs, block, rng, /*explore=*/false);
  EXPECT_EQ(greedy, static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                                     probs.begin()));
}

TEST(HighLevelAgent, NoUpdateBeforeWarmup) {
  Rng rng(8);
  HighLevelAgent agent(4, 1, fast_high(), rng);
  OpponentModel opp(4, 1, OpponentModelConfig{}, rng);
  EXPECT_FALSE(agent.update(opp, rng).updated);
}

TEST(HighLevelAgent, UpdateRunsAfterWarmup) {
  Rng rng(9);
  HighLevelAgent agent(4, 1, fast_high(), rng);
  OpponentModel opp(4, 1, OpponentModelConfig{}, rng);
  for (int i = 0; i < 32; ++i) {
    agent.store({{0.1, 0.2, 0.3, 0.4},
                 std::vector<double>(kNumOptions, 0.25),
                 static_cast<int>(rng.index(kNumOptions)),
                 rng.normal(),
                 0.95,
                 {0.2, 0.3, 0.4, 0.5},
                 i % 5 == 0});
  }
  auto stats = agent.update(opp, rng);
  EXPECT_TRUE(stats.updated);
  EXPECT_GE(stats.critic_loss, 0.0);
  EXPECT_GT(stats.actor_entropy, 0.0);
}

TEST(HighLevelAgent, CriticLearnsOptionValues) {
  // One state, option 2 always pays +1 (terminal), others pay −1: after
  // training, the greedy policy must pick option 2.
  Rng rng(10);
  HighLevelConfig cfg = fast_high();
  cfg.eps_start = 0.0;
  cfg.entropy_coef = 0.005;
  HighLevelAgent agent(2, 1, cfg, rng);
  OpponentModel opp(2, 1, OpponentModelConfig{}, rng);
  std::vector<double> obs = {0.3, 0.7};
  std::vector<double> block(kNumOptions, 0.25);
  for (int i = 0; i < 400; ++i) {
    const int o = static_cast<int>(rng.index(kNumOptions));
    agent.store({obs, block, o, o == 2 ? 1.0 : -1.0, 0.95, obs, /*done=*/true});
    agent.update(opp, rng);
  }
  EXPECT_EQ(agent.select_option(obs, block, rng, /*explore=*/false), 2);
}

TEST(HighLevelAgent, MaxBootstrapPropagatesValueAgainstThePolicy) {
  // Two-state chain: state A, option 2 leads (done-free) to state B where
  // option 0 pays +10 on termination; every other option pays 0. The actor
  // is never trained toward option 2 in A (we only run critic updates with
  // a frozen adversarial actor via high entropy), yet with the max
  // bootstrap Q(A, 2) must approach γ^c·10.
  Rng rng(20);
  HighLevelConfig cfg = fast_high();
  cfg.bootstrap = Bootstrap::kMax;
  cfg.lr = 0.01;
  HighLevelAgent agent(1, 1, cfg, rng);
  OpponentModel opp(1, 1, OpponentModelConfig{}, rng);

  const std::vector<double> A = {0.0}, B = {1.0};
  const std::vector<double> block(kNumOptions, 0.25);
  // γ^c = 0.7: looping one extra option in A must visibly cost value.
  for (int i = 0; i < 600; ++i) {
    const int o = static_cast<int>(rng.index(kNumOptions));
    // From A: option 2 transitions to B, others loop in A, reward 0.
    agent.store({A, block, o, 0.0, 0.7, o == 2 ? B : A, false});
    // From B: option 0 terminates with +10, others loop with 0.
    const int o2 = static_cast<int>(rng.index(kNumOptions));
    agent.store({B, block, o2, o2 == 0 ? 10.0 : 0.0, 0.7, B, o2 == 0});
    agent.update(opp, rng);
  }
  // Probe the critic directly.
  auto q_of = [&](const std::vector<double>& s, int o) {
    std::vector<double> in = s;
    for (int a = 0; a < kNumOptions; ++a) in.push_back(a == o ? 1.0 : 0.0);
    in.insert(in.end(), block.begin(), block.end());
    return agent.critic().forward1(in)[0];
  };
  // True values: Q(B,0) = 10; Q(A,2) = 0.7·10 = 7; Q(A,loop) = 0.7·7 = 4.9.
  EXPECT_GT(q_of(B, 0), 8.0);           // terminal payoff learned
  EXPECT_GT(q_of(A, 2), 5.5);           // propagated through the max bootstrap
  EXPECT_GT(q_of(A, 2), q_of(A, 1) + 1.0);  // beats the looping options
}

// ----------------------------------------------------------- HeroAgent ----

sim::LaneWorld coop_world() {
  return sim::LaneWorld(sim::cooperative_lane_change().config);
}

TEST(HeroAgent, SemiMdpRewardAccumulation) {
  Rng rng(11);
  auto world = coop_world();
  world.reset(rng);
  HighLevelConfig cfg = fast_high();
  cfg.gamma = 0.9;
  HeroAgent agent(world.high_level_obs_dim(), 2, cfg, OpponentModelConfig{},
                  TerminationConfig{}, rng);

  agent.select_initial(world, 0, {0, 0}, rng, /*explore=*/true);
  agent.accumulate(1.0);
  agent.accumulate(2.0);
  agent.accumulate(4.0);
  agent.finalize_episode(world, 0, /*learning=*/true);

  ASSERT_EQ(agent.high_level().buffered(), 1u);
  const auto& t = agent.high_level().buffer().at(0);
  // R = 1 + 0.9·2 + 0.81·4 = 6.04; γ^c = 0.9³.
  EXPECT_NEAR(t.reward, 6.04, 1e-12);
  EXPECT_NEAR(t.gamma_pow, 0.9 * 0.9 * 0.9, 1e-12);
  EXPECT_TRUE(t.done);
}

TEST(HeroAgent, StoresActualOpponentOptionsOneHot) {
  Rng rng(12);
  auto world = coop_world();
  world.reset(rng);
  HeroAgent agent(world.high_level_obs_dim(), 2, fast_high(), OpponentModelConfig{},
                  TerminationConfig{}, rng);
  agent.select_initial(world, 0, {1, 3}, rng, true);
  agent.finalize_episode(world, 0, true);
  const auto& t = agent.high_level().buffer().at(0);
  ASSERT_EQ(t.opp_actual.size(), 2u * kNumOptions);
  EXPECT_DOUBLE_EQ(t.opp_actual[1], 1.0);                 // opponent 0 = option 1
  EXPECT_DOUBLE_EQ(t.opp_actual[kNumOptions + 3], 1.0);   // opponent 1 = option 3
  double s = 0;
  for (double v : t.opp_actual) s += v;
  EXPECT_DOUBLE_EQ(s, 2.0);
}

TEST(HeroAgent, NoStorageWhenLearningDisabled) {
  Rng rng(13);
  auto world = coop_world();
  world.reset(rng);
  HeroAgent agent(world.high_level_obs_dim(), 2, fast_high(), OpponentModelConfig{},
                  TerminationConfig{}, rng);
  agent.select_initial(world, 0, {0, 0}, rng, false);
  agent.accumulate(1.0);
  agent.finalize_episode(world, 0, /*learning=*/false);
  EXPECT_EQ(agent.high_level().buffered(), 0u);
}

TEST(HeroAgent, LaneChangeTargetsOtherLane) {
  Rng rng(14);
  auto world = coop_world();
  world.reset(rng);
  HeroAgent agent(world.high_level_obs_dim(), 2, fast_high(), OpponentModelConfig{},
                  TerminationConfig{}, rng);
  // Force a lane-change selection by trying until it happens (ε start 0.5).
  bool saw_change = false;
  for (int i = 0; i < 200 && !saw_change; ++i) {
    agent.select_initial(world, 1, {0, 0}, rng, true);
    if (agent.execution().option == Option::kLaneChange) {
      saw_change = true;
      // Vehicle 1 (the merger) starts in lane 0 → target must be lane 1.
      EXPECT_EQ(agent.execution().target_lane, 1);
    }
  }
  EXPECT_TRUE(saw_change);
}

TEST(HeroAgent, ReselectionFinalizesPendingTransition) {
  Rng rng(15);
  auto world = coop_world();
  world.reset(rng);
  TerminationConfig term;
  term.in_lane_duration = 1;  // every option ends after one step
  HighLevelConfig cfg = fast_high();
  HeroAgent agent(world.high_level_obs_dim(), 2, cfg, OpponentModelConfig{}, term,
                  rng);
  agent.select_initial(world, 0, {0, 0}, rng, true);
  // Simulate: option ran for 1 step.
  agent.execution().steps = 1;
  agent.accumulate(0.5);
  const bool reselected =
      agent.execution().option == Option::kLaneChange
          ? false  // lane change terminates by geometry, not duration
          : agent.maybe_reselect(world, 0, {0, 0}, rng, true, true);
  if (reselected) {
    EXPECT_EQ(agent.high_level().buffered(), 1u);
    EXPECT_FALSE(agent.high_level().buffer().at(0).done);
  }
}

// The high-level update's hot path replaced per-row predict_all_into calls
// with one batched predict_all_rows per minibatch; the swap is only legal if
// the two produce bitwise-identical blocks (the update math, and therefore
// the determinism contract, rides on it).
TEST(OpponentModel, BatchedRowsMatchPerRowPredictions) {
  Rng rng(21);
  const std::size_t obs_dim = 3;
  OpponentModelConfig cfg;
  cfg.min_samples = 16;
  OpponentModel model(obs_dim, 2, cfg, rng);

  auto check_batch_matches = [&](const char* phase) {
    const std::size_t B = 7;
    nn::Matrix rows(B, obs_dim);
    std::vector<double> obs(obs_dim);
    Rng data(77);
    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t d = 0; d < obs_dim; ++d) {
        rows.row_ptr(b)[d] = data.uniform(-1.0, 1.0);
      }
    }
    nn::Matrix batched;
    model.predict_all_rows(rows, batched);
    ASSERT_EQ(batched.rows(), B);
    ASSERT_EQ(batched.cols(), model.feature_dim());
    std::vector<double> row(model.feature_dim());
    for (std::size_t b = 0; b < B; ++b) {
      std::copy(rows.row_ptr(b), rows.row_ptr(b) + obs_dim, obs.begin());
      model.predict_all_into(obs, row.data());
      for (std::size_t f = 0; f < row.size(); ++f) {
        // Bitwise, not approximate: the batched kernel must be a pure
        // reshape of the per-row computation.
        EXPECT_EQ(batched.row_ptr(b)[f], row[f]) << phase << " b=" << b << " f=" << f;
      }
    }
  };

  check_batch_matches("uniform-prior");  // below min_samples: both uniform

  Rng data(5);
  for (int i = 0; i < 200; ++i) {
    const double x = data.uniform(-1.0, 1.0);
    model.observe(0, {x, 0.0, 0.5}, x > 0 ? Option::kLaneChange : Option::kSlowDown);
    model.observe(1, {x, 0.0, 0.5}, x > 0 ? Option::kAccelerate : Option::kKeepLane);
    model.update_all(data);
  }
  check_batch_matches("trained");
}

}  // namespace
}  // namespace hero::core
