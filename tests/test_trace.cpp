// Tests for episode trace record/replay: round-trip serialization,
// bit-exact replay of deterministic and noisy episodes, and divergence
// detection when the config changes.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "sim/scenario.h"
#include "sim/trace.h"

namespace hero::sim {
namespace {

std::vector<TwistCmd> cruise_policy(const LaneWorld& world) {
  return std::vector<TwistCmd>(static_cast<std::size_t>(world.num_learners()),
                               TwistCmd{0.12, 0.0});
}

TEST(Trace, RecordsFullEpisode) {
  auto sc = cooperative_lane_change();
  auto trace = record_episode(sc.config, 7, cruise_policy);
  EXPECT_EQ(trace.num_learners(), 3);
  EXPECT_EQ(trace.seed(), 7u);
  EXPECT_GT(trace.steps().size(), 0u);
  EXPECT_LE(trace.steps().size(),
            static_cast<std::size_t>(sc.config.max_steps));
}

TEST(Trace, ReplayMatchesDeterministicEpisode) {
  auto sc = cooperative_lane_change();
  auto trace = record_episode(sc.config, 11, cruise_policy);
  auto report = replay(trace, sc.config);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.steps_replayed, static_cast<int>(trace.steps().size()));
  EXPECT_EQ(report.first_divergence, -1);
  EXPECT_LE(report.max_travel_error, 1e-12);
}

TEST(Trace, ReplayMatchesNoisyEpisode) {
  // Domain-shifted world consumes RNG in step(); the stored seed must make
  // the replayed noise identical.
  auto cfg = with_real_world_shift(cooperative_lane_change().config);
  auto trace = record_episode(cfg, 13, cruise_policy);
  auto report = replay(trace, cfg);
  EXPECT_TRUE(report.ok);
}

TEST(Trace, DetectsConfigDivergence) {
  auto sc = cooperative_lane_change();
  auto trace = record_episode(sc.config, 17, cruise_policy);
  auto altered = sc.config;
  altered.specs[3].scripted_speed = 0.08;  // faster plodder changes outcomes
  auto report = replay(trace, altered);
  EXPECT_FALSE(report.ok);
  EXPECT_GE(report.first_divergence, 0);
}

TEST(Trace, SaveLoadRoundTrip) {
  auto sc = cooperative_lane_change();
  auto trace = record_episode(sc.config, 19, cruise_policy);
  std::stringstream ss;
  trace.save(ss);
  auto loaded = EpisodeTrace::load(ss);
  EXPECT_EQ(loaded.seed(), trace.seed());
  EXPECT_EQ(loaded.num_learners(), trace.num_learners());
  ASSERT_EQ(loaded.steps().size(), trace.steps().size());
  for (std::size_t i = 0; i < loaded.steps().size(); ++i) {
    EXPECT_EQ(loaded.steps()[i].collision, trace.steps()[i].collision);
    EXPECT_EQ(loaded.steps()[i].travel, trace.steps()[i].travel);
    for (std::size_t k = 0; k < loaded.steps()[i].cmds.size(); ++k) {
      EXPECT_DOUBLE_EQ(loaded.steps()[i].cmds[k].linear,
                       trace.steps()[i].cmds[k].linear);
    }
  }
  // The loaded trace replays cleanly too.
  EXPECT_TRUE(replay(loaded, sc.config).ok);
}

TEST(Trace, FileRoundTrip) {
  auto sc = cooperative_lane_change();
  auto trace = record_episode(sc.config, 23, cruise_policy);
  const auto path =
      (std::filesystem::temp_directory_path() / "hero_trace_test.trace").string();
  trace.save_file(path);
  auto loaded = EpisodeTrace::load_file(path);
  EXPECT_EQ(loaded.steps().size(), trace.steps().size());
  std::filesystem::remove(path);
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream ss("not a trace at all");
  EXPECT_THROW(EpisodeTrace::load(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsTruncated) {
  auto sc = cooperative_lane_change();
  auto trace = record_episode(sc.config, 29, cruise_policy);
  std::stringstream ss;
  trace.save(ss);
  std::string text = ss.str();
  text = text.substr(0, text.rfind("end"));  // chop the terminator
  std::stringstream truncated(text);
  EXPECT_THROW(EpisodeTrace::load(truncated), std::runtime_error);
}

TEST(Trace, RecordRejectsWrongCommandCount) {
  EpisodeTrace trace;
  trace.begin(1, 3);
  StepResult r;
  EXPECT_THROW(trace.record({{0.1, 0.0}}, r), std::logic_error);
}

}  // namespace
}  // namespace hero::sim
