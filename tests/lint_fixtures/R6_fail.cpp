// lint-fixture-path: src/sim/fixture.cpp
void BatchLaneWorld::step_lane(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    positions_.push_back(static_cast<double>(i));  // per-element growth
  }
}
int SpatialIndex::query(double x0, double behind, double ahead, int exclude,
                        const int** out_ids) const {
  for (int i = 0; i < n_; ++i) {
    cand_.push_back(i);  // sensing kernels carry the same contract
  }
  return n_;
}
