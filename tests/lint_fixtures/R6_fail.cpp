// lint-fixture-path: src/sim/fixture.cpp
void BatchLaneWorld::step_lane(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    positions_.push_back(static_cast<double>(i));  // per-element growth
  }
}
