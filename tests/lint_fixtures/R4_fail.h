// lint-fixture-path: src/hero/fixture.h
#ifndef HERO_FIXTURE_H_
#define HERO_FIXTURE_H_

struct Fixture {};

#endif
