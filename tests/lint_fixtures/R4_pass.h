// lint-fixture-path: src/hero/fixture.h
#pragma once

struct Fixture {};
